// Distributed inventory: the Section 6 distributed extension.
//
// Warehouses (sites) each own a shard of the stock table. Order
// processors run cross-warehouse read-write transactions (two-phase
// commit with transaction-number agreement); a reporting job runs global
// read-only stock counts from whatever site it happens to contact,
// without knowing in advance which warehouses it will touch and without
// sending a single commit message.

#include <atomic>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/distributed_db.h"
#include "history/serializability.h"

namespace {

constexpr int kWarehouses = 4;
constexpr uint64_t kItems = 128;  // item k lives at warehouse k % 4
constexpr int kProcessors = 4;
constexpr int kOrdersPerProcessor = 500;
constexpr int64_t kInitialStock = 100;

int64_t ToInt(const mvcc::Value& v) { return std::stoll(v); }

}  // namespace

int main() {
  using namespace mvcc;

  DistributedDb::Options options;
  options.num_sites = kWarehouses;
  options.preload_keys = kItems;
  options.initial_value = std::to_string(kInitialStock);
  options.record_history = true;
  DistributedDb db(options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> orders{0};

  // Order processors: move one unit from a source item to a destination
  // item (e.g. a stock transfer between warehouses). Total stock is
  // invariant.
  std::vector<std::thread> processors;
  for (int p = 0; p < kProcessors; ++p) {
    processors.emplace_back([&, p] {
      Random rng(77 + p);
      for (int i = 0; i < kOrdersPerProcessor; ++i) {
        const int home = static_cast<int>(rng.Uniform(kWarehouses));
        const ObjectKey from = rng.Uniform(kItems);
        const ObjectKey to = rng.Uniform(kItems);
        if (from == to) continue;
        auto txn = db.Begin(TxnClass::kReadWrite, home);
        auto from_stock = txn->Read(from);
        if (!from_stock.ok()) continue;
        auto to_stock = txn->Read(to);
        if (!to_stock.ok()) continue;
        if (!txn->Write(from, std::to_string(ToInt(*from_stock) - 1)).ok()) {
          continue;
        }
        if (!txn->Write(to, std::to_string(ToInt(*to_stock) + 1)).ok()) {
          continue;
        }
        if (txn->Commit().ok()) orders.fetch_add(1);
      }
    });
  }

  // Reporting: global stock totals via read-only snapshots, started at a
  // random warehouse each time — no a-priori site list needed.
  uint64_t reports = 0;
  uint64_t inconsistent = 0;
  std::thread reporter([&] {
    Random rng(5);
    while (!done.load()) {
      const int home = static_cast<int>(rng.Uniform(kWarehouses));
      auto report = db.Begin(TxnClass::kReadOnly, home);
      int64_t total = 0;
      bool ok = true;
      for (ObjectKey item = 0; item < kItems && ok; ++item) {
        auto stock = report->Read(item);
        ok = stock.ok();
        if (ok) total += ToInt(*stock);
      }
      report->Commit();
      if (!ok) continue;
      ++reports;
      if (total != static_cast<int64_t>(kItems) * kInitialStock) {
        ++inconsistent;
      }
    }
  });

  for (auto& p : processors) p.join();
  done.store(true);
  reporter.join();

  const bool serializable =
      CheckOneCopySerializable(*db.history()).one_copy_serializable;

  std::cout << "warehouses:              " << kWarehouses << "\n"
            << "orders committed:        " << orders.load() << "\n"
            << "order aborts:            " << db.counters().rw_aborts.load()
            << "\n"
            << "global reports:          " << reports << "\n"
            << "inconsistent reports:    " << inconsistent
            << " (must be 0)\n"
            << "global 1-copy serializable: "
            << (serializable ? "yes" : "NO") << "\n"
            << "message counts:\n"
            << "  remote read/write:     "
            << db.network().Count(MessageType::kRemoteRead) +
                   db.network().Count(MessageType::kRemoteWrite)
            << "\n"
            << "  2PC prepare+commit:    "
            << db.network().Count(MessageType::kPrepare) +
                   db.network().Count(MessageType::kCommit)
            << "\n"
            << "  snapshot reads (RO):   "
            << db.network().Count(MessageType::kSnapshotRead) << "\n"
            << "  RO commit messages:    0 by construction\n";
  return (inconsistent == 0 && serializable) ? 0 : 1;
}
