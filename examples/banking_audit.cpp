// Banking audit: the paper's motivating workload shape.
//
// Tellers move money between accounts with read-write transactions while
// an auditor repeatedly sums every balance with read-only transactions.
// Because each transfer preserves the total and the auditor reads a
// one-copy-serializable snapshot, every audit must see exactly the
// initial total — while never blocking a single teller.

#include <atomic>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "txn/database.h"

namespace {

constexpr uint64_t kAccounts = 64;
constexpr int64_t kInitialBalance = 1000;
constexpr int kTellers = 4;
constexpr int kTransfersPerTeller = 2000;

int64_t ToInt(const mvcc::Value& v) { return std::stoll(v); }
mvcc::Value ToValue(int64_t x) { return std::to_string(x); }

}  // namespace

int main() {
  using namespace mvcc;

  DatabaseOptions options;
  options.protocol = ProtocolKind::kVcTo;  // any VC protocol works
  options.preload_keys = kAccounts;
  options.initial_value = ToValue(kInitialBalance);
  Database db(options);

  const int64_t expected_total =
      static_cast<int64_t>(kAccounts) * kInitialBalance;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> transfers{0};
  std::vector<std::thread> tellers;
  for (int t = 0; t < kTellers; ++t) {
    tellers.emplace_back([&, t] {
      uint64_t seed = t * 2654435761u + 1;
      for (int i = 0; i < kTransfersPerTeller; ++i) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const ObjectKey from = (seed >> 16) % kAccounts;
        const ObjectKey to = (seed >> 40) % kAccounts;
        if (from == to) continue;
        auto txn = db.Begin(TxnClass::kReadWrite);
        auto from_balance = txn->Read(from);
        if (!from_balance.ok()) continue;  // aborted: retry next round
        auto to_balance = txn->Read(to);
        if (!to_balance.ok()) continue;
        const int64_t amount = 1 + static_cast<int64_t>(seed % 50);
        if (!txn->Write(from, ToValue(ToInt(*from_balance) - amount)).ok()) {
          continue;
        }
        if (!txn->Write(to, ToValue(ToInt(*to_balance) + amount)).ok()) {
          continue;
        }
        if (txn->Commit().ok()) transfers.fetch_add(1);
      }
    });
  }

  // The auditor: read-only snapshots, concurrent with all tellers.
  uint64_t audits = 0;
  uint64_t inconsistent = 0;
  std::thread auditor([&] {
    while (!done.load()) {
      auto audit = db.Begin(TxnClass::kReadOnly);
      int64_t total = 0;
      for (ObjectKey account = 0; account < kAccounts; ++account) {
        total += ToInt(*audit->Read(account));
      }
      audit->Commit();
      ++audits;
      if (total != expected_total) ++inconsistent;
    }
  });

  for (auto& t : tellers) t.join();
  done.store(true);
  auditor.join();

  // One final audit after the dust settles.
  auto final_audit = db.Begin(TxnClass::kReadOnly);
  int64_t final_total = 0;
  for (ObjectKey account = 0; account < kAccounts; ++account) {
    final_total += ToInt(*final_audit->Read(account));
  }
  final_audit->Commit();

  const auto events = db.counters().Snap();
  std::cout << "transfers committed:   " << transfers.load() << "\n"
            << "transfer aborts:       " << events.rw_aborts << "\n"
            << "audits completed:      " << audits << "\n"
            << "inconsistent audits:   " << inconsistent
            << "  (must be 0)\n"
            << "auditor blocks/aborts: " << events.ro_blocks << "/"
            << events.ro_aborts << "  (must be 0/0)\n"
            << "final total:           " << final_total << " (expected "
            << expected_total << ")\n";
  return (inconsistent == 0 && final_total == expected_total) ? 0 : 1;
}
