// mvcc_shell: a tiny interactive (or scriptable) shell over the library.
//
//   $ build/examples/mvcc_shell [protocol]
//   mvcc> begin rw
//   t1
//   mvcc> write t1 7 hello
//   OK
//   mvcc> commit t1
//   OK tn=1
//   mvcc> begin ro
//   t2
//   mvcc> read t2 7
//   hello
//
// Protocols: vc-2pl (default), vc-to, vc-occ, vc-adaptive, mvto,
// mv2pl-ctl, sv-2pl, weihl-ti. Pipe a script through stdin for
// repeatable demos: `printf 'put 1 x\nget 1\nquit\n' | mvcc_shell vc-to`.

#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "txn/database.h"

namespace {

using namespace mvcc;

std::optional<ProtocolKind> ParseProtocol(const std::string& name) {
  static const std::map<std::string, ProtocolKind> kKinds = {
      {"vc-2pl", ProtocolKind::kVc2pl},
      {"vc-to", ProtocolKind::kVcTo},
      {"vc-occ", ProtocolKind::kVcOcc},
      {"vc-adaptive", ProtocolKind::kVcAdaptive},
      {"mvto", ProtocolKind::kMvto},
      {"mv2pl-ctl", ProtocolKind::kMv2plCtl},
      {"sv-2pl", ProtocolKind::kSv2pl},
      {"weihl-ti", ProtocolKind::kWeihlTi},
  };
  auto it = kKinds.find(name);
  if (it == kKinds.end()) return std::nullopt;
  return it->second;
}

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  begin ro|rw            start a transaction, prints its handle\n"
      "  read <t> <key>         read inside transaction <t>\n"
      "  write <t> <key> <val>  buffer a write inside <t>\n"
      "  scan <t> <lo> <hi>     snapshot range scan (read-only txns)\n"
      "  commit <t>             commit <t>\n"
      "  abort <t>              abort <t>\n"
      "  get <key>              one-shot read-only read\n"
      "  put <key> <val>        one-shot read-write write\n"
      "  stats                  event counters\n"
      "  vtnc                   version control counters\n"
      "  gc                     run one garbage collection pass\n"
      "  help / quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  ProtocolKind kind = ProtocolKind::kVc2pl;
  if (argc > 1) {
    auto parsed = ParseProtocol(argv[1]);
    if (!parsed) {
      std::cerr << "unknown protocol '" << argv[1] << "'\n";
      return 1;
    }
    kind = *parsed;
  }
  DatabaseOptions options;
  options.protocol = kind;
  options.preload_keys = 16;
  options.initial_value = "0";
  options.enable_gc = true;
  Database db(options);
  std::cout << "mvcc-modular shell, protocol=" << ProtocolKindName(kind)
            << ", 16 keys preloaded to \"0\". Type 'help'.\n";

  std::map<std::string, std::unique_ptr<Transaction>> txns;
  uint64_t next_handle = 1;
  std::string line;
  while (true) {
    std::cout << "mvcc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    auto need_txn = [&](const std::string& handle) -> Transaction* {
      auto it = txns.find(handle);
      if (it == txns.end()) {
        std::cout << "no such transaction '" << handle << "'\n";
        return nullptr;
      }
      return it->second.get();
    };

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "begin") {
      std::string cls;
      in >> cls;
      if (cls != "ro" && cls != "rw") {
        std::cout << "usage: begin ro|rw\n";
        continue;
      }
      const std::string handle = "t" + std::to_string(next_handle++);
      txns[handle] = db.Begin(cls == "ro" ? TxnClass::kReadOnly
                                          : TxnClass::kReadWrite);
      std::cout << handle << "\n";
    } else if (cmd == "read") {
      std::string handle;
      ObjectKey key;
      if (!(in >> handle >> key)) {
        std::cout << "usage: read <t> <key>\n";
        continue;
      }
      Transaction* txn = need_txn(handle);
      if (txn == nullptr) continue;
      auto value = txn->Read(key);
      if (value.ok()) {
        std::cout << *value << "\n";
      } else {
        std::cout << value.status() << "\n";
        if (!txn->active()) {
          std::cout << handle << " aborted\n";
          txns.erase(handle);
        }
      }
    } else if (cmd == "write") {
      std::string handle, value;
      ObjectKey key;
      if (!(in >> handle >> key >> value)) {
        std::cout << "usage: write <t> <key> <value>\n";
        continue;
      }
      Transaction* txn = need_txn(handle);
      if (txn == nullptr) continue;
      Status s = txn->Write(key, value);
      std::cout << s << "\n";
      if (!txn->active()) {
        std::cout << handle << " aborted\n";
        txns.erase(handle);
      }
    } else if (cmd == "scan") {
      std::string handle;
      ObjectKey lo, hi;
      if (!(in >> handle >> lo >> hi)) {
        std::cout << "usage: scan <t> <lo> <hi>\n";
        continue;
      }
      Transaction* txn = need_txn(handle);
      if (txn == nullptr) continue;
      auto rows = txn->Scan(lo, hi);
      if (!rows.ok()) {
        std::cout << rows.status() << "\n";
        continue;
      }
      for (const auto& [key, value] : *rows) {
        std::cout << "  " << key << " -> " << value << "\n";
      }
      std::cout << rows->size() << " rows\n";
    } else if (cmd == "commit") {
      std::string handle;
      if (!(in >> handle)) {
        std::cout << "usage: commit <t>\n";
        continue;
      }
      Transaction* txn = need_txn(handle);
      if (txn == nullptr) continue;
      Status s = txn->Commit();
      if (s.ok()) {
        std::cout << "OK tn=" << txn->txn_number() << "\n";
      } else {
        std::cout << s << "\n";
      }
      txns.erase(handle);
    } else if (cmd == "abort") {
      std::string handle;
      if (!(in >> handle)) {
        std::cout << "usage: abort <t>\n";
        continue;
      }
      Transaction* txn = need_txn(handle);
      if (txn == nullptr) continue;
      txn->Abort();
      txns.erase(handle);
      std::cout << "OK\n";
    } else if (cmd == "get") {
      ObjectKey key;
      if (!(in >> key)) {
        std::cout << "usage: get <key>\n";
        continue;
      }
      auto value = db.Get(key);
      std::cout << (value.ok() ? *value : value.status().ToString())
                << "\n";
    } else if (cmd == "put") {
      ObjectKey key;
      std::string value;
      if (!(in >> key >> value)) {
        std::cout << "usage: put <key> <value>\n";
        continue;
      }
      std::cout << db.Put(key, value) << "\n";
    } else if (cmd == "stats") {
      const auto snap = db.counters().Snap();
      std::cout << "ro_commits=" << snap.ro_commits
                << " rw_commits=" << snap.rw_commits
                << " ro_aborts=" << snap.ro_aborts
                << " rw_aborts=" << snap.rw_aborts
                << " ro_blocks=" << snap.ro_blocks
                << " rw_blocks=" << snap.rw_blocks << "\n"
                << "ro_metadata_writes=" << snap.ro_metadata_writes
                << " ctl_copied=" << snap.ctl_entries_copied
                << " deadlock_aborts=" << snap.deadlock_aborts << "\n";
    } else if (cmd == "vtnc") {
      std::cout << "vtnc=" << db.version_control().vtnc()
                << " next_tn=" << db.version_control().NextNumber()
                << " queue=" << db.version_control().QueueSize()
                << " versions=" << db.store().TotalVersions() << "\n";
    } else if (cmd == "gc") {
      std::cout << "reclaimed " << db.gc()->RunOnce() << " versions\n";
    } else {
      std::cout << "unknown command '" << cmd << "' (try 'help')\n";
    }
  }
  return 0;
}
