// Quickstart: the public API in two minutes.
//
// Build a database with the paper's version control + two-phase locking,
// run a read-write transaction, and observe that a read-only transaction
// gets a stable snapshot with zero synchronization.

#include <cassert>
#include <iostream>

#include "txn/database.h"

int main() {
  using namespace mvcc;

  // 1. Pick a protocol. The version control module is the same for all
  //    of them; only the read-write synchronization differs.
  DatabaseOptions options;
  options.protocol = ProtocolKind::kVc2pl;   // Figure 4 of the paper
  options.preload_keys = 10;                 // keys 0..9, initial value:
  options.initial_value = "0";
  Database db(options);

  // 2. A read-write transaction: reads lock, writes buffer, commit
  //    registers with version control at the lock point and installs
  //    versions stamped with the transaction number.
  auto writer = db.Begin(TxnClass::kReadWrite);
  std::cout << "writer reads key 3 -> " << *writer->Read(3) << "\n";
  writer->Write(3, "hello");
  writer->Write(4, "world");
  Status commit = writer->Commit();
  std::cout << "writer commit: " << commit
            << ", tn(T) = " << writer->txn_number() << "\n";

  // 3. A read-only transaction: one call to VCstart, then pure
  //    version-chain reads. It can never block, abort, or disturb any
  //    read-write transaction.
  auto reader = db.Begin(TxnClass::kReadOnly);
  std::cout << "reader snapshot sn = " << reader->start_number() << "\n";
  std::cout << "reader sees key 3 -> " << *reader->Read(3)
            << ", key 4 -> " << *reader->Read(4) << "\n";
  reader->Commit();

  // 4. The snapshot is stable: later commits do not leak in.
  auto old_reader = db.Begin(TxnClass::kReadOnly);
  db.Put(3, "changed");
  assert(*old_reader->Read(3) == "hello");
  std::cout << "old reader still sees key 3 -> " << *old_reader->Read(3)
            << " (a new commit changed it to 'changed')\n";
  old_reader->Commit();

  // 5. Need the newest state? Either insist on a specific transaction
  //    (the Section 6 currency fix)...
  auto current = db.BeginReadOnlyAtLeast(db.version_control().vtnc());
  std::cout << "currency-fixed reader sees key 3 -> " << *current->Read(3)
            << "\n";
  current->Commit();

  // 6. ...or swap the whole concurrency control plug-in without touching
  //    any of the code above:
  DatabaseOptions to_options = options;
  to_options.protocol = ProtocolKind::kVcTo;  // Figure 3 of the paper
  Database to_db(to_options);
  to_db.Put(0, "timestamp ordered");
  std::cout << "same API under vc-to: key 0 -> " << *to_db.Get(0) << "\n";
  return 0;
}
