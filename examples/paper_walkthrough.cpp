// A guided tour of the paper's four figures against the live library.
// Run it and read along with CUCS-426-89.

#include <iostream>

#include "txn/database.h"
#include "vc/version_control.h"

namespace {

using namespace mvcc;

void Banner(const char* text) {
  std::cout << "\n=== " << text << " ===\n";
}

void ShowCounters(VersionControl& vc) {
  std::cout << "    [vc] tnc=" << vc.NextNumber() << " vtnc=" << vc.vtnc()
            << " |VCQueue|=" << vc.QueueSize() << "\n";
}

}  // namespace

int main() {
  std::cout << "Modular Synchronization in Multiversion Databases —\n"
               "the four figures, executed.\n";

  // -------------------------------------------------------------------
  Banner("Figure 1: the VersionControl module");
  {
    VersionControl vc;
    std::cout << "  Three read-write transactions register (VCregister):\n";
    const TxnNumber t1 = vc.Register(101);
    const TxnNumber t2 = vc.Register(102);
    const TxnNumber t3 = vc.Register(103);
    std::cout << "    tn(T1)=" << t1 << " tn(T2)=" << t2 << " tn(T3)=" << t3
              << "\n";
    ShowCounters(vc);
    std::cout << "  T3 and T2 complete OUT of serial order (VCcomplete):\n";
    vc.Complete(t3);
    vc.Complete(t2);
    ShowCounters(vc);
    std::cout << "    vtnc stayed at 0: T1 (older) is still active, so\n"
              << "    T2/T3's updates must not become visible yet.\n";
    std::cout << "  T1 completes:\n";
    vc.Complete(t1);
    ShowCounters(vc);
    std::cout << "    the whole prefix closed; vtnc jumped straight to "
              << vc.vtnc() << ".\n";
  }

  // -------------------------------------------------------------------
  Banner("Figure 2: read-only transactions (any protocol — here: 2PL)");
  DatabaseOptions options;
  options.protocol = ProtocolKind::kVc2pl;
  options.preload_keys = 4;
  options.initial_value = "v0";
  Database db(options);
  {
    auto reader = db.Begin(TxnClass::kReadOnly);
    std::cout << "  begin(T): sn(T) <- VCstart() = "
              << reader->start_number() << "\n";
    std::cout << "  read(x):  largest version <= sn -> \""
              << *reader->Read(0) << "\"\n";
    db.Put(0, "v1");  // a concurrent commit
    std::cout << "  a writer commits \"v1\" meanwhile; re-read(x) -> \""
              << *reader->Read(0) << "\" (snapshot is immovable)\n";
    reader->Commit();
    std::cout << "  end(T): phi — nothing to do, nothing was touched.\n";
  }

  // -------------------------------------------------------------------
  Banner("Figure 4: read-write transactions under 2PL");
  {
    auto txn = db.Begin(TxnClass::kReadWrite);
    std::cout << "  begin(T): sn = infinity (reads the latest version)\n";
    std::cout << "  read(x) takes a shared lock -> \"" << *txn->Read(0)
              << "\"\n";
    txn->Write(1, "y-from-2pl");
    std::cout << "  write(y) takes an exclusive lock; the new version is\n"
              << "  buffered with version 'phi' until the lock point.\n";
    ShowCounters(db.version_control());
    txn->Commit();
    std::cout << "  end(T): VCregister at the lock point -> tn(T)="
              << txn->txn_number()
              << "; install versions numbered tn(T); clear locks;\n"
              << "  VCcomplete.\n";
    ShowCounters(db.version_control());
  }

  // -------------------------------------------------------------------
  Banner("Figure 3: read-write transactions under timestamp ordering");
  DatabaseOptions to_options;
  to_options.protocol = ProtocolKind::kVcTo;
  to_options.preload_keys = 4;
  to_options.initial_value = "v0";
  Database to_db(to_options);
  {
    auto older = to_db.Begin(TxnClass::kReadWrite);
    auto younger = to_db.Begin(TxnClass::kReadWrite);
    std::cout << "  begin registers immediately: tn(older)="
              << older->txn_number()
              << ", tn(younger)=" << younger->txn_number() << "\n";
    std::cout << "  younger reads x -> \"" << *younger->Read(0)
              << "\" (r-ts(x) is now " << younger->txn_number() << ")\n";
    Status s = older->Write(0, "too-late");
    std::cout << "  older tries to write x: " << s
              << "  <- r-ts(x) > tn(T), Figure 3's rejection rule\n";
    younger->Write(1, "y-from-to");
    younger->Commit();
    std::cout << "  younger commits; visibility waited for nobody older.\n";
    ShowCounters(to_db.version_control());
  }

  // -------------------------------------------------------------------
  Banner("Section 6: the currency fix");
  {
    auto writer = db.Begin(TxnClass::kReadWrite);
    writer->Write(2, "must-be-seen");
    writer->Commit();
    auto fresh = db.BeginReadOnlyAtLeast(writer->txn_number());
    std::cout << "  BeginReadOnlyAtLeast(tn=" << writer->txn_number()
              << ") -> sn=" << fresh->start_number() << ", read(z) -> \""
              << *fresh->Read(2) << "\"\n";
    fresh->Commit();
  }

  std::cout << "\nDone. The same Database API ran Figures 2-4; only the\n"
               "protocol enum changed — that is the paper's point.\n";
  return 0;
}
