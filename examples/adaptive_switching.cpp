// Adaptive concurrency control: the modularity payoff.
//
// Section 1 of the paper claims the version-control / concurrency-control
// split enables "experimentation ... in areas such as ... adaptive
// concurrency control schemes without introducing major modifications".
// This example drives a workload whose contention changes in phases and
// watches the vc-adaptive plug-in flip between optimistic and locking
// execution — while a read-only monitor keeps running, oblivious, with
// zero blocks and zero aborts throughout.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "cc/adaptive.h"
#include "common/random.h"
#include "txn/database.h"

namespace {

using namespace mvcc;

const char* ModeName(Adaptive::Mode mode) {
  return mode == Adaptive::Mode::kOptimistic ? "optimistic" : "locking";
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.protocol = ProtocolKind::kVcAdaptive;
  options.preload_keys = 4096;
  options.initial_value = "0";
  Database db(options);
  auto* adaptive = dynamic_cast<Adaptive*>(&db.protocol());

  // Phases alternate between a huge key range (no conflicts — OCC
  // heaven) and a tiny hot set (conflict storm — OCC collapses, 2PL
  // wins).
  struct Phase {
    const char* label;
    uint64_t key_range;
    int duration_ms;
  };
  const std::vector<Phase> phases = {
      {"cold: uniform over 4096 keys", 4096, 300},
      {"hot: 8-key conflict storm", 8, 300},
      {"cold again", 4096, 300},
  };

  std::atomic<uint64_t> key_range{4096};
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 6; ++t) {
    writers.emplace_back([&, t] {
      Random rng(10 + t);
      while (!stop.load()) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        const uint64_t range = key_range.load();
        bool dead = false;
        for (int op = 0; op < 4 && !dead; ++op) {
          const ObjectKey key = rng.Uniform(range);
          if (rng.Bernoulli(0.5)) {
            dead = !txn->Write(key, std::to_string(t)).ok();
          } else {
            auto r = txn->Read(key);
            dead = !r.ok() && r.status().IsAborted();
          }
        }
        if (!dead) txn->Commit();
      }
    });
  }

  // The oblivious read-only monitor.
  std::atomic<uint64_t> monitor_reads{0};
  std::thread monitor([&] {
    Random rng(99);
    while (!stop.load()) {
      auto reader = db.Begin(TxnClass::kReadOnly);
      for (int i = 0; i < 16; ++i) {
        if (reader->Read(rng.Uniform(4096)).ok()) {
          monitor_reads.fetch_add(1);
        }
      }
      reader->Commit();
    }
  });

  for (const Phase& phase : phases) {
    key_range.store(phase.key_range);
    const auto before = db.counters().Snap();
    const uint64_t switches_before = adaptive->switches();
    std::this_thread::sleep_for(std::chrono::milliseconds(phase.duration_ms));
    const auto after = db.counters().Snap();
    std::cout << phase.label << ":\n"
              << "  mode now: " << ModeName(adaptive->mode())
              << "  (switches this phase: "
              << adaptive->switches() - switches_before << ")\n"
              << "  rw commits: " << after.rw_commits - before.rw_commits
              << "  rw aborts: " << after.rw_aborts - before.rw_aborts
              << "\n";
  }

  stop.store(true);
  for (auto& w : writers) w.join();
  monitor.join();

  std::cout << "\nread-only monitor: " << monitor_reads.load()
            << " reads, blocks=" << db.counters().ro_blocks.load()
            << " aborts=" << db.counters().ro_aborts.load()
            << " (the monitor never noticed the CC engine changing)\n";
  return 0;
}
