// Analytics over a hot store: long-running read-only scans, garbage
// collection, and the Section 6 currency fix.
//
// An order-ingest thread appends revenue updates at full speed while an
// analytics thread runs long read-only scans. The scan's snapshot is
// immovable for its whole lifetime; the garbage collector reclaims
// versions behind min(vtnc, oldest scan); and a "fresh" dashboard query
// uses BeginReadOnlyAtLeast to see a specific ingest batch.

#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "txn/database.h"

namespace {

constexpr uint64_t kProducts = 256;

int64_t ToInt(const mvcc::Value& v) { return std::stoll(v); }

}  // namespace

int main() {
  using namespace mvcc;

  DatabaseOptions options;
  options.protocol = ProtocolKind::kVc2pl;
  options.preload_keys = kProducts;
  options.initial_value = "0";
  options.enable_gc = true;
  Database db(options);
  db.StartGc(std::chrono::milliseconds(5));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0};

  // Ingest: bump a product's running revenue.
  std::thread ingest([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      const ObjectKey product = (i * 31) % kProducts;
      auto txn = db.Begin(TxnClass::kReadWrite);
      auto current = txn->Read(product);
      if (current.ok() &&
          txn->Write(product, std::to_string(ToInt(*current) + 5)).ok() &&
          txn->Commit().ok()) {
        ingested.fetch_add(1);
      }
      ++i;
    }
  });

  // Analytics: three long scans, each a single consistent snapshot.
  for (int scan = 0; scan < 3; ++scan) {
    auto snapshot = db.Begin(TxnClass::kReadOnly);
    int64_t first_pass = 0;
    for (ObjectKey p = 0; p < kProducts; ++p) {
      first_pass += ToInt(*snapshot->Read(p));
      if (p % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    // Re-scan inside the same transaction: totals must match exactly,
    // no matter how much the ingest thread has committed meanwhile.
    int64_t second_pass = 0;
    for (ObjectKey p = 0; p < kProducts; ++p) {
      second_pass += ToInt(*snapshot->Read(p));
    }
    snapshot->Commit();
    std::cout << "scan " << scan << ": snapshot sn="
              << snapshot->start_number() << " total=" << first_pass
              << " repeat=" << second_pass
              << (first_pass == second_pass ? "  [stable]" : "  [TORN!]")
              << "\n";
  }

  // Dashboard query that must include everything ingested so far: use
  // the currency fix against the newest completed transaction.
  auto marker = db.Begin(TxnClass::kReadWrite);
  marker->Write(kProducts, "ingest-batch-marker");  // fresh tn
  marker->Commit();
  auto fresh = db.BeginReadOnlyAtLeast(marker->txn_number());
  std::cout << "fresh dashboard snapshot sn=" << fresh->start_number()
            << " >= marker tn=" << marker->txn_number() << "\n";
  fresh->Commit();

  stop.store(true);
  ingest.join();
  db.StopGc();

  std::cout << "ingested " << ingested.load() << " updates; GC reclaimed "
            << db.gc()->total_reclaimed() << " versions in "
            << db.gc()->passes() << " passes; versions retained now: "
            << db.store().TotalVersions() << "\n";
  std::cout << "auditor interference: blocks="
            << db.counters().ro_blocks.load()
            << " aborts=" << db.counters().ro_aborts.load()
            << " (both must be 0)\n";
  return 0;
}
