// Crash recovery end to end, with on-disk images.
//
// Phase 1 runs a workload with the write-ahead log enabled, takes a
// checkpoint mid-stream, saves both images to disk, and records a
// reference scan of the committed state. Phase 2 simulates the crash by
// destroying the database, loads the images back, replays, and verifies
// the recovered state byte-for-byte — then keeps writing, showing the
// serial order resumes where it stopped.

#include <cstdio>
#include <iostream>

#include "recovery/file_io.h"
#include "recovery/recovery.h"
#include "txn/database.h"
#include "workload/runner.h"

int main() {
  using namespace mvcc;

  const std::string wal_path = "/tmp/mvcc_example_wal.bin";
  const std::string ck_path = "/tmp/mvcc_example_checkpoint.bin";

  DatabaseOptions options;
  options.protocol = ProtocolKind::kVc2pl;
  options.preload_keys = 256;
  options.initial_value = "0";
  options.enable_wal = true;

  std::vector<std::pair<ObjectKey, Value>> reference;
  TxnNumber last_tn = 0;
  {
    Database db(options);
    WorkloadSpec spec;
    spec.num_keys = 256;
    spec.read_only_fraction = 0.0;
    spec.write_fraction = 1.0;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = 2000;
    RunWorkload(&db, spec, run);

    // Mid-stream checkpoint + log truncation.
    Checkpoint ck = TakeCheckpoint(&db);
    db.wal()->Truncate(ck.vtnc);
    std::cout << "checkpoint at vtnc=" << ck.vtnc << " ("
              << ck.entries.size() << " objects); log truncated to "
              << db.wal()->size() << " batches\n";

    // More work after the checkpoint.
    RunWorkload(&db, spec, run);
    std::cout << "post-checkpoint log: " << db.wal()->size()
              << " batches\n";

    // Persist both images.
    Status s = WriteFileAtomic(ck_path, ck.Serialize());
    if (!s.ok()) {
      std::cerr << "save checkpoint: " << s << "\n";
      return 1;
    }
    s = WriteFileAtomic(wal_path, db.wal()->Serialize());
    if (!s.ok()) {
      std::cerr << "save WAL: " << s << "\n";
      return 1;
    }

    auto reader = db.Begin(TxnClass::kReadOnly);
    reference = *reader->Scan(0, 255);
    reader->Commit();
    last_tn = db.version_control().vtnc();
    std::cout << "pre-crash state captured: vtnc=" << last_tn << "\n";
  }  // <- the "crash": everything in memory is gone

  auto ck_image = ReadFile(ck_path);
  auto wal_image = ReadFile(wal_path);
  if (!ck_image.ok() || !wal_image.ok()) {
    std::cerr << "cannot read images back\n";
    return 1;
  }
  auto checkpoint = Checkpoint::Deserialize(*ck_image);
  auto log = WriteAheadLog::Deserialize(*wal_image);
  if (!checkpoint.ok() || !log.ok()) {
    std::cerr << "corrupt images\n";
    return 1;
  }

  auto db = RecoverDatabase(options, &*checkpoint, **log);
  std::cout << "recovered: vtnc=" << db->version_control().vtnc()
            << " versions=" << db->store().TotalVersions() << "\n";

  auto reader = db->Begin(TxnClass::kReadOnly);
  auto recovered = *reader->Scan(0, 255);
  reader->Commit();
  const bool match = recovered == reference &&
                     db->version_control().vtnc() == last_tn;
  std::cout << "state matches pre-crash capture: "
            << (match ? "yes" : "NO") << "\n";

  // Life goes on: the serial order resumes above the recovered point.
  auto txn = db->Begin(TxnClass::kReadWrite);
  txn->Write(0, "after-recovery");
  txn->Commit();
  std::cout << "first post-recovery transaction got tn="
            << txn->txn_number() << " (> " << last_tn << ")\n";

  std::remove(wal_path.c_str());
  std::remove(ck_path.c_str());
  return match ? 0 : 1;
}
