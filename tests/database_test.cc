#include "txn/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind = ProtocolKind::kVc2pl) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 8;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(DatabaseTest, ProtocolKindNames) {
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kVc2pl), "vc-2pl");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kVcTo), "vc-to");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kVcOcc), "vc-occ");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kMvto), "mvto");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kMv2plCtl), "mv2pl-ctl");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kSv2pl), "sv-2pl");
  EXPECT_EQ(ProtocolKindName(ProtocolKind::kWeihlTi), "weihl-ti");
}

TEST(DatabaseTest, GetPutConveniences) {
  Database db(Opts());
  EXPECT_EQ(*db.Get(0), "init");
  ASSERT_TRUE(db.Put(0, "new").ok());
  EXPECT_EQ(*db.Get(0), "new");
  EXPECT_TRUE(db.Get(12345).status().IsNotFound());
}

TEST(DatabaseTest, TransactionIdsAreUnique) {
  Database db(Opts());
  auto a = db.Begin(TxnClass::kReadWrite);
  auto b = db.Begin(TxnClass::kReadOnly);
  EXPECT_NE(a->id(), b->id());
  a->Abort();
}

TEST(DatabaseTest, WriteOnReadOnlyRejectedWithoutAbort) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_TRUE(reader->Write(1, "x").IsInvalidArgument());
  EXPECT_TRUE(reader->active());
  EXPECT_EQ(*reader->Read(1), "init");  // still usable
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(DatabaseTest, OperationsAfterFinishRejected) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(1, "x").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(txn->Read(1).status().IsInvalidArgument());
  EXPECT_TRUE(txn->Write(1, "y").IsInvalidArgument());
  EXPECT_TRUE(txn->Commit().IsInvalidArgument());
}

TEST(DatabaseTest, DestructorAbortsActiveTransaction) {
  Database db(Opts());
  {
    auto txn = db.Begin(TxnClass::kReadWrite);
    ASSERT_TRUE(txn->Write(1, "doomed").ok());
    // dropped without commit
  }
  EXPECT_EQ(*db.Get(1), "init");
  EXPECT_EQ(db.counters().rw_aborts.load(), 1u);
}

TEST(DatabaseTest, CountersTrackCommitsByClass) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(1, "a").ok());
  EXPECT_EQ(*db.Get(1), "a");
  auto snap = db.counters().Snap();
  EXPECT_EQ(snap.rw_commits, 1u);
  EXPECT_EQ(snap.ro_commits, 1u);
}

TEST(DatabaseTest, HistoryRecordsCommittedOnly) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(1, "a").ok());
  auto doomed = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(doomed->Write(2, "b").ok());
  doomed->Abort();
  ASSERT_NE(db.history(), nullptr);
  EXPECT_EQ(db.history()->size(), 1u);
}

TEST(DatabaseTest, CurrencyFixSeesNamedTransaction) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(1, "fresh").ok());
  ASSERT_TRUE(writer->Commit().ok());
  const TxnNumber tn = writer->txn_number();
  // Section 6: a reader that must observe `writer` waits for vtnc >= tn.
  auto reader = db.BeginReadOnlyAtLeast(tn);
  EXPECT_GE(reader->start_number(), tn);
  EXPECT_EQ(*reader->Read(1), "fresh");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(DatabaseTest, CurrencyFixBlocksUntilVisible) {
  Database db(Opts(ProtocolKind::kVcTo));
  auto writer = db.Begin(TxnClass::kReadWrite);  // tn = 1, registered now
  ASSERT_TRUE(writer->Write(1, "fresh").ok());
  std::atomic<bool> observed{false};
  Value value;
  std::thread reader_thread([&] {
    auto reader = db.BeginReadOnlyAtLeast(1);
    value = *reader->Read(1);
    observed.store(true);
    EXPECT_TRUE(reader->Commit().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(observed.load());
  ASSERT_TRUE(writer->Commit().ok());
  reader_thread.join();
  EXPECT_EQ(value, "fresh");
}

TEST(DatabaseTest, PseudoReadWriteReaderSeesLatest) {
  // Section 6's other remedy: currency-critical readers run as
  // read-write transactions and always see the latest state.
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(1, "latest").ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto pseudo = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*pseudo->Read(1), "latest");
  pseudo->Abort();  // never wrote; abort is free
}

TEST(DatabaseTest, VisibilityLagCountsRegisteredIncomplete) {
  Database db(Opts(ProtocolKind::kVcTo));
  EXPECT_EQ(db.VisibilityLag(), 0u);
  auto a = db.Begin(TxnClass::kReadWrite);  // TO registers at begin
  auto b = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(db.VisibilityLag(), 2u);
  a->Abort();
  b->Abort();
  EXPECT_EQ(db.VisibilityLag(), 0u);
}

TEST(DatabaseTest, ReadOnlyAbortCounted) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  reader->Abort();
  EXPECT_EQ(db.counters().ro_aborts.load(), 1u);
  EXPECT_EQ(db.history()->size(), 0u);
}

}  // namespace
}  // namespace mvcc
