// Deterministic schedule exploration over the real synchronization
// stack: every execution is a pure function of a 64-bit seed, validated
// by the MVSG serializability oracle, the Section 5.1 lemmas, the vtnc
// invariants and read-only wait-freedom. Any failure printed here can be
// replayed exactly by re-running the same seed.
//
// Sweep sizes scale with the MVCC_SIM_SEEDS environment variable
// (default keeps CI fast; set MVCC_SIM_SEEDS=1000 for a deep local run).

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/explorer.h"
#include "storage/version_chain.h"

namespace mvcc {
namespace sim {
namespace {

uint64_t SweepSeeds(uint64_t default_count) {
  const char* env = std::getenv("MVCC_SIM_SEEDS");
  if (env == nullptr || *env == '\0') return default_count;
  const uint64_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? default_count : n;
}

constexpr ProtocolKind kVcProtocols[] = {
    ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
    ProtocolKind::kVcAdaptive};

// ---- determinism ----

TEST(SimExplore, SameSeedSameExecution) {
  for (ProtocolKind protocol : kVcProtocols) {
    ExploreOptions opt;
    opt.protocol = protocol;
    opt.seed = 42;
    const SimReport a = ExploreOnce(opt);
    const SimReport b = ExploreOnce(opt);
    EXPECT_EQ(a.schedule_hash, b.schedule_hash)
        << ProtocolKindName(protocol);
    EXPECT_EQ(a.steps, b.steps) << ProtocolKindName(protocol);
    EXPECT_EQ(a.commits, b.commits) << ProtocolKindName(protocol);
    EXPECT_EQ(a.aborts, b.aborts) << ProtocolKindName(protocol);
    EXPECT_EQ(a.violations, b.violations) << ProtocolKindName(protocol);
    EXPECT_TRUE(a.ok()) << a.Summary();
  }
}

TEST(SimExplore, DifferentSeedsExploreDifferentSchedules) {
  ExploreOptions opt;
  opt.protocol = ProtocolKind::kVc2pl;
  uint64_t distinct = 0;
  uint64_t previous = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    opt.seed = seed;
    const SimReport report = ExploreOnce(opt);
    if (report.schedule_hash != previous) ++distinct;
    previous = report.schedule_hash;
  }
  EXPECT_GE(distinct, 6u) << "seeds barely affect the interleaving";
}

TEST(SimExplore, DistributedSameSeedSameExecution) {
  DistExploreOptions opt;
  opt.seed = 7;
  opt.faults.message_drop_probability = 0.1;
  opt.faults.message_delay_max_steps = 3;
  const SimReport a = ExploreDistributedOnce(opt);
  const SimReport b = ExploreDistributedOnce(opt);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_TRUE(a.ok()) << a.Summary();
}

// ---- seed sweeps per protocol ----

class SimSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SimSweep, RandomSchedulesSatisfyAllInvariants) {
  const uint64_t seeds = SweepSeeds(40);
  uint64_t total_commits = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    ExploreOptions opt;
    opt.protocol = GetParam();
    opt.seed = seed;
    // Cycle deadlock handling for the locking protocols so the sweep
    // covers wait-die, detection, and timeout victims.
    switch (seed % 3) {
      case 0: opt.deadlock_policy = DeadlockPolicy::kWaitDie; break;
      case 1: opt.deadlock_policy = DeadlockPolicy::kDetect; break;
      default: opt.deadlock_policy = DeadlockPolicy::kTimeout; break;
    }
    opt.currency_reader = seed % 2 == 0;
    // Odd seeds run with the WAL on so the group-commit pipeline
    // (leader election, follower waits) is part of the explored space.
    opt.enable_wal = seed % 2 == 1;
    const SimReport report = ExploreOnce(opt);
    ASSERT_TRUE(report.ok())
        << ProtocolKindName(GetParam()) << " " << report.Summary();
    EXPECT_FALSE(report.deadlock)
        << ProtocolKindName(GetParam()) << " " << report.Summary();
    total_commits += report.commits;
  }
  // The sweep must actually exercise commits, not just abort everything.
  EXPECT_GT(total_commits, seeds);
}

INSTANTIATE_TEST_SUITE_P(VcProtocols, SimSweep,
                         ::testing::ValuesIn(kVcProtocols),
                         [](const ::testing::TestParamInfo<ProtocolKind>& i) {
                           std::string name(ProtocolKindName(i.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- storage reclamation under schedule exploration ----

// Interleaves the write side of the arena-backed version chains —
// in-order installs, out-of-order republishes (TO writers commit out of
// tn order), GC prunes, slab retirement, and epoch advances — with
// latch-free snapshot reads, at every SimHook point. The gc task makes
// reclamation an explicit participant in the explored schedule space;
// the chain/arena/EBR observe points feed the schedule hash, so
// same-seed determinism (asserted here) now covers reclamation
// interleavings too, and any invariant violation replays from its seed.
TEST(SimExplore, StorageReclamationInterleavesWithInstallsAndReads) {
  const uint64_t seeds = SweepSeeds(30);
  const ChainWriteStats before = GetChainWriteStats();
  uint64_t total_commits = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    ExploreOptions opt;
    // Alternate the in-order protocol (2PL: append fast path) with the
    // out-of-order one (TO: middle-insert republish path).
    opt.protocol =
        seed % 2 == 0 ? ProtocolKind::kVc2pl : ProtocolKind::kVcTo;
    opt.seed = seed;
    opt.gc_task = true;
    opt.writer_tasks = 3;
    opt.reader_tasks = 2;
    // Write-heavy and long enough that some chain outgrows its array's
    // spare capacity within a run — the growth republish path — on top
    // of the out-of-order republishes the TO seeds produce.
    opt.txns_per_task = 8;
    opt.write_fraction = 0.8;
    const SimReport report = ExploreOnce(opt);
    ASSERT_TRUE(report.ok()) << report.Summary();
    EXPECT_FALSE(report.deadlock) << report.Summary();
    total_commits += report.commits;

    // Replay: identical interleaving, including every reclamation event
    // mixed into the hash.
    const SimReport again = ExploreOnce(opt);
    ASSERT_EQ(again.schedule_hash, report.schedule_hash) << report.Summary();
    ASSERT_EQ(again.violations.size(), report.violations.size());
  }
  EXPECT_GT(total_commits, seeds);

  // The sweep must have driven both chain write paths, not just the
  // append fast path (the TO seeds guarantee out-of-order installs and
  // the gc task guarantees prunes).
  const ChainWriteStats after = GetChainWriteStats();
  EXPECT_GT(after.installs_in_place, before.installs_in_place);
  EXPECT_GT(after.republishes, before.republishes);
  EXPECT_GT(after.prunes_in_place, before.prunes_in_place);
}

// ---- injected violation: catch + replay from the printed seed ----

// Reverting Discard to Figure 1's literal pseudocode (no head drain) is
// a real liveness bug: a completed suffix stuck behind a discarded head
// stalls vtnc and strands the queue. The oracle must (a) catch it on
// some seed, (b) replay the identical failing execution from that seed,
// and (c) pass the same seed once the fix is back in place.
TEST(SimExplore, InjectedFigure1DiscardBugCaughtAndReplaysFromSeed) {
  ExploreOptions opt;
  opt.protocol = ProtocolKind::kVcTo;  // registers at begin: queue stays full
  opt.literal_figure1_discard = true;
  opt.user_abort_probability = 0.35;
  opt.reader_tasks = 1;

  uint64_t failing_seed = 0;
  SimReport first;
  for (uint64_t seed = 1; seed <= 300 && failing_seed == 0; ++seed) {
    opt.seed = seed;
    const SimReport report = ExploreOnce(opt);
    if (!report.ok()) {
      failing_seed = seed;
      first = report;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << "no schedule exposed the literal-Figure-1 discard bug";
  std::cerr << "[ sim ] injected bug caught, replaying seed "
            << failing_seed << ": " << first.Summary() << "\n";

  // Replay twice: bit-identical execution and identical verdict.
  for (int replay = 0; replay < 2; ++replay) {
    opt.seed = failing_seed;
    const SimReport again = ExploreOnce(opt);
    EXPECT_EQ(again.schedule_hash, first.schedule_hash) << again.Summary();
    EXPECT_EQ(again.steps, first.steps);
    EXPECT_EQ(again.violations, first.violations);
  }

  // With the production Discard (head drain restored), the very same
  // seed — same workload, same PRNG streams — is clean.
  opt.literal_figure1_discard = false;
  opt.seed = failing_seed;
  const SimReport fixed = ExploreOnce(opt);
  EXPECT_TRUE(fixed.ok()) << fixed.Summary();
}

// ---- fault injection sweeps ----

TEST(SimExplore, DistributedSweepCleanNetwork) {
  const uint64_t seeds = SweepSeeds(25);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    DistExploreOptions opt;
    opt.seed = seed;
    const SimReport report = ExploreDistributedOnce(opt);
    ASSERT_TRUE(report.ok()) << report.Summary();
    EXPECT_FALSE(report.deadlock) << report.Summary();
  }
}

TEST(SimExplore, DistributedSweepWithMessageDropsAndDelays) {
  const uint64_t seeds = SweepSeeds(25);
  uint64_t total_commits = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    DistExploreOptions opt;
    opt.seed = seed;
    opt.faults.message_drop_probability = 0.15;
    opt.faults.message_delay_max_steps = 4;
    const SimReport report = ExploreDistributedOnce(opt);
    // Lost messages may abort transactions, but never break atomicity,
    // serializability, or site-local visibility invariants.
    ASSERT_TRUE(report.ok()) << report.Summary();
    EXPECT_FALSE(report.deadlock) << report.Summary();
    total_commits += report.commits;
  }
  EXPECT_GT(total_commits, 0u) << "drops aborted every transaction";
}

TEST(SimExplore, WalCrashRecoveryFromEveryPrefix) {
  const uint64_t seeds = SweepSeeds(20);
  uint64_t crashes = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    ExploreOptions opt;
    opt.protocol = kVcProtocols[seed % 4];
    opt.seed = seed;
    // Crash at a different record boundary each seed, including the
    // very first append.
    opt.faults.crash_at_wal_append = static_cast<int64_t>(seed % 7);
    const SimReport report = ExploreOnce(opt);
    ASSERT_TRUE(report.ok()) << report.Summary();
    crashes += report.wal_crashed ? 1 : 0;
  }
  // Nearly every run commits enough to reach its crash point.
  EXPECT_GT(crashes, seeds / 2);
}

}  // namespace
}  // namespace sim
}  // namespace mvcc
