#include "baselines/weihl_ti.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kWeihlTi;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(WeihlTiTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
}

TEST(WeihlTiTest, ReadOnlyReadRaisesFloorMetadata) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "x").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(3), "x");
  // The reader synchronized on the object's timestamp: a metadata write.
  EXPECT_GE(db.counters().ro_metadata_writes.load(), 1u);
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(WeihlTiTest, ReaderWaitsOutUndecidedWriter) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(5, "committed").ok());  // clock = 1
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "pending").ok());  // undecided writer
  auto reader = db.Begin(TxnClass::kReadOnly);    // ts_R = 1

  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());  // negotiation in progress
  EXPECT_GE(db.counters().negotiation_rounds.load(), 1u);
  EXPECT_GE(db.counters().ro_blocks.load(), 1u);
  ASSERT_TRUE(writer->Commit().ok());
  t.join();
  // The writer decided ABOVE the reader's floor: the reader's snapshot
  // excludes it and stays consistent.
  EXPECT_EQ(observed, "committed");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(WeihlTiTest, FloorForcesLaterWriterAboveReader) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(5, "v1").ok());           // ts = 1
  auto reader = db.Begin(TxnClass::kReadOnly); // ts_R = 1
  EXPECT_EQ(*reader->Read(5), "v1");           // floor(5) = 1
  // A writer that commits now must get ts > 1.
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "v2").ok());
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_GT(writer->txn_number(), reader->start_number());
  // Re-reading yields the same snapshot value.
  EXPECT_EQ(*reader->Read(5), "v1");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(WeihlTiTest, ReadOnlySnapshotIgnoresLaterCommits) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "first").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  ASSERT_TRUE(db.Put(3, "second").ok());
  EXPECT_EQ(*reader->Read(3), "first");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(WeihlTiTest, AbortedWriterUnblocksReader) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(5, "base").ok());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "doomed").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writer->Abort();
  t.join();
  EXPECT_EQ(observed, "base");
  EXPECT_TRUE(reader->Commit().ok());
}

}  // namespace
}  // namespace mvcc
