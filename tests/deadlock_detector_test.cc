#include "cc/deadlock_detector.h"

#include <gtest/gtest.h>

namespace mvcc {
namespace {

TEST(DeadlockDetectorTest, AcyclicEdgesAccepted) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  EXPECT_TRUE(det.AddEdges(2, {3}));
  EXPECT_TRUE(det.AddEdges(3, {4}));
  EXPECT_EQ(det.NumWaiters(), 3u);
}

TEST(DeadlockDetectorTest, DirectCycleRejected) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  EXPECT_FALSE(det.AddEdges(2, {1}));
}

TEST(DeadlockDetectorTest, TransitiveCycleRejected) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  EXPECT_TRUE(det.AddEdges(2, {3}));
  EXPECT_FALSE(det.AddEdges(3, {1}));
}

TEST(DeadlockDetectorTest, RejectedEdgesAreRolledBack) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  EXPECT_FALSE(det.AddEdges(2, {5, 1}));
  // The rejected call must not have installed 2 -> 5 either.
  EXPECT_TRUE(det.AddEdges(5, {2}));  // would cycle if 2 -> 5 existed
}

TEST(DeadlockDetectorTest, ClearWaitsRemovesOutgoing) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  det.ClearWaits(1);
  EXPECT_TRUE(det.AddEdges(2, {1}));  // no longer a cycle
}

TEST(DeadlockDetectorTest, RemoveTxnRemovesBothDirections) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2}));
  EXPECT_TRUE(det.AddEdges(3, {1}));
  det.RemoveTxn(1);
  EXPECT_TRUE(det.AddEdges(2, {3}));  // 2->3, 3->1(gone): acyclic
}

TEST(DeadlockDetectorTest, SelfEdgesIgnored) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {1, 2}));
  EXPECT_TRUE(det.AddEdges(2, {3}));
}

TEST(DeadlockDetectorTest, MultiHolderEdges) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddEdges(1, {2, 3, 4}));
  EXPECT_FALSE(det.AddEdges(4, {1}));
  EXPECT_TRUE(det.AddEdges(4, {5}));
}

}  // namespace
}  // namespace mvcc
