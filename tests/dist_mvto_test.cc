#include "dist/dist_mvto.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "history/serializability.h"

namespace mvcc {
namespace {

DistMvtoDb::Options Opts(int sites = 3) {
  DistMvtoDb::Options opts;
  opts.num_sites = sites;
  opts.preload_keys = 30;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(DistMvtoTest, BasicReadWriteCommit) {
  DistMvtoDb db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  EXPECT_EQ(*txn->Read(1), "one");
  ASSERT_TRUE(txn->Commit().ok());
  auto reader = db.Begin(TxnClass::kReadOnly, 1);
  EXPECT_EQ(*reader->Read(1), "one");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistMvtoTest, ReadOnlyCommitRequiresTwoPhaseCommit) {
  // THE claim from Section 2: distributed read-only transactions in
  // Reed's scheme need 2PC for their r-ts updates.
  DistMvtoDb db(Opts(3));
  db.network().Reset();
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_TRUE(reader->Read(1).ok());  // site 1
  EXPECT_TRUE(reader->Read(2).ok());  // site 2
  ASSERT_TRUE(reader->Commit().ok());
  // Metadata writes happened at two remote sites...
  EXPECT_EQ(db.counters().ro_metadata_writes.load(), 2u);
  // ...so the read-only commit paid prepare+commit to both.
  EXPECT_EQ(db.network().Count(MessageType::kPrepare), 2u);
  EXPECT_EQ(db.network().Count(MessageType::kCommit), 2u);
}

TEST(DistMvtoTest, ReadOnlyReaderKillsRemoteWriter) {
  DistMvtoDb db(Opts(2));
  // Reader (younger timestamp) reads key 0's initial version at site 0.
  auto writer = db.Begin(TxnClass::kReadWrite, 1);  // older ts
  auto reader = db.Begin(TxnClass::kReadOnly, 1);   // younger ts
  EXPECT_EQ(*reader->Read(0), "init");
  // The older writer's write would invalidate that read: rejected.
  EXPECT_TRUE(writer->Write(0, "late").IsAborted());
  EXPECT_EQ(db.counters().rw_aborts_caused_by_ro.load(), 1u);
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistMvtoTest, ReaderBlocksOnRemotePendingWrite) {
  DistMvtoDb db(Opts(2));
  auto writer = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(writer->Write(0, "pending").ok());
  auto reader = db.Begin(TxnClass::kReadOnly, 1);
  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(0);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  EXPECT_GE(db.counters().ro_blocks.load(), 1u);
  ASSERT_TRUE(writer->Commit().ok());
  t.join();
  EXPECT_EQ(observed, "pending");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistMvtoTest, AbortErasesPendingAcrossSites) {
  DistMvtoDb db(Opts(3));
  auto writer = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(writer->Write(1, "x").ok());
  ASSERT_TRUE(writer->Write(2, "y").ok());
  writer->Abort();
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_EQ(*reader->Read(1), "init");
  EXPECT_EQ(*reader->Read(2), "init");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistMvtoTest, ConcurrentWorkloadIsGloballySerializable) {
  DistMvtoDb db(Opts(3));
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      Random rng(2100 + t);
      for (int i = 0; i < 120; ++i) {
        const int home = static_cast<int>(rng.Uniform(3));
        if (rng.Bernoulli(0.4)) {
          auto reader = db.Begin(TxnClass::kReadOnly, home);
          for (int op = 0; op < 4; ++op) {
            (void)reader->Read(rng.Uniform(30));
          }
          reader->Commit();
        } else {
          auto writer = db.Begin(TxnClass::kReadWrite, home);
          bool dead = false;
          for (int op = 0; op < 4 && !dead; ++op) {
            const ObjectKey key = rng.Uniform(30);
            if (rng.Bernoulli(0.5)) {
              dead = !writer->Write(key, "t" + std::to_string(t)).ok();
            } else {
              auto r = writer->Read(key);
              dead = !r.ok() && r.status().IsAborted();
            }
          }
          if (!dead) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << "cycle of " << verdict.cycle.size();
  EXPECT_GT(db.counters().ro_commits.load(), 0u);
}

TEST(DistMvtoTest, TimestampsGloballyUniqueAndSiteTagged) {
  DistMvtoDb db(Opts(4));
  std::vector<TxnNumber> seen;
  for (int i = 0; i < 64; ++i) {
    auto txn = db.Begin(TxnClass::kReadWrite, i % 4);
    seen.push_back(txn->timestamp());
    txn->Abort();
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace mvcc
