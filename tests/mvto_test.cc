#include "baselines/mvto.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kMvto;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(MvtoTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  EXPECT_EQ(*txn->Read(1), "one");
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
}

TEST(MvtoTest, EveryTransactionDrawsUniqueTimestamp) {
  Database db(Opts());
  auto a = db.Begin(TxnClass::kReadWrite);
  auto ro = db.Begin(TxnClass::kReadOnly);  // read-only also ticketed
  auto b = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(a->txn_number(), 1u);
  EXPECT_EQ(ro->txn_number(), 2u);
  EXPECT_EQ(b->txn_number(), 3u);
  a->Abort();
  ro->Abort();
  b->Abort();
}

TEST(MvtoTest, ReadOnlyReadUpdatesMetadata) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(3), "init");
  // Reed's protocol: the read wrote an r-ts — concurrency control
  // overhead charged to a read-only transaction.
  EXPECT_EQ(db.counters().ro_metadata_writes.load(), 1u);
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(MvtoTest, ReadOnlyTransactionCausesWriterAbort) {
  // The paper's headline complaint about [14]: a read-only transaction
  // can cause a read-write transaction to abort.
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);   // ts = 1
  auto reader = db.Begin(TxnClass::kReadOnly);    // ts = 2
  EXPECT_EQ(*reader->Read(5), "init");            // r-ts(init version) = 2
  Status s = writer->Write(5, "late");            // would invalidate read
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(db.counters().rw_aborts_caused_by_ro.load(), 1u);
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(MvtoTest, ReadOnlyReadBlocksOnPendingWrite) {
  // Second complaint: reads (including read-only ones) block on pending
  // writes of older transactions.
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);   // ts = 1
  ASSERT_TRUE(writer->Write(5, "pending").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);    // ts = 2

  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  EXPECT_GE(db.counters().ro_blocks.load(), 1u);
  ASSERT_TRUE(writer->Commit().ok());
  t.join();
  EXPECT_EQ(observed, "pending");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(MvtoTest, WriteIntoThePastAllowedWithoutInterveningRead) {
  // MVTO's advantage over single-version TO: an old writer succeeds if
  // nobody younger read the preceding version.
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);   // ts = 1
  auto t_young = db.Begin(TxnClass::kReadWrite); // ts = 2
  ASSERT_TRUE(t_young->Write(5, "young").ok());
  ASSERT_TRUE(t_young->Commit().ok());
  // Old writer creates version 1 behind version 2: allowed.
  EXPECT_TRUE(t_old->Write(5, "old").ok());
  ASSERT_TRUE(t_old->Commit().ok());
  // Latest value is still the young one.
  EXPECT_EQ(*db.Get(5), "young");
  VersionChain* chain = db.store().Find(5);
  EXPECT_EQ(chain->Read(1)->value, "old");
}

TEST(MvtoTest, AbortedPendingWriteUnblocksReaders) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "doomed").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writer->Abort();
  t.join();
  EXPECT_EQ(observed, "init");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(MvtoTest, CommitsVisibleImmediately) {
  // Unlike the VC framework there is no delayed visibility in MVTO.
  Database db(Opts());
  ASSERT_TRUE(db.Put(1, "x").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(1), "x");
  EXPECT_TRUE(reader->Commit().ok());
}

}  // namespace
}  // namespace mvcc
