#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace mvcc {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Contains(7));
  EXPECT_TRUE(tree.Range(0, 100).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, SingleKey) {
  BPlusTree tree;
  tree.Insert(42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains(42));
  EXPECT_FALSE(tree.Contains(41));
  EXPECT_EQ(tree.Range(0, 100), (std::vector<ObjectKey>{42}));
  EXPECT_EQ(tree.Range(42, 42), (std::vector<ObjectKey>{42}));
  EXPECT_TRUE(tree.Range(43, 100).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, DuplicateInsertIgnored) {
  BPlusTree tree;
  tree.Insert(5);
  tree.Insert(5);
  tree.Insert(5);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, SequentialInsertSplitsAndStaysBalanced) {
  BPlusTree tree;
  for (ObjectKey k = 0; k < 10000; ++k) {
    tree.Insert(k);
  }
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (ObjectKey k = 0; k < 10000; ++k) ASSERT_TRUE(tree.Contains(k));
  EXPECT_FALSE(tree.Contains(10000));
}

TEST(BPlusTreeTest, ReverseInsert) {
  BPlusTree tree;
  for (ObjectKey k = 5000; k-- > 0;) tree.Insert(k);
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_TRUE(tree.CheckInvariants());
  auto range = tree.Range(100, 199);
  ASSERT_EQ(range.size(), 100u);
  EXPECT_EQ(range.front(), 100u);
  EXPECT_EQ(range.back(), 199u);
}

TEST(BPlusTreeTest, RangeBoundariesInclusive) {
  BPlusTree tree;
  for (ObjectKey k = 0; k < 100; k += 10) tree.Insert(k);
  EXPECT_EQ(tree.Range(10, 30), (std::vector<ObjectKey>{10, 20, 30}));
  EXPECT_EQ(tree.Range(11, 29), (std::vector<ObjectKey>{20}));
  EXPECT_TRUE(tree.Range(31, 39).empty());
  EXPECT_TRUE(tree.Range(50, 40).empty());  // inverted range
}

TEST(BPlusTreeTest, ExtremeKeys) {
  BPlusTree tree;
  const ObjectKey max_key = std::numeric_limits<ObjectKey>::max();
  tree.Insert(0);
  tree.Insert(max_key);
  tree.Insert(max_key - 1);
  EXPECT_TRUE(tree.Contains(0));
  EXPECT_TRUE(tree.Contains(max_key));
  EXPECT_EQ(tree.Range(0, max_key).size(), 3u);
  EXPECT_TRUE(tree.CheckInvariants());
}

class BPlusTreeRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomSweep, MatchesReferenceSet) {
  Random rng(GetParam());
  BPlusTree tree;
  std::set<ObjectKey> reference;
  for (int i = 0; i < 20000; ++i) {
    const ObjectKey key = rng.Uniform(50000);
    tree.Insert(key);
    reference.insert(key);
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());

  // Membership samples.
  for (int i = 0; i < 2000; ++i) {
    const ObjectKey key = rng.Uniform(50000);
    ASSERT_EQ(tree.Contains(key), reference.count(key) != 0) << key;
  }

  // Random range queries against the reference.
  for (int i = 0; i < 200; ++i) {
    ObjectKey lo = rng.Uniform(50000);
    ObjectKey hi = rng.Uniform(50000);
    if (lo > hi) std::swap(lo, hi);
    const std::vector<ObjectKey> got = tree.Range(lo, hi);
    std::vector<ObjectKey> want(reference.lower_bound(lo),
                                reference.upper_bound(hi));
    ASSERT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomSweep,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}, uint64_t{17},
                                           uint64_t{99}));

TEST(BPlusTreeTest, InvariantsHoldAtEverySplitBoundary) {
  // Insert exactly around the fanout boundaries and validate after each.
  BPlusTree tree;
  for (ObjectKey k = 0; k < BPlusTree::kMaxKeys * 3 + 2; ++k) {
    tree.Insert(k * 2 + 1);  // odd keys
    ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << k;
    ASSERT_FALSE(tree.Contains(k * 2));  // even keys never present
  }
}

TEST(BPlusTreeTest, DenseThenSparseMix) {
  BPlusTree tree;
  for (ObjectKey k = 1000; k < 2000; ++k) tree.Insert(k);
  for (ObjectKey k = 0; k < 100000; k += 997) tree.Insert(k);
  EXPECT_TRUE(tree.CheckInvariants());
  // Dense block intact; the sparse key 1994 (997*2) was a duplicate.
  EXPECT_EQ(tree.Range(1000, 1999).size(), 1000u);
}

}  // namespace
}  // namespace mvcc
