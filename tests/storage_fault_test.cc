// Storage fault-tolerance (ISSUE 4): checksummed on-disk WAL, torn-tail
// salvage vs interior-corruption fail-stop, checkpoint generation
// fallback, fsyncgate fail-stop, ENOSPC degraded read-only mode, and the
// crash matrix — a process crash at EVERY mutating file-system syscall
// must lose at most a suffix of the acknowledged commit order.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "recovery/env.h"
#include "recovery/faulty_env.h"
#include "recovery/file_io.h"
#include "recovery/log_format.h"
#include "recovery/recovery.h"
#include "recovery/wal.h"
#include "txn/database.h"

namespace mvcc {
namespace {

constexpr uint64_t kKeys = 20;

DatabaseOptions DurableOpts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = kKeys;
  opts.initial_value = "init";
  return opts;
}

// Fresh empty directory unique to the calling test.
std::string TestDir(const std::string& tag) {
  const std::string dir = "/tmp/mvcc_sfault_" + tag + "_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Result<std::unique_ptr<Database>> Open(Env* env, const std::string& dir,
                                       RecoveryReport* report,
                                       SalvagePolicy policy =
                                           SalvagePolicy::kSalvageTornTail) {
  WalDurableOptions wopts;
  wopts.policy = policy;
  return OpenDatabaseDurable(DurableOpts(), env, dir, wopts, report);
}

TEST(StorageFaultTest, DurableRoundTripSurvivesReopen) {
  const std::string dir = TestDir("roundtrip");
  RecoveryReport report;
  {
    auto db = Open(GetPosixEnv(), dir, &report);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put(1, "one").ok());
    ASSERT_TRUE((*db)->Put(2, "two").ok());
    ASSERT_TRUE((*db)->Put(1, "one-v2").ok());
    EXPECT_TRUE((*db)->Health().ok());
  }
  auto db = Open(GetPosixEnv(), dir, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.replayed_batches, 3u);
  EXPECT_FALSE(report.wal.salvaged);
  EXPECT_EQ(*(*db)->Get(1), "one-v2");
  EXPECT_EQ(*(*db)->Get(2), "two");
  EXPECT_EQ(*(*db)->Get(3), "init");
  // The recovered counters extend the serial order.
  ASSERT_TRUE((*db)->Put(3, "after").ok());
  EXPECT_EQ(*(*db)->Get(3), "after");
}

TEST(StorageFaultTest, EioOnAppendFailStopsThePipeline) {
  const std::string dir = TestDir("eio_append");
  FaultyEnv env(GetPosixEnv());
  RecoveryReport report;
  auto db = Open(&env, dir, &report);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put(0, "good").ok());

  env.FailAt(env.op_count(), FaultKind::kEio);  // next op: the append
  Status s = (*db)->Put(1, "doomed");
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
  // The failed commit was rolled back: not visible, not half-installed.
  EXPECT_EQ(*(*db)->Get(1), "init");
  EXPECT_GT((*db)->counters().durability_failures.load(), 0u);

  // kDataLoss is a latch (fsyncgate-style): no later write is accepted,
  // and new read-write transactions are refused outright.
  EXPECT_TRUE((*db)->Health().IsDataLoss());
  EXPECT_TRUE((*db)->Put(2, "also-doomed").IsDataLoss());
  auto rw = (*db)->TryBegin(TxnClass::kReadWrite);
  EXPECT_TRUE(rw.status().IsDataLoss());
  // Reads keep working at the last durable state.
  auto ro = (*db)->TryBegin(TxnClass::kReadOnly);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(*(*ro)->Read(0), "good");
  (*ro)->Commit();
}

TEST(StorageFaultTest, FailedFsyncIsNeverRetried) {
  const std::string dir = TestDir("fsyncgate");
  FaultyEnv env(GetPosixEnv());
  RecoveryReport report;
  auto db = Open(&env, dir, &report);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put(0, "durable").ok());

  // Append succeeds, the fsync after it fails: the pages may or may not
  // have reached the disk, so the commit must NOT be acknowledged and
  // the log must never pretend a later fsync can fix it.
  env.FailAt(env.op_count() + 1, FaultKind::kEio);  // append, then sync
  EXPECT_TRUE((*db)->Put(1, "unflushed").IsDataLoss());
  EXPECT_EQ(*(*db)->Get(1), "init");
  EXPECT_TRUE((*db)->Health().IsDataLoss());
  // Permanently: even with no further faults armed, the latch holds.
  env.ClearFaults();
  EXPECT_TRUE((*db)->Put(2, "still-doomed").IsDataLoss());
}

TEST(StorageFaultTest, EnospcDegradedModeRecoversAfterTruncation) {
  const std::string dir = TestDir("enospc");
  FaultyEnv env(GetPosixEnv());
  RecoveryReport report;
  auto db = Open(&env, dir, &report);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put(0, "kept").ok());

  env.FailAt(env.op_count(), FaultKind::kEnospc);
  Status s = (*db)->Put(1, "no-space");
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(*(*db)->Get(1), "init");  // rolled back, not visible

  // Degraded read-only: RW begins refused, RO begins served.
  EXPECT_TRUE((*db)->Health().IsResourceExhausted());
  EXPECT_TRUE(
      (*db)->TryBegin(TxnClass::kReadWrite).status().IsResourceExhausted());
  auto ro = (*db)->TryBegin(TxnClass::kReadOnly);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(*(*ro)->Read(0), "kept");
  (*ro)->Commit();

  // Checkpoint + truncation frees space and lifts the degraded state.
  auto gen = CheckpointAndTruncateDurable(db->get(), &env, dir);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_TRUE((*db)->Health().ok());
  ASSERT_TRUE((*db)->TryBegin(TxnClass::kReadWrite).ok());
  ASSERT_TRUE((*db)->Put(1, "after-recovery").ok());

  // And everything survives a reopen through the checkpoint + WAL tail.
  db->reset();
  auto reopened = Open(GetPosixEnv(), dir, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(report.checkpoint.loaded_generation, *gen);
  EXPECT_EQ(*(*reopened)->Get(0), "kept");
  EXPECT_EQ(*(*reopened)->Get(1), "after-recovery");
}

TEST(StorageFaultTest, TornTailIsSalvagedExactlyOnceStrictRefuses) {
  const std::string dir = TestDir("torn_tail");
  {
    FaultyEnv env(GetPosixEnv());
    RecoveryReport report;
    auto db = Open(&env, dir, &report);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put(0, "a").ok());
    ASSERT_TRUE((*db)->Put(1, "b").ok());
    // A torn append persists only a prefix of the record; the rollback
    // truncate then fails too (the disk is dying), so the torn bytes
    // stay on disk and the log fail-stops.
    env.FailAt(env.op_count(), FaultKind::kTornWrite);
    env.FailAt(env.op_count() + 1, FaultKind::kEio);  // the rollback
    EXPECT_TRUE((*db)->Put(2, "torn").IsDataLoss());
    EXPECT_TRUE((*db)->Health().IsDataLoss());
  }
  // Strict policy refuses the torn tail outright (and must not modify
  // the directory, so the salvage open below still sees the tear).
  RecoveryReport report;
  auto strict = Open(GetPosixEnv(), dir, &report, SalvagePolicy::kStrict);
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();

  // Default policy: truncate the tear, keep every acknowledged commit.
  auto db = Open(GetPosixEnv(), dir, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(report.wal.salvaged);
  EXPECT_GT(report.wal.torn_tail_bytes, 0u);
  EXPECT_EQ(report.replayed_batches, 2u);
  EXPECT_EQ(*(*db)->Get(0), "a");
  EXPECT_EQ(*(*db)->Get(1), "b");
  EXPECT_EQ(*(*db)->Get(2), "init");  // never acknowledged, never seen

  // A second reopen is clean: salvage truncated the tear for good.
  db->reset();
  auto again = Open(GetPosixEnv(), dir, &report);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(report.wal.salvaged);
}

TEST(StorageFaultTest, InteriorCorruptionFailStopsRecovery) {
  const std::string dir = TestDir("bitflip");
  {
    FaultyEnv env(GetPosixEnv());
    RecoveryReport report;
    auto db = Open(&env, dir, &report);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put(0, "a").ok());
    // The flipped append "succeeds" — the commit is acknowledged and
    // only recovery's CRC scan can notice.
    env.FailAt(env.op_count(), FaultKind::kBitFlip);
    ASSERT_TRUE((*db)->Put(1, "flipped").ok());
    ASSERT_TRUE((*db)->Put(2, "c").ok());
  }
  // A bad record FOLLOWED by valid ones is not a torn tail: salvaging
  // would silently drop an interior acknowledged commit. Fail-stop, even
  // under the permissive policy.
  RecoveryReport report;
  auto db = Open(GetPosixEnv(), dir, &report);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsDataLoss()) << db.status().ToString();
}

TEST(StorageFaultTest, CheckpointGenerationFallback) {
  const std::string dir = TestDir("ckpt_fallback");
  uint64_t gen1 = 0, gen2 = 0;
  {
    RecoveryReport report;
    auto db = Open(GetPosixEnv(), dir, &report);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put(0, "a").ok());
    auto g1 = CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    ASSERT_TRUE(g1.ok());
    gen1 = *g1;
    ASSERT_TRUE((*db)->Put(1, "b").ok());
    auto g2 = CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    ASSERT_TRUE(g2.ok());
    gen2 = *g2;
    ASSERT_TRUE((*db)->Put(2, "c").ok());
  }
  // Bit-rot the newest generation on disk.
  const std::string gen2_path =
      dir + "/ckpt/" + CheckpointFileName(gen2);
  {
    auto image = ReadFile(gen2_path);
    ASSERT_TRUE(image.ok());
    std::string corrupt = *image;
    ASSERT_GT(corrupt.size(), 16u);
    corrupt[corrupt.size() / 2] ^= 0x01;
    std::ofstream out(gen2_path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  {
    RecoveryReport report;
    auto db = Open(GetPosixEnv(), dir, &report);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(report.checkpoint.generations_seen, 2u);
    EXPECT_EQ(report.checkpoint.generations_bad, 1u);
    EXPECT_EQ(report.checkpoint.loaded_generation, gen1);
    // The WAL still holds the gap: truncation lags one generation
    // behind the newest checkpoint precisely so this fallback can
    // replay everything above gen1's vtnc.
    EXPECT_EQ(*(*db)->Get(0), "a");
    EXPECT_EQ(*(*db)->Get(1), "b");
    EXPECT_EQ(*(*db)->Get(2), "c");
  }
  // With EVERY generation corrupt there is no floor to replay from:
  // refusing to open beats silently resurrecting pre-checkpoint state.
  const std::string gen1_path =
      dir + "/ckpt/" + CheckpointFileName(gen1);
  {
    std::ofstream out(gen1_path, std::ios::binary | std::ios::trunc);
    out << "rotten";
  }
  RecoveryReport report;
  auto db = Open(GetPosixEnv(), dir, &report);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsDataLoss()) << db.status().ToString();
}

TEST(StorageFaultTest, CheckpointFallbackSurvivesSegmentDeletion) {
  // The dangerous shape of generation fallback: segments ROTATE between
  // the two checkpoints, so truncating to the newest generation's vtnc
  // would delete sealed segments in (gen1.vtnc, gen2.vtnc] — and a
  // later fallback to gen1 would replay over a hole. Truncation must
  // lag one generation behind to keep that gap replayable.
  const std::string dir = TestDir("ckpt_fallback_rotate");
  WalDurableOptions wopts;
  wopts.segment_target_bytes = 256;  // rotate every few records
  uint64_t gen1 = 0, gen2 = 0;
  {
    RecoveryReport report;
    auto db = OpenDatabaseDurable(DurableOpts(), GetPosixEnv(), dir,
                                  wopts, &report);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE((*db)->Put(i, "g1-" + std::to_string(i)).ok());
    }
    auto g1 = CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    ASSERT_TRUE(g1.ok());
    gen1 = *g1;
    const uint64_t segments_after_gen1 = (*db)->wal()->SegmentCount();
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE((*db)->Put(i, "g2-" + std::to_string(i)).ok());
    }
    // Rotation sealed whole segments between the two checkpoints —
    // exactly the bytes fallback recovery needs when gen2 rots.
    ASSERT_GT((*db)->wal()->SegmentCount(), segments_after_gen1);
    auto g2 = CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    ASSERT_TRUE(g2.ok());
    gen2 = *g2;
    ASSERT_TRUE((*db)->Put(0, "tail").ok());
  }
  // Bit-rot the newest generation on disk.
  const std::string gen2_path = dir + "/ckpt/" + CheckpointFileName(gen2);
  {
    auto image = ReadFile(gen2_path);
    ASSERT_TRUE(image.ok());
    std::string corrupt = *image;
    ASSERT_GT(corrupt.size(), 16u);
    corrupt[corrupt.size() / 2] ^= 0x01;
    std::ofstream out(gen2_path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  // Fallback to gen1 must replay every post-gen1 commit from the WAL,
  // including those in segments a newest-vtnc truncation would have
  // deleted. Silent loss here is the never-serve-a-hole violation.
  RecoveryReport report;
  auto db = OpenDatabaseDurable(DurableOpts(), GetPosixEnv(), dir,
                                wopts, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.checkpoint.loaded_generation, gen1);
  EXPECT_EQ(*(*db)->Get(0), "tail");
  for (uint64_t k = 1; k < kKeys; ++k) {
    EXPECT_EQ(*(*db)->Get(k), "g2-" + std::to_string(k)) << "key " << k;
  }
}

TEST(StorageFaultTest, CorruptLengthFieldIsNotATornTail) {
  // A flipped bit in a record's LENGTH field both fails its CRC and
  // poisons any length-based resync. The classifier must still see the
  // valid records that follow (sliding probe) and call it interior
  // corruption — salvaging "a torn tail" here would silently truncate
  // acknowledged commits.
  std::string image = EncodeWalSegmentHeader();
  image += EncodeWalRecord(CommitBatch{1, 1, {{0, "aa"}}});
  const size_t rec2 = image.size();
  image += EncodeWalRecord(CommitBatch{2, 2, {{1, "bbb"}}});
  const size_t rec3 = image.size();
  image += EncodeWalRecord(CommitBatch{3, 3, {{2, "cccc"}}});

  {
    // Low bit of the interior record's length: record still "fits", CRC
    // fails, and a length-hop resync would land one byte off.
    std::string mangled = image;
    mangled[rec2] ^= 0x01;
    WalScanResult scan = ScanWalSegment(mangled, "t");
    EXPECT_EQ(scan.tail, WalTailState::kCorrupt) << scan.detail;
    EXPECT_EQ(scan.batches.size(), 1u);
  }
  {
    // High bit of the interior record's length: the record claims to
    // extend past the end of the segment, which must not read as torn
    // while a valid record follows.
    std::string mangled = image;
    mangled[rec2 + 3] ^= 0x40;
    WalScanResult scan = ScanWalSegment(mangled, "t");
    EXPECT_EQ(scan.tail, WalTailState::kCorrupt) << scan.detail;
    EXPECT_EQ(scan.batches.size(), 1u);
  }
  {
    // The same damage in the FINAL record has nothing valid after it:
    // that IS a torn tail, salvageable to the first two records.
    std::string mangled = image;
    mangled[rec3 + 3] ^= 0x40;
    WalScanResult scan = ScanWalSegment(mangled, "t");
    EXPECT_EQ(scan.tail, WalTailState::kTorn) << scan.detail;
    EXPECT_EQ(scan.batches.size(), 2u);
    EXPECT_EQ(scan.valid_bytes, rec3);
  }
}

TEST(StorageFaultTest, DurableOpenRefusesPostVisibilityProtocols) {
  // Baselines append to the WAL after the commit is already visible in
  // memory; durable mode would acknowledge readers a commit that a
  // failed append then loses. The open refuses the combination.
  const std::string dir = TestDir("baseline_refused");
  DatabaseOptions opts = DurableOpts();
  opts.protocol = ProtocolKind::kMvto;
  RecoveryReport report;
  auto db = OpenDatabaseDurable(opts, GetPosixEnv(), dir,
                                WalDurableOptions{}, &report);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
}

TEST(StorageFaultTest, WriteFileAtomicCleansUpOrphanedTemps) {
  const std::string dir = TestDir("atomic");
  const std::string target = dir + "/image.bin";
  ASSERT_TRUE(WriteFileAtomic(target, "published").ok());
  // Debris of a writer that died between open and rename.
  {
    std::ofstream orphan(dir + "/image.bin.tmp.99.1234",
                         std::ios::binary);
    orphan << "half-written";
  }
  EXPECT_EQ(CleanupOrphanedTempFiles(dir), 1u);
  EXPECT_FALSE(FileExists(dir + "/image.bin.tmp.99.1234"));
  EXPECT_EQ(*ReadFile(target), "published");
  EXPECT_EQ(CleanupOrphanedTempFiles(dir), 0u);  // idempotent
}

TEST(StorageFaultTest, FiniteDiskModelChargesAndCredits) {
  const std::string dir = TestDir("capacity");
  FaultyEnv env(GetPosixEnv());
  env.set_capacity_bytes(4096);
  auto file = env.NewAppendableFile(dir + "/a.log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(3000, 'x')).ok());
  EXPECT_EQ(env.used_bytes(), 3000u);
  Status s = (*file)->Append(std::string(2000, 'x'));
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  ASSERT_TRUE((*file)->Close().ok());
  // Deleting the file credits its bytes back — the checkpoint-truncation
  // path the degraded mode relies on.
  ASSERT_TRUE(env.DeleteFile(dir + "/a.log").ok());
  EXPECT_EQ(env.used_bytes(), 0u);
  auto fresh = env.NewAppendableFile(dir + "/b.log");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Append(std::string(2000, 'y')).ok());
  ASSERT_TRUE((*fresh)->Close().ok());
}

// ---- the crash matrix ----
//
// Run a fixed workload of two-key transactions once, fault-free, to
// count the mutating syscalls. Then for EVERY syscall index c, rerun the
// workload with a crash injected at c, recover from the directory as the
// crash left it, and check the durability oracle:
//
//   1. the recovered state is an exact PREFIX of the commit order,
//   2. every acknowledged commit is in that prefix (nothing acked lost),
//   3. both keys of each transaction are present or absent TOGETHER.

struct MatrixRun {
  uint64_t ops = 0;      // mutating syscalls consumed
  int acked = 0;         // commits acknowledged before the crash
  bool opened = false;   // OpenDatabaseDurable succeeded
};

constexpr int kMatrixTxns = 10;

MatrixRun RunMatrixWorkload(FaultyEnv* env, const std::string& dir) {
  MatrixRun run;
  RecoveryReport report;
  auto db = Open(env, dir, &report);
  if (!db.ok()) {
    run.ops = env->op_count();
    return run;
  }
  run.opened = true;
  for (int i = 0; i < kMatrixTxns; ++i) {
    auto txn = (*db)->Begin(TxnClass::kReadWrite);
    const std::string value = "v" + std::to_string(i);
    if (!txn->Write(2 * i, value).ok() ||
        !txn->Write(2 * i + 1, value).ok()) {
      txn->Abort();
      break;
    }
    if (txn->Commit().ok()) {
      // Acks must be a prefix too: once the log fail-stops, nothing
      // later may sneak through.
      EXPECT_EQ(run.acked, i);
      ++run.acked;
    }
  }
  run.ops = env->op_count();
  return run;
}

// Verifies the oracle over a recovered database; returns the prefix
// length k (number of recovered transactions).
int CheckRecoveredPrefix(Database* db) {
  int k = 0;
  bool in_prefix = true;
  for (int i = 0; i < kMatrixTxns; ++i) {
    const std::string lo = *db->Get(2 * i);
    const std::string hi = *db->Get(2 * i + 1);
    EXPECT_EQ(lo, hi) << "txn " << i << " recovered torn";
    const bool present = lo == "v" + std::to_string(i);
    if (!present) {
      EXPECT_EQ(lo, "init") << "txn " << i << " recovered mangled";
      in_prefix = false;
    } else {
      EXPECT_TRUE(in_prefix) << "txn " << i << " present after a gap";
      ++k;
    }
  }
  return k;
}

TEST(StorageFaultTest, CrashMatrixLosesOnlyAnUnackedSuffix) {
  // Fault-free probe run sizes the matrix.
  const std::string probe_dir = TestDir("matrix_probe");
  FaultyEnv probe(GetPosixEnv());
  const MatrixRun clean = RunMatrixWorkload(&probe, probe_dir);
  ASSERT_TRUE(clean.opened);
  ASSERT_EQ(clean.acked, kMatrixTxns);
  ASSERT_GT(clean.ops, 0u);

  for (uint64_t c = 0; c < clean.ops; ++c) {
    const std::string dir = TestDir("matrix_" + std::to_string(c));
    FaultyEnv env(GetPosixEnv());
    env.FailAt(c, FaultKind::kCrash);
    const MatrixRun crashed = RunMatrixWorkload(&env, dir);
    EXPECT_TRUE(env.crashed()) << "crash at op " << c << " never fired";

    RecoveryReport report;
    auto db = Open(GetPosixEnv(), dir, &report);
    ASSERT_TRUE(db.ok()) << "crash at op " << c << ": "
                         << db.status().ToString();
    const int recovered = CheckRecoveredPrefix(db->get());
    // Acknowledged implies durable: fsync happens before the ack, so a
    // crash can only lose commits that were never acknowledged.
    EXPECT_GE(recovered, crashed.acked) << "crash at op " << c;
    // And the recovered database is live: it accepts new commits.
    ASSERT_TRUE((*db)->Put(2 * kMatrixTxns - 1, "post-crash").ok())
        << "crash at op " << c;
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(probe_dir);
}

}  // namespace
}  // namespace mvcc
