// Property-based tests: randomized workloads swept over protocol, seed,
// and contention, each checked against the paper's correctness criteria
// (MVSG acyclicity; the VC lemmas; a reference model of the counters).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "history/serializability.h"
#include "txn/database.h"
#include "vc/version_control.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace mvcc {
namespace {

// ---------------------------------------------------------------------
// Sweep: every protocol x seed x skew must produce 1SR histories.
// ---------------------------------------------------------------------

using SweepParam = std::tuple<ProtocolKind, uint64_t /*seed*/,
                              double /*zipf theta*/>;

class SerializabilitySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SerializabilitySweep, RandomWorkloadIsOneCopySerializable) {
  const auto [kind, seed, theta] = GetParam();
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 48;
  opts.record_history = true;
  Database db(opts);

  WorkloadSpec spec;
  spec.num_keys = 48;
  spec.zipf_theta = theta;
  spec.read_only_fraction = 0.35;
  spec.rw_ops = 5;
  spec.ro_ops = 5;
  spec.seed = seed;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 120;
  RunResult result = RunWorkload(&db, spec, run);
  ASSERT_GT(result.committed(), 0u);

  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << ProtocolKindName(kind) << " seed=" << seed << " theta=" << theta
      << ": cycle of " << verdict.cycle.size();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SerializabilitySweep,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kVc2pl, ProtocolKind::kVcTo,
                          ProtocolKind::kVcOcc, ProtocolKind::kMvto,
                          ProtocolKind::kMv2plCtl, ProtocolKind::kSv2pl,
                          ProtocolKind::kWeihlTi),
        ::testing::Values(uint64_t{1}, uint64_t{7}),
        ::testing::Values(0.0, 0.95)));

// ---------------------------------------------------------------------
// Sweep: the VC protocols additionally satisfy Lemmas 1-3 and leave
// read-only transactions completely undisturbed.
// ---------------------------------------------------------------------

class VcLemmaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(VcLemmaSweep, LemmasAndReaderFreedomHold) {
  const auto [kind, seed, theta] = GetParam();
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 32;
  opts.record_history = true;
  Database db(opts);

  WorkloadSpec spec;
  spec.num_keys = 32;
  spec.zipf_theta = theta;
  spec.read_only_fraction = 0.5;
  spec.seed = seed;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 100;
  RunWorkload(&db, spec, run);

  EXPECT_TRUE(CheckLemmas(db.history()->Records()).empty());
  const auto snap = db.counters().Snap();
  EXPECT_EQ(snap.ro_blocks, 0u);
  EXPECT_EQ(snap.ro_aborts, 0u);
  EXPECT_EQ(snap.ro_metadata_writes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    VcProtocols, VcLemmaSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::kVc2pl,
                                         ProtocolKind::kVcTo,
                                         ProtocolKind::kVcOcc),
                       ::testing::Values(uint64_t{3}, uint64_t{11},
                                         uint64_t{23}),
                       ::testing::Values(0.0, 0.8)));

// ---------------------------------------------------------------------
// Sweep: workloads that mix range scans into both transaction classes
// stay one-copy serializable under every VC protocol (2PL: range locks;
// TO: range floors; OCC: scanned-range validation; adaptive: whichever
// engine is active).
// ---------------------------------------------------------------------

class ScanWorkloadSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ScanWorkloadSweep, MixedScansStaySerializable) {
  DatabaseOptions opts;
  opts.protocol = GetParam();
  opts.preload_keys = 40;
  opts.record_history = true;
  Database db(opts);

  WorkloadSpec spec;
  spec.num_keys = 40;
  spec.zipf_theta = 0.6;
  spec.read_only_fraction = 0.4;
  spec.scan_fraction = 0.25;
  spec.scan_span = 8;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 100;
  RunResult result = RunWorkload(&db, spec, run);
  ASSERT_GT(result.committed(), 0u);
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << ProtocolKindName(GetParam()) << ": cycle of "
      << verdict.cycle.size();
  const auto snap = db.counters().Snap();
  EXPECT_EQ(snap.ro_blocks, 0u);
  EXPECT_EQ(snap.ro_aborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(VcProtocols, ScanWorkloadSweep,
                         ::testing::Values(ProtocolKind::kVc2pl,
                                           ProtocolKind::kVcTo,
                                           ProtocolKind::kVcOcc,
                                           ProtocolKind::kVcAdaptive));

// ---------------------------------------------------------------------
// Model check: VersionControl against a brute-force reference under
// random single-threaded interleavings of register/complete/discard.
// ---------------------------------------------------------------------

class VcModel {
 public:
  TxnNumber Register() {
    const TxnNumber tn = next_++;
    active_.insert(tn);
    return tn;
  }
  void Complete(TxnNumber tn) {
    active_.erase(tn);
    completed_.insert(tn);
  }
  void Discard(TxnNumber tn) { active_.erase(tn); }

  // Transaction Visibility Property, computed from first principles: the
  // largest n < next_ such that no active transaction has tn <= n, and n
  // was assigned (or 0).
  TxnNumber Vtnc() const {
    TxnNumber best = 0;
    for (TxnNumber n = 1; n < next_; ++n) {
      if (active_.count(n)) break;
      if (completed_.count(n)) best = n;
      // discarded numbers are skipped but do not block visibility
    }
    return best;
  }

 private:
  TxnNumber next_ = 1;
  std::set<TxnNumber> active_;
  std::set<TxnNumber> completed_;
};

class VcModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VcModelCheck, MatchesReferenceModel) {
  Random rng(GetParam());
  VersionControl vc;
  VcModel model;
  std::vector<TxnNumber> open;
  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.NextDouble();
    if (open.empty() || roll < 0.4) {
      const TxnNumber tn = vc.Register(step + 1);
      const TxnNumber expected = model.Register();
      ASSERT_EQ(tn, expected);
      open.push_back(tn);
    } else {
      const size_t pick = rng.Uniform(open.size());
      const TxnNumber tn = open[pick];
      open.erase(open.begin() + pick);
      if (roll < 0.8) {
        vc.Complete(tn);
        model.Complete(tn);
      } else {
        vc.Discard(tn);
        model.Discard(tn);
      }
    }
    ASSERT_EQ(vc.Start(), model.Vtnc()) << "step " << step;
    ASSERT_LT(vc.Start(), vc.NextNumber());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcModelCheck,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}, uint64_t{5},
                                           uint64_t{8}, uint64_t{13}));

// ---------------------------------------------------------------------
// Property: under any VC protocol, the union of committed values in the
// store equals what a serial replay by tn order would produce.
// ---------------------------------------------------------------------

class SerialEquivalenceSweep
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SerialEquivalenceSweep, FinalStateMatchesSerialReplayByTn) {
  DatabaseOptions opts;
  opts.protocol = GetParam();
  opts.preload_keys = 24;
  opts.initial_value = "0";
  opts.record_history = true;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 24;
  spec.read_only_fraction = 0.2;
  spec.zipf_theta = 0.7;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 80;
  RunWorkload(&db, spec, run);

  // Replay committed writes in tn order.
  std::vector<TxnRecord> records = db.history()->Records();
  std::sort(records.begin(), records.end(),
            [](const TxnRecord& a, const TxnRecord& b) {
              return a.number < b.number;
            });
  std::map<ObjectKey, VersionNumber> expect_latest;
  for (const TxnRecord& rec : records) {
    if (rec.cls != TxnClass::kReadWrite) continue;
    for (const RecordedWrite& w : rec.writes) {
      expect_latest[w.key] = w.version;
    }
  }
  for (const auto& [key, version] : expect_latest) {
    VersionChain* chain = db.store().Find(key);
    ASSERT_NE(chain, nullptr);
    EXPECT_EQ(chain->LatestNumber(), version) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(VcProtocols, SerialEquivalenceSweep,
                         ::testing::Values(ProtocolKind::kVc2pl,
                                           ProtocolKind::kVcTo,
                                           ProtocolKind::kVcOcc));

}  // namespace
}  // namespace mvcc
