// Property test: VersionChain against a brute-force reference model
// under random installs, reads, and prunes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "storage/version_chain.h"

namespace mvcc {
namespace {

// Reference: an ordered map version -> value with the same semantics.
class ChainModel {
 public:
  void Install(VersionNumber n, const Value& v) { versions_[n] = v; }

  // Largest version <= at_most.
  std::optional<std::pair<VersionNumber, Value>> Read(
      TxnNumber at_most) const {
    auto it = versions_.upper_bound(at_most);
    if (it == versions_.begin()) return std::nullopt;
    --it;
    return std::make_pair(it->first, it->second);
  }

  size_t Prune(VersionNumber watermark) {
    auto keep = versions_.upper_bound(watermark);
    if (keep == versions_.begin()) return 0;
    --keep;  // newest version <= watermark survives
    size_t removed = 0;
    for (auto it = versions_.begin(); it != keep;) {
      it = versions_.erase(it);
      ++removed;
    }
    return removed;
  }

  size_t size() const { return versions_.size(); }

 private:
  std::map<VersionNumber, Value> versions_;
};

class ChainModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainModelSweep, MatchesReferenceModel) {
  Random rng(GetParam());
  VersionChain chain;
  ChainModel model;
  std::set<VersionNumber> used;

  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      // Install a fresh version number.
      VersionNumber n = rng.Uniform(100000);
      while (used.count(n)) ++n;
      used.insert(n);
      const Value v = "v" + std::to_string(n);
      chain.Install(Version{n, v, 1});
      model.Install(n, v);
    } else if (roll < 0.9) {
      const TxnNumber at = rng.Uniform(100000);
      auto expected = model.Read(at);
      auto actual = chain.Read(at);
      if (expected.has_value()) {
        ASSERT_TRUE(actual.ok()) << "step " << step;
        ASSERT_EQ(actual->version, expected->first);
        ASSERT_EQ(actual->value, expected->second);
      } else {
        ASSERT_TRUE(actual.status().IsNotFound()) << "step " << step;
      }
    } else {
      const VersionNumber watermark = rng.Uniform(100000);
      ASSERT_EQ(chain.Prune(watermark), model.Prune(watermark))
          << "step " << step;
    }
    ASSERT_EQ(chain.size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainModelSweep,
                         ::testing::Values(uint64_t{1}, uint64_t{4},
                                           uint64_t{9}, uint64_t{16},
                                           uint64_t{25}));

}  // namespace
}  // namespace mvcc
