#include "cc/two_phase_locking.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(Vc2plTest, ReadWriteCommitReadBack) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*writer->Read(3), "init");
  EXPECT_TRUE(writer->Write(3, "updated").ok());
  EXPECT_EQ(*writer->Read(3), "updated");  // read own write
  EXPECT_TRUE(writer->Commit().ok());
  EXPECT_EQ(writer->txn_number(), 1u);

  EXPECT_EQ(*db.Get(3), "updated");
}

TEST(Vc2plTest, ReadWriteTransactionsReadLatest) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "a").ok());
  ASSERT_TRUE(db.Put(3, "b").ok());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(3), "b");
  EXPECT_EQ(txn->start_number(), kInfiniteTxnNumber);
  txn->Abort();
}

TEST(Vc2plTest, ReadOnlySnapshotIgnoresLaterCommits) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "first").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  ASSERT_TRUE(db.Put(3, "second").ok());
  // The reader's snapshot predates the second write.
  EXPECT_EQ(*reader->Read(3), "first");
  EXPECT_TRUE(reader->Commit().ok());
  EXPECT_EQ(*db.Get(3), "second");
}

TEST(Vc2plTest, ReadOnlySeesDelayedVisibility) {
  // While an older registered transaction is incomplete, a younger
  // committed transaction stays invisible to new readers.
  Database db(Opts());
  auto old_writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(old_writer->Write(1, "old").ok());

  std::atomic<bool> old_committing{false};
  std::thread older([&] {
    old_committing.store(true);
    ASSERT_TRUE(old_writer->Commit().ok());
  });
  while (!old_committing.load()) std::this_thread::yield();

  // A younger writer on a different key commits completely.
  auto young = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(young->Write(2, "young").ok());
  ASSERT_TRUE(young->Commit().ok());
  older.join();

  // By now both completed; visible in serial order.
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(2), "young");
}

TEST(Vc2plTest, WriterBlocksWriterUntilCommit) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);  // smaller id = older
  auto t_new = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t_new->Write(5, "new").ok());
  // Older requester waits under wait-die.
  std::atomic<bool> done{false};
  std::thread blocked([&] {
    ASSERT_TRUE(t_old->Write(5, "old").ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  ASSERT_TRUE(t_new->Commit().ok());
  blocked.join();
  ASSERT_TRUE(t_old->Commit().ok());
  // Last committer in serial order wins: t_old's lock point is later.
  EXPECT_EQ(*db.Get(5), "old");
}

TEST(Vc2plTest, YoungerConflictingWriterDies) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);
  auto t_new = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t_old->Write(5, "old").ok());
  Status s = t_new->Write(5, "new");
  EXPECT_TRUE(s.IsAborted());
  EXPECT_FALSE(t_new->active());
  EXPECT_EQ(db.counters().rw_aborts.load(), 1u);
  ASSERT_TRUE(t_old->Commit().ok());
  EXPECT_EQ(*db.Get(5), "old");
}

TEST(Vc2plTest, AbortDiscardsBufferedWrites) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(4, "doomed").ok());
  txn->Abort();
  EXPECT_EQ(*db.Get(4), "init");
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
}

TEST(Vc2plTest, TnAssignedInCommitOrder) {
  Database db(Opts());
  auto a = db.Begin(TxnClass::kReadWrite);
  auto b = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(b->Write(1, "b").ok());
  ASSERT_TRUE(a->Write(2, "a").ok());
  ASSERT_TRUE(b->Commit().ok());
  ASSERT_TRUE(a->Commit().ok());
  // b reached its lock point first.
  EXPECT_EQ(b->txn_number(), 1u);
  EXPECT_EQ(a->txn_number(), 2u);
}

TEST(Vc2plTest, VersionsCarryTheWritersNumber) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(9, "x").ok());
  VersionChain* chain = db.store().Find(9);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->LatestNumber(), 1u);
  ASSERT_TRUE(db.Put(9, "y").ok());
  EXPECT_EQ(chain->LatestNumber(), 2u);
  EXPECT_EQ(chain->size(), 3u);  // initial + two writes
}

TEST(Vc2plTest, ReadOnlyNeverTouchesLocks) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(7, "w").ok());  // X lock held on key 7
  // A reader proceeds instantly despite the exclusive lock.
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(7), "init");
  EXPECT_TRUE(reader->Commit().ok());
  EXPECT_EQ(db.counters().ro_blocks.load(), 0u);
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(Vc2plTest, NotFoundForMissingKey) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_TRUE(reader->Read(999).status().IsNotFound());
  auto writer = db.Begin(TxnClass::kReadWrite);
  EXPECT_TRUE(writer->Read(999).status().IsNotFound());
  writer->Abort();
}

TEST(Vc2plTest, DeadlockDetectPolicyResolvesCycle) {
  DatabaseOptions opts = Opts();
  opts.deadlock_policy = DeadlockPolicy::kDetect;
  Database db(opts);
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t1->Write(1, "a").ok());
  ASSERT_TRUE(t2->Write(2, "b").ok());
  std::atomic<int> aborted{0};
  std::thread th([&] {
    Status s = t1->Write(2, "a2");
    if (s.IsAborted()) aborted.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Status s = t2->Write(1, "b1");
  if (s.IsAborted()) aborted.fetch_add(1);
  th.join();
  EXPECT_EQ(aborted.load(), 1);
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
}

}  // namespace
}  // namespace mvcc
