// Cross-module integration tests: full databases under real concurrency,
// verified with the MVSG checker and the paper's lemmas.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "history/serializability.h"
#include "txn/database.h"
#include "workload/runner.h"

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 64;
  opts.initial_value = "0";
  opts.record_history = true;
  return opts;
}

// Runs a mixed concurrent workload and returns the database for checks.
void RunMixed(Database* db, int threads, int txns_per_thread,
              uint64_t keys) {
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([db, t, txns_per_thread, keys] {
      Random rng(500 + t);
      for (int i = 0; i < txns_per_thread; ++i) {
        if (rng.Bernoulli(0.4)) {
          auto reader = db->Begin(TxnClass::kReadOnly);
          for (int op = 0; op < 4; ++op) {
            auto r = reader->Read(rng.Uniform(keys));
            if (!r.ok() && !r.status().IsNotFound()) return;
          }
          reader->Commit();
        } else {
          auto writer = db->Begin(TxnClass::kReadWrite);
          bool dead = false;
          for (int op = 0; op < 4 && !dead; ++op) {
            const ObjectKey key = rng.Uniform(keys);
            if (rng.Bernoulli(0.5)) {
              dead = !writer->Write(key, std::to_string(t)).ok();
            } else {
              auto r = writer->Read(key);
              dead = !r.ok() && r.status().IsAborted();
            }
          }
          if (!dead) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

class ProtocolIntegrationTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolIntegrationTest, ConcurrentMixedWorkloadIsOneCopySerializable) {
  Database db(Opts(GetParam()));
  RunMixed(&db, 6, 200, 64);
  ASSERT_NE(db.history(), nullptr);
  EXPECT_GT(db.history()->size(), 0u);
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << ProtocolKindName(GetParam()) << ": MVSG cycle of "
      << verdict.cycle.size() << " nodes";
}

TEST_P(ProtocolIntegrationTest, EveryTransactionResolvedAndQueueDrained) {
  Database db(Opts(GetParam()));
  RunMixed(&db, 4, 150, 64);
  const auto snap = db.counters().Snap();
  EXPECT_GT(snap.rw_commits + snap.rw_aborts, 0u);
  // No transaction is left registered in the version control queue.
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolIntegrationTest,
    ::testing::Values(ProtocolKind::kVc2pl, ProtocolKind::kVcTo,
                      ProtocolKind::kVcOcc, ProtocolKind::kMvto,
                      ProtocolKind::kMv2plCtl, ProtocolKind::kSv2pl,
                      ProtocolKind::kWeihlTi),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name(ProtocolKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class VcProtocolIntegrationTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(VcProtocolIntegrationTest, LemmasHoldOnRecordedHistory) {
  Database db(Opts(GetParam()));
  RunMixed(&db, 6, 150, 64);
  auto violations = CheckLemmas(db.history()->Records());
  EXPECT_TRUE(violations.empty())
      << ProtocolKindName(GetParam()) << ": " << violations.size()
      << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

TEST_P(VcProtocolIntegrationTest, ReadOnlyTransactionsAreUndisturbed) {
  // The paper's headline guarantees, asserted as hard invariants:
  // read-only transactions never block, never abort, never write
  // metadata, and never appear in the version control queue.
  Database db(Opts(GetParam()));
  RunMixed(&db, 6, 200, 64);
  const auto snap = db.counters().Snap();
  EXPECT_GT(snap.ro_commits, 0u);
  EXPECT_EQ(snap.ro_blocks, 0u);
  EXPECT_EQ(snap.ro_aborts, 0u);
  EXPECT_EQ(snap.ro_metadata_writes, 0u);
  EXPECT_EQ(snap.rw_aborts_caused_by_ro, 0u);
  EXPECT_EQ(snap.negotiation_rounds, 0u);
  EXPECT_EQ(snap.ctl_entries_copied, 0u);
}

TEST_P(VcProtocolIntegrationTest, VisibilityInvariantUnderConcurrency) {
  Database db(Opts(GetParam()));
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread checker([&] {
    while (!stop.load()) {
      const TxnNumber vtnc = db.version_control().vtnc();
      const TxnNumber tnc = db.version_control().NextNumber();
      if (vtnc >= tnc) violated.store(true);
    }
  });
  RunMixed(&db, 4, 200, 64);
  stop.store(true);
  checker.join();
  EXPECT_FALSE(violated.load());
}

INSTANTIATE_TEST_SUITE_P(
    VcProtocols, VcProtocolIntegrationTest,
    ::testing::Values(ProtocolKind::kVc2pl, ProtocolKind::kVcTo,
                      ProtocolKind::kVcOcc),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name(ProtocolKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IntegrationTest, DeadlockedWritersNeverAppearInVcQueue) {
  // Section 4.4: transactions interacting with version control are past
  // their lock point and cannot be part of a deadlock cycle. Force a
  // deadlock and observe that the VCQueue never holds a waiting txn.
  DatabaseOptions opts = Opts(ProtocolKind::kVc2pl);
  opts.deadlock_policy = DeadlockPolicy::kDetect;
  Database db(opts);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_queue{0};
  std::thread watcher([&] {
    while (!stop.load()) {
      const uint64_t q = db.version_control().QueueSize();
      uint64_t prev = max_queue.load();
      while (q > prev && !max_queue.compare_exchange_weak(prev, q)) {
      }
    }
  });
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t1->Write(1, "a").ok());
  ASSERT_TRUE(t2->Write(2, "b").ok());
  std::thread crosser([&] { (void)t1->Write(2, "a2"); });
  (void)t2->Write(1, "b1");
  crosser.join();
  if (t1->active()) t1->Commit();
  if (t2->active()) t2->Commit();
  stop.store(true);
  watcher.join();
  // Registration only happens inside commit, which never waits for locks:
  // the queue holds at most the transactions mid-install.
  EXPECT_LE(max_queue.load(), 2u);
  EXPECT_GE(db.counters().deadlock_aborts.load(), 1u);
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
}

TEST(IntegrationTest, PartialInstallsNeverLeakToSnapshotReaders) {
  // Fault injection: stretch the window in which a two-key commit is
  // only half installed. Delayed visibility (vtnc) must still hand
  // readers only fully installed, fully completed prefixes.
  for (ProtocolKind kind : {ProtocolKind::kVc2pl, ProtocolKind::kVcTo}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 2;
    opts.initial_value = "0";
    opts.install_pause_ns = 5000;
    Database db(opts);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      uint64_t i = 0;
      while (!stop.load()) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        const Value v = std::to_string(++i);
        if (!txn->Write(0, v).ok()) continue;
        if (!txn->Write(1, v).ok()) continue;
        txn->Commit();
      }
    });
    int torn = 0;
    for (int trial = 0; trial < 300; ++trial) {
      auto reader = db.Begin(TxnClass::kReadOnly);
      const Value a = *reader->Read(0);
      const Value b = *reader->Read(1);
      if (a != b) ++torn;
      reader->Commit();
    }
    stop.store(true);
    writer.join();
    EXPECT_EQ(torn, 0) << ProtocolKindName(kind);
  }
}

TEST(IntegrationTest, WorkloadRunnerAcrossProtocolsSmoke) {
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kMvto, ProtocolKind::kMv2plCtl, ProtocolKind::kSv2pl,
        ProtocolKind::kWeihlTi}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 128;
    Database db(opts);
    WorkloadSpec spec;
    spec.num_keys = 128;
    spec.read_only_fraction = 0.5;
    spec.zipf_theta = 0.6;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = 100;
    RunResult result = RunWorkload(&db, spec, run);
    EXPECT_GT(result.committed(), 0u) << ProtocolKindName(kind);
  }
}

}  // namespace
}  // namespace mvcc
