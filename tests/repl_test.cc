// Read-only replica tier (src/repl/): WAL shipping, per-replica
// visibility horizons, gap/duplicate/epoch handling in the apply loop,
// crash + checkpoint resync, WAL-truncation resync, and staleness-budget
// routing. No sim hook is installed here, so the network always
// delivers — deterministic single-threaded protocol tests; the
// adversarial schedules live in repl_property_test / bench_sim.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "recovery/faulty_env.h"
#include "recovery/recovery.h"
#include "repl/read_router.h"
#include "repl/repl_metrics.h"
#include "repl/replica.h"
#include "repl/replication_stream.h"
#include "txn/database.h"

namespace mvcc {
namespace {

constexpr uint64_t kKeys = 8;

DatabaseOptions ReplOpts(ProtocolKind protocol = ProtocolKind::kVc2pl) {
  DatabaseOptions opts;
  opts.protocol = protocol;
  opts.preload_keys = kKeys;
  opts.enable_wal = true;
  opts.record_history = true;
  return opts;
}

// A full deployment under test: primary + N replicas + stream + router.
struct Deployment {
  explicit Deployment(int num_replicas,
                      ProtocolKind protocol = ProtocolKind::kVc2pl,
                      TxnNumber staleness_budget = 100)
      : db(ReplOpts(protocol)) {
    for (int i = 0; i < num_replicas; ++i) {
      owner.push_back(
          std::make_unique<repl::Replica>(i, &network, db.history()));
      replicas.push_back(owner.back().get());
    }
    stream = std::make_unique<repl::ReplicationStream>(&db, &network,
                                                       replicas);
    router = std::make_unique<repl::ReadRouter>(&db, replicas,
                                                staleness_budget);
  }

  // Pump/apply until quiescent. Two rounds minimum: acks sent during
  // ApplyOnce are only pruned by the next pump.
  bool Converge(int max_rounds = 50) {
    for (int i = 0; i < max_rounds; ++i) {
      stream->PumpOnce();
      for (repl::Replica* r : replicas) r->ApplyOnce();
      if (stream->CaughtUp()) return true;
    }
    return false;
  }

  Database db;
  SimulatedNetwork network;
  std::vector<std::unique_ptr<repl::Replica>> owner;
  std::vector<repl::Replica*> replicas;
  std::unique_ptr<repl::ReplicationStream> stream;
  std::unique_ptr<repl::ReadRouter> router;
};

TEST(ReplicationStreamTest, ShipsCommittedBatchesAndConverges) {
  Deployment d(2);
  ASSERT_TRUE(d.Converge());  // bootstrap checkpoints seed at vtnc 0
  ASSERT_TRUE(d.db.Put(1, "a").ok());
  ASSERT_TRUE(d.db.Put(2, "b").ok());
  ASSERT_TRUE(d.db.Put(1, "a2").ok());
  ASSERT_TRUE(d.Converge());

  const TxnNumber vtnc = d.db.version_control().vtnc();
  EXPECT_EQ(vtnc, 3u);
  for (repl::Replica* r : d.replicas) {
    EXPECT_EQ(r->Horizon(), vtnc);
    EXPECT_EQ(r->batches_applied(), 3u);
    auto read1 = r->SnapshotRead(vtnc, 1);
    ASSERT_TRUE(read1.ok());
    EXPECT_EQ(read1->value, "a2");
    auto read2 = r->SnapshotRead(vtnc, 2);
    ASSERT_TRUE(read2.ok());
    EXPECT_EQ(read2->value, "b");
  }
  // Shipping traffic flows in its own message categories; nothing else.
  EXPECT_GT(d.network.Count(MessageType::kReplBatch), 0u);
  EXPECT_GT(d.network.Count(MessageType::kReplAck), 0u);
  EXPECT_EQ(d.network.Count(MessageType::kSnapshotRead), 0u);
  EXPECT_EQ(d.network.Count(MessageType::kPrepare), 0u);
}

TEST(ReplicationStreamTest, ReplicaReadsCostZeroMessages) {
  Deployment d(1);
  ASSERT_TRUE(d.db.Put(3, "x").ok());
  ASSERT_TRUE(d.Converge());

  const uint64_t before = d.network.Total();
  repl::ReplicaReadTxn txn = d.replicas[0]->BeginReadOnly();
  auto value = txn.Read(3);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "x");
  auto scanned = txn.Scan(0, kKeys - 1);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->size(), kKeys);
  txn.Commit();
  EXPECT_EQ(d.network.Total(), before);  // zero messages of ANY category
}

TEST(ReplicationStreamTest, HorizonOnlyRecordCoversBatchlessCommits) {
  // A read-write transaction with an empty write set still completes its
  // tn, so vtnc advances with no WAL batch behind it (aborts do not:
  // Discard erases their tn outright). The stream must ship that horizon
  // alone or replica snapshots would stall behind vtnc.
  Deployment d(1, ProtocolKind::kVcTo);
  ASSERT_TRUE(d.Converge());                       // bootstrap at vtnc 0
  ASSERT_TRUE(d.db.Put(0, "committed").ok());      // tn 1, one batch
  auto batchless = d.db.Begin(TxnClass::kReadWrite);  // tn 2
  ASSERT_TRUE(batchless->Read(0).ok());
  ASSERT_TRUE(batchless->Commit().ok());           // nothing to log
  ASSERT_TRUE(d.Converge());

  const TxnNumber vtnc = d.db.version_control().vtnc();
  EXPECT_EQ(vtnc, 2u);
  EXPECT_EQ(d.replicas[0]->Horizon(), vtnc);
  EXPECT_EQ(d.replicas[0]->batches_applied(), 1u);   // only the commit
  EXPECT_GE(d.replicas[0]->records_applied(), 2u);   // + horizon record
  auto read = d.replicas[0]->SnapshotRead(vtnc, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "committed");
  EXPECT_EQ(read->version, 1u);
}

TEST(ReplicaTest, AppliesOnlyContiguousSequencePrefix) {
  SimulatedNetwork network;
  repl::Replica replica(0, &network, nullptr);
  Checkpoint cp;
  cp.vtnc = 0;
  replica.Resync(cp, /*epoch=*/1);

  repl::ReplRecord r1{1, 1, 1, true, CommitBatch{7, 1, {{5, "one"}}}};
  repl::ReplRecord r2{1, 2, 2, true, CommitBatch{8, 2, {{5, "two"}}}};

  // Out-of-order delivery: seq 2 first. A gap means a batch might be
  // missing, so the horizon must not move.
  replica.Deliver(r2);
  EXPECT_EQ(replica.ApplyOnce(), 0u);
  EXPECT_EQ(replica.Horizon(), 0u);

  replica.Deliver(r1);
  EXPECT_EQ(replica.ApplyOnce(), 2u);  // gap closed: both apply, in order
  EXPECT_EQ(replica.Horizon(), 2u);
  auto read = replica.SnapshotRead(2, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "two");
  EXPECT_EQ(replica.SnapshotRead(1, 5)->value, "one");
}

TEST(ReplicaTest, IgnoresDuplicatesAndStaleEpochs) {
  SimulatedNetwork network;
  repl::Replica replica(0, &network, nullptr);
  Checkpoint cp;
  replica.Resync(cp, /*epoch=*/2);

  repl::ReplRecord rec{2, 1, 1, true, CommitBatch{7, 1, {{5, "one"}}}};
  replica.Deliver(rec);
  EXPECT_EQ(replica.ApplyOnce(), 1u);
  // Retransmitted duplicate: already below the apply cursor.
  replica.Deliver(rec);
  EXPECT_EQ(replica.ApplyOnce(), 0u);
  EXPECT_EQ(replica.batches_applied(), 1u);
  // Leftover from a previous incarnation: wrong epoch.
  repl::ReplRecord stale{1, 2, 9, true, CommitBatch{9, 9, {{5, "stale"}}}};
  replica.Deliver(stale);
  EXPECT_EQ(replica.ApplyOnce(), 0u);
  EXPECT_EQ(replica.Horizon(), 1u);
}

TEST(ReplicaTest, CrashLosesStateAndResyncRestoresIt) {
  Deployment d(2);
  ASSERT_TRUE(d.db.Put(4, "before-crash").ok());
  ASSERT_TRUE(d.Converge());

  d.replicas[0]->Crash();
  EXPECT_FALSE(d.replicas[0]->Serviceable());
  EXPECT_EQ(d.replicas[0]->Horizon(), 0u);
  // The survivor keeps serving; the router must skip the crashed one.
  repl::RoutedReadTxn routed = d.router->Begin();
  EXPECT_TRUE(routed.on_replica());
  EXPECT_EQ(routed.replica_id(), 1);
  routed.Commit();

  ASSERT_TRUE(d.db.Put(4, "after-crash").ok());
  ASSERT_TRUE(d.Converge());  // stream re-seeds replica 0 from checkpoint
  EXPECT_TRUE(d.replicas[0]->Serviceable());
  EXPECT_EQ(d.replicas[0]->Horizon(), d.db.version_control().vtnc());
  EXPECT_EQ(d.replicas[0]->crashes(), 1u);
  EXPECT_GE(d.replicas[0]->resyncs(), 2u);  // bootstrap + post-crash
  auto read =
      d.replicas[0]->SnapshotRead(d.db.version_control().vtnc(), 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "after-crash");
}

TEST(ReplicationStreamTest, WalTruncationPastCursorForcesResync) {
  Deployment d(1);
  ASSERT_TRUE(d.db.Put(1, "one").ok());
  ASSERT_TRUE(d.Converge());
  const uint64_t resyncs_before = d.stream->stats().resyncs;

  // New commits the stream has not shipped yet...
  ASSERT_TRUE(d.db.Put(2, "two").ok());
  ASSERT_TRUE(d.db.Put(3, "three").ok());
  // ...then a checkpoint truncation races ahead of the shipping cursor.
  const Checkpoint cp = TakeCheckpoint(&d.db);
  d.db.wal()->Truncate(cp.vtnc);
  ASSERT_GT(d.db.wal()->TruncatedUpTo(), 1u);

  ASSERT_TRUE(d.Converge());
  EXPECT_GT(d.stream->stats().resyncs, resyncs_before);
  const TxnNumber vtnc = d.db.version_control().vtnc();
  EXPECT_EQ(d.replicas[0]->Horizon(), vtnc);
  EXPECT_EQ(d.replicas[0]->SnapshotRead(vtnc, 3)->value, "three");
}

TEST(ReadRouterTest, EnforcesStalenessBudgetWithPrimaryFallback) {
  Deployment d(1, ProtocolKind::kVc2pl, /*staleness_budget=*/1);
  ASSERT_TRUE(d.Converge());  // seed the replica at vtnc 0

  // Three commits the replica has not applied: lag 3 > budget 1.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(d.db.Put(0, "v" + std::to_string(i)).ok());
  }
  repl::RoutedReadTxn stale = d.router->Begin();
  EXPECT_FALSE(stale.on_replica());  // primary fallback
  EXPECT_EQ(stale.snapshot(), d.db.version_control().vtnc());
  auto exact = stale.Read(0);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, "v2");
  stale.Commit();
  EXPECT_EQ(d.router->reads_to_primary(), 1u);

  ASSERT_TRUE(d.Converge());
  repl::RoutedReadTxn fresh = d.router->Begin();
  EXPECT_TRUE(fresh.on_replica());  // lag 0: back within budget
  fresh.Commit();
  EXPECT_EQ(d.router->reads_to_replica(), 1u);
  EXPECT_LE(d.router->max_served_lag(), 1u);
}

TEST(ReadRouterTest, RoundRobinSpreadsLoadAcrossCaughtUpReplicas) {
  Deployment d(3);
  ASSERT_TRUE(d.db.Put(0, "x").ok());
  ASSERT_TRUE(d.Converge());

  std::vector<int> served(3, 0);
  for (int i = 0; i < 12; ++i) {
    repl::RoutedReadTxn txn = d.router->Begin();
    ASSERT_TRUE(txn.on_replica());
    ++served[txn.replica_id()];
    txn.Commit();
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(served[i], 4) << "replica " << i;  // perfect rotation
  }
}

TEST(ReadRouterTest, BeginAtLeastHonorsCurrencyFloor) {
  Deployment d(1);
  ASSERT_TRUE(d.Converge());  // replica seeded at horizon 0
  ASSERT_TRUE(d.db.Put(2, "current").ok());
  const TxnNumber target = d.db.version_control().vtnc();

  // The replica is below the floor: the router must not serve a stale
  // snapshot, budget or not.
  repl::RoutedReadTxn txn = d.router->BeginAtLeast(target);
  EXPECT_FALSE(txn.on_replica());
  EXPECT_GE(txn.snapshot(), target);
  auto read = txn.Read(2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "current");
  txn.Commit();

  ASSERT_TRUE(d.Converge());
  repl::RoutedReadTxn after = d.router->BeginAtLeast(target);
  EXPECT_TRUE(after.on_replica());  // now at the floor: replica-served
  after.Commit();
}

TEST(ReplicaTest, ReadsAreRecordedIntoTheSharedHistory) {
  Deployment d(1);
  ASSERT_TRUE(d.db.Put(6, "logged").ok());
  ASSERT_TRUE(d.Converge());
  const size_t before = d.db.history()->size();

  repl::ReplicaReadTxn txn = d.replicas[0]->BeginReadOnly();
  ASSERT_TRUE(txn.Read(6).ok());
  txn.Commit();

  const std::vector<TxnRecord> records = d.db.history()->Records();
  ASSERT_EQ(records.size(), before + 1);
  const TxnRecord& rec = records.back();
  EXPECT_EQ(rec.cls, TxnClass::kReadOnly);
  EXPECT_EQ(rec.number, d.replicas[0]->Horizon());
  ASSERT_EQ(rec.reads.size(), 1u);
  EXPECT_EQ(rec.reads[0].key, 6u);
  EXPECT_GT(rec.id, 1ULL << 48);  // replica id space, no primary clash
}

TEST(ReplicaTest, InFlightReaderSurvivesCrash) {
  Deployment d(1);
  ASSERT_TRUE(d.db.Put(5, "pinned").ok());
  ASSERT_TRUE(d.Converge());

  repl::ReplicaReadTxn txn = d.replicas[0]->BeginReadOnly();
  const TxnNumber sn = txn.snapshot();
  d.replicas[0]->Crash();  // swaps in a fresh store
  // The reader still holds the pre-crash store: same snapshot, same data.
  auto read = txn.Read(5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "pinned");
  EXPECT_EQ(txn.snapshot(), sn);
  txn.Commit();
}

TEST(ReplicaTest, SalvagedPrimaryReseedsReplicaThroughCheckpoint) {
  // A primary crashes with a torn WAL tail, restarts, salvages the tear
  // (losing the never-acknowledged last commit), and then bootstraps a
  // replica: the checkpoint resync must seed exactly the salvaged state,
  // and tailing must continue from there.
  const std::string dir = "/tmp/mvcc_repl_salvage_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DatabaseOptions opts = ReplOpts();
  {
    FaultyEnv env(GetPosixEnv());
    RecoveryReport report;
    auto db = OpenDatabaseDurable(opts, &env, dir, WalDurableOptions{},
                                  &report);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put(1, "acked-1").ok());
    ASSERT_TRUE((*db)->Put(2, "acked-2").ok());
    // Torn append + failed rollback: the tear stays on disk, the log
    // fail-stops, and the commit is never acknowledged.
    env.FailAt(env.op_count(), FaultKind::kTornWrite);
    env.FailAt(env.op_count() + 1, FaultKind::kEio);
    EXPECT_TRUE((*db)->Put(3, "torn").IsDataLoss());
  }
  RecoveryReport report;
  auto db = OpenDatabaseDurable(opts, GetPosixEnv(), dir,
                                WalDurableOptions{}, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(report.wal.salvaged);

  SimulatedNetwork network;
  repl::Replica replica(0, &network, (*db)->history());
  repl::ReplicationStream stream(db->get(), &network, {&replica});
  for (int i = 0; i < 50 && !stream.CaughtUp(); ++i) {
    stream.PumpOnce();
    replica.ApplyOnce();
  }
  ASSERT_TRUE(stream.CaughtUp());
  EXPECT_GE(stream.stats().resyncs, 1u);  // checkpoint-seeded bootstrap

  const TxnNumber vtnc = (*db)->version_control().vtnc();
  EXPECT_EQ(replica.Horizon(), vtnc);
  EXPECT_EQ(replica.SnapshotRead(vtnc, 1)->value, "acked-1");
  EXPECT_EQ(replica.SnapshotRead(vtnc, 2)->value, "acked-2");
  // The torn commit was salvaged away on the primary and must not
  // resurrect on the replica.
  EXPECT_EQ(replica.SnapshotRead(vtnc, 3)->value, opts.initial_value);

  // Tailing continues past the resync point.
  ASSERT_TRUE((*db)->Put(3, "post-salvage").ok());
  for (int i = 0; i < 50 && !stream.CaughtUp(); ++i) {
    stream.PumpOnce();
    replica.ApplyOnce();
  }
  ASSERT_TRUE(stream.CaughtUp());
  EXPECT_EQ(
      replica.SnapshotRead((*db)->version_control().vtnc(), 3)->value,
      "post-salvage");
  std::filesystem::remove_all(dir);
}

TEST(ReplMetricsTest, CollectorAggregatesAllSides) {
  Deployment d(2);
  ASSERT_TRUE(d.Converge());  // bootstrap first so the batch ships
  ASSERT_TRUE(d.db.Put(1, "m").ok());
  ASSERT_TRUE(d.Converge());
  d.router->Begin().Commit();

  const ReplicationStats stats = repl::CollectReplicationStats(
      *d.stream, d.replicas, d.router.get(), /*seconds=*/2.0);
  EXPECT_GE(stats.records_shipped, 2u);  // one batch x two replicas
  EXPECT_EQ(stats.batches_applied, 2u);
  EXPECT_EQ(stats.resyncs, 2u);  // both bootstraps
  EXPECT_EQ(stats.reads_to_replica + stats.reads_to_primary, 1u);
  EXPECT_GT(stats.ApplyRate(), 0.0);
  EXPECT_FALSE(stats.Summary().empty());
}

}  // namespace
}  // namespace mvcc
