// Fuzzing the serializability checker itself: randomly generated serial
// multiversion histories must always be accepted, and targeted
// corruptions of them must be rejected. The checker is load-bearing for
// every other concurrency test, so it gets its own adversary.
//
// Seeds come from the committed corpus tests/corpus/mvsg_seeds.txt —
// every corpus entry is replayed on every run. A fresh-seed round
// additionally probes seeds outside the corpus (base configurable via
// MVCC_FUZZ_SEED_BASE, count via MVCC_FUZZ_FRESH_SEEDS); any failure it
// prints names the seed to append to the corpus file.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "history/mvsg.h"
#include "history/serializability.h"

namespace mvcc {
namespace {

// Builds a random SERIAL history: transactions run one after another,
// each reading the current latest version of the keys it touches and
// installing versions numbered by its own tn. Such a history is 1SR by
// construction.
std::vector<TxnRecord> MakeSerialHistory(Random* rng, int txns, int keys) {
  std::vector<TxnRecord> records;
  // latest[k] = (version, writer id); version 0 by T0 initially.
  std::map<ObjectKey, std::pair<VersionNumber, TxnId>> latest;
  for (ObjectKey k = 0; k < static_cast<ObjectKey>(keys); ++k) {
    latest[k] = {0, 0};
  }
  for (int i = 1; i <= txns; ++i) {
    TxnRecord rec;
    rec.id = 1000 + i;
    rec.cls = TxnClass::kReadWrite;
    rec.number = i;
    const int ops = 1 + static_cast<int>(rng->Uniform(4));
    for (int op = 0; op < ops; ++op) {
      const ObjectKey key = rng->Uniform(keys);
      const auto& [version, writer] = latest[key];
      if (rng->Bernoulli(0.5)) {
        rec.reads.push_back(RecordedRead{key, version, writer});
      } else {
        // The model admits at most one write per object per transaction.
        bool already = false;
        for (const RecordedWrite& w : rec.writes) already |= w.key == key;
        if (already) continue;
        rec.writes.push_back(
            RecordedWrite{key, static_cast<VersionNumber>(i)});
        latest[key] = {static_cast<VersionNumber>(i), rec.id};
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

// Loads the committed corpus; a corpus read failure must be loud, not a
// silently empty (and therefore vacuous) test suite.
std::vector<uint64_t> CorpusSeeds() {
  const std::string path = std::string(MVCC_CORPUS_DIR) + "/mvsg_seeds.txt";
  std::vector<uint64_t> seeds;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    seeds.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  if (seeds.empty()) {
    ADD_FAILURE() << "seed corpus missing or empty: " << path;
    seeds.push_back(1);
  }
  return seeds;
}

// Both properties for one seed, with the seed in every failure message
// so it can be replayed (and appended to the corpus) directly.
void CheckSerialHistoriesAccepted(uint64_t seed) {
  Random rng(seed);
  for (int round = 0; round < 30; ++round) {
    auto records = MakeSerialHistory(&rng, 60, 8);
    Mvsg graph(records);
    EXPECT_TRUE(graph.IsAcyclic())
        << "seed " << seed << " round " << round
        << " — add this seed to tests/corpus/mvsg_seeds.txt";
    EXPECT_TRUE(CheckLemmas(records).empty())
        << "seed " << seed << " round " << round
        << " — add this seed to tests/corpus/mvsg_seeds.txt";
  }
}

class MvsgFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvsgFuzz, SerialHistoriesAlwaysAccepted) {
  CheckSerialHistoriesAccepted(GetParam());
}

TEST_P(MvsgFuzz, StaleReadWithLaterDependentWriteRejected) {
  // Corruption: pick a transaction that read key k at version v where a
  // LATER writer w (v < w.version) exists AND the reader also wrote some
  // key that the later writer read — guaranteeing mutual ordering.
  // Simpler, always-effective corruption: make two successive writers of
  // the same key each read the version BEFORE the other's write (the
  // lost-update shape), which is never serializable.
  Random rng(GetParam() + 1000);
  auto records = MakeSerialHistory(&rng, 40, 6);
  // Find two successive writers of the same key.
  std::map<ObjectKey, std::vector<size_t>> writers;
  for (size_t i = 0; i < records.size(); ++i) {
    for (const RecordedWrite& w : records[i].writes) {
      writers[w.key].push_back(i);
    }
  }
  for (const auto& [key, list] : writers) {
    if (list.size() < 2) continue;
    const size_t a = list[0];
    const size_t b = list[1];
    ASSERT_NE(a, b);
    // Locate the version of `key` just before a's write in a's view.
    VersionNumber before_a = 0;
    TxnId before_a_writer = 0;
    for (size_t i = 0; i < a; ++i) {
      for (const RecordedWrite& w : records[i].writes) {
        if (w.key == key) {
          before_a = w.version;
          before_a_writer = records[i].id;
        }
      }
    }
    // Both a and b "read" that same old version, then both write:
    // the classic lost update.
    records[a].reads.push_back(
        RecordedRead{key, before_a, before_a_writer});
    records[b].reads.push_back(
        RecordedRead{key, before_a, before_a_writer});
    Mvsg graph(records);
    EXPECT_FALSE(graph.IsAcyclic())
        << "lost update on key " << key << " not detected (seed "
        << GetParam() << " — add it to tests/corpus/mvsg_seeds.txt)";
    return;
  }
  GTEST_SKIP() << "no key with two writers in this seed's history";
}

INSTANTIATE_TEST_SUITE_P(Corpus, MvsgFuzz,
                         ::testing::ValuesIn(CorpusSeeds()));

// Probes beyond the committed corpus: a deterministic base (override
// with MVCC_FUZZ_SEED_BASE to explore elsewhere) and a configurable
// count (MVCC_FUZZ_FRESH_SEEDS). Failures print the exact seed to
// append to the corpus.
TEST(MvsgFuzzFresh, FreshSeedsAccepted) {
  uint64_t base = 0xC0FFEE;
  uint64_t count = 25;
  if (const char* env = std::getenv("MVCC_FUZZ_SEED_BASE")) {
    base = std::strtoull(env, nullptr, 0);
  }
  if (const char* env = std::getenv("MVCC_FUZZ_FRESH_SEEDS")) {
    const uint64_t n = std::strtoull(env, nullptr, 0);
    if (n > 0) count = n;
  }
  for (uint64_t i = 0; i < count; ++i) {
    CheckSerialHistoriesAccepted(base + i * 0x9E3779B97F4A7C15ULL);
  }
}

}  // namespace
}  // namespace mvcc
