// Stress and unit tests for the latch-free snapshot read path (PR 5):
// epoch-based reclamation, the immutable-array version chain, and the
// lock-free object-store index. The stress tests are written for the
// sanitizer matrix — under TSan they are the proof that no latch
// acquisition (and no silent data race) is reachable from a read-only
// transaction's read.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "storage/object_store.h"
#include "storage/version_arena.h"
#include "storage/version_chain.h"

namespace mvcc {
namespace {

// ---------------------------------------------------------------------
// Epoch-based reclamation unit tests.
// ---------------------------------------------------------------------

struct FreedMarker {
  std::atomic<bool>* flag;
};

void MarkFreed(void* p) {
  auto* marker = static_cast<FreedMarker*>(p);
  marker->flag->store(true, std::memory_order_release);
  delete marker;
}

TEST(EpochTest, RetirementNeverFreesUnderActiveGuard) {
  EpochManager& mgr = EpochManager::Global();
  std::atomic<bool> freed{false};
  {
    EpochGuard guard;
    mgr.Retire(new FreedMarker{&freed}, MarkFreed);
    // However hard reclamation is driven, a pinned reader blocks the
    // grace period: the epoch can advance past our pin at most once.
    for (int i = 0; i < 8; ++i) mgr.Advance();
    EXPECT_FALSE(freed.load(std::memory_order_acquire));
  }
  for (int i = 0; i < 4 && !freed.load(std::memory_order_acquire); ++i) {
    mgr.Advance();
  }
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(EpochTest, GuardsAreReentrant) {
  EXPECT_FALSE(EpochManager::CurrentThreadPinned());
  {
    EpochGuard outer;
    EXPECT_TRUE(EpochManager::CurrentThreadPinned());
    {
      EpochGuard inner;
      EXPECT_TRUE(EpochManager::CurrentThreadPinned());
    }
    // The inner guard's destruction must not unpin the outer one.
    EXPECT_TRUE(EpochManager::CurrentThreadPinned());
  }
  EXPECT_FALSE(EpochManager::CurrentThreadPinned());
}

TEST(EpochTest, PinBlocksAdvanceFromAnotherThread) {
  EpochManager& mgr = EpochManager::Global();
  // Drain pre-existing garbage so the assertion below is about OUR
  // retirement only.
  for (int i = 0; i < 4; ++i) mgr.Advance();

  std::atomic<bool> freed{false};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard;
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  mgr.Retire(new FreedMarker{&freed}, MarkFreed);
  for (int i = 0; i < 8; ++i) mgr.Advance();
  EXPECT_FALSE(freed.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  reader.join();
  for (int i = 0; i < 4 && !freed.load(std::memory_order_acquire); ++i) {
    mgr.Advance();
  }
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------
// Version-chain stress: concurrent latch-free readers vs. in-order
// installs, out-of-order installs, pruning, and Remove rollbacks, with
// the Figure-2 read rule as the oracle.
// ---------------------------------------------------------------------

// Value payload long enough that a torn read (a version observed with
// another version's value) cannot masquerade as correct.
std::string ValueFor(VersionNumber n) {
  return std::to_string(n) + ":" + std::string(16 + n % 7, 'x');
}

// Sanitizers serialize every atomic op, so the same interleaving
// coverage needs far fewer iterations to finish in CI time.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr uint64_t kStressScale = 1;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr uint64_t kStressScale = 1;
#else
constexpr uint64_t kStressScale = 10;
#endif
#else
constexpr uint64_t kStressScale = 10;
#endif

constexpr uint64_t kIdleSn = ~0ull;

TEST(ReadPathStressTest, ChainReadersVsInstallersPrunerAndRemover) {
  VersionChain chain;
  chain.Install(Version{2, ValueFor(2), 1});

  // floor = largest even version the dense installer has published;
  // every even number <= floor is installed. Mirrors vtnc.
  std::atomic<uint64_t> floor{2};
  std::atomic<bool> stop{false};

  constexpr int kReaders = 4;
  std::atomic<uint64_t> active[kReaders];
  for (auto& a : active) a.store(kIdleSn);

  std::atomic<uint64_t> violations{0};
  std::mutex first_mu;
  std::string first_violation;
  auto report = [&](const std::string& what) {
    violations.fetch_add(1);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_violation.empty()) first_violation = what;
  };

  // Dense installer: versions 4, 6, 8, ... in order (the common
  // append-only fast path), publishing the floor after each install.
  std::thread dense([&] {
    const uint64_t kMaxEven = 2 + 2 * 3000 * kStressScale;
    for (uint64_t n = 4; n <= kMaxEven; n += 2) {
      chain.Install(Version{n, ValueFor(n), 1});
      floor.store(n, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
  });

  // Out-of-order installer: odd versions near the floor, installed
  // newest-first within each block so the middle-insert republish path
  // runs constantly. Blocks are disjoint, so numbers stay unique.
  std::thread ooo([&] {
    uint64_t base = 0;
    while (!stop.load(std::memory_order_acquire)) {
      base = std::max(floor.load(std::memory_order_acquire), base + 12);
      chain.Install(Version{base + 9, ValueFor(base + 9), 2});
      chain.Install(Version{base + 3, ValueFor(base + 3), 2});
      chain.Install(Version{base + 7, ValueFor(base + 7), 2});
      chain.Install(Version{base + 5, ValueFor(base + 5), 2});
      std::this_thread::yield();
    }
  });

  // Remover: simulates the commit pipeline's durability rollback —
  // installs a version no reader's snapshot can cover, then removes it.
  std::thread remover([&] {
    uint64_t n = uint64_t{1} << 40;
    while (!stop.load(std::memory_order_acquire)) {
      chain.Install(Version{n, ValueFor(n), 3});
      if (!chain.Remove(n)) report("Remove lost an installed version");
      n += 2;
      // Both calls above are latched full-array republishes; without a
      // yield this loop starves the in-order installer on the TTAS latch.
      std::this_thread::yield();
    }
  });

  // Pruner: watermark = min(floor, min active reader sn), the real GC
  // rule. Readers publish their pin BEFORE taking their snapshot, so a
  // reader missed by the scan has sn >= every watermark computed so far.
  std::thread pruner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // seq_cst scan: pairs with the readers' seq_cst pin publication so
      // a missed reader provably took its snapshot after this watermark.
      uint64_t watermark = floor.load(std::memory_order_seq_cst);
      for (const auto& a : active) {
        watermark = std::min(watermark, a.load(std::memory_order_seq_cst));
      }
      chain.Prune(watermark);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Pin first, then snapshot — the Database::Begin discipline.
        const uint64_t pin = floor.load(std::memory_order_acquire);
        active[t].store(pin, std::memory_order_seq_cst);
        const uint64_t f = floor.load(std::memory_order_seq_cst);
        const uint64_t sn = f + (seq++ % 4);  // sometimes above the floor
        const auto read = chain.Read(sn);
        if (!read.ok()) {
          report("Read(" + std::to_string(sn) + ") found no version");
        } else {
          // Figure-2 rule: largest version <= sn. Every even <= f is
          // installed and the pruner retains the newest version <= its
          // watermark <= sn, so the result is at least f — and its
          // payload must be exactly the one its creator wrote.
          if (read->version > sn) {
            report("version " + std::to_string(read->version) + " > sn " +
                   std::to_string(sn));
          }
          if (read->version < f) {
            report("version " + std::to_string(read->version) +
                   " below floor " + std::to_string(f));
          }
          if (read->value != ValueFor(read->version)) {
            report("torn read at version " + std::to_string(read->version));
          }
        }
        // A latch-free point probe of ReadIf down the same snapshot.
        if ((seq & 15) == 0) {
          const auto filtered =
              chain.ReadIf(sn, [](VersionNumber v) { return v % 2 == 0; });
          if (!filtered.ok() || filtered->version < f ||
              filtered->version > sn || filtered->version % 2 != 0) {
            report("ReadIf broke the even-version rule");
          }
        }
        active[t].store(kIdleSn, std::memory_order_seq_cst);
      }
    });
  }

  dense.join();
  ooo.join();
  remover.join();
  pruner.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0u) << first_violation;
  EpochManager::Global().Advance();
}

// ---------------------------------------------------------------------
// Object-store index stress: latch-free Find vs. concurrent inserts and
// table growth.
// ---------------------------------------------------------------------

TEST(ReadPathStressTest, StoreIndexFindVsGetOrCreateAndResize) {
  ObjectStore store(4);  // few shards -> many per-shard table resizes
  constexpr int kCreators = 3;
  constexpr int kReadersPerCreator = 2;
  const uint64_t kKeysPerCreator = 800 * kStressScale;

  // progress[t] = highest key of creator t whose chain is fully
  // installed (release-published so readers can trust the contents).
  std::atomic<uint64_t> progress[kCreators];
  for (auto& p : progress) p.store(0);

  std::atomic<uint64_t> violations{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kCreators; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 1; i <= kKeysPerCreator; ++i) {
        const ObjectKey key = i * kCreators + t;
        VersionChain* chain = store.GetOrCreate(key);
        chain->Install(Version{1, ValueFor(key), 1});
        progress[t].store(i, std::memory_order_release);
      }
    });
    for (int r = 0; r < kReadersPerCreator; ++r) {
      threads.emplace_back([&, t, r] {
        uint64_t rng = 88172645463325252ull + t * 131 + r;
        uint64_t done = 0;
        while (done < kKeysPerCreator) {
          done = progress[t].load(std::memory_order_acquire);
          if (done == 0) continue;
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          const uint64_t i = 1 + rng % done;
          const ObjectKey key = i * kCreators + t;
          VersionChain* chain = store.Find(key);
          if (chain == nullptr) {
            violations.fetch_add(1);  // published key must be findable
            continue;
          }
          const auto read = chain->ReadLatest();
          if (!read.ok() || read->value != ValueFor(key)) {
            violations.fetch_add(1);
          }
          // Keys nobody ever creates must probe to absence, not crash.
          if (store.Find(key + 1000000) != nullptr) {
            violations.fetch_add(1);
          }
        }
      });
    }
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(store.NumKeys(), kCreators * kKeysPerCreator);
  EXPECT_EQ(store.TotalVersions(), kCreators * kKeysPerCreator);
}

// ---------------------------------------------------------------------
// Slab-recycling stress: the ABA hazard specific to the arena design.
// A version array (or payload) lives in a slab; when every block in the
// slab is released the slab dies and, after the grace period, is handed
// back whole and re-carved for NEW arrays and payloads. A reader that
// loaded the old array pointer must never observe re-carved bytes — the
// torn-read checks below are the detector, since a reused slab would
// serve another version's payload (or slot metadata) at the same
// address.
// ---------------------------------------------------------------------

TEST(ReadPathStressTest, ChainReadersVsInstallersWhileSlabsRecycle) {
  // Tiny slabs so a handful of installs+prunes turns a slab over; the
  // test then runs the full reader/installer/pruner mix on top of
  // constant slab death and reuse.
  VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
  {
    VersionChain chain(arena);
    chain.Install(Version{2, ValueFor(2), 1});

    std::atomic<uint64_t> floor{2};
    std::atomic<bool> stop{false};

    constexpr int kReaders = 3;
    std::atomic<uint64_t> active[kReaders];
    for (auto& a : active) a.store(kIdleSn);

    std::atomic<uint64_t> violations{0};
    std::mutex first_mu;
    std::string first_violation;
    auto report = [&](const std::string& what) {
      violations.fetch_add(1);
      std::lock_guard<std::mutex> lock(first_mu);
      if (first_violation.empty()) first_violation = what;
    };

    // Dense installer, aggressive pruner cadence: keeping the live
    // window short is what kills slabs (a pruned payload is a released
    // block; a republished array releases its predecessor).
    std::thread dense([&] {
      const uint64_t kMaxEven = 2 + 2 * 2000 * kStressScale;
      for (uint64_t n = 4; n <= kMaxEven; n += 2) {
        chain.Install(Version{n, ValueFor(n), 1});
        floor.store(n, std::memory_order_release);
        // Single-core machines: give the pruner/reclaimer/readers real
        // timeslices inside the install storm, not just at the end.
        if ((n & 127) == 0) std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
    });

    std::thread pruner([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t watermark = floor.load(std::memory_order_seq_cst);
        for (const auto& a : active) {
          watermark = std::min(watermark, a.load(std::memory_order_seq_cst));
        }
        chain.Prune(watermark);
        std::this_thread::yield();
      }
    });

    // Reclaimer: drives Advance so retired slabs actually come home and
    // get re-carved DURING the run, not after it.
    std::thread reclaimer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Global().Advance();
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        uint64_t seq = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t pin = floor.load(std::memory_order_acquire);
          active[t].store(pin, std::memory_order_seq_cst);
          const uint64_t f = floor.load(std::memory_order_seq_cst);
          const uint64_t sn = f + (seq++ % 3);
          const auto read = chain.Read(sn);
          if (!read.ok()) {
            report("Read(" + std::to_string(sn) + ") found no version");
          } else if (read->version > sn || read->version < f) {
            report("version " + std::to_string(read->version) +
                   " outside [" + std::to_string(f) + ", " +
                   std::to_string(sn) + "]");
          } else if (read->value != ValueFor(read->version)) {
            report("torn read at version " + std::to_string(read->version) +
                   " (slab reuse under a live reader)");
          }
          active[t].store(kIdleSn, std::memory_order_seq_cst);
        }
      });
    }

    dense.join();
    pruner.join();
    reclaimer.join();
    for (auto& r : readers) r.join();

    EXPECT_EQ(violations.load(), 0u) << first_violation;
    // The hazard must actually have been exercised: slabs died during
    // the concurrent phase.
    EXPECT_GT(arena->GetStats().slabs_retired, 0u);

    // Whether a slab also completed the full retire -> grace -> free ->
    // re-carve cycle DURING the concurrent phase depends on scheduler
    // timing (on a single core the installer can outrun the reclaimer).
    // Force the cycle deterministically now: drain the grace backlog so
    // the retired slabs come home, then keep installing — the new slab
    // demand must be served from the free list, not the OS.
    for (int i = 0; i < 6; ++i) EpochManager::Global().Advance();
    const uint64_t base = floor.load(std::memory_order_acquire);
    for (uint64_t n = base + 2; n <= base + 1200; n += 2) {
      chain.Install(Version{n, ValueFor(n), 1});
      if (n % 16 == 0) {
        chain.Prune(n - 8);
        EpochManager::Global().Advance();
      }
    }
    EXPECT_GT(arena->GetStats().slabs_recycled, 0u);
  }
  arena->Close();
  for (int i = 0; i < 3; ++i) EpochManager::Global().Advance();
}

// Deterministic pin of the ABA window: a pinned reader holds the chain's
// published array while churn retires its slab; physical reuse must wait
// until that reader unpins, however hard reclamation is driven.
TEST(ReadPathStressTest, PinnedReaderBlocksSlabReuse) {
  VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
  {
    VersionChain chain(arena);
    for (uint64_t n = 1; n <= 8; ++n) chain.Install(Version{n, ValueFor(n), 1});
    // Quiesce: everything retired before the pin is out of the picture.
    for (int i = 0; i < 4; ++i) EpochManager::Global().Advance();
    const uint64_t freed_before = arena->GetStats().slabs_freed;

    {
      EpochGuard guard;  // the reader: holds whatever is published now
      const auto pinned_read = chain.Read(8);
      ASSERT_TRUE(pinned_read.ok());

      // Churn: installs + prunes republish the array repeatedly and
      // release old payloads, killing the slabs the pinned generation
      // lives in.
      for (uint64_t n = 9; n <= 600; ++n) {
        chain.Install(Version{n, ValueFor(n), 1});
        if (n % 8 == 0) chain.Prune(n - 4);
      }
      EXPECT_GT(arena->GetStats().slabs_retired, 0u);

      // Reclamation can run at most one epoch past our pin: no slab
      // retired after the pin may be freed or re-carved yet.
      for (int i = 0; i < 8; ++i) EpochManager::Global().Advance();
      EXPECT_EQ(arena->GetStats().slabs_freed, freed_before);

      // Note what the pin does NOT promise: version 8 is logically
      // pruned by now, so a fresh Read(8) is correctly NotFound — EBR
      // protects the bytes a reader already holds, not the logical
      // visibility of old versions to new reads. Fresh reads see the
      // current chain, intact.
      const auto current = chain.Read(600);
      ASSERT_TRUE(current.ok());
      EXPECT_EQ(current->version, 600u);
      EXPECT_EQ(current->value, ValueFor(current->version));
    }

    // Reader gone: the same drive frees the backlog and reuse resumes.
    for (int i = 0; i < 4; ++i) EpochManager::Global().Advance();
    EXPECT_GT(arena->GetStats().slabs_freed, freed_before);
    const uint64_t allocated = arena->GetStats().slabs_allocated;
    for (uint64_t n = 601; n <= 700; ++n) {
      chain.Install(Version{n, ValueFor(n), 1});
    }
    EXPECT_GT(arena->GetStats().slabs_recycled, 0u);
    EXPECT_EQ(arena->GetStats().slabs_allocated, allocated);
  }
  arena->Close();
  for (int i = 0; i < 3; ++i) EpochManager::Global().Advance();
}

// After arbitrary concurrent churn the relaxed per-shard counters must
// agree with ground truth once quiescent — the contract behind the
// O(shards) TotalVersions that GC accounting now uses.
TEST(ReadPathStressTest, VersionCountersAgreeWithSlowScanWhenQuiescent) {
  ObjectStore store(8);
  store.Preload(256, "0");

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 1; i <= 3000; ++i) {
        const ObjectKey key = (t * 67 + i) % 256;
        VersionChain* chain = store.GetOrCreate(key);
        const VersionNumber n = i * 8 + t + 1;
        chain->Install(Version{n, ValueFor(n), 1});
        if (i % 16 == 0) chain->Prune(n / 2);
        if (i % 64 == 0) {
          chain->Install(Version{n + (uint64_t{1} << 50), "doomed", 1});
          chain->Remove(n + (uint64_t{1} << 50));
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(store.TotalVersions(), store.TotalVersionsSlow());
  const size_t before = store.TotalVersions();
  const size_t pruned = store.PruneAll(uint64_t{1} << 40);
  EXPECT_EQ(store.TotalVersions(), before - pruned);
  EXPECT_EQ(store.TotalVersions(), store.TotalVersionsSlow());
}

}  // namespace
}  // namespace mvcc
