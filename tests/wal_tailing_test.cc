// WriteAheadLog::BatchesSince — the incremental tail replication rides
// on — and its interaction with Truncate/MaxTn: tailing across a
// truncation gap must be refused (the caller resyncs from the covering
// checkpoint), never silently skipped.

#include "recovery/wal.h"

#include <gtest/gtest.h>

namespace mvcc {
namespace {

CommitBatch Batch(TxnId txn, TxnNumber tn, ObjectKey key) {
  return CommitBatch{txn, tn, {{key, "v" + std::to_string(tn)}}};
}

TEST(WalTailingTest, EmptyLogYieldsEmptyTail) {
  WriteAheadLog log;
  auto tail = log.BatchesSince(0);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->empty());
}

TEST(WalTailingTest, ReturnsOnlyBatchesPastTheCursor) {
  WriteAheadLog log;
  log.Append(Batch(1, 1, 10));
  log.Append(Batch(2, 2, 11));
  log.Append(Batch(3, 3, 12));
  auto tail = log.BatchesSince(1);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].tn, 2u);
  EXPECT_EQ((*tail)[1].tn, 3u);
  // Cursor at the head: the whole log.
  EXPECT_EQ(log.BatchesSince(0)->size(), 3u);
  // Cursor at the tail: nothing.
  EXPECT_TRUE(log.BatchesSince(3)->empty());
}

TEST(WalTailingTest, SortsOutOfOrderAppendsByTn) {
  // TO/OCC writers may commit out of tn order, so appends arrive out of
  // order; the tail must come back ascending (replicas apply in tn
  // order, seq = position in this ordering).
  WriteAheadLog log;
  log.Append(Batch(6, 6, 1));
  log.Append(Batch(4, 4, 2));
  log.Append(Batch(5, 5, 3));
  auto tail = log.BatchesSince(3);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 3u);
  EXPECT_EQ((*tail)[0].tn, 4u);
  EXPECT_EQ((*tail)[1].tn, 5u);
  EXPECT_EQ((*tail)[2].tn, 6u);
}

TEST(WalTailingTest, TruncationBelowCursorIsRefused) {
  WriteAheadLog log;
  for (TxnNumber tn = 1; tn <= 6; ++tn) log.Append(Batch(tn, tn, tn));
  log.Truncate(4);  // checkpoint covered tn <= 4
  EXPECT_EQ(log.TruncatedUpTo(), 4u);

  // A cursor below the watermark cannot tell whether (cursor, 4] held
  // batches that are now gone — kUnavailable forces the resync path.
  for (TxnNumber cursor : {0u, 1u, 3u}) {
    auto tail = log.BatchesSince(cursor);
    EXPECT_FALSE(tail.ok()) << "cursor " << cursor;
    EXPECT_TRUE(tail.status().IsUnavailable()) << tail.status().ToString();
  }

  // Boundary: a cursor exactly at the watermark is safe — everything at
  // or below it is covered by the checkpoint the truncation mirrored.
  auto at_watermark = log.BatchesSince(4);
  ASSERT_TRUE(at_watermark.ok());
  ASSERT_EQ(at_watermark->size(), 2u);
  EXPECT_EQ((*at_watermark)[0].tn, 5u);
  EXPECT_EQ((*at_watermark)[1].tn, 6u);
}

TEST(WalTailingTest, WatermarkIsMonotoneAcrossTruncations) {
  WriteAheadLog log;
  for (TxnNumber tn = 1; tn <= 8; ++tn) log.Append(Batch(tn, tn, tn));
  log.Truncate(5);
  log.Truncate(3);  // stale checkpoint must not lower the watermark
  EXPECT_EQ(log.TruncatedUpTo(), 5u);
  EXPECT_FALSE(log.BatchesSince(4).ok());
  EXPECT_TRUE(log.BatchesSince(5).ok());
}

TEST(WalTailingTest, MaxTnSurvivesTruncation) {
  WriteAheadLog log;
  for (TxnNumber tn = 1; tn <= 5; ++tn) log.Append(Batch(tn, tn, tn));
  EXPECT_EQ(log.MaxTn(), 5u);
  log.Truncate(5);  // whole log covered: empty, but the durable frontier
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.MaxTn(), 5u);  // recovery still knows how far we got
  // Tailing from the frontier works and is empty; below it is refused.
  EXPECT_TRUE(log.BatchesSince(5)->empty());
  EXPECT_FALSE(log.BatchesSince(2).ok());
}

TEST(WalTailingTest, TailingResumesPastTruncationAfterNewAppends) {
  WriteAheadLog log;
  for (TxnNumber tn = 1; tn <= 3; ++tn) log.Append(Batch(tn, tn, tn));
  log.Truncate(3);
  log.Append(Batch(4, 4, 40));
  log.Append(Batch(5, 5, 50));
  auto tail = log.BatchesSince(3);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].tn, 4u);
  EXPECT_EQ((*tail)[1].writes[0].key, 50u);
}

}  // namespace
}  // namespace mvcc
