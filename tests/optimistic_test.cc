#include "cc/optimistic.h"

#include <gtest/gtest.h>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcOcc;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(VcOccTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  EXPECT_EQ(*txn->Read(1), "one");
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
  EXPECT_EQ(txn->txn_number(), 1u);
}

TEST(VcOccTest, ValidationRejectsStaleRead) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*t1->Read(5), "init");  // t1 reads x
  ASSERT_TRUE(t2->Write(5, "changed").ok());
  ASSERT_TRUE(t2->Commit().ok());   // t2 validates first, writing x
  ASSERT_TRUE(t1->Write(6, "y").ok());
  Status s = t1->Commit();
  EXPECT_TRUE(s.IsAborted());       // t1's read of x is stale
  EXPECT_FALSE(t1->active());
  EXPECT_EQ(db.counters().rw_aborts.load(), 1u);
}

TEST(VcOccTest, DisjointTransactionsBothCommit) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*t1->Read(1), "init");
  ASSERT_TRUE(t1->Write(2, "a").ok());
  EXPECT_EQ(*t2->Read(3), "init");
  ASSERT_TRUE(t2->Write(4, "b").ok());
  EXPECT_TRUE(t2->Commit().ok());
  EXPECT_TRUE(t1->Commit().ok());
}

TEST(VcOccTest, BlindWritesNeverConflict) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t1->Write(5, "t1").ok());
  ASSERT_TRUE(t2->Write(5, "t2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // backward validation checks reads only
  // Serial order = validation order: t2 is later.
  EXPECT_EQ(*db.Get(5), "t2");
}

TEST(VcOccTest, WriteThenReadOwnValue) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(7, "mine").ok());
  EXPECT_EQ(*txn->Read(7), "mine");
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(VcOccTest, ReadOnlyBypassesValidation) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(1, "x").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  auto t = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t->Write(1, "y").ok());
  ASSERT_TRUE(t->Commit().ok());
  // The reader's snapshot is unaffected and commits with no validation.
  EXPECT_EQ(*reader->Read(1), "x");
  EXPECT_TRUE(reader->Commit().ok());
  EXPECT_EQ(db.counters().ro_commits.load(), 1u);
}

TEST(VcOccTest, ValidationLogTrimsWhenQuiescent) {
  Database db(Opts());
  auto* occ = dynamic_cast<Optimistic*>(&db.protocol());
  ASSERT_NE(occ, nullptr);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Put(i % 16, "v").ok());
  }
  // With no active transactions, the log should not retain all 50 sets.
  EXPECT_LT(occ->ValidationLogSize(), 50u);
}

TEST(VcOccTest, AbortBeforeCommitLeavesNoTrace) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(3, "doomed").ok());
  txn->Abort();
  EXPECT_EQ(*db.Get(3), "init");
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
  // A later transaction is unaffected.
  ASSERT_TRUE(db.Put(3, "fine").ok());
  EXPECT_EQ(*db.Get(3), "fine");
}

TEST(VcOccTest, StaleReadDetectedAcrossLongGap) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*t1->Read(5), "init");
  // Many intervening committed writers.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(db.Put(5, "v").ok());
  ASSERT_TRUE(t1->Write(6, "y").ok());
  EXPECT_TRUE(t1->Commit().IsAborted());
}

TEST(VcOccTest, ReaderOfUnrelatedKeysSurvivesManyCommits) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*t1->Read(10), "init");
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(db.Put(5, "v").ok());
  ASSERT_TRUE(t1->Write(11, "y").ok());
  EXPECT_TRUE(t1->Commit().ok());
}

}  // namespace
}  // namespace mvcc
