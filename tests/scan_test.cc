#include <gtest/gtest.h>

#include <thread>

#include "storage/key_index.h"
#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind = ProtocolKind::kVc2pl) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 10;
  opts.initial_value = "init";
  return opts;
}

TEST(KeyIndexTest, InsertAndRange) {
  KeyIndex index;
  for (ObjectKey k : {5, 1, 9, 3}) index.Insert(k);
  EXPECT_EQ(index.size(), 4u);
  EXPECT_EQ(index.Range(0, 100), (std::vector<ObjectKey>{1, 3, 5, 9}));
  EXPECT_EQ(index.Range(2, 5), (std::vector<ObjectKey>{3, 5}));
  EXPECT_EQ(index.Range(6, 8), (std::vector<ObjectKey>{}));
  EXPECT_EQ(index.Range(9, 9), (std::vector<ObjectKey>{9}));
}

TEST(KeyIndexTest, DuplicateInsertIsIdempotent) {
  KeyIndex index;
  index.Insert(7);
  index.Insert(7);
  EXPECT_EQ(index.size(), 1u);
}

TEST(ScanTest, FullRangeScan) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "three").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  auto scan = reader->Scan(0, 9);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 10u);
  EXPECT_EQ((*scan)[3].first, 3u);
  EXPECT_EQ((*scan)[3].second, "three");
  EXPECT_EQ((*scan)[4].second, "init");
  reader->Commit();
}

TEST(ScanTest, SubRangeAndEmptyRange) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  auto scan = reader->Scan(4, 6);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 3u);
  auto empty = reader->Scan(100, 200);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  reader->Commit();
}

TEST(ScanTest, PhantomFreeSnapshotScan) {
  // An object created after the reader's snapshot must not appear,
  // with no locking whatsoever — the chain has no version <= sn.
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  ASSERT_TRUE(db.Put(42, "phantom").ok());  // new key after the snapshot
  auto scan = reader->Scan(0, 100);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 10u);  // preloaded keys only
  for (const auto& [key, value] : *scan) EXPECT_NE(key, 42u);
  reader->Commit();
  // A new reader sees it.
  auto reader2 = db.Begin(TxnClass::kReadOnly);
  auto scan2 = reader2->Scan(0, 100);
  ASSERT_TRUE(scan2.ok());
  EXPECT_EQ(scan2->size(), 11u);
  reader2->Commit();
}

TEST(ScanTest, ScanValuesAreFromOneSnapshot) {
  Database db(Opts(ProtocolKind::kVcTo));
  auto reader = db.Begin(TxnClass::kReadOnly);
  // Concurrent multi-key committed update must be invisible.
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(0, "new").ok());
  ASSERT_TRUE(writer->Write(1, "new").ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto scan = reader->Scan(0, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)[0].second, "init");
  EXPECT_EQ((*scan)[1].second, "init");
  reader->Commit();
}

TEST(ScanTest, ScanRejectedForBaselineReadWriteTransactions) {
  // Baseline protocols expose no phantom-safe read-write scan.
  Database db(Opts(ProtocolKind::kMvto));
  auto rw = db.Begin(TxnClass::kReadWrite);
  EXPECT_TRUE(rw->Scan(0, 9).status().IsInvalidArgument());
  rw->Abort();
}

TEST(ScanTest, ScanRejectedUnderBaselineProtocols) {
  Database db(Opts(ProtocolKind::kMvto));
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_TRUE(reader->Scan(0, 9).status().IsInvalidArgument());
  reader->Abort();
}

TEST(ScanTest, ScanAfterFinishRejected) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  reader->Commit();
  EXPECT_TRUE(reader->Scan(0, 9).status().IsInvalidArgument());
}

TEST(ScanTest, ScanIsStableUnderConcurrentWriters) {
  Database db(Opts());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      db.Put(i % 10, std::to_string(i));
      ++i;
    }
  });
  for (int round = 0; round < 100; ++round) {
    auto reader = db.Begin(TxnClass::kReadOnly);
    auto first = reader->Scan(0, 9);
    auto second = reader->Scan(0, 9);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(*first, *second);  // repeatable within the transaction
    reader->Commit();
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace mvcc
