// ReaderRegistry after the lock-free rewrite: Enter/Exit sit on the
// read-only Begin/Commit path the paper promises is
// synchronization-free, so the fast path must not take the mutex.
// These tests pin the semantics the garbage collector depends on —
// MinActive is a safe (never too high) watermark bound, multiset
// semantics under duplicate start numbers, and the overflow path once
// more than kSlots readers are in flight — plus a concurrent stress
// regression that doubles as the TSan target.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gc/reader_registry.h"

namespace mvcc {
namespace {

TEST(ReaderRegistry, EnterExitAndMinActive) {
  ReaderRegistry reg;
  EXPECT_FALSE(reg.MinActive().has_value());
  EXPECT_EQ(reg.ActiveCount(), 0u);

  reg.Enter(7);
  reg.Enter(3);
  reg.Enter(11);
  EXPECT_EQ(reg.ActiveCount(), 3u);
  ASSERT_TRUE(reg.MinActive().has_value());
  EXPECT_EQ(*reg.MinActive(), 3u);

  reg.Exit(3);
  EXPECT_EQ(*reg.MinActive(), 7u);
  reg.Exit(7);
  reg.Exit(11);
  EXPECT_FALSE(reg.MinActive().has_value());
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

// Start number 0 (the empty snapshot) is a valid pin and must be
// tracked — slots encode sn + 1 precisely so 0 can mean "free".
TEST(ReaderRegistry, SnapshotZeroIsTracked) {
  ReaderRegistry reg;
  reg.Enter(0);
  ASSERT_TRUE(reg.MinActive().has_value());
  EXPECT_EQ(*reg.MinActive(), 0u);
  EXPECT_EQ(reg.ActiveCount(), 1u);
  reg.Exit(0);
  EXPECT_FALSE(reg.MinActive().has_value());
}

// Duplicate start numbers: one Exit releases exactly one entry.
TEST(ReaderRegistry, MultisetSemanticsForEqualStartNumbers) {
  ReaderRegistry reg;
  reg.Enter(5);
  reg.Enter(5);
  reg.Enter(5);
  EXPECT_EQ(reg.ActiveCount(), 3u);
  reg.Exit(5);
  EXPECT_EQ(reg.ActiveCount(), 2u);
  EXPECT_EQ(*reg.MinActive(), 5u);
  reg.Exit(5);
  reg.Exit(5);
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

// More concurrent readers than slots: the surplus overflows into the
// locked set and MinActive still sees every pin.
TEST(ReaderRegistry, OverflowBeyondSlotCapacity) {
  ReaderRegistry reg;
  const size_t total = ReaderRegistry::kSlots + 50;
  for (size_t i = 0; i < total; ++i) {
    reg.Enter(TxnNumber(1000 + i));
  }
  EXPECT_EQ(reg.ActiveCount(), total);
  EXPECT_EQ(*reg.MinActive(), 1000u);

  // The minimum may live in a slot or in the overflow set depending on
  // probe order; releasing from both ends must keep MinActive exact.
  reg.Exit(1000);
  EXPECT_EQ(*reg.MinActive(), 1001u);
  for (size_t i = 1; i < total; ++i) {
    reg.Exit(TxnNumber(1000 + i));
  }
  EXPECT_EQ(reg.ActiveCount(), 0u);
  EXPECT_FALSE(reg.MinActive().has_value());
}

// The GC-facing guarantee under churn: every value MinActive returns
// while a reader is pinned is a safe watermark bound, i.e. never above
// that reader's start number (the pin was published before the scan).
// Also the TSan stress target for the lock-free slot path.
TEST(ReaderRegistry, ConcurrentChurnKeepsMinActiveSafe) {
  ReaderRegistry reg;
  constexpr TxnNumber kFloor = 100;
  reg.Enter(kFloor);  // pinned for the whole run

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread gc([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto min = reg.MinActive();
      ASSERT_TRUE(min.has_value());
      ASSERT_LE(*min, kFloor);
      ASSERT_GE(reg.ActiveCount(), 1u);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Random rng(42 + t);
      for (int i = 0; i < kItersPerThread; ++i) {
        // Transient pins strictly above the floor, sometimes several at
        // once to push past slot collisions (and, with many threads,
        // into overflow).
        const int depth = 1 + int(rng.Uniform(4));
        TxnNumber sns[4];
        for (int d = 0; d < depth; ++d) {
          sns[d] = kFloor + 1 + rng.Uniform(1000);
          reg.Enter(sns[d]);
        }
        for (int d = depth - 1; d >= 0; --d) {
          reg.Exit(sns[d]);
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true, std::memory_order_relaxed);
  gc.join();

  EXPECT_EQ(reg.ActiveCount(), 1u);
  EXPECT_EQ(*reg.MinActive(), kFloor);
  reg.Exit(kFloor);
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

}  // namespace
}  // namespace mvcc
