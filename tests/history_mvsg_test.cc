#include "history/mvsg.h"

#include <gtest/gtest.h>

#include "history/history.h"
#include "history/serializability.h"

namespace mvcc {
namespace {

TxnRecord Rw(TxnId id, TxnNumber number) {
  TxnRecord r;
  r.id = id;
  r.cls = TxnClass::kReadWrite;
  r.number = number;
  return r;
}

TxnRecord Ro(TxnId id, TxnNumber number) {
  TxnRecord r;
  r.id = id;
  r.cls = TxnClass::kReadOnly;
  r.number = number;
  return r;
}

TEST(MvsgTest, EmptyHistoryIsAcyclic) {
  Mvsg graph({});
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_TRUE(graph.FindCycle().empty());
}

TEST(MvsgTest, SerialChainIsAcyclic) {
  // T1 writes x; T2 reads T1's x and writes x again; T3 reads T2's x.
  TxnRecord t1 = Rw(1, 1);
  t1.writes.push_back({/*key=*/7, /*version=*/1});
  TxnRecord t2 = Rw(2, 2);
  t2.reads.push_back({7, 1, 1});
  t2.writes.push_back({7, 2});
  TxnRecord t3 = Rw(3, 3);
  t3.reads.push_back({7, 2, 2});
  Mvsg graph({t1, t2, t3});
  EXPECT_TRUE(graph.IsAcyclic());
  // T1->T2 (writer chain, coinciding with the reads-from edge) and
  // T2->T3 (reads-from): duplicates are stored once.
  EXPECT_EQ(graph.NumEdges(), 2u);
}

TEST(MvsgTest, InconsistentReaderCreatesCycle) {
  // Classic non-1SR anomaly: T1 and T2 both write x and y; a reader
  // observes x from T1 but y from T2 while the version order says
  // T1 << T2 on x and T2 << T1 on y is impossible -- so model it as the
  // reader seeing "half" of each: x from T1 (missing T2's x) and y from
  // T2. With version order x: T1 << T2, the reader gets an edge to T2
  // (next writer of x) and an edge from T2 (reads y from it)... build the
  // actual cyclic case: reader reads x_1 (old) and y_2 (new).
  TxnRecord t1 = Rw(1, 1);
  t1.writes.push_back({1, 1});  // x_1
  t1.writes.push_back({2, 1});  // y_1
  TxnRecord t2 = Rw(2, 2);
  t2.writes.push_back({1, 2});  // x_2
  t2.writes.push_back({2, 2});  // y_2
  TxnRecord reader = Ro(3, 99);
  reader.reads.push_back({1, 1, 1});  // x from T1 (stale)
  reader.reads.push_back({2, 2, 2});  // y from T2 (fresh)
  Mvsg graph({t1, t2, reader});
  // Edge T2 -> reader (reads-from y) and reader -> T2 (version order on
  // x: next writer after x_1)? No: that IS the cycle reader <-> T2.
  EXPECT_FALSE(graph.IsAcyclic());
  auto cycle = graph.FindCycle();
  EXPECT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(MvsgTest, ConsistentSnapshotReaderIsAcyclic) {
  TxnRecord t1 = Rw(1, 1);
  t1.writes.push_back({1, 1});
  t1.writes.push_back({2, 1});
  TxnRecord t2 = Rw(2, 2);
  t2.writes.push_back({1, 2});
  t2.writes.push_back({2, 2});
  TxnRecord reader = Ro(3, 1);  // snapshot at 1: sees T1's x and y
  reader.reads.push_back({1, 1, 1});
  reader.reads.push_back({2, 1, 1});
  Mvsg graph({t1, t2, reader});
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(MvsgTest, InitialVersionsAttributedToT0) {
  TxnRecord reader = Ro(5, 0);
  reader.reads.push_back({3, 0, 0});  // initial version
  TxnRecord writer = Rw(6, 1);
  writer.writes.push_back({3, 1});
  Mvsg graph({reader, writer});
  EXPECT_TRUE(graph.IsAcyclic());
  // Reader must have a version-order edge to the next writer of key 3.
  ASSERT_TRUE(graph.adjacency().count(5));
  EXPECT_TRUE(graph.adjacency().at(5).count(6));
}

TEST(MvsgTest, LostUpdateCycleDetected) {
  // T1 and T2 both read x_0 and both write x: whichever version order,
  // one of them read a version that the other overwrote "in between".
  TxnRecord t1 = Rw(1, 1);
  t1.reads.push_back({1, 0, 0});
  t1.writes.push_back({1, 1});
  TxnRecord t2 = Rw(2, 2);
  t2.reads.push_back({1, 0, 0});
  t2.writes.push_back({1, 2});
  Mvsg graph({t1, t2});
  // t2 read x_0; next writer after version 0 is t1 => t2 -> t1.
  // t1 -> t2 via writer chain. Cycle.
  EXPECT_FALSE(graph.IsAcyclic());
}

TEST(SerializabilityTest, LemmaOneDuplicateNumbers) {
  TxnRecord a = Rw(1, 5);
  TxnRecord b = Rw(2, 5);
  auto violations = CheckLemmas({a, b});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("Lemma 1"), std::string::npos);
}

TEST(SerializabilityTest, LemmaOneAllowsSharedReadOnlyNumbers) {
  // Several read-only transactions may share a start number.
  TxnRecord a = Ro(1, 5);
  TxnRecord b = Ro(2, 5);
  EXPECT_TRUE(CheckLemmas({a, b}).empty());
}

TEST(SerializabilityTest, LemmaTwoReadAboveOwnNumber) {
  TxnRecord r = Ro(1, 5);
  r.reads.push_back({1, 9, 2});  // read version 9 with number 5
  auto violations = CheckLemmas({r});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("Lemma 2"), std::string::npos);
}

TEST(SerializabilityTest, LemmaThreeInterveningWrite) {
  TxnRecord writer = Rw(1, 7);
  writer.writes.push_back({1, 7});
  TxnRecord reader = Ro(2, 8);
  reader.reads.push_back({1, 3, 9});  // read version 3, but 7 in (3, 8]
  auto violations = CheckLemmas({writer, reader});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("Lemma 3"), std::string::npos);
}

TEST(SerializabilityTest, LemmaThreeAllowsOwnWrite) {
  TxnRecord t = Rw(1, 7);
  t.reads.push_back({1, 3, 9});
  t.writes.push_back({1, 7});  // i == k: its own later write is fine
  EXPECT_TRUE(CheckLemmas({t}).empty());
}

TEST(SerializabilityTest, CleanHistoryPasses) {
  TxnRecord t1 = Rw(1, 1);
  t1.writes.push_back({1, 1});
  TxnRecord t2 = Rw(2, 2);
  t2.reads.push_back({1, 1, 1});
  t2.writes.push_back({1, 2});
  TxnRecord ro = Ro(3, 1);
  ro.reads.push_back({1, 1, 1});
  History history;
  history.Record(t1);
  history.Record(t2);
  history.Record(ro);
  auto verdict = CheckOneCopySerializable(history);
  EXPECT_TRUE(verdict.one_copy_serializable);
  EXPECT_TRUE(verdict.AllLemmasHold());
}

TEST(HistoryTest, MergeCombinesRecords) {
  History a, b;
  a.Record(Rw(1, 1));
  b.Record(Rw(2, 2));
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace mvcc
