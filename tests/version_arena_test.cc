// VersionArena unit tests plus the arena-backed VersionChain
// model-equivalence property test: across randomized install / read /
// prune / remove sequences — including out-of-order installs, empty and
// oversized payloads, and slab sizes small enough to force constant
// slab turnover — a chain carving its storage from a slab arena must be
// observationally identical to a heap-backed reference model. Seeds
// sweep wider in CI via MVCC_ARENA_SEEDS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/random.h"
#include "storage/version_arena.h"
#include "storage/version_chain.h"

namespace mvcc {
namespace {

uint64_t SweepSeeds(uint64_t default_count) {
  const char* env = std::getenv("MVCC_ARENA_SEEDS");
  if (env == nullptr || *env == '\0') return default_count;
  const uint64_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? default_count : n;
}

// Drains grace periods so everything retired so far gets freed/recycled
// (each Advance moves one epoch when no reader straddles the previous).
void DrainEbr() {
  EpochManager::Global().Advance();
  EpochManager::Global().Advance();
  EpochManager::Global().Advance();
}

TEST(VersionArenaTest, CarvesReleasesAndRecyclesSlabs) {
  VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
  // Fill several slabs worth of blocks, then release them all: every
  // non-open slab must die, get retired in ONE batch each, and return
  // to the free list once the grace period elapses.
  std::vector<void*> blocks;
  constexpr size_t kBlock = 256;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena->Allocate(kBlock));
  for (void* p : blocks) {
    std::memset(p, 0xab, kBlock);  // blocks must be writable and distinct
    arena->Release(p, kBlock);
  }
  blocks.clear();
  DrainEbr();
  VersionArena::Stats s = arena->GetStats();
  EXPECT_GE(s.slabs_allocated, 2u);  // 64 * 256B cannot fit one 4K slab
  EXPECT_GT(s.slabs_retired, 0u);
  EXPECT_EQ(s.slabs_freed, s.slabs_retired);  // all grace periods elapsed
  EXPECT_EQ(s.allocs, 64u);

  // New allocations must reuse the recycled slabs, not grow the arena.
  const uint64_t allocated_before = s.slabs_allocated;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena->Allocate(kBlock));
  s = arena->GetStats();
  EXPECT_GT(s.slabs_recycled, 0u);
  EXPECT_EQ(s.slabs_allocated, allocated_before);
  for (void* p : blocks) arena->Release(p, kBlock);
  arena->Close();
  DrainEbr();  // let the parked slabs come home so the arena frees itself
}

TEST(VersionArenaTest, OversizedBlocksTakeTheHeapPath) {
  VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
  const size_t big = arena->LargeThreshold() + 1;
  void* p = arena->Allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xcd, big);
  arena->Release(p, big);
  const VersionArena::Stats s = arena->GetStats();
  EXPECT_EQ(s.large_allocs, 1u);
  arena->Close();
  DrainEbr();
}

TEST(VersionArenaTest, ZeroByteAllocationIsNull) {
  VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
  EXPECT_EQ(arena->Allocate(0), nullptr);
  arena->Release(nullptr, 0);  // must be a no-op
  arena->Close();
  DrainEbr();
}

// ---------------------------------------------------------------------
// Model equivalence: arena-backed chain vs heap-backed reference.
// ---------------------------------------------------------------------

// Reference model with the full VersionChain surface, including Remove.
class ChainModel {
 public:
  void Install(VersionNumber n, const Value& v) { versions_[n] = v; }

  std::optional<std::pair<VersionNumber, Value>> Read(
      TxnNumber at_most) const {
    auto it = versions_.upper_bound(at_most);
    if (it == versions_.begin()) return std::nullopt;
    --it;
    return std::make_pair(it->first, it->second);
  }

  std::optional<std::pair<VersionNumber, Value>> ReadLatest() const {
    if (versions_.empty()) return std::nullopt;
    auto it = std::prev(versions_.end());
    return std::make_pair(it->first, it->second);
  }

  bool Remove(VersionNumber n) { return versions_.erase(n) > 0; }

  size_t Prune(VersionNumber watermark) {
    auto keep = versions_.upper_bound(watermark);
    if (keep == versions_.begin()) return 0;
    --keep;  // newest version <= watermark survives
    size_t removed = 0;
    for (auto it = versions_.begin(); it != keep;) {
      it = versions_.erase(it);
      ++removed;
    }
    return removed;
  }

  size_t size() const { return versions_.size(); }

 private:
  std::map<VersionNumber, Value> versions_;
};

// Payload generator: mixes empty values, short strings, and blobs big
// enough to take the arena's heap path (slab_bytes/8 = 512 for the 4K
// slabs below), so every storage class is exercised.
Value PayloadFor(Random& rng, VersionNumber n) {
  const uint64_t kind = rng.Uniform(10);
  if (kind == 0) return Value();
  if (kind == 1) return Value(600 + rng.Uniform(600), 'x');
  return "v" + std::to_string(n);
}

TEST(ArenaChainEquivalence, MatchesHeapModelAcrossSeeds) {
  const uint64_t seeds = SweepSeeds(6);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rng(0x9e3779b9 * seed + 1);
    // Tiny slabs: a few dozen installs turn a slab over, so the sweep
    // constantly retires, recycles, and re-carves while the chain is
    // live — the allocator-churn case the redesign must keep correct.
    VersionArena* arena = VersionArena::Create(/*slab_bytes=*/4096);
    {
      VersionChain chain(arena);
      ChainModel model;
      std::set<VersionNumber> used;

      for (int step = 0; step < 4000; ++step) {
        const double roll = rng.NextDouble();
        if (roll < 0.40) {
          // Install. Half in ascending order (append fast path), half
          // at a random number (out-of-order republish path).
          VersionNumber n;
          if (rng.Uniform(2) == 0 && !used.empty()) {
            n = rng.Uniform(100000);
          } else {
            n = used.empty() ? 1 : *used.rbegin() + 1 + rng.Uniform(3);
          }
          while (used.count(n)) ++n;
          used.insert(n);
          const Value v = PayloadFor(rng, n);
          chain.Install(Version{n, v, 1});
          model.Install(n, v);
        } else if (roll < 0.80) {
          const TxnNumber at = rng.Uniform(100000);
          auto expected = model.Read(at);
          auto actual = chain.Read(at);
          if (expected.has_value()) {
            ASSERT_TRUE(actual.ok()) << "step " << step;
            ASSERT_EQ(actual->version, expected->first) << "step " << step;
            ASSERT_EQ(actual->value, expected->second) << "step " << step;
          } else {
            ASSERT_TRUE(actual.status().IsNotFound()) << "step " << step;
          }
        } else if (roll < 0.88) {
          auto expected = model.ReadLatest();
          auto actual = chain.ReadLatest();
          if (expected.has_value()) {
            ASSERT_TRUE(actual.ok()) << "step " << step;
            ASSERT_EQ(actual->version, expected->first) << "step " << step;
            ASSERT_EQ(actual->value, expected->second) << "step " << step;
            ASSERT_EQ(chain.LatestNumber(), expected->first);
          } else {
            ASSERT_TRUE(actual.status().IsNotFound()) << "step " << step;
          }
        } else if (roll < 0.95) {
          const VersionNumber watermark = rng.Uniform(100000);
          ASSERT_EQ(chain.Prune(watermark), model.Prune(watermark))
              << "step " << step;
        } else {
          // Remove: half the time a version that exists, half a miss.
          VersionNumber n = rng.Uniform(100000);
          if (rng.Uniform(2) == 0 && !used.empty()) {
            auto it = used.lower_bound(n);
            if (it == used.end()) it = used.begin();
            n = *it;
          }
          ASSERT_EQ(chain.Remove(n), model.Remove(n)) << "step " << step;
          used.erase(n);
        }
        ASSERT_EQ(chain.size(), model.size()) << "step " << step;
      }
    }
    arena->Close();
    DrainEbr();
  }
}

}  // namespace
}  // namespace mvcc
