#include "txn/retry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 8;
  opts.initial_value = "0";
  return opts;
}

TEST(RetryTest, CommitsOnFirstAttemptWithoutConflict) {
  Database db(Opts(ProtocolKind::kVc2pl));
  Status s = RunReadWriteTransaction(&db, [](Transaction& txn) {
    return txn.Write(1, "done");
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(*db.Get(1), "done");
  EXPECT_EQ(db.counters().rw_aborts.load(), 0u);
}

TEST(RetryTest, BodyErrorIsReturnedWithoutRetry) {
  Database db(Opts(ProtocolKind::kVc2pl));
  int calls = 0;
  Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
    ++calls;
    (void)txn;
    return Status::NotFound("business-level failure");
  });
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesUntilAttemptBudgetExhausted) {
  Database db(Opts(ProtocolKind::kVc2pl));
  // Park an exclusive lock so every attempt dies under wait-die.
  auto blocker = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(blocker->Write(1, "held").ok());
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 5;
  Status s = RunReadWriteTransaction(
      &db,
      [&](Transaction& txn) {
        ++calls;
        return txn.Write(1, "mine");
      },
      options);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 5);
  blocker->Abort();
}

TEST(RetryTest, SucceedsOnceConflictClears) {
  Database db(Opts(ProtocolKind::kVcOcc));
  std::atomic<int> calls{0};
  // First attempt is sabotaged by a conflicting commit between the read
  // and validation; the retry sees the new state and commits.
  Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
    const int attempt = calls.fetch_add(1);
    auto v = txn.Read(1);
    if (!v.ok()) return v.status();
    if (attempt == 0) {
      // Conflicting writer sneaks in and validates first.
      EXPECT_TRUE(db.Put(1, "interference").ok());
    }
    return txn.Write(2, "derived-from-" + *v);
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(*db.Get(2), "derived-from-interference");
}

TEST(RetryTest, ConcurrentIncrementsLoseNothing) {
  // The classic counter: N threads x M increments through the retry
  // loop must land exactly N*M, under every VC protocol.
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive}) {
    Database db(Opts(kind));
    constexpr int kThreads = 4;
    constexpr int kIncrements = 150;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kIncrements; ++i) {
          RetryOptions options;
          options.max_attempts = 0;  // unlimited
          Status s = RunReadWriteTransaction(
              &db,
              [](Transaction& txn) {
                auto v = txn.Read(0);
                if (!v.ok()) return v.status();
                return txn.Write(0, std::to_string(std::stoll(*v) + 1));
              },
              options);
          ASSERT_TRUE(s.ok());
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(*db.Get(0), std::to_string(kThreads * kIncrements))
        << ProtocolKindName(kind);
  }
}

TEST(RetryTest, ReadOnlyVariantRuns) {
  Database db(Opts(ProtocolKind::kVc2pl));
  ASSERT_TRUE(db.Put(3, "x").ok());
  Value seen;
  Status s = RunReadOnlyTransaction(&db, [&](Transaction& txn) {
    auto v = txn.Read(3);
    if (!v.ok()) return v.status();
    seen = *v;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(seen, "x");
}

TEST(RetryTest, ReadOnlyAbsorbsBaselineReaderAborts) {
  // Under single-version 2PL a reader can be a wait-die victim; the
  // retry loop hides that from the application.
  Database db(Opts(ProtocolKind::kSv2pl));
  auto writer = db.Begin(TxnClass::kReadWrite);  // id 1: older
  ASSERT_TRUE(writer->Write(1, "held").ok());
  std::atomic<bool> done{false};
  std::thread reader([&] {
    RetryOptions options;
    options.max_attempts = 0;  // unlimited: outlive the writer's locks
    Status s = RunReadOnlyTransaction(
        &db,
        [](Transaction& txn) { return txn.Read(1).status(); }, options);
    EXPECT_TRUE(s.ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(writer->Commit().ok());
  reader.join();
  EXPECT_TRUE(done.load());
  EXPECT_GT(db.counters().ro_aborts.load(), 0u);  // retries happened
}

}  // namespace
}  // namespace mvcc
