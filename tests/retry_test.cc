#include "txn/retry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 8;
  opts.initial_value = "0";
  return opts;
}

TEST(RetryTest, CommitsOnFirstAttemptWithoutConflict) {
  Database db(Opts(ProtocolKind::kVc2pl));
  Status s = RunReadWriteTransaction(&db, [](Transaction& txn) {
    return txn.Write(1, "done");
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(*db.Get(1), "done");
  EXPECT_EQ(db.counters().rw_aborts.load(), 0u);
}

TEST(RetryTest, BodyErrorIsReturnedWithoutRetry) {
  Database db(Opts(ProtocolKind::kVc2pl));
  int calls = 0;
  Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
    ++calls;
    (void)txn;
    return Status::NotFound("business-level failure");
  });
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesUntilAttemptBudgetExhausted) {
  Database db(Opts(ProtocolKind::kVc2pl));
  // Park an exclusive lock so every attempt dies under wait-die.
  auto blocker = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(blocker->Write(1, "held").ok());
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 5;
  Status s = RunReadWriteTransaction(
      &db,
      [&](Transaction& txn) {
        ++calls;
        return txn.Write(1, "mine");
      },
      options);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 5);
  blocker->Abort();
}

TEST(RetryTest, SucceedsOnceConflictClears) {
  Database db(Opts(ProtocolKind::kVcOcc));
  std::atomic<int> calls{0};
  // First attempt is sabotaged by a conflicting commit between the read
  // and validation; the retry sees the new state and commits.
  Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
    const int attempt = calls.fetch_add(1);
    auto v = txn.Read(1);
    if (!v.ok()) return v.status();
    if (attempt == 0) {
      // Conflicting writer sneaks in and validates first.
      EXPECT_TRUE(db.Put(1, "interference").ok());
    }
    return txn.Write(2, "derived-from-" + *v);
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(*db.Get(2), "derived-from-interference");
}

TEST(RetryTest, ConcurrentIncrementsLoseNothing) {
  // The classic counter: N threads x M increments through the retry
  // loop must land exactly N*M, under every VC protocol.
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive}) {
    Database db(Opts(kind));
    constexpr int kThreads = 4;
    constexpr int kIncrements = 150;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kIncrements; ++i) {
          RetryOptions options;
          options.max_attempts = 0;  // unlimited
          Status s = RunReadWriteTransaction(
              &db,
              [](Transaction& txn) {
                auto v = txn.Read(0);
                if (!v.ok()) return v.status();
                return txn.Write(0, std::to_string(std::stoll(*v) + 1));
              },
              options);
          ASSERT_TRUE(s.ok());
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(*db.Get(0), std::to_string(kThreads * kIncrements))
        << ProtocolKindName(kind);
  }
}

TEST(RetryTest, ReadOnlyVariantRuns) {
  Database db(Opts(ProtocolKind::kVc2pl));
  ASSERT_TRUE(db.Put(3, "x").ok());
  Value seen;
  Status s = RunReadOnlyTransaction(&db, [&](Transaction& txn) {
    auto v = txn.Read(3);
    if (!v.ok()) return v.status();
    seen = *v;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(seen, "x");
}

TEST(RetryTest, BackoffDisabledByDefault) {
  RetryOptions options;  // backoff_base_us == 0
  EXPECT_EQ(RetryBackoffMicros(options, 2, 12345), 0);
  EXPECT_EQ(RetryBackoffMicros(options, 10, 12345), 0);
}

TEST(RetryTest, BackoffGrowsExponentiallyToCap) {
  RetryOptions options;
  options.backoff_base_us = 100;
  options.backoff_max_us = 1000;
  // jitter_draw = 0 gives the minimum factor 0.5: delay is exactly half
  // the unjittered schedule, which makes growth easy to assert.
  EXPECT_EQ(RetryBackoffMicros(options, 2, 0), 50);    // 100 * 0.5
  EXPECT_EQ(RetryBackoffMicros(options, 3, 0), 100);   // 200 * 0.5
  EXPECT_EQ(RetryBackoffMicros(options, 4, 0), 200);   // 400 * 0.5
  EXPECT_EQ(RetryBackoffMicros(options, 5, 0), 400);   // 800 * 0.5
  EXPECT_EQ(RetryBackoffMicros(options, 6, 0), 500);   // capped at 1000
  // Deep attempt counts must not overflow the shift.
  EXPECT_EQ(RetryBackoffMicros(options, 200, 0), 500);
}

TEST(RetryTest, BackoffJitterStaysInHalfOpenRange) {
  RetryOptions options;
  options.backoff_base_us = 1000;
  options.backoff_max_us = 1000;
  Random rng(options.jitter_seed);
  for (int i = 0; i < 1000; ++i) {
    const int64_t d = RetryBackoffMicros(options, 2, rng.Next());
    EXPECT_GE(d, 500);
    EXPECT_LT(d, 1000);
  }
  // Same seed, same draws, same delays: contention runs replay exactly.
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(RetryBackoffMicros(options, 2 + (i % 8), a.Next()),
              RetryBackoffMicros(options, 2 + (i % 8), b.Next()));
  }
}

TEST(RetryTest, BackoffNeverRoundsToZero) {
  RetryOptions options;
  options.backoff_base_us = 1;
  options.backoff_max_us = 1;
  // 1us * 0.5 would truncate to 0; the floor keeps a real wait.
  EXPECT_EQ(RetryBackoffMicros(options, 2, 0), 1);
}

TEST(RetryTest, RetriesWithBackoffStillConverge) {
  Database db(Opts(ProtocolKind::kVc2pl));
  auto blocker = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(blocker->Write(1, "held").ok());
  std::atomic<bool> done{false};
  std::thread contender([&] {
    RetryOptions options;
    options.max_attempts = 0;
    options.backoff_base_us = 50;
    options.backoff_max_us = 2000;
    Status s = RunReadWriteTransaction(
        &db, [](Transaction& txn) { return txn.Write(1, "mine"); },
        options);
    EXPECT_TRUE(s.ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(blocker->Commit().ok());
  contender.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(*db.Get(1), "mine");
}

TEST(RetryTest, ReadOnlyAbsorbsBaselineReaderAborts) {
  // Under single-version 2PL a reader can be a wait-die victim; the
  // retry loop hides that from the application.
  Database db(Opts(ProtocolKind::kSv2pl));
  auto writer = db.Begin(TxnClass::kReadWrite);  // id 1: older
  ASSERT_TRUE(writer->Write(1, "held").ok());
  std::atomic<bool> done{false};
  std::thread reader([&] {
    RetryOptions options;
    options.max_attempts = 0;  // unlimited: outlive the writer's locks
    Status s = RunReadOnlyTransaction(
        &db,
        [](Transaction& txn) { return txn.Read(1).status(); }, options);
    EXPECT_TRUE(s.ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(writer->Commit().ok());
  reader.join();
  EXPECT_TRUE(done.load());
  EXPECT_GT(db.counters().ro_aborts.load(), 0u);  // retries happened
}

}  // namespace
}  // namespace mvcc
