#include "storage/object_store.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mvcc {
namespace {

TEST(ObjectStoreTest, PreloadCreatesInitialVersions) {
  ObjectStore store(8);
  store.Preload(100, "init");
  EXPECT_EQ(store.NumKeys(), 100u);
  EXPECT_EQ(store.TotalVersions(), 100u);
  VersionChain* chain = store.Find(42);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->Read(0)->value, "init");
  EXPECT_EQ(chain->Read(0)->writer, 0u);  // T0
}

TEST(ObjectStoreTest, FindMissingReturnsNull) {
  ObjectStore store;
  EXPECT_EQ(store.Find(7), nullptr);
}

TEST(ObjectStoreTest, GetOrCreateIsStable) {
  ObjectStore store;
  VersionChain* a = store.GetOrCreate(7);
  VersionChain* b = store.GetOrCreate(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.Find(7), a);
  EXPECT_EQ(store.NumKeys(), 1u);
}

TEST(ObjectStoreTest, TotalVersionsCountsAllChains) {
  ObjectStore store(4);
  store.Preload(10, "x");
  store.GetOrCreate(3)->Install(Version{5, "y", 1});
  store.GetOrCreate(3)->Install(Version{9, "z", 2});
  EXPECT_EQ(store.TotalVersions(), 12u);
}

TEST(ObjectStoreTest, PruneAllAppliesWatermarkEverywhere) {
  ObjectStore store(4);
  store.Preload(10, "x");
  for (ObjectKey k = 0; k < 10; ++k) {
    store.GetOrCreate(k)->Install(Version{5, "a", 1});
    store.GetOrCreate(k)->Install(Version{9, "b", 2});
  }
  EXPECT_EQ(store.TotalVersions(), 30u);
  // Watermark 6: versions 0 are unreachable under the newest-<=-6 rule.
  EXPECT_EQ(store.PruneAll(6), 10u);
  EXPECT_EQ(store.TotalVersions(), 20u);
}

TEST(ObjectStoreTest, ShardCountOfZeroIsClampedToOne) {
  ObjectStore store(0);
  store.Preload(5, "x");
  EXPECT_EQ(store.NumKeys(), 5u);
}

// Regression test: TotalVersions is a relaxed striped sum that may be
// read WHILE chains mutate. It used to cross-check against the O(keys)
// scan with an assert, which fired on benign in-flight deltas (an
// installer between its counter credit and its publish, a Remove racing
// a shard's table growth). The contract now: concurrent calls return a
// value that never strays further from ground truth than the number of
// in-flight operations, and exact agreement holds at quiescence.
TEST(ObjectStoreTest, TotalVersionsToleratesInFlightMutation) {
  ObjectStore store(4);
  constexpr uint64_t kKeys = 64;
  store.Preload(kKeys, "0");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  constexpr int kWriterThreads = 2;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 1; i <= 4000; ++i) {
        VersionChain* chain = store.GetOrCreate((i * 7 + t) % kKeys);
        const VersionNumber n = i * 4 + t + 1;
        chain->Install(Version{n, "v" + std::to_string(n), 1});
        if (i % 8 == 0) chain->Prune(n - 8);
        if (i % 32 == 0) {
          chain->Install(Version{n + (uint64_t{1} << 50), "doomed", 1});
          chain->Remove(n + (uint64_t{1} << 50));
        }
        // New keys too, so Find-side table growth races the counter.
        if (i % 64 == 0) store.GetOrCreate(kKeys + i * 2 + t);
      }
      stop.store(true, std::memory_order_release);
    });
  }

  // The regression: this loop crashed the old debug build (assert on
  // TotalVersionsSlow disagreement) and must now just observe sane,
  // bounded-skew values.
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t total = store.TotalVersions();
      // Never negative (clamped), never wildly past the maximum the
      // writers could have installed.
      if (total > kKeys + 2 * 4000 * kWriterThreads) {
        violations.fetch_add(1);
      }
    }
  });

  for (auto& w : writers) w.join();
  observer.join();

  EXPECT_EQ(violations.load(), 0u);
  // Quiescent: the striped sum agrees with the ground-truth scan.
  EXPECT_EQ(store.TotalVersions(), store.TotalVersionsSlow());
}

}  // namespace
}  // namespace mvcc
