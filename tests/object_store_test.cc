#include "storage/object_store.h"

#include <gtest/gtest.h>

namespace mvcc {
namespace {

TEST(ObjectStoreTest, PreloadCreatesInitialVersions) {
  ObjectStore store(8);
  store.Preload(100, "init");
  EXPECT_EQ(store.NumKeys(), 100u);
  EXPECT_EQ(store.TotalVersions(), 100u);
  VersionChain* chain = store.Find(42);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->Read(0)->value, "init");
  EXPECT_EQ(chain->Read(0)->writer, 0u);  // T0
}

TEST(ObjectStoreTest, FindMissingReturnsNull) {
  ObjectStore store;
  EXPECT_EQ(store.Find(7), nullptr);
}

TEST(ObjectStoreTest, GetOrCreateIsStable) {
  ObjectStore store;
  VersionChain* a = store.GetOrCreate(7);
  VersionChain* b = store.GetOrCreate(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.Find(7), a);
  EXPECT_EQ(store.NumKeys(), 1u);
}

TEST(ObjectStoreTest, TotalVersionsCountsAllChains) {
  ObjectStore store(4);
  store.Preload(10, "x");
  store.GetOrCreate(3)->Install(Version{5, "y", 1});
  store.GetOrCreate(3)->Install(Version{9, "z", 2});
  EXPECT_EQ(store.TotalVersions(), 12u);
}

TEST(ObjectStoreTest, PruneAllAppliesWatermarkEverywhere) {
  ObjectStore store(4);
  store.Preload(10, "x");
  for (ObjectKey k = 0; k < 10; ++k) {
    store.GetOrCreate(k)->Install(Version{5, "a", 1});
    store.GetOrCreate(k)->Install(Version{9, "b", 2});
  }
  EXPECT_EQ(store.TotalVersions(), 30u);
  // Watermark 6: versions 0 are unreachable under the newest-<=-6 rule.
  EXPECT_EQ(store.PruneAll(6), 10u);
  EXPECT_EQ(store.TotalVersions(), 20u);
}

TEST(ObjectStoreTest, ShardCountOfZeroIsClampedToOne) {
  ObjectStore store(0);
  store.Preload(5, "x");
  EXPECT_EQ(store.NumKeys(), 5u);
}

}  // namespace
}  // namespace mvcc
