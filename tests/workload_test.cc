#include "workload/runner.h"

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/report.h"

namespace mvcc {
namespace {

TEST(GeneratorTest, DeterministicForSameSeedAndStream) {
  WorkloadSpec spec;
  spec.seed = 9;
  WorkloadGenerator a(spec, 1), b(spec, 1);
  for (int i = 0; i < 50; ++i) {
    TxnPlan pa = a.Next(), pb = b.Next();
    ASSERT_EQ(pa.cls, pb.cls);
    ASSERT_EQ(pa.ops.size(), pb.ops.size());
    for (size_t j = 0; j < pa.ops.size(); ++j) {
      EXPECT_EQ(pa.ops[j].key, pb.ops[j].key);
      EXPECT_EQ(pa.ops[j].is_write, pb.ops[j].is_write);
    }
  }
}

TEST(GeneratorTest, DifferentStreamsDiffer) {
  WorkloadSpec spec;
  WorkloadGenerator a(spec, 1), b(spec, 2);
  bool any_difference = false;
  for (int i = 0; i < 50 && !any_difference; ++i) {
    TxnPlan pa = a.Next(), pb = b.Next();
    if (pa.cls != pb.cls || pa.ops.size() != pb.ops.size()) {
      any_difference = true;
      break;
    }
    for (size_t j = 0; j < pa.ops.size(); ++j) {
      if (pa.ops[j].key != pb.ops[j].key) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, ReadWritePlansContainAWrite) {
  WorkloadSpec spec;
  spec.read_only_fraction = 0.0;
  spec.write_fraction = 0.01;  // force the fallback path often
  WorkloadGenerator gen(spec, 1);
  for (int i = 0; i < 200; ++i) {
    TxnPlan plan = gen.Next();
    ASSERT_EQ(plan.cls, TxnClass::kReadWrite);
    bool has_write = false;
    for (const PlannedOp& op : plan.ops) has_write |= op.is_write;
    EXPECT_TRUE(has_write);
  }
}

TEST(GeneratorTest, ReadOnlyPlansNeverWrite) {
  WorkloadSpec spec;
  spec.read_only_fraction = 1.0;
  WorkloadGenerator gen(spec, 1);
  for (int i = 0; i < 100; ++i) {
    TxnPlan plan = gen.Next();
    ASSERT_EQ(plan.cls, TxnClass::kReadOnly);
    for (const PlannedOp& op : plan.ops) EXPECT_FALSE(op.is_write);
  }
}

TEST(GeneratorTest, KeysRespectRange) {
  WorkloadSpec spec;
  spec.num_keys = 37;
  spec.zipf_theta = 0.9;
  WorkloadGenerator gen(spec, 3);
  for (int i = 0; i < 100; ++i) {
    for (const PlannedOp& op : gen.Next().ops) EXPECT_LT(op.key, 37u);
  }
}

TEST(GeneratorTest, ScanFractionProducesScans) {
  WorkloadSpec spec;
  spec.scan_fraction = 0.5;
  spec.scan_span = 4;
  WorkloadGenerator gen(spec, 1);
  int scans = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    for (const PlannedOp& op : gen.Next().ops) {
      ++total;
      if (op.is_scan) {
        ++scans;
        EXPECT_EQ(op.span, 4u);
        EXPECT_FALSE(op.is_write);
      }
    }
  }
  EXPECT_GT(scans, total / 4);
  EXPECT_LT(scans, 3 * total / 4);
}

TEST(GeneratorTest, ZeroScanFractionProducesNone) {
  WorkloadSpec spec;
  spec.scan_fraction = 0.0;
  WorkloadGenerator gen(spec, 1);
  for (int i = 0; i < 50; ++i) {
    for (const PlannedOp& op : gen.Next().ops) EXPECT_FALSE(op.is_scan);
  }
}

TEST(GeneratorTest, MakeValueHasRequestedSize) {
  WorkloadSpec spec;
  spec.value_size = 16;
  WorkloadGenerator gen(spec, 1);
  EXPECT_EQ(gen.MakeValue(12345).size(), 16u);
}

TEST(RunnerTest, FixedTransactionCount) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 100;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 100;
  spec.read_only_fraction = 0.5;
  RunOptions run;
  run.threads = 2;
  run.txns_per_thread = 200;
  RunResult result = RunWorkload(&db, spec, run);
  EXPECT_EQ(result.committed() + result.aborted(), 400u);
  EXPECT_GT(result.committed(), 0u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.Throughput(), 0.0);
  EXPECT_FALSE(result.Summary().empty());
}

TEST(RunnerTest, ReadOnlyOnlyWorkloadCommitsEverything) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcTo;
  opts.preload_keys = 50;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 50;
  spec.read_only_fraction = 1.0;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 100;
  RunResult result = RunWorkload(&db, spec, run);
  EXPECT_EQ(result.committed_ro, 400u);
  EXPECT_EQ(result.aborted(), 0u);
  EXPECT_EQ(result.AbortRate(), 0.0);
}

TEST(RunnerTest, LagSamplingRecordsQueueDepths) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcTo;  // registers at begin: lag visible
  opts.preload_keys = 64;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 64;
  spec.read_only_fraction = 0.3;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 200;
  run.lag_sample_every = 10;
  RunResult result = RunWorkload(&db, spec, run);
  EXPECT_GT(result.lag_samples.count(), 0);
  // Thread 0 ran 200 txns sampling every 10th.
  EXPECT_EQ(result.lag_samples.count(), 20);
}

TEST(RunnerTest, ScanOpsExecuteAcrossClasses) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 64;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 64;
  spec.read_only_fraction = 0.5;
  spec.scan_fraction = 0.5;
  spec.scan_span = 8;
  RunOptions run;
  run.threads = 2;
  run.txns_per_thread = 100;
  RunResult result = RunWorkload(&db, spec, run);
  EXPECT_GT(result.committed(), 0u);
}

TEST(ReportTest, TableAlignsAndPads) {
  Table table({"protocol", "throughput"});
  table.AddRow({"vc-2pl", Table::Num(uint64_t{12345})});
  table.AddRow({"mvto"});  // short row padded
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("protocol"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("vc-2pl"), std::string::npos);
}

TEST(ReportTest, CsvOutputQuotesSpecialCells) {
  Table table({"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"with\"\"quote\"\n");
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Table::Num(uint64_t{7}), "7");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Bool(true), "yes");
  EXPECT_EQ(Table::Bool(false), "no");
}

}  // namespace
}  // namespace mvcc
