#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mvcc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status aborted = Status::Aborted("conflict");
  EXPECT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.IsAborted());
  EXPECT_EQ(aborted.message(), "conflict");
  EXPECT_EQ(aborted.ToString(), "Aborted: conflict");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, StorageFailureCodesAreDistinct) {
  // kDataLoss is the fail-stop verdict (failed fsync, interior log
  // corruption); kResourceExhausted is the recoverable degraded-mode
  // verdict (disk full). Neither is an abort: retry loops must not spin
  // on them.
  Status loss = Status::DataLoss("fsync failed");
  Status full = Status::ResourceExhausted("disk full");
  EXPECT_FALSE(loss.IsAborted());
  EXPECT_FALSE(full.IsAborted());
  EXPECT_FALSE(loss == full);
  EXPECT_EQ(loss.ToString(), "DataLoss: fsync failed");
  EXPECT_EQ(full.ToString(), "ResourceExhausted: disk full");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::NotFound("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ImplicitConversionFromStatusAndValue) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("yes");
    return Status::Aborted("no");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_TRUE(make(false).status().IsAborted());
}

}  // namespace
}  // namespace mvcc
