#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mvcc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status aborted = Status::Aborted("conflict");
  EXPECT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.IsAborted());
  EXPECT_EQ(aborted.message(), "conflict");
  EXPECT_EQ(aborted.ToString(), "Aborted: conflict");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::NotFound("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ImplicitConversionFromStatusAndValue) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("yes");
    return Status::Aborted("no");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_TRUE(make(false).status().IsAborted());
}

}  // namespace
}  // namespace mvcc
