#include "baselines/sv2pl.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kSv2pl;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  return opts;
}

TEST(Sv2plTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
}

TEST(Sv2plTest, StoreStaysSingleVersioned) {
  Database db(Opts());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Put(3, "v").ok());
  EXPECT_EQ(db.store().Find(3)->size(), 1u);
}

TEST(Sv2plTest, ReadOnlyBlocksBehindWriter) {
  // The whole point of this baseline: readers queue behind writers.
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);  // id 1 (older)
  ASSERT_TRUE(writer->Write(5, "w").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);   // id 2 (younger): dies
  EXPECT_TRUE(reader->Read(5).status().IsAborted());
  EXPECT_EQ(db.counters().ro_aborts.load(), 1u);
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(Sv2plTest, OlderReaderWaitsForYoungerWriter) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);   // id 1 (older)
  auto writer = db.Begin(TxnClass::kReadWrite);  // id 2
  ASSERT_TRUE(writer->Write(5, "w").ok());
  std::atomic<bool> done{false};
  Value observed;
  std::thread t([&] {
    observed = *reader->Read(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  EXPECT_GE(db.counters().ro_blocks.load(), 1u);
  ASSERT_TRUE(writer->Commit().ok());
  t.join();
  EXPECT_EQ(observed, "w");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(Sv2plTest, ReaderDelaysWriter) {
  // Dual direction: a read-only transaction's shared lock delays a
  // younger writer to the point of killing it under wait-die.
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);   // id 1
  EXPECT_EQ(*reader->Read(5), "init");
  auto writer = db.Begin(TxnClass::kReadWrite);  // id 2: younger, dies
  EXPECT_TRUE(writer->Write(5, "w").IsAborted());
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(Sv2plTest, WriteOnReadOnlyRejected) {
  Database db(Opts());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_TRUE(reader->Write(1, "x").IsInvalidArgument());
  EXPECT_TRUE(reader->active());  // invalid argument does not abort
  reader->Abort();
}

}  // namespace
}  // namespace mvcc
