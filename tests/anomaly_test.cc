// Anomaly conformance matrix: the classic isolation anomalies must be
// impossible under EVERY protocol in the repository (all are
// serializable — the baselines too; the paper's complaint about them is
// overhead, not correctness). Each scenario forces the dangerous
// interleaving with a rendezvous and asserts the anomaly's absence in a
// protocol-agnostic way.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/clock.h"
#include "txn/database.h"

namespace mvcc {
namespace {

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::kVc2pl,    ProtocolKind::kVcTo,
    ProtocolKind::kVcOcc,    ProtocolKind::kVcAdaptive,
    ProtocolKind::kMvto,     ProtocolKind::kMv2plCtl,
    ProtocolKind::kSv2pl,    ProtocolKind::kWeihlTi,
};

DatabaseOptions Opts(ProtocolKind kind) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 4;
  opts.initial_value = "0";
  return opts;
}

// Two-party rendezvous that cannot hang: a party that dies early calls
// Bail() and the peer stops waiting.
class Rendezvous {
 public:
  void Arrive() {
    arrived_.fetch_add(1);
    const int64_t deadline = NowNanos() + int64_t{5} * 1000000000;
    while (arrived_.load() < 2 && !dead_.load()) {
      if (NowNanos() > deadline) break;  // safety valve
      std::this_thread::yield();
    }
  }
  void Bail() { dead_.store(true); }

 private:
  std::atomic<int> arrived_{0};
  std::atomic<bool> dead_{false};
};

class AnomalyMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AnomalyMatrix, NoDirtyRead) {
  // T1 writes x=100 and ABORTS. No other transaction, of either class,
  // may ever observe 100.
  Database db(Opts(GetParam()));
  std::atomic<bool> wrote{false};
  std::atomic<bool> readers_done{false};
  std::atomic<int> dirty{0};

  std::thread writer([&] {
    auto t1 = db.Begin(TxnClass::kReadWrite);
    if (t1->Write(0, "100").ok()) {
      wrote.store(true);
      // Hold the uncommitted write open while readers probe.
      const int64_t until = NowNanos() + int64_t{60} * 1000000;
      while (!readers_done.load() && NowNanos() < until) {
        std::this_thread::yield();
      }
    }
    t1->Abort();
  });
  while (!wrote.load()) std::this_thread::yield();

  // Read-only probe.
  {
    auto ro = db.Begin(TxnClass::kReadOnly);
    auto v = ro->Read(0);
    if (v.ok() && *v == "100") dirty.fetch_add(1);
    ro->Abort();
  }
  // Read-write probe (may block until the abort or die — both fine).
  std::thread rw_probe([&] {
    auto t2 = db.Begin(TxnClass::kReadWrite);
    auto v = t2->Read(0);
    if (v.ok() && *v == "100") dirty.fetch_add(1);
    t2->Abort();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  readers_done.store(true);
  writer.join();
  rw_probe.join();
  EXPECT_EQ(dirty.load(), 0) << ProtocolKindName(GetParam());
  // And after the abort, the write never materializes.
  EXPECT_EQ(*db.Get(0), "0");
}

TEST_P(AnomalyMatrix, NoLostUpdate) {
  // Both transactions read x, then both try to write read+1. The final
  // value must equal the number of SUCCESSFUL commits: a silent
  // overwrite would leave value < commits... and value > commits would
  // mean phantom increments. (Retries are deliberately NOT used.)
  Database db(Opts(GetParam()));
  Rendezvous both_read;
  std::atomic<int> commits{0};
  auto increment = [&](int offset) {
    auto txn = db.Begin(TxnClass::kReadWrite);
    (void)offset;
    auto v = txn->Read(0);
    if (!v.ok()) {
      both_read.Bail();
      txn->Abort();
      return;
    }
    both_read.Arrive();
    const long long next = std::stoll(*v) + 1;
    if (!txn->Write(0, std::to_string(next)).ok()) return;
    if (txn->Commit().ok()) commits.fetch_add(1);
  };
  std::thread a([&] { increment(1); });
  std::thread b([&] { increment(2); });
  a.join();
  b.join();
  ASSERT_GE(commits.load(), 1) << ProtocolKindName(GetParam());
  EXPECT_EQ(*db.Get(0), std::to_string(commits.load()))
      << ProtocolKindName(GetParam());
}

TEST_P(AnomalyMatrix, NoWriteSkew) {
  // Invariant: x + y <= 1. Each transaction reads both keys and, seeing
  // sum 0, sets its own key to 1. Serializability forbids both
  // committing.
  Database db(Opts(GetParam()));
  Rendezvous both_read;
  std::atomic<int> commits{0};
  auto skew = [&](ObjectKey mine) {
    auto txn = db.Begin(TxnClass::kReadWrite);
    auto x = txn->Read(0);
    auto y = txn->Read(1);
    if (!x.ok() || !y.ok()) {
      both_read.Bail();
      txn->Abort();
      return;
    }
    both_read.Arrive();
    if (std::stoll(*x) + std::stoll(*y) != 0) {
      txn->Abort();
      return;
    }
    if (!txn->Write(mine, "1").ok()) return;
    if (txn->Commit().ok()) commits.fetch_add(1);
  };
  std::thread a([&] { skew(0); });
  std::thread b([&] { skew(1); });
  a.join();
  b.join();
  const long long sum = std::stoll(*db.Get(0)) + std::stoll(*db.Get(1));
  EXPECT_LE(sum, 1) << ProtocolKindName(GetParam());
  EXPECT_EQ(sum, commits.load()) << ProtocolKindName(GetParam());
}

TEST_P(AnomalyMatrix, NoNonRepeatableReadInCommittedTransactions) {
  // T1 reads x twice with a committed overwrite attempt in between. If
  // T1 manages to COMMIT, its two reads must have been equal (an OCC
  // execution may observe the change mid-flight, but then it must fail
  // validation).
  Database db(Opts(GetParam()));
  for (int round = 0; round < 10; ++round) {
    auto t1 = db.Begin(TxnClass::kReadWrite);
    auto first = t1->Read(0);
    if (!first.ok()) continue;
    // The interfering writer commits (or dies trying) in between.
    {
      auto t2 = db.Begin(TxnClass::kReadWrite);
      if (t2->Write(0, "round" + std::to_string(round)).ok()) {
        (void)t2->Commit();
      }
    }
    auto second = t1->Read(0);
    if (!second.ok()) continue;
    // Give T1 a write so its commit is a real serialization event.
    if (!t1->Write(1, "probe").ok()) continue;
    if (t1->Commit().ok()) {
      EXPECT_EQ(*first, *second)
          << ProtocolKindName(GetParam()) << " round " << round;
    }
  }
}

TEST_P(AnomalyMatrix, ReadYourOwnWrites) {
  Database db(Opts(GetParam()));
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(2, "own").ok());
  auto v = txn->Read(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "own") << ProtocolKindName(GetParam());
  ASSERT_TRUE(txn->Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, AnomalyMatrix, ::testing::ValuesIn(kAllProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name(ProtocolKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mvcc
