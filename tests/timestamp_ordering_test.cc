#include "cc/timestamp_ordering.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcTo;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(VcToTest, TnAssignedAtBegin) {
  Database db(Opts());
  auto a = db.Begin(TxnClass::kReadWrite);
  auto b = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(a->txn_number(), 1u);
  EXPECT_EQ(b->txn_number(), 2u);
  EXPECT_EQ(a->start_number(), 1u);  // sn(T) = tn(T) under TO
  a->Abort();
  b->Abort();
}

TEST(VcToTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(2), "init");
  ASSERT_TRUE(txn->Write(2, "two").ok());
  EXPECT_EQ(*txn->Read(2), "two");
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(2), "two");
}

TEST(VcToTest, LateWriteAfterYoungerReadAborts) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto t_young = db.Begin(TxnClass::kReadWrite); // tn = 2
  // Younger transaction reads x: r-ts(x) = 2.
  EXPECT_EQ(*t_young->Read(5), "init");
  // Older transaction now tries to write x: rejected (r-ts > tn).
  Status s = t_old->Write(5, "late");
  EXPECT_TRUE(s.IsAborted());
  EXPECT_FALSE(t_old->active());
  ASSERT_TRUE(t_young->Write(6, "y").ok());
  ASSERT_TRUE(t_young->Commit().ok());
}

TEST(VcToTest, LateWriteAfterYoungerWriteAborts) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto t_young = db.Begin(TxnClass::kReadWrite); // tn = 2
  ASSERT_TRUE(t_young->Write(5, "young").ok());  // w-ts(x) = 2 (pending)
  Status s = t_old->Write(5, "old");
  EXPECT_TRUE(s.IsAborted());
  ASSERT_TRUE(t_young->Commit().ok());
  EXPECT_EQ(*db.Get(5), "young");
}

TEST(VcToTest, ReadBlocksOnOlderPendingWrite) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto t_young = db.Begin(TxnClass::kReadWrite); // tn = 2
  ASSERT_TRUE(t_old->Write(5, "pending").ok());

  std::atomic<bool> read_done{false};
  Value observed;
  std::thread reader([&] {
    observed = *t_young->Read(5);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(read_done.load());  // blocked on t_old's pending write
  EXPECT_GE(db.counters().rw_blocks.load(), 1u);
  ASSERT_TRUE(t_old->Commit().ok());
  reader.join();
  EXPECT_EQ(observed, "pending");
  ASSERT_TRUE(t_young->Commit().ok());
}

TEST(VcToTest, ReadUnblocksWhenPendingWriterAborts) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);
  auto t_young = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t_old->Write(5, "doomed").ok());
  std::atomic<bool> read_done{false};
  Value observed;
  std::thread reader([&] {
    observed = *t_young->Read(5);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_done.load());
  t_old->Abort();
  reader.join();
  EXPECT_EQ(observed, "init");  // aborted write never existed
  ASSERT_TRUE(t_young->Commit().ok());
}

TEST(VcToTest, ReadOnlyNeverBlocksOnPendingWrites) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "pending").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(5), "init");  // snapshot below the writer
  EXPECT_EQ(db.counters().ro_blocks.load(), 0u);
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(VcToTest, OlderReadSeesOlderVersionAfterYoungerCommit) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto t_young = db.Begin(TxnClass::kReadWrite); // tn = 2
  ASSERT_TRUE(t_young->Write(5, "young").ok());
  ASSERT_TRUE(t_young->Commit().ok());
  // tn=1 reads the version <= 1, i.e. the initial version, not "young".
  EXPECT_EQ(*t_old->Read(5), "init");
  ASSERT_TRUE(t_old->Write(6, "x").ok());
  ASSERT_TRUE(t_old->Commit().ok());
}

TEST(VcToTest, AbortDiscardsRegistration) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(1, "x").ok());
  EXPECT_EQ(db.version_control().QueueSize(), 1u);
  txn->Abort();
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
  EXPECT_EQ(*db.Get(1), "init");
}

TEST(VcToTest, VisibilityFollowsSerialOrderNotCommitOrder) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);  // tn = 1
  auto t2 = db.Begin(TxnClass::kReadWrite);  // tn = 2
  ASSERT_TRUE(t2->Write(2, "two").ok());
  ASSERT_TRUE(t2->Commit().ok());
  // t2 committed, but t1 (older) is still active: not yet visible.
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(reader->start_number(), 0u);
  EXPECT_EQ(*reader->Read(2), "init");
  ASSERT_TRUE(t1->Write(1, "one").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Now both are visible.
  auto reader2 = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(reader2->start_number(), 2u);
  EXPECT_EQ(*reader2->Read(2), "two");
  EXPECT_EQ(*reader2->Read(1), "one");
}

TEST(VcToTest, MetadataHooks) {
  Database db(Opts());
  auto* to = dynamic_cast<TimestampOrdering*>(&db.protocol());
  ASSERT_NE(to, nullptr);
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(3), "init");
  EXPECT_EQ(to->ReadTimestamp(3), txn->txn_number());
  ASSERT_TRUE(txn->Write(4, "w").ok());
  EXPECT_EQ(to->WriteTimestamp(4), txn->txn_number());
  EXPECT_EQ(to->PendingCount(4), 1u);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(to->PendingCount(4), 0u);
}

}  // namespace
}  // namespace mvcc
