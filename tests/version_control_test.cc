#include "vc/version_control.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace mvcc {
namespace {

TEST(VersionControlTest, InitialCounters) {
  VersionControl vc;
  EXPECT_EQ(vc.Start(), 0u);       // vtnc = 0
  EXPECT_EQ(vc.NextNumber(), 1u);  // tnc = 1; invariant vtnc < tnc
  EXPECT_EQ(vc.QueueSize(), 0u);
}

TEST(VersionControlTest, RegisterAssignsDenseNumbers) {
  VersionControl vc;
  EXPECT_EQ(vc.Register(10), 1u);
  EXPECT_EQ(vc.Register(11), 2u);
  EXPECT_EQ(vc.Register(12), 3u);
  EXPECT_EQ(vc.QueueSize(), 3u);
  EXPECT_EQ(vc.NextNumber(), 4u);
}

TEST(VersionControlTest, CompleteInOrderAdvancesVtnc) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t1);
  EXPECT_EQ(vc.Start(), t1);
  vc.Complete(t2);
  EXPECT_EQ(vc.Start(), t2);
  EXPECT_EQ(vc.QueueSize(), 0u);
}

TEST(VersionControlTest, OutOfOrderCompletionDelaysVisibility) {
  // The central mechanism: a completed younger transaction stays
  // invisible while an older registered transaction is active.
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t2);
  EXPECT_EQ(vc.Start(), 0u);  // t2's updates are NOT visible yet
  vc.Complete(t1);
  EXPECT_EQ(vc.Start(), t2);  // both become visible, in serial order
}

TEST(VersionControlTest, DiscardReleasesDelayedVisibility) {
  // The documented deviation from Figure 1: discarding the head must
  // drain the completed suffix, otherwise vtnc stalls forever.
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  const TxnNumber t3 = vc.Register(3);
  vc.Complete(t2);
  vc.Complete(t3);
  EXPECT_EQ(vc.Start(), 0u);
  vc.Discard(t1);  // abort of the oldest
  EXPECT_EQ(vc.Start(), t3);
}

TEST(VersionControlTest, DiscardMiddleLeavesVtncAlone) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  const TxnNumber t3 = vc.Register(3);
  vc.Discard(t2);
  EXPECT_EQ(vc.Start(), 0u);
  vc.Complete(t1);
  EXPECT_EQ(vc.Start(), t1);
  vc.Complete(t3);
  EXPECT_EQ(vc.Start(), t3);
}

TEST(VersionControlTest, VtncStrictlyBelowTnc) {
  VersionControl vc;
  for (int i = 0; i < 100; ++i) {
    const TxnNumber tn = vc.Register(i);
    vc.Complete(tn);
    EXPECT_LT(vc.Start(), vc.NextNumber());
  }
}

TEST(VersionControlTest, StartAtLeastBlocksUntilVisible) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  std::atomic<TxnNumber> observed{0};
  std::thread reader([&] { observed.store(vc.StartAtLeast(t1)); });
  // Give the reader a moment to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(observed.load(), 0u);
  vc.Complete(t1);
  reader.join();
  EXPECT_GE(observed.load(), t1);
}

TEST(VersionControlTest, StartAtLeastReturnsImmediatelyWhenVisible) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  vc.Complete(t1);
  EXPECT_EQ(vc.StartAtLeast(t1), t1);
}

TEST(VersionControlTest, WaitNoActiveAtOrBelow) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    vc.WaitNoActiveAtOrBelow(t1);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  vc.Complete(t1);  // t2 > t1 does not matter for the bound
  waiter.join();
  EXPECT_TRUE(released.load());
  vc.Complete(t2);
}

TEST(VersionControlTest, AdvanceCounterPast) {
  VersionControl vc;
  vc.AdvanceCounterPast(100);
  EXPECT_EQ(vc.Register(1), 101u);
  vc.AdvanceCounterPast(50);  // already past: no-op
  EXPECT_EQ(vc.Register(2), 102u);
}

TEST(VersionControlTest, SiteTaggedNumbersEmbedTiebreak) {
  VersionControl vc(NumberingMode::kSiteTagged);
  const TxnNumber a = vc.Register(1, /*tiebreak=*/7);
  const TxnNumber b = vc.Register(2, /*tiebreak=*/9);
  EXPECT_EQ(a, (uint64_t{1} << 32) | 7);
  EXPECT_EQ(b, (uint64_t{2} << 32) | 9);
  EXPECT_LT(a, b);
}

TEST(VersionControlTest, PromoteMovesEntryForward) {
  VersionControl vc(NumberingMode::kSiteTagged);
  const TxnNumber proposed = vc.Register(1, 5);
  const TxnNumber agreed = ((proposed >> 32) + 10) << 32 | 5;
  vc.Promote(proposed, agreed);
  // Future registrations exceed the agreed number.
  EXPECT_GT(vc.Register(2, 6), agreed);
  vc.Complete(agreed);
  EXPECT_EQ(vc.Start(), agreed);
}

TEST(VersionControlTest, PromoteToSameNumberBumpsCounter) {
  VersionControl vc(NumberingMode::kSiteTagged);
  const TxnNumber proposed = vc.Register(1, 5);
  vc.Promote(proposed, proposed);
  EXPECT_GT(vc.Register(2, 6), proposed);
  vc.Complete(proposed);
}

TEST(VersionControlTest, StartAtLeastReleasedByDiscardDrainingHead) {
  // Regression: a StartAtLeast waiter depends on Discard advancing vtnc.
  // t2 completes behind the still-active head t1; a reader insists on
  // seeing t2. When t1 aborts, Discard must drain the completed suffix
  // (advancing vtnc to t2) AND signal the condition variable — with
  // Figure 1's literal VCdiscard the waiter would hang forever.
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t2);
  ASSERT_EQ(vc.Start(), 0u);  // invisible behind the active head

  std::atomic<TxnNumber> observed{kInvalidTxnNumber};
  std::thread reader([&] { observed.store(vc.StartAtLeast(t2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(observed.load(), kInvalidTxnNumber);  // still blocked

  vc.Discard(t1);  // abort of the head releases the suffix
  reader.join();
  EXPECT_GE(observed.load(), t2);
  EXPECT_EQ(vc.Start(), t2);
  EXPECT_EQ(vc.QueueSize(), 0u);
}

TEST(VersionControlTest, LiteralFigure1DiscardStallsVisibility) {
  // The deviation is load-bearing: with the literal pseudocode the
  // completed suffix stays queued and vtnc never reaches it.
  VersionControl vc;
  vc.SetLiteralFigure1DiscardForTest(true);
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t2);
  vc.Discard(t1);
  EXPECT_EQ(vc.Start(), 0u);  // stalled: t2 completed but invisible
  EXPECT_EQ(vc.QueueSize(), 1u);

  vc.SetLiteralFigure1DiscardForTest(false);
  const TxnNumber t3 = vc.Register(3);
  vc.Complete(t3);  // the next drain heals the stall
  EXPECT_EQ(vc.Start(), t3);
  EXPECT_EQ(vc.QueueSize(), 0u);
}

TEST(VersionControlTest, ConcurrentPromoteRegisterRace) {
  // Section 6 number agreement under contention: promotions to agreed
  // global numbers race with fresh local registrations. Every handed-out
  // number must stay unique and the counter must end past every
  // promotion target.
  VersionControl vc(NumberingMode::kSiteTagged);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<uint32_t> tiebreak{1};
  std::atomic<TxnNumber> max_agreed{0};
  std::vector<std::vector<TxnNumber>> finals(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      finals[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const uint32_t tb = tiebreak.fetch_add(1);
        const TxnNumber proposed = vc.Register(tb, tb);
        TxnNumber final_tn = proposed;
        if (i % 2 == 0) {
          // "Agreement" picked a higher coordinator number: promote.
          const TxnNumber agreed =
              ((proposed >> 32) + 1 + (tb % 3)) << 32 | tb;
          vc.Promote(proposed, agreed);
          final_tn = agreed;
          TxnNumber cur = max_agreed.load();
          while (cur < agreed &&
                 !max_agreed.compare_exchange_weak(cur, agreed)) {
          }
        }
        finals[t].push_back(final_tn);
        if (i % 3 == 0) {
          vc.Discard(final_tn);
        } else {
          vc.Complete(final_tn);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<TxnNumber> all;
  for (const auto& list : finals) all.insert(all.end(), list.begin(), list.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate transaction number handed out under the race";
  EXPECT_EQ(vc.QueueSize(), 0u);
  EXPECT_GT(vc.NextNumber(), max_agreed.load());
  EXPECT_LT(vc.Start(), vc.NextNumber());
}

TEST(VersionControlTest, AdvanceCounterPastVsInFlightRegister) {
  // Remote read-only snapshots push the counter (Lamport-style) while
  // local writers register. Each thread checks that its own push is
  // honored by its very next registration; globally all numbers stay
  // unique and the vtnc < tnc invariant holds at quiesce.
  VersionControl vc(NumberingMode::kSiteTagged);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<uint32_t> tiebreak{1};
  std::atomic<bool> failed{false};
  std::vector<std::vector<TxnNumber>> assigned(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      assigned[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const uint32_t tb = tiebreak.fetch_add(1);
        // A remote snapshot with an aggressive start number arrives.
        const TxnNumber sn = (uint64_t{static_cast<uint32_t>(
                                 (t * kPerThread + i) % 3000)}
                              << 32);
        vc.AdvanceCounterPast(sn);
        const TxnNumber tn = vc.Register(tb, tb);
        if (tn <= sn) failed.store(true);
        assigned[t].push_back(tn);
        vc.Complete(tn);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load())
      << "Register returned a number not past a prior AdvanceCounterPast";

  std::vector<TxnNumber> all;
  for (const auto& list : assigned) all.insert(all.end(), list.begin(), list.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(vc.QueueSize(), 0u);
  EXPECT_LT(vc.Start(), vc.NextNumber());
}

TEST(VersionControlTest, WaitNoActiveReleasedByMixedCompleteAndDiscard) {
  // The Section 6 snapshot-read barrier must fall no matter HOW the
  // registered transactions below the bound resolve: commits
  // (Complete) and aborts (Discard) both count, in any interleaving.
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    VersionControl vc;
    constexpr int kTxns = 6;
    std::vector<TxnNumber> tns;
    for (int i = 0; i < kTxns; ++i) tns.push_back(vc.Register(i + 1));
    const TxnNumber bound = tns.back();

    std::atomic<bool> released{false};
    std::thread waiter([&] {
      vc.WaitNoActiveAtOrBelow(bound);
      released.store(true);
    });

    // Resolve every transaction from competing threads, alternating
    // commit/abort with a rotation per round.
    std::vector<std::thread> resolvers;
    for (int i = 0; i < kTxns; ++i) {
      resolvers.emplace_back([&, i] {
        if ((i + round) % 2 == 0) {
          vc.Complete(tns[i]);
        } else {
          vc.Discard(tns[i]);
        }
      });
    }
    for (auto& r : resolvers) r.join();
    waiter.join();
    EXPECT_TRUE(released.load());
    EXPECT_EQ(vc.QueueSize(), 0u);
    EXPECT_LT(vc.Start(), vc.NextNumber());
  }
}

TEST(VersionControlTest, ConcurrentRegistrationStress) {
  // The two counter properties must hold under concurrency:
  //  - every Start() value is < every later-assigned tn (ordering);
  //  - Start() never exceeds a tn that has not completed (visibility).
  VersionControl vc;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const TxnNumber before = vc.Start();
        const TxnNumber tn = vc.Register(1);
        if (before >= tn) failed.store(true);
        const TxnNumber visible = vc.Start();
        if (visible >= tn) failed.store(true);  // we have not completed
        vc.Complete(tn);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(vc.QueueSize(), 0u);
  EXPECT_EQ(vc.Start(), uint64_t{kThreads} * kPerThread);
}

TEST(VersionControlTest, ConcurrentMixedCompleteAndDiscard) {
  VersionControl vc;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const TxnNumber tn = vc.Register(1);
        if ((i + t) % 3 == 0) {
          vc.Discard(tn);
        } else {
          vc.Complete(tn);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(vc.QueueSize(), 0u);
  EXPECT_LT(vc.Start(), vc.NextNumber());
}

}  // namespace
}  // namespace mvcc
