// Property tests over seeded simulated schedules of the replication
// tier: every interleaving of shipping, applying, routing, message
// drops/delays/reordering, replica crashes and WAL-truncation races must
// keep the merged history one-copy serializable (prefix-consistent
// replica snapshots, Lemma 3), keep routed readers wait-free, and end in
// full primary/replica convergence. Each failure line carries the seed
// that replays it deterministically.
//
// Seed counts stay modest by default; CI raises them via MVCC_REPL_SEEDS
// (the repl-sweep job runs >= 250 on top of bench_sim --repl-only).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "sim/explorer.h"

namespace mvcc {
namespace sim {
namespace {

uint64_t SweepSeeds(uint64_t default_count) {
  const char* env = std::getenv("MVCC_REPL_SEEDS");
  if (env == nullptr || *env == '\0') return default_count;
  const uint64_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? default_count : n;
}

TEST(ReplPropertyTest, CleanSchedulesConvergeAndStaySerializable) {
  const uint64_t seeds = SweepSeeds(40);
  for (uint64_t s = 1; s <= seeds; ++s) {
    ReplExploreOptions opt;
    opt.seed = s;
    opt.replicas = 1 + static_cast<int>(s % 3);
    opt.protocol =
        s % 2 == 0 ? ProtocolKind::kVc2pl : ProtocolKind::kVcTo;
    opt.staleness_budget = s % 5 == 0 ? 0 : 2 + s % 6;
    const SimReport report = ExploreReplicationOnce(opt);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ReplPropertyTest, DropsDelaysAndReorderingPreservePrefixes) {
  // Dropped records leave sequence gaps; delayed records arrive out of
  // order. Either way a replica may fall behind but must never expose a
  // snapshot missing a committed batch below its horizon.
  const uint64_t seeds = SweepSeeds(40);
  for (uint64_t s = 1; s <= seeds; ++s) {
    ReplExploreOptions opt;
    opt.seed = s;
    opt.replicas = 2;
    opt.protocol =
        s % 2 == 0 ? ProtocolKind::kVcTo : ProtocolKind::kVc2pl;
    opt.faults.message_drop_probability = 0.2;
    opt.faults.message_delay_max_steps = 6;
    const SimReport report = ExploreReplicationOnce(opt);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ReplPropertyTest, CrashResyncAndTruncationRacesConverge) {
  // The heavy mix: replica crashes (checkpoint resync), WAL truncation
  // racing the shipping cursor (kUnavailable resync path), drops and
  // delays, all in one schedule.
  const uint64_t seeds = SweepSeeds(40);
  for (uint64_t s = 1; s <= seeds; ++s) {
    ReplExploreOptions opt;
    opt.seed = s;
    opt.replicas = 1 + static_cast<int>(s % 2);
    opt.replica_crashes = 1 + static_cast<int>(s % 2);
    opt.wal_truncations = static_cast<int>(s % 2);
    opt.faults.message_drop_probability = 0.15;
    opt.faults.message_delay_max_steps = 4;
    const SimReport report = ExploreReplicationOnce(opt);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ReplPropertyTest, ZeroStalenessBudgetStillServesEveryReader) {
  // Budget 0 admits only fully caught-up replicas; everything else must
  // fall back to the primary — readers never block or fail either way.
  const uint64_t seeds = SweepSeeds(20);
  for (uint64_t s = 1; s <= seeds; ++s) {
    ReplExploreOptions opt;
    opt.seed = s;
    opt.replicas = 2;
    opt.staleness_budget = 0;
    opt.faults.message_drop_probability = 0.1;
    const SimReport report = ExploreReplicationOnce(opt);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ReplPropertyTest, SameSeedReplaysTheExactSchedule) {
  ReplExploreOptions opt;
  opt.seed = 0xBEEF;
  opt.replicas = 2;
  opt.replica_crashes = 1;
  opt.faults.message_drop_probability = 0.2;
  opt.faults.message_delay_max_steps = 5;
  const SimReport a = ExploreReplicationOnce(opt);
  const SimReport b = ExploreReplicationOnce(opt);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.commits, b.commits);
}

}  // namespace
}  // namespace sim
}  // namespace mvcc
