#include "vc/vc_queue.h"

#include <gtest/gtest.h>

namespace mvcc {
namespace {

TEST(VcQueueTest, StartsEmpty) {
  VcQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.OldestNumber().has_value());
  EXPECT_FALSE(queue.DrainCompletedHead().has_value());
}

TEST(VcQueueTest, InsertAndContains) {
  VcQueue queue;
  queue.Insert(5, 101);
  queue.Insert(7, 102);
  EXPECT_TRUE(queue.Contains(5));
  EXPECT_TRUE(queue.Contains(7));
  EXPECT_FALSE(queue.Contains(6));
  EXPECT_EQ(queue.OldestNumber().value(), 5u);
}

TEST(VcQueueTest, DrainStopsAtActiveHead) {
  VcQueue queue;
  queue.Insert(1, 11);
  queue.Insert(2, 12);
  queue.MarkComplete(2);
  // Head (1) is still active: nothing drains.
  EXPECT_FALSE(queue.DrainCompletedHead().has_value());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(VcQueueTest, DrainPopsCompletedPrefix) {
  VcQueue queue;
  queue.Insert(1, 11);
  queue.Insert(2, 12);
  queue.Insert(3, 13);
  queue.MarkComplete(1);
  queue.MarkComplete(2);
  auto drained = queue.DrainCompletedHead();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(*drained, 2u);  // the last popped = new vtnc
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.Contains(3));
}

TEST(VcQueueTest, OutOfOrderCompletionDelaysDrain) {
  VcQueue queue;
  queue.Insert(1, 11);
  queue.Insert(2, 12);
  queue.Insert(3, 13);
  queue.MarkComplete(3);
  queue.MarkComplete(2);
  EXPECT_FALSE(queue.DrainCompletedHead().has_value());
  queue.MarkComplete(1);
  EXPECT_EQ(queue.DrainCompletedHead().value(), 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(VcQueueTest, EraseUnblocksDrain) {
  VcQueue queue;
  queue.Insert(1, 11);
  queue.Insert(2, 12);
  queue.MarkComplete(2);
  queue.Erase(1);  // abort of the head transaction
  EXPECT_EQ(queue.DrainCompletedHead().value(), 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(VcQueueTest, HasActiveAtOrBelow) {
  VcQueue queue;
  queue.Insert(5, 11);
  queue.Insert(9, 12);
  queue.MarkComplete(5);
  EXPECT_FALSE(queue.HasActiveAtOrBelow(4));
  EXPECT_FALSE(queue.HasActiveAtOrBelow(5));  // 5 completed
  EXPECT_FALSE(queue.HasActiveAtOrBelow(8));
  EXPECT_TRUE(queue.HasActiveAtOrBelow(9));
  EXPECT_TRUE(queue.HasActiveAtOrBelow(100));
}

TEST(VcQueueTest, MarkCompleteOnMissingIsNoop) {
  VcQueue queue;
  queue.MarkComplete(17);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace mvcc
