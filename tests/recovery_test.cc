#include "recovery/recovery.h"

#include <gtest/gtest.h>

#include <thread>

#include "history/serializability.h"
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "recovery/checkpoint.h"
#include "recovery/file_io.h"
#include "recovery/wal.h"
#include "txn/database.h"
#include "workload/runner.h"

namespace mvcc {
namespace {

DatabaseOptions WalOpts(ProtocolKind kind = ProtocolKind::kVc2pl) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 8;
  opts.initial_value = "init";
  opts.enable_wal = true;
  return opts;
}

TEST(WalTest, AppendAndSnapshot) {
  WriteAheadLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.MaxTn(), 0u);
  log.Append(CommitBatch{1, 5, {{3, "x"}}});
  log.Append(CommitBatch{2, 7, {{4, "y"}, {5, "z"}}});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.MaxTn(), 7u);
  auto batches = log.Batches();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].writes.size(), 2u);
  EXPECT_EQ(batches[1].writes[0].value, "y");
}

TEST(WalTest, TruncateDropsCoveredBatches) {
  WriteAheadLog log;
  log.Append(CommitBatch{1, 5, {{3, "x"}}});
  log.Append(CommitBatch{2, 7, {{4, "y"}}});
  log.Truncate(5);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Batches()[0].tn, 7u);
}

TEST(WalTest, SerializeRoundTrip) {
  WriteAheadLog log;
  log.Append(CommitBatch{1, 5, {{3, "hello"}, {9, ""}}});
  log.Append(CommitBatch{2, 7, {}});
  const std::string image = log.Serialize();
  auto restored = WriteAheadLog::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->size(), 2u);
  auto batches = (*restored)->Batches();
  EXPECT_EQ(batches[0].writes[0].value, "hello");
  EXPECT_EQ(batches[0].writes[1].value, "");
  EXPECT_EQ(batches[1].tn, 7u);
}

TEST(WalTest, DeserializeRejectsCorruptImages) {
  WriteAheadLog log;
  log.Append(CommitBatch{1, 5, {{3, "hello"}}});
  std::string image = log.Serialize();
  EXPECT_FALSE(WriteAheadLog::Deserialize("garbage").ok());
  EXPECT_FALSE(
      WriteAheadLog::Deserialize(image.substr(0, image.size() - 3)).ok());
  EXPECT_FALSE(WriteAheadLog::Deserialize(image + "x").ok());
  EXPECT_TRUE(WriteAheadLog::Deserialize(image).ok());
}

TEST(CheckpointTest, SerializeRoundTrip) {
  Checkpoint ck;
  ck.vtnc = 42;
  ck.entries.push_back(CheckpointEntry{1, 10, 100, "a"});
  ck.entries.push_back(CheckpointEntry{2, 42, 0, ""});
  auto restored = Checkpoint::Deserialize(ck.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vtnc, 42u);
  ASSERT_EQ(restored->entries.size(), 2u);
  EXPECT_EQ(restored->entries[0].value, "a");
  EXPECT_EQ(restored->entries[0].writer, 100u);
  EXPECT_EQ(restored->entries[1].version, 42u);
}

TEST(CheckpointTest, RejectsCorruptImages) {
  Checkpoint ck;
  ck.vtnc = 1;
  const std::string image = ck.Serialize();
  EXPECT_FALSE(Checkpoint::Deserialize("nope").ok());
  EXPECT_FALSE(Checkpoint::Deserialize(image + "trailing").ok());
}

TEST(RecoveryTest, DatabaseLogsCommittedWritesOnly) {
  Database db(WalOpts());
  ASSERT_TRUE(db.Put(1, "committed").ok());
  auto doomed = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(doomed->Write(2, "aborted").ok());
  doomed->Abort();
  ASSERT_NE(db.wal(), nullptr);
  EXPECT_EQ(db.wal()->size(), 1u);
  EXPECT_EQ(db.wal()->Batches()[0].writes[0].value, "committed");
}

TEST(RecoveryTest, ReplayRestoresCommittedState) {
  DatabaseOptions opts = WalOpts();
  std::string wal_image;
  {
    Database db(opts);
    ASSERT_TRUE(db.Put(1, "one").ok());
    ASSERT_TRUE(db.Put(2, "two").ok());
    ASSERT_TRUE(db.Put(1, "one-v2").ok());
    wal_image = db.wal()->Serialize();
    // db destroyed here: the "crash".
  }
  auto log = WriteAheadLog::Deserialize(wal_image);
  ASSERT_TRUE(log.ok());
  auto recovered = RecoverDatabase(opts, /*checkpoint=*/nullptr, **log);
  EXPECT_EQ(*recovered->Get(1), "one-v2");
  EXPECT_EQ(*recovered->Get(2), "two");
  EXPECT_EQ(*recovered->Get(3), "init");  // untouched preloaded key
  // The multiversion history is preserved, not just the latest state.
  EXPECT_EQ(recovered->store().Find(1)->size(), 3u);  // init + 2 versions
}

TEST(RecoveryTest, RecoveredCountersContinueTheSerialOrder) {
  DatabaseOptions opts = WalOpts();
  TxnNumber last_tn = 0;
  std::string wal_image;
  {
    Database db(opts);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Put(1, "v").ok());
    last_tn = 5;
    wal_image = db.wal()->Serialize();
  }
  auto log = WriteAheadLog::Deserialize(wal_image);
  auto recovered = RecoverDatabase(opts, nullptr, **log);
  EXPECT_EQ(recovered->version_control().vtnc(), last_tn);
  // A new transaction extends the order.
  auto txn = recovered->Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(1, "after-crash").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GT(txn->txn_number(), last_tn);
  // A reader started now sees everything.
  auto reader = recovered->Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(1), "after-crash");
  reader->Commit();
}

TEST(RecoveryTest, CheckpointPlusTruncatedLog) {
  DatabaseOptions opts = WalOpts();
  Database db(opts);
  ASSERT_TRUE(db.Put(1, "pre-ck").ok());
  ASSERT_TRUE(db.Put(2, "pre-ck").ok());
  Checkpoint ck = TakeCheckpoint(&db);
  db.wal()->Truncate(ck.vtnc);
  ASSERT_TRUE(db.Put(1, "post-ck").ok());
  EXPECT_EQ(db.wal()->size(), 1u);

  auto log = WriteAheadLog::Deserialize(db.wal()->Serialize());
  auto restored_ck = Checkpoint::Deserialize(ck.Serialize());
  ASSERT_TRUE(restored_ck.ok());
  auto recovered = RecoverDatabase(opts, &*restored_ck, **log);
  EXPECT_EQ(*recovered->Get(1), "post-ck");
  EXPECT_EQ(*recovered->Get(2), "pre-ck");
  EXPECT_EQ(recovered->version_control().vtnc(),
            db.version_control().vtnc());
}

TEST(RecoveryTest, UntruncatedLogWithCheckpointDoesNotDuplicate) {
  DatabaseOptions opts = WalOpts();
  Database db(opts);
  ASSERT_TRUE(db.Put(1, "a").ok());
  Checkpoint ck = TakeCheckpoint(&db);
  // No truncation: batches at or below ck.vtnc must be skipped on replay.
  auto log = WriteAheadLog::Deserialize(db.wal()->Serialize());
  auto recovered = RecoverDatabase(opts, &ck, **log);
  EXPECT_EQ(*recovered->Get(1), "a");
  // init (preload) + checkpointed version only — no duplicate installs.
  EXPECT_EQ(recovered->store().Find(1)->size(), 2u);
}

TEST(RecoveryTest, CheckpointIsTransactionallyConsistent) {
  // Writers update pairs (k, k+1) with equal values; every checkpoint
  // must capture both halves of any transaction it contains.
  DatabaseOptions opts = WalOpts(ProtocolKind::kVcTo);
  opts.preload_keys = 2;
  Database db(opts);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      auto txn = db.Begin(TxnClass::kReadWrite);
      const Value v = std::to_string(++i);
      if (!txn->Write(0, v).ok()) continue;
      if (!txn->Write(1, v).ok()) continue;
      txn->Commit();
    }
  });
  for (int round = 0; round < 50; ++round) {
    Checkpoint ck = TakeCheckpoint(&db);
    ASSERT_EQ(ck.entries.size(), 2u);
    EXPECT_EQ(ck.entries[0].value, ck.entries[1].value)
        << "torn checkpoint at vtnc " << ck.vtnc;
  }
  stop.store(true);
  writer.join();
}

TEST(FileIoTest, AtomicWriteAndReadBack) {
  const std::string path = "/tmp/mvcc_file_io_test.bin";
  const std::string payload = std::string("binary\0data", 11);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // Overwrite is atomic too.
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(*ReadFile(path), "second");
  std::remove(path.c_str());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(ReadFile(path).status().IsNotFound());
}

TEST(FileIoTest, RoundTripWalImageThroughDisk) {
  const std::string path = "/tmp/mvcc_wal_roundtrip.bin";
  WriteAheadLog log;
  log.Append(CommitBatch{1, 5, {{3, "disk"}}});
  ASSERT_TRUE(WriteFileAtomic(path, log.Serialize()).ok());
  auto image = ReadFile(path);
  ASSERT_TRUE(image.ok());
  auto restored = WriteAheadLog::Deserialize(*image);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->size(), 1u);
  EXPECT_EQ((*restored)->Batches()[0].writes[0].value, "disk");
  std::remove(path.c_str());
}

TEST(RecoveryTest, DurableSegmentRotationAndTruncation) {
  const std::string dir = "/tmp/mvcc_durable_rotate_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DatabaseOptions opts = WalOpts();
  opts.enable_wal = false;  // the durable open supplies the log itself
  WalDurableOptions wopts;
  wopts.segment_target_bytes = 256;  // rotate every few records
  uint64_t sealed_plus_active = 0;
  {
    RecoveryReport report;
    auto db = OpenDatabaseDurable(opts, GetPosixEnv(), dir, wopts, &report);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE((*db)->Put(i % 8, "v" + std::to_string(i)).ok());
    }
    sealed_plus_active = (*db)->wal()->SegmentCount();
    EXPECT_GT(sealed_plus_active, 3u);  // rotation actually happened
    // Checkpoint + truncate deletes every sealed segment the checkpoint
    // covers — this is what frees disk space.
    auto gen = CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    ASSERT_TRUE(gen.ok());
    EXPECT_LT((*db)->wal()->SegmentCount(), sealed_plus_active);
    ASSERT_TRUE((*db)->Put(0, "post-checkpoint").ok());
  }
  RecoveryReport report;
  auto db = OpenDatabaseDurable(opts, GetPosixEnv(), dir, wopts, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT(report.checkpoint.loaded_generation, 0u);
  EXPECT_FALSE(report.wal.salvaged);
  EXPECT_EQ(*(*db)->Get(0), "post-checkpoint");
  for (ObjectKey k = 1; k < 8; ++k) {
    // Last write to key k in the loop above was i = 32 + k.
    EXPECT_EQ(*(*db)->Get(k), "v" + std::to_string(32 + k)) << "key " << k;
  }
  std::filesystem::remove_all(dir);
}

class RecoveryProtocolSweep : public ::testing::TestWithParam<ProtocolKind> {
};

TEST_P(RecoveryProtocolSweep, CrashRecoveryUnderConcurrentWorkload) {
  DatabaseOptions opts = WalOpts(GetParam());
  opts.preload_keys = 64;
  std::string wal_image;
  std::vector<std::pair<ObjectKey, Value>> expected;
  {
    Database db(opts);
    WorkloadSpec spec;
    spec.num_keys = 64;
    spec.read_only_fraction = 0.2;
    spec.zipf_theta = 0.5;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = 150;
    RunWorkload(&db, spec, run);
    wal_image = db.wal()->Serialize();
    // Capture the pre-crash committed state.
    auto reader = db.Begin(TxnClass::kReadOnly);
    auto scan = reader->Scan(0, 63);
    ASSERT_TRUE(scan.ok());
    expected = *scan;
    reader->Commit();
  }
  auto log = WriteAheadLog::Deserialize(wal_image);
  ASSERT_TRUE(log.ok());
  auto recovered = RecoverDatabase(opts, nullptr, **log);
  auto reader = recovered->Begin(TxnClass::kReadOnly);
  auto scan = reader->Scan(0, 63);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, expected);
  reader->Commit();
}

INSTANTIATE_TEST_SUITE_P(VcProtocols, RecoveryProtocolSweep,
                         ::testing::Values(ProtocolKind::kVc2pl,
                                           ProtocolKind::kVcTo,
                                           ProtocolKind::kVcOcc,
                                           ProtocolKind::kVcAdaptive));

}  // namespace
}  // namespace mvcc
