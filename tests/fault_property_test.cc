// Failure-injection property tests: outages, aggressive garbage
// collection, and widened install windows must never cost correctness —
// only availability (graceful errors) or performance.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/distributed_db.h"
#include "recovery/faulty_env.h"
#include "recovery/recovery.h"
#include "history/serializability.h"
#include "sim/sim_scheduler.h"
#include "txn/database.h"
#include "workload/runner.h"

namespace mvcc {
namespace {

TEST(FaultPropertyTest, DistributedWorkloadSurvivesRandomOutages) {
  DistributedDb::Options opts;
  opts.num_sites = 3;
  opts.preload_keys = 30;
  opts.initial_value = "init";
  opts.record_history = true;
  DistributedDb db(opts);

  std::atomic<bool> stop{false};
  // Chaos thread: flips one site down and back up repeatedly.
  std::thread chaos([&] {
    Random rng(1234);
    while (!stop.load()) {
      const int victim = static_cast<int>(rng.Uniform(3));
      db.site(victim).SetDown(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      db.site(victim).SetDown(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::vector<std::thread> workers;
  std::atomic<uint64_t> unavailable{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Random rng(400 + t);
      for (int i = 0; i < 200; ++i) {
        const int home = static_cast<int>(rng.Uniform(3));
        if (rng.Bernoulli(0.4)) {
          auto reader = db.Begin(TxnClass::kReadOnly, home);
          bool ok = true;
          for (int op = 0; op < 3 && ok; ++op) {
            auto r = reader->Read(rng.Uniform(30));
            if (!r.ok()) {
              ok = false;
              if (r.status().IsUnavailable()) unavailable.fetch_add(1);
            }
          }
          if (ok) {
            reader->Commit();
          } else {
            reader->Abort();
          }
        } else {
          auto writer = db.Begin(TxnClass::kReadWrite, home);
          bool dead = false;
          for (int op = 0; op < 3 && !dead; ++op) {
            Status s = writer->Write(rng.Uniform(30), "w");
            if (!s.ok()) {
              dead = true;
              if (s.IsUnavailable()) unavailable.fetch_add(1);
              writer->Abort();
            }
          }
          if (!dead) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  chaos.join();

  // Outages cost availability, never consistency.
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(db.site(s).version_control().QueueSize(), 0u) << "site " << s;
  }
  // After the chaos ends, everything works again.
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(txn->Write(0, "after").ok());
  ASSERT_TRUE(txn->Write(1, "after").ok());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(FaultPropertyTest, AggressiveGcNeverBreaksSerializability) {
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 32;
    opts.record_history = true;
    opts.enable_gc = true;
    Database db(opts);
    db.StartGc(std::chrono::milliseconds(1));

    WorkloadSpec spec;
    spec.num_keys = 32;
    spec.read_only_fraction = 0.4;
    spec.zipf_theta = 0.8;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = 150;
    RunWorkload(&db, spec, run);
    db.StopGc();
    // The background thread's last pass may predate the last commits;
    // one synchronous pass guarantees there is something to reclaim.
    db.gc()->RunOnce();

    auto verdict = CheckOneCopySerializable(*db.history());
    EXPECT_TRUE(verdict.one_copy_serializable) << ProtocolKindName(kind);
    // GC under the watermark can never make a pinned snapshot fail, so
    // every read-only transaction still committed untouched.
    EXPECT_EQ(db.counters().ro_aborts.load(), 0u) << ProtocolKindName(kind);
    EXPECT_GT(db.gc()->total_reclaimed(), 0u) << ProtocolKindName(kind);
  }
}

TEST(FaultPropertyTest, WidenedInstallWindowsNeverBreakSerializability) {
  for (ProtocolKind kind : {ProtocolKind::kVc2pl, ProtocolKind::kVcTo}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 16;
    opts.record_history = true;
    opts.install_pause_ns = 2000;  // stretch every commit's install phase
    Database db(opts);
    WorkloadSpec spec;
    spec.num_keys = 16;
    spec.read_only_fraction = 0.5;
    spec.zipf_theta = 0.9;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = 80;
    RunWorkload(&db, spec, run);
    auto verdict = CheckOneCopySerializable(*db.history());
    EXPECT_TRUE(verdict.one_copy_serializable) << ProtocolKindName(kind);
    EXPECT_TRUE(CheckLemmas(db.history()->Records()).empty())
        << ProtocolKindName(kind);
  }
}

TEST(FaultPropertyTest, WalSurvivesHighAbortWorkload) {
  // Aborts must leave no trace in the log: replaying it reproduces the
  // exact committed state even when most transactions die.
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 8;  // brutal contention
  opts.enable_wal = true;
  // Stretch commits so transactions genuinely overlap even on one core.
  opts.install_pause_ns = 20000;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 8;
  spec.read_only_fraction = 0.0;
  spec.rw_ops = 4;
  RunOptions run;
  run.threads = 6;
  run.txns_per_thread = 200;
  RunResult result = RunWorkload(&db, spec, run);
  EXPECT_GT(result.aborted_rw, 0u);  // the premise: many aborts
  EXPECT_EQ(db.wal()->size(), db.counters().rw_commits.load());

  auto reader = db.Begin(TxnClass::kReadOnly);
  auto expected = reader->Scan(0, 7);
  reader->Commit();

  auto log = WriteAheadLog::Deserialize(db.wal()->Serialize());
  ASSERT_TRUE(log.ok());
  auto recovered = RecoverDatabase(opts, nullptr, **log);
  auto post = recovered->Begin(TxnClass::kReadOnly);
  auto actual = post->Scan(0, 7);
  post->Commit();
  EXPECT_EQ(*expected, *actual);
}

// ---- explorer-driven storage crash sweep ----
//
// The schedule explorer's FaultPlan can crash the storage Env at any
// mutating syscall (FaultPlan::crash_at_env_op), the same way it crashes
// the in-memory WAL. For every crash placement the durability oracle
// must hold: the recovered state is a prefix of the commit order, no
// acknowledged commit is lost, and multi-key transactions recover
// atomically.

constexpr int kEnvSweepTxns = 6;
constexpr uint64_t kEnvSweepKeys = 2 * kEnvSweepTxns;

DatabaseOptions EnvSweepOpts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = kEnvSweepKeys;
  opts.initial_value = "init";
  return opts;
}

std::string EnvSweepDir(const std::string& tag) {
  const std::string dir = "/tmp/mvcc_envsweep_" + tag + "_" +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Opens a durable database over `env` and runs the fixed two-key
// workload, counting acknowledged commits. Tolerates failure at any
// point — that is the point.
int RunEnvSweepWorkload(Env* env, const std::string& dir) {
  RecoveryReport report;
  auto db = OpenDatabaseDurable(EnvSweepOpts(), env, dir,
                                WalDurableOptions{}, &report);
  if (!db.ok()) return 0;
  int acked = 0;
  for (int i = 0; i < kEnvSweepTxns; ++i) {
    auto txn = (*db)->Begin(TxnClass::kReadWrite);
    const std::string value = "v" + std::to_string(i);
    if (!txn->Write(2 * i, value).ok() ||
        !txn->Write(2 * i + 1, value).ok()) {
      txn->Abort();
      break;
    }
    if (txn->Commit().ok()) ++acked;
  }
  return acked;
}

TEST(FaultPropertyTest, EnvCrashSweepPreservesDurabilityOracle) {
  // Fault-free probe run sizes the sweep.
  const std::string probe_dir = EnvSweepDir("probe");
  FaultyEnv probe(GetPosixEnv());
  ASSERT_EQ(RunEnvSweepWorkload(&probe, probe_dir), kEnvSweepTxns);
  const uint64_t total_ops = probe.op_count();
  ASSERT_GT(total_ops, 0u);
  std::filesystem::remove_all(probe_dir);

  for (uint64_t c = 0; c < total_ops; ++c) {
    const std::string dir = EnvSweepDir(std::to_string(c));
    sim::SimScheduler::Options sopts;
    sopts.seed = c + 1;
    sopts.faults.crash_at_env_op = static_cast<int64_t>(c);
    sim::SimScheduler sched(sopts);
    FaultyEnv env(GetPosixEnv());
    int acked = 0;
    sched.Spawn("writer", /*expect_wait_free=*/false,
                [&] { acked = RunEnvSweepWorkload(&env, dir); });
    sched.Run();
    EXPECT_TRUE(sched.report().env_crashed) << sched.report().Summary();
    EXPECT_TRUE(env.crashed()) << "crash at env op " << c;

    // "Restart the process": recover from the directory as written.
    RecoveryReport report;
    auto db = OpenDatabaseDurable(EnvSweepOpts(), GetPosixEnv(), dir,
                                  WalDurableOptions{}, &report);
    ASSERT_TRUE(db.ok()) << "crash at env op " << c << ": "
                         << db.status().ToString();
    bool in_prefix = true;
    int recovered = 0;
    for (int i = 0; i < kEnvSweepTxns; ++i) {
      const std::string lo = *(*db)->Get(2 * i);
      const std::string hi = *(*db)->Get(2 * i + 1);
      EXPECT_EQ(lo, hi) << "txn " << i << " torn, crash at op " << c;
      if (lo == "v" + std::to_string(i)) {
        EXPECT_TRUE(in_prefix) << "gap before txn " << i << ", op " << c;
        ++recovered;
      } else {
        EXPECT_EQ(lo, "init") << "txn " << i << " mangled, op " << c;
        in_prefix = false;
      }
    }
    EXPECT_GE(recovered, acked) << "acked commit lost, crash at op " << c;
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace mvcc
