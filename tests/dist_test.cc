#include "dist/distributed_db.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "history/serializability.h"

namespace mvcc {
namespace {

DistributedDb::Options Opts(int sites = 3) {
  DistributedDb::Options opts;
  opts.num_sites = sites;
  opts.preload_keys = 30;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(NetworkTest, CountsOnlyRemoteMessages) {
  SimulatedNetwork net;
  net.Send(MessageType::kPrepare, 0, 1);
  net.Send(MessageType::kPrepare, 2, 2);  // local: free
  EXPECT_EQ(net.Count(MessageType::kPrepare), 1u);
  EXPECT_EQ(net.Total(), 1u);
  net.Reset();
  EXPECT_EQ(net.Total(), 0u);
}

TEST(DistTest, SingleSiteTransaction) {
  DistributedDb db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite, /*home_site=*/0);
  // Key 0 lives at site 0 == home: all operations are local.
  EXPECT_EQ(*txn->Read(0), "init");
  ASSERT_TRUE(txn->Write(0, "x").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(db.network().Count(MessageType::kRemoteRead), 0u);
  EXPECT_EQ(db.network().Count(MessageType::kPrepare), 0u);
}

TEST(DistTest, CrossSiteTransactionUsesTwoPhaseCommit) {
  DistributedDb db(Opts(3));
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(txn->Write(1, "a").ok());  // site 1
  ASSERT_TRUE(txn->Write(2, "b").ok());  // site 2
  ASSERT_TRUE(txn->Commit().ok());
  // Remote writes + prepare/commit to both remote participants.
  EXPECT_EQ(db.network().Count(MessageType::kRemoteWrite), 2u);
  EXPECT_EQ(db.network().Count(MessageType::kPrepare), 2u);
  EXPECT_EQ(db.network().Count(MessageType::kCommit), 2u);
  // Both sites agreed on one global transaction number.
  EXPECT_NE(txn->txn_number(), kInvalidTxnNumber);
  EXPECT_EQ(db.site(1).store().Find(1)->LatestNumber(), txn->txn_number());
  EXPECT_EQ(db.site(2).store().Find(2)->LatestNumber(), txn->txn_number());
}

TEST(DistTest, ReadOnlyCommitsWithZeroCommitMessages) {
  DistributedDb db(Opts(3));
  // Populate across sites.
  auto w = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(w->Write(1, "a").ok());
  ASSERT_TRUE(w->Write(2, "b").ok());
  ASSERT_TRUE(w->Commit().ok());
  db.network().Reset();

  auto reader = db.Begin(TxnClass::kReadOnly, 1);
  EXPECT_EQ(*reader->Read(1), "a");   // local to site 1
  EXPECT_EQ(*reader->Read(2), "b");   // one snapshot-read message
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_EQ(db.network().Count(MessageType::kSnapshotRead), 1u);
  EXPECT_EQ(db.network().Count(MessageType::kPrepare), 0u);
  EXPECT_EQ(db.network().Count(MessageType::kCommit), 0u);
}

TEST(DistTest, ReadOnlyNeedsNoAPrioriSiteKnowledge) {
  // The reader decides where to read on the fly — the limitation of [8]
  // the paper calls out does not apply.
  DistributedDb db(Opts(4));
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  Random rng(7);
  for (int i = 0; i < 10; ++i) {
    const ObjectKey key = rng.Uniform(30);
    EXPECT_TRUE(reader->Read(key).ok());
  }
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(DistTest, SnapshotConsistentAcrossSites) {
  DistributedDb db(Opts(2));
  // Writer updates keys on both sites atomically, twice.
  for (int round = 1; round <= 2; ++round) {
    auto w = db.Begin(TxnClass::kReadWrite, 0);
    const Value v = "round" + std::to_string(round);
    ASSERT_TRUE(w->Write(0, v).ok());  // site 0
    ASSERT_TRUE(w->Write(1, v).ok());  // site 1
    ASSERT_TRUE(w->Commit().ok());
  }
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  const Value a = *reader->Read(0);
  const Value b = *reader->Read(1);
  EXPECT_EQ(a, b);  // never half of one round
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistTest, AbortDiscardsAllParticipants) {
  DistributedDb db(Opts(3));
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(txn->Write(1, "x").ok());
  ASSERT_TRUE(txn->Write(2, "y").ok());
  txn->Abort();
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_EQ(*reader->Read(1), "init");
  EXPECT_EQ(*reader->Read(2), "init");
  ASSERT_TRUE(reader->Commit().ok());
  // Locks were released: a new writer proceeds.
  auto w2 = db.Begin(TxnClass::kReadWrite, 1);
  ASSERT_TRUE(w2->Write(1, "z").ok());
  ASSERT_TRUE(w2->Commit().ok());
}

TEST(DistTest, ConflictingWritersSerializeByGlobalNumber) {
  DistributedDb db(Opts(2));
  auto a = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(a->Write(0, "a").ok());
  ASSERT_TRUE(a->Commit().ok());
  auto b = db.Begin(TxnClass::kReadWrite, 1);
  ASSERT_TRUE(b->Write(0, "b").ok());
  ASSERT_TRUE(b->Commit().ok());
  EXPECT_LT(a->txn_number(), b->txn_number());
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_EQ(*reader->Read(0), "b");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistTest, ConcurrentMixedWorkloadIsGloballyOneCopySerializable) {
  DistributedDb db(Opts(3));
  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 150;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const int home = static_cast<int>(rng.Uniform(3));
        if (rng.Bernoulli(0.4)) {
          auto reader = db.Begin(TxnClass::kReadOnly, home);
          for (int op = 0; op < 4; ++op) {
            auto r = reader->Read(rng.Uniform(30));
            ASSERT_TRUE(r.ok());
          }
          ASSERT_TRUE(reader->Commit().ok());
        } else {
          auto writer = db.Begin(TxnClass::kReadWrite, home);
          bool aborted = false;
          for (int op = 0; op < 4 && !aborted; ++op) {
            const ObjectKey key = rng.Uniform(30);
            if (rng.Bernoulli(0.5)) {
              aborted = !writer->Write(key, "t" + std::to_string(t)).ok();
            } else {
              auto r = writer->Read(key);
              aborted = !r.ok() && r.status().IsAborted();
            }
          }
          if (!aborted) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_NE(db.history(), nullptr);
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << "MVSG cycle through " << verdict.cycle.size() << " nodes";
  EXPECT_GT(db.counters().ro_commits.load(), 0u);
  EXPECT_GT(db.counters().rw_commits.load(), 0u);
}

TEST(DistTest, SiteSnapshotReadWaitsForInFlightCommit) {
  // A registered-but-incomplete transaction below sn delays the snapshot
  // read until it resolves; the read then includes its effects.
  DistributedDb db(Opts(2));
  Site& site = db.site(0);
  const TxnId txn = 777;
  ASSERT_TRUE(site.Write(txn, 0, "inflight").ok());
  auto proposed = site.Prepare(txn, 42);
  ASSERT_TRUE(proposed.ok());

  std::atomic<bool> done{false};
  Value observed;
  std::thread reader([&] {
    // sn above the proposal: must wait.
    auto r = site.SnapshotRead(*proposed, 0);
    ASSERT_TRUE(r.ok());
    observed = r->value;
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  site.Commit(txn, *proposed, *proposed);
  reader.join();
  EXPECT_EQ(observed, "inflight");
}

TEST(DistScanTest, GlobalSnapshotScanMergesSites) {
  DistributedDb db(Opts(3));
  auto w = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(w->Write(4, "four").ok());
  ASSERT_TRUE(w->Write(5, "five").ok());
  ASSERT_TRUE(w->Commit().ok());
  auto reader = db.Begin(TxnClass::kReadOnly, 1);
  auto rows = reader->Scan(0, 29);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 30u);
  EXPECT_EQ((*rows)[4].first, 4u);
  EXPECT_EQ((*rows)[4].second, "four");
  EXPECT_EQ((*rows)[5].second, "five");
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LT((*rows)[i - 1].first, (*rows)[i].first);
  }
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistScanTest, GlobalScanIsTransactionallyConsistent) {
  DistributedDb db(Opts(2));
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  // Cross-site commit after the snapshot: invisible to the scan.
  auto w = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(w->Write(0, "new").ok());  // site 0
  ASSERT_TRUE(w->Write(1, "new").ok());  // site 1
  ASSERT_TRUE(w->Commit().ok());
  auto rows = reader->Scan(0, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].second, "init");
  EXPECT_EQ((*rows)[1].second, "init");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistScanTest, ScanRejectedForReadWrite) {
  DistributedDb db(Opts(2));
  auto rw = db.Begin(TxnClass::kReadWrite, 0);
  EXPECT_TRUE(rw->Scan(0, 10).status().IsInvalidArgument());
  rw->Abort();
}

TEST(DistGcTest, PerSiteWatermarkPrunes) {
  DistributedDb db(Opts(2));
  for (int i = 0; i < 20; ++i) {
    auto w = db.Begin(TxnClass::kReadWrite, 0);
    ASSERT_TRUE(w->Write(0, "v").ok());
    ASSERT_TRUE(w->Write(1, "v").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  const size_t before = db.TotalVersions();
  EXPECT_GT(db.RunGc(), 0u);
  EXPECT_LT(db.TotalVersions(), before);
  // Latest state intact on both sites.
  auto reader = db.Begin(TxnClass::kReadOnly, 1);
  EXPECT_EQ(*reader->Read(0), "v");
  EXPECT_EQ(*reader->Read(1), "v");
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(DistGcTest, StaleSnapshotReportsUnavailable) {
  DistributedDb db(Opts(2));
  // An old reader takes its start number at site 0 (vtnc = 0).
  auto old_reader = db.Begin(TxnClass::kReadOnly, 0);
  // Site 1 advances and collects: key 1's initial version is replaced.
  for (int i = 0; i < 5; ++i) {
    auto w = db.Begin(TxnClass::kReadWrite, 1);
    ASSERT_TRUE(w->Write(1, "new").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  db.RunGc();
  // The old snapshot at site 1 was collected: graceful error, not wrong
  // data (Section 4.2's "barring the unavailability ... due to
  // garbage-collection").
  auto read = old_reader->Read(1);
  EXPECT_TRUE(read.status().IsUnavailable()) << read.status();
  old_reader->Abort();
}

TEST(DistGcTest, PinnedRemoteReaderBlocksPruning) {
  // A snapshot read in progress pins its sn in the remote site's
  // registry; GC running concurrently must never prune it. Approximate
  // by hammering reads and GC together and checking for any failure.
  DistributedDb db(Opts(2));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> unavailable{0};
  std::thread writer([&] {
    while (!stop.load()) {
      auto w = db.Begin(TxnClass::kReadWrite, 0);
      if (!w->Write(1, "x").ok()) continue;
      w->Commit();
    }
  });
  std::thread collector([&] {
    while (!stop.load()) db.RunGc();
  });
  for (int i = 0; i < 300; ++i) {
    // Fresh snapshot each time: sn is current, so only the in-flight
    // pin protects it from the concurrent collector.
    auto reader = db.Begin(TxnClass::kReadOnly, 1);
    auto r = reader->Read(1);
    if (!r.ok() && r.status().IsUnavailable()) unavailable.fetch_add(1);
    reader->Commit();
  }
  stop.store(true);
  writer.join();
  collector.join();
  // Between sampling sn and pinning it, the collector may lawfully pass
  // the snapshot (reported as Unavailable, never as wrong data); most
  // reads must succeed.
  EXPECT_LE(unavailable.load(), 30u);
}

TEST(DistFailureTest, DownSiteRefusesOperations) {
  DistributedDb db(Opts(2));
  db.site(1).SetDown(true);
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  EXPECT_TRUE(txn->Read(1).status().IsUnavailable());   // key 1 at site 1
  EXPECT_TRUE(txn->Write(1, "x").IsUnavailable());
  EXPECT_TRUE(txn->Read(0).ok());                       // site 0 fine
  txn->Abort();
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_TRUE(reader->Read(1).status().IsUnavailable());
  reader->Abort();
}

TEST(DistFailureTest, PrepareFailureAbortsEverywhere) {
  DistributedDb db(Opts(3));
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(txn->Write(0, "a").ok());  // site 0
  ASSERT_TRUE(txn->Write(1, "b").ok());  // site 1
  ASSERT_TRUE(txn->Write(2, "c").ok());  // site 2
  // Site 2 crashes before the commit.
  db.site(2).SetDown(true);
  EXPECT_TRUE(txn->Commit().IsAborted());
  db.site(2).SetDown(false);

  // No site kept any effect, and every lock was released.
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_EQ(*reader->Read(0), "init");
  EXPECT_EQ(*reader->Read(1), "init");
  EXPECT_EQ(*reader->Read(2), "init");
  ASSERT_TRUE(reader->Commit().ok());
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(db.site(s).version_control().QueueSize(), 0u) << "site " << s;
  }
  auto retry = db.Begin(TxnClass::kReadWrite, 1);
  ASSERT_TRUE(retry->Write(0, "retry").ok());
  ASSERT_TRUE(retry->Write(2, "retry").ok());
  EXPECT_TRUE(retry->Commit().ok());
}

TEST(DistFailureTest, FirstParticipantDownAbortsCleanly) {
  DistributedDb db(Opts(2));
  auto txn = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(txn->Write(0, "a").ok());
  ASSERT_TRUE(txn->Write(1, "b").ok());
  db.site(0).SetDown(true);
  EXPECT_TRUE(txn->Commit().IsAborted());
  db.site(0).SetDown(false);
  EXPECT_EQ(db.site(0).version_control().QueueSize(), 0u);
  EXPECT_EQ(db.site(1).version_control().QueueSize(), 0u);
}

TEST(DistFailureTest, SurvivingSitesServeReadersDuringOutage) {
  DistributedDb db(Opts(2));
  auto w = db.Begin(TxnClass::kReadWrite, 0);
  ASSERT_TRUE(w->Write(0, "before").ok());
  ASSERT_TRUE(w->Commit().ok());
  db.site(1).SetDown(true);
  auto reader = db.Begin(TxnClass::kReadOnly, 0);
  EXPECT_EQ(*reader->Read(0), "before");
  ASSERT_TRUE(reader->Commit().ok());
  db.site(1).SetDown(false);
}

}  // namespace
}  // namespace mvcc
