#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/zipf.h"

namespace mvcc {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123), c(124);
  bool all_equal = true;
  bool any_differ_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    const uint64_t vb = b.Next();
    const uint64_t vc = c.Next();
    all_equal &= (va == vb);
    any_differ_from_c |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differ_from_c);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.05);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Random rng(3);
  ZipfGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(&rng)];
  // Every key should be hit under uniform selection.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ZipfTest, SkewConcentratesOnSmallKeys) {
  Random rng(3);
  ZipfGenerator zipf(1000, 0.99);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(&rng) < 10) ++head;
  }
  // With theta=0.99 the top-10 keys draw a large share of accesses.
  EXPECT_GT(head, n / 4);
}

TEST(ZipfTest, StaysInRange) {
  Random rng(5);
  ZipfGenerator zipf(17, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 17u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  // Log-scale buckets: p50 should land within a power of two of 50.
  EXPECT_GE(h.Percentile(0.5), 32);
  EXPECT_LE(h.Percentile(0.5), 128);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLatch> guard(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLatchTest, TryLock) {
  SpinLatch latch;
  EXPECT_TRUE(latch.try_lock());
  EXPECT_FALSE(latch.try_lock());
  latch.unlock();
  EXPECT_TRUE(latch.try_lock());
  latch.unlock();
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ClockTest, Monotonic) {
  const int64_t a = NowNanos();
  const int64_t b = NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  int64_t sink = 0;
  {
    ScopedTimer timer(&sink);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(sink, 0);
}

}  // namespace
}  // namespace mvcc
