// Read-write range scans: phantom exclusion under 2PL (range locks) and
// OCC (scanned-range validation).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/range_lock_table.h"
#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts(ProtocolKind kind) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 10;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(RangeLockTableTest, SharedRangesCoexist) {
  EventCounters counters;
  RangeLockTable table(&counters);
  EXPECT_TRUE(table.AcquireShared(1, 0, 100).ok());
  EXPECT_TRUE(table.AcquireShared(2, 50, 150).ok());
  EXPECT_EQ(table.ActiveIntervals(), 2u);
  table.ReleaseAll(1);
  table.ReleaseAll(2);
  EXPECT_EQ(table.ActiveIntervals(), 0u);
}

TEST(RangeLockTableTest, ExclusivePointConflictsWithOverlappingRange) {
  EventCounters counters;
  RangeLockTable table(&counters);
  EXPECT_TRUE(table.AcquireShared(1, 0, 100).ok());
  // Younger inserter inside the range dies.
  EXPECT_TRUE(table.AcquireExclusivePoint(2, 50).IsAborted());
  // Outside the range: fine.
  EXPECT_TRUE(table.AcquireExclusivePoint(2, 101).ok());
}

TEST(RangeLockTableTest, OlderRequesterWaits) {
  EventCounters counters;
  RangeLockTable table(&counters);
  EXPECT_TRUE(table.AcquireExclusivePoint(5, 50).ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    EXPECT_TRUE(table.AcquireShared(1, 0, 100).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  table.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(acquired.load());
}

TEST(RangeLockTableTest, ReacquireBySameTxnNeverSelfConflicts) {
  EventCounters counters;
  RangeLockTable table(&counters);
  EXPECT_TRUE(table.AcquireShared(1, 0, 10).ok());
  EXPECT_TRUE(table.AcquireExclusivePoint(1, 5).ok());
  EXPECT_TRUE(table.AcquireShared(1, 3, 7).ok());
}

class RwScanTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RwScanTest, BasicScanSeesCommittedState) {
  Database db(Opts(GetParam()));
  ASSERT_TRUE(db.Put(3, "three").ok());
  auto txn = db.Begin(TxnClass::kReadWrite);
  auto rows = txn->Scan(0, 9);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  EXPECT_EQ((*rows)[3].second, "three");
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_P(RwScanTest, ScanIncludesOwnBufferedWrites) {
  Database db(Opts(GetParam()));
  auto txn = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(txn->Write(4, "mine").ok());
  ASSERT_TRUE(txn->Write(42, "new-key").ok());  // key being created
  auto rows = txn->Scan(0, 50);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 11u);  // 10 preloaded + the new key
  EXPECT_EQ((*rows)[4].second, "mine");
  EXPECT_EQ(rows->back().first, 42u);
  EXPECT_EQ(rows->back().second, "new-key");
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_P(RwScanTest, RepeatableWithinTransaction) {
  Database db(Opts(GetParam()));
  auto txn = db.Begin(TxnClass::kReadWrite);
  auto first = txn->Scan(0, 9);
  auto second = txn->Scan(0, 9);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  ASSERT_TRUE(txn->Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(Protocols, RwScanTest,
                         ::testing::Values(ProtocolKind::kVc2pl,
                                           ProtocolKind::kVcTo,
                                           ProtocolKind::kVcOcc,
                                           ProtocolKind::kVcAdaptive));

TEST(RwScanPhantomTest, ToOlderCreatorRejectedByRangeFloor) {
  Database db(Opts(ProtocolKind::kVcTo));
  auto creator = db.Begin(TxnClass::kReadWrite);   // tn = 1 (older)
  auto scanner = db.Begin(TxnClass::kReadWrite);   // tn = 2 (younger)
  auto rows = scanner->Scan(0, 100);               // raises floor to 2
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  // The older transaction now tries to CREATE key 50 inside the scanned
  // range: its version (tn 1 <= 2) would be a phantom — rejected.
  EXPECT_TRUE(creator->Write(50, "phantom").IsAborted());
  ASSERT_TRUE(scanner->Write(5, "x").ok());
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, ToYoungerCreatorUnaffectedByFloor) {
  Database db(Opts(ProtocolKind::kVcTo));
  auto scanner = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto creator = db.Begin(TxnClass::kReadWrite);   // tn = 2 (younger)
  ASSERT_TRUE(scanner->Scan(0, 100).ok());         // floor = 1
  // A younger creator's version (tn 2 > floor 1) can never appear in
  // the scanner's snapshot: allowed.
  EXPECT_TRUE(creator->Write(50, "later").ok());
  ASSERT_TRUE(creator->Commit().ok());
  // Re-scan by the same (older) scanner still excludes it: tn 2 > 1.
  auto rows = scanner->Scan(0, 100);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  ASSERT_TRUE(scanner->Write(5, "x").ok());
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, ToScanBlocksOnOlderPendingCreation) {
  Database db(Opts(ProtocolKind::kVcTo));
  auto creator = db.Begin(TxnClass::kReadWrite);   // tn = 1
  auto scanner = db.Begin(TxnClass::kReadWrite);   // tn = 2
  ASSERT_TRUE(creator->Write(50, "newkey").ok());  // pending creation
  std::atomic<bool> scanned{false};
  size_t rows_seen = 0;
  std::thread t([&] {
    auto rows = scanner->Scan(0, 100);
    if (rows.ok()) rows_seen = rows->size();
    scanned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(scanned.load());  // blocked on the pending creation
  ASSERT_TRUE(creator->Commit().ok());
  t.join();
  EXPECT_EQ(rows_seen, 11u);  // the scan includes the older creation
  ASSERT_TRUE(scanner->Write(5, "x").ok());
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, TwoPlYoungerInserterDies) {
  Database db(Opts(ProtocolKind::kVc2pl));
  auto scanner = db.Begin(TxnClass::kReadWrite);   // older
  auto inserter = db.Begin(TxnClass::kReadWrite);  // younger
  ASSERT_TRUE(scanner->Scan(0, 100).ok());
  // Inserting a NEW key inside the scanned range: wait-die kills the
  // younger transaction at the range table.
  Status s = inserter->Write(50, "phantom");
  EXPECT_TRUE(s.IsAborted());
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, TwoPlOlderScannerWaitsForInserter) {
  Database db(Opts(ProtocolKind::kVc2pl));
  auto scanner = db.Begin(TxnClass::kReadWrite);   // older (waits)
  auto inserter = db.Begin(TxnClass::kReadWrite);  // younger (holds)
  ASSERT_TRUE(inserter->Write(50, "newkey").ok());
  std::atomic<bool> scanned{false};
  size_t rows_seen = 0;
  std::thread t([&] {
    auto rows = scanner->Scan(0, 100);
    if (rows.ok()) rows_seen = rows->size();
    scanned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(scanned.load());  // blocked on the insertion point
  ASSERT_TRUE(inserter->Commit().ok());
  t.join();
  // The scan ran after the inserter: it must include the new key.
  EXPECT_EQ(rows_seen, 11u);
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, TwoPlUpdateOfExistingKeyStillConflictsViaPointLocks) {
  Database db(Opts(ProtocolKind::kVc2pl));
  auto scanner = db.Begin(TxnClass::kReadWrite);   // older
  auto writer = db.Begin(TxnClass::kReadWrite);    // younger
  ASSERT_TRUE(scanner->Scan(0, 9).ok());  // S-locks every existing key
  EXPECT_TRUE(writer->Write(5, "update").IsAborted());  // wait-die
  ASSERT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, OccScannerAbortsWhenRangeChanges) {
  Database db(Opts(ProtocolKind::kVcOcc));
  auto scanner = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(scanner->Scan(0, 100).ok());
  // A concurrent transaction creates a key inside the scanned range and
  // validates first.
  auto inserter = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(inserter->Write(50, "phantom").ok());
  ASSERT_TRUE(inserter->Commit().ok());
  ASSERT_TRUE(scanner->Write(200, "out-of-range").ok());
  EXPECT_TRUE(scanner->Commit().IsAborted());
}

TEST(RwScanPhantomTest, OccScannerSurvivesWritesOutsideRange) {
  Database db(Opts(ProtocolKind::kVcOcc));
  auto scanner = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(scanner->Scan(0, 9).ok());
  auto other = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(other->Write(500, "elsewhere").ok());
  ASSERT_TRUE(other->Commit().ok());
  ASSERT_TRUE(scanner->Write(600, "y").ok());
  EXPECT_TRUE(scanner->Commit().ok());
}

TEST(RwScanPhantomTest, SerialReScanAfterInsertSeesNewKey) {
  // No concurrency: scan, commit, insert, re-scan.
  for (ProtocolKind kind : {ProtocolKind::kVc2pl, ProtocolKind::kVcOcc}) {
    Database db(Opts(kind));
    auto first = db.Begin(TxnClass::kReadWrite);
    auto rows1 = first->Scan(0, 100);
    ASSERT_TRUE(rows1.ok());
    ASSERT_TRUE(first->Commit().ok());
    ASSERT_TRUE(db.Put(50, "new").ok());
    auto second = db.Begin(TxnClass::kReadWrite);
    auto rows2 = second->Scan(0, 100);
    ASSERT_TRUE(rows2.ok());
    EXPECT_EQ(rows2->size(), rows1->size() + 1) << ProtocolKindName(kind);
    ASSERT_TRUE(second->Commit().ok());
  }
}

}  // namespace
}  // namespace mvcc
