#include "workload/trace.h"

#include <gtest/gtest.h>

#include "history/serializability.h"

namespace mvcc {
namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.num_keys = 32;
  spec.read_only_fraction = 0.4;
  spec.zipf_theta = 0.5;
  spec.seed = 77;
  return spec;
}

TEST(TraceTest, GenerateIsDeterministic) {
  Trace a = Trace::Generate(Spec(), 3, 50);
  Trace b = Trace::Generate(Spec(), 3, 50);
  ASSERT_EQ(a.threads.size(), 3u);
  EXPECT_EQ(a.TotalTxns(), 150u);
  ASSERT_EQ(a.Serialize(), b.Serialize());
}

TEST(TraceTest, SerializeRoundTrip) {
  Trace trace = Trace::Generate(Spec(), 2, 25);
  auto restored = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Serialize(), trace.Serialize());
  EXPECT_EQ(restored->TotalTxns(), 50u);
}

TEST(TraceTest, DeserializeRejectsCorruptImages) {
  Trace trace = Trace::Generate(Spec(), 1, 5);
  const std::string image = trace.Serialize();
  EXPECT_FALSE(Trace::Deserialize("junk").ok());
  EXPECT_FALSE(
      Trace::Deserialize(image.substr(0, image.size() - 4)).ok());
  EXPECT_FALSE(Trace::Deserialize(image + "z").ok());
}

TEST(TraceTest, ReplayExecutesEveryTransaction) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 32;
  Database db(opts);
  Trace trace = Trace::Generate(Spec(), 4, 60);
  RunResult result = ReplayTrace(&db, trace);
  EXPECT_EQ(result.committed() + result.aborted(), trace.TotalTxns());
  EXPECT_GT(result.committed(), 0u);
}

TEST(TraceTest, SameTraceAcrossProtocolsStaysSerializable) {
  // The fairness tool in action: one fixed trace, every VC protocol.
  Trace trace = Trace::Generate(Spec(), 4, 80);
  for (ProtocolKind kind : {ProtocolKind::kVc2pl, ProtocolKind::kVcTo,
                            ProtocolKind::kVcOcc,
                            ProtocolKind::kVcAdaptive}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 32;
    opts.record_history = true;
    Database db(opts);
    RunResult result = ReplayTrace(&db, trace);
    EXPECT_GT(result.committed(), 0u) << ProtocolKindName(kind);
    auto verdict = CheckOneCopySerializable(*db.history());
    EXPECT_TRUE(verdict.one_copy_serializable) << ProtocolKindName(kind);
    // Identical input guarantees: read-only attempt counts match the
    // trace exactly (VC read-only transactions can never abort).
    uint64_t trace_ro = 0;
    for (const auto& plans : trace.threads) {
      for (const TxnPlan& plan : plans) {
        trace_ro += plan.cls == TxnClass::kReadOnly ? 1 : 0;
      }
    }
    EXPECT_EQ(result.committed_ro, trace_ro) << ProtocolKindName(kind);
  }
}

TEST(TraceTest, SingleThreadedReplayCommitsEverything) {
  // One thread, no concurrency: nothing can conflict, so every
  // transaction in the trace commits under every protocol.
  Trace trace = Trace::Generate(Spec(), 1, 100);
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kMvto, ProtocolKind::kMv2plCtl, ProtocolKind::kSv2pl,
        ProtocolKind::kWeihlTi}) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = 32;
    Database db(opts);
    RunResult result = ReplayTrace(&db, trace);
    EXPECT_EQ(result.committed(), 100u) << ProtocolKindName(kind);
    EXPECT_EQ(result.aborted(), 0u) << ProtocolKindName(kind);
  }
}

}  // namespace
}  // namespace mvcc
