#include "cc/adaptive.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"
#include "history/serializability.h"
#include "txn/database.h"
#include "workload/runner.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcAdaptive;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(AdaptiveTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  EXPECT_EQ(*txn->Read(1), "one");
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
}

TEST(AdaptiveTest, StartsOptimistic) {
  Database db(Opts());
  auto* adaptive = dynamic_cast<Adaptive*>(&db.protocol());
  ASSERT_NE(adaptive, nullptr);
  EXPECT_EQ(adaptive->mode(), Adaptive::Mode::kOptimistic);
  EXPECT_EQ(adaptive->switches(), 0u);
}

TEST(AdaptiveTest, OptimisticModeDetectsConflicts) {
  Database db(Opts());
  auto t1 = db.Begin(TxnClass::kReadWrite);
  auto t2 = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*t1->Read(5), "init");
  ASSERT_TRUE(t2->Write(5, "x").ok());
  ASSERT_TRUE(t2->Commit().ok());
  ASSERT_TRUE(t1->Write(6, "y").ok());
  EXPECT_TRUE(t1->Commit().IsAborted());  // OCC validation failure
}

TEST(AdaptiveTest, SwitchesToLockingUnderContention) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcAdaptive;
  opts.preload_keys = 4;  // tiny key space: brutal contention
  Database db(opts);
  auto* adaptive = dynamic_cast<Adaptive*>(&db.protocol());

  WorkloadSpec spec;
  spec.num_keys = 4;
  spec.read_only_fraction = 0.0;
  spec.rw_ops = 4;
  spec.write_fraction = 0.5;
  RunOptions run;
  run.threads = 8;
  run.duration_ms = 400;
  RunWorkload(&db, spec, run);
  EXPECT_GE(adaptive->switches(), 1u)
      << "expected at least one OCC -> 2PL switch under contention";
}

TEST(AdaptiveTest, StaysOptimisticWithoutContention) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcAdaptive;
  opts.preload_keys = 65536;  // huge key space: no conflicts
  Database db(opts);
  auto* adaptive = dynamic_cast<Adaptive*>(&db.protocol());
  WorkloadSpec spec;
  spec.num_keys = 65536;
  spec.read_only_fraction = 0.3;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = 300;
  RunWorkload(&db, spec, run);
  EXPECT_EQ(adaptive->mode(), Adaptive::Mode::kOptimistic);
  EXPECT_EQ(adaptive->switches(), 0u);
}

TEST(AdaptiveTest, ReadOnlyPathUnchanged) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(1, "x").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  ASSERT_TRUE(db.Put(1, "y").ok());
  EXPECT_EQ(*reader->Read(1), "x");  // stable snapshot
  EXPECT_TRUE(reader->Commit().ok());
  EXPECT_EQ(db.counters().ro_blocks.load(), 0u);
  EXPECT_EQ(db.counters().ro_metadata_writes.load(), 0u);
}

TEST(AdaptiveTest, SerializableAcrossModeSwitches) {
  DatabaseOptions opts = Opts();
  opts.preload_keys = 8;  // high contention to force switches
  Database db(opts);
  auto* adaptive = dynamic_cast<Adaptive*>(&db.protocol());

  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      Random rng(900 + t);
      for (int i = 0; i < 400; ++i) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        bool dead = false;
        for (int op = 0; op < 3 && !dead; ++op) {
          const ObjectKey key = rng.Uniform(8);
          if (rng.Bernoulli(0.5)) {
            dead = !txn->Write(key, std::to_string(t)).ok();
          } else {
            auto r = txn->Read(key);
            dead = !r.ok() && r.status().IsAborted();
          }
        }
        if (!dead) txn->Commit();
      }
    });
  }
  for (auto& w : workers) w.join();
  auto verdict = CheckOneCopySerializable(*db.history());
  EXPECT_TRUE(verdict.one_copy_serializable)
      << "cycle after " << adaptive->switches() << " mode switches";
  EXPECT_TRUE(CheckLemmas(db.history()->Records()).empty());
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
}

TEST(AdaptiveTest, QueueDrainedAfterMixedOutcomes) {
  Database db(Opts());
  for (int i = 0; i < 50; ++i) {
    auto txn = db.Begin(TxnClass::kReadWrite);
    if (!txn->Write(i % 16, "v").ok()) continue;
    if (i % 3 == 0) {
      txn->Abort();
    } else {
      txn->Commit();
    }
  }
  EXPECT_EQ(db.version_control().QueueSize(), 0u);
}

}  // namespace
}  // namespace mvcc
