#include "baselines/mv2pl_ctl.h"

#include <gtest/gtest.h>

#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions Opts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kMv2plCtl;
  opts.preload_keys = 16;
  opts.initial_value = "init";
  opts.record_history = true;
  return opts;
}

TEST(Mv2plCtlTest, BasicReadWriteCommit) {
  Database db(Opts());
  auto txn = db.Begin(TxnClass::kReadWrite);
  EXPECT_EQ(*txn->Read(1), "init");
  ASSERT_TRUE(txn->Write(1, "one").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*db.Get(1), "one");
}

TEST(Mv2plCtlTest, ReadOnlyBeginCopiesCtl) {
  Database db(Opts());
  // Hold one transaction active so the CTL cannot fully truncate.
  auto blocker = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(blocker->Write(15, "hold").ok());
  // Commit a few transactions; watermark will trail the active one... but
  // since the blocker has no commit timestamp yet, these truncate freely.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Put(i, "v").ok());
  const uint64_t copied_before = db.counters().ctl_entries_copied.load();
  auto reader = db.Begin(TxnClass::kReadOnly);
  // Copy happened (possibly of a truncated list, >= 0 entries); the
  // behavioural point is that begin is O(|CTL|), not O(1).
  EXPECT_GE(db.counters().ctl_entries_copied.load(), copied_before);
  EXPECT_TRUE(reader->Commit().ok());
  blocker->Abort();
}

TEST(Mv2plCtlTest, UntruncatedCtlGrowsAndIsCopied) {
  ProtocolEnv env;
  ObjectStore store;
  VersionControl vc;
  EventCounters counters;
  store.Preload(4, "init");
  env.store = &store;
  env.vc = &vc;
  env.counters = &counters;
  Mv2plCtl protocol(env, DeadlockPolicy::kWaitDie, /*truncate_ctl=*/false);

  for (int i = 0; i < 10; ++i) {
    TxnState txn;
    txn.id = i + 1;
    txn.cls = TxnClass::kReadWrite;
    ASSERT_TRUE(protocol.Begin(&txn).ok());
    ASSERT_TRUE(protocol.Write(&txn, 1, "v").ok());
    ASSERT_TRUE(protocol.Commit(&txn).ok());
  }
  EXPECT_EQ(protocol.CtlSize(), 10u);

  TxnState reader;
  reader.id = 100;
  reader.cls = TxnClass::kReadOnly;
  ASSERT_TRUE(protocol.Begin(&reader).ok());
  EXPECT_EQ(counters.ctl_entries_copied.load(), 10u);
  auto read = protocol.Read(&reader, 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v");
}

TEST(Mv2plCtlTest, ReaderSkipsVersionsNotInCtlCopy) {
  ProtocolEnv env;
  ObjectStore store;
  VersionControl vc;
  EventCounters counters;
  store.Preload(4, "init");
  env.store = &store;
  env.vc = &vc;
  env.counters = &counters;
  Mv2plCtl protocol(env, DeadlockPolicy::kWaitDie, /*truncate_ctl=*/false);

  // Committed writer, ts = 1.
  TxnState w1;
  w1.id = 1;
  w1.cls = TxnClass::kReadWrite;
  ASSERT_TRUE(protocol.Begin(&w1).ok());
  ASSERT_TRUE(protocol.Write(&w1, 2, "one").ok());
  ASSERT_TRUE(protocol.Commit(&w1).ok());

  // Reader snapshots CTL = {1}.
  TxnState reader;
  reader.id = 50;
  reader.cls = TxnClass::kReadOnly;
  ASSERT_TRUE(protocol.Begin(&reader).ok());

  // Manually install a version with ts 0-ish semantics: simulate a writer
  // that obtained commit_ts but has not joined the CTL: install directly.
  store.GetOrCreate(2)->Install(Version{/*number=*/2, "phantom", 99});
  // Reader must not see "phantom" (creator 2 is not in its CTL copy) even
  // though 2 > its start_ts anyway; also must see "one".
  auto read = protocol.Read(&reader, 2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "one");
}

TEST(Mv2plCtlTest, ReadOnlySnapshotIgnoresLaterCommits) {
  Database db(Opts());
  ASSERT_TRUE(db.Put(3, "first").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  ASSERT_TRUE(db.Put(3, "second").ok());
  EXPECT_EQ(*reader->Read(3), "first");
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(Mv2plCtlTest, WritersConflictUnderLocks) {
  Database db(Opts());
  auto t_old = db.Begin(TxnClass::kReadWrite);
  auto t_new = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(t_old->Write(5, "old").ok());
  EXPECT_TRUE(t_new->Write(5, "new").IsAborted());  // wait-die
  ASSERT_TRUE(t_old->Commit().ok());
}

TEST(Mv2plCtlTest, ReadOnlyDoesNotBlockOnWriterLocks) {
  Database db(Opts());
  auto writer = db.Begin(TxnClass::kReadWrite);
  ASSERT_TRUE(writer->Write(5, "locked").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  EXPECT_EQ(*reader->Read(5), "init");
  EXPECT_TRUE(reader->Commit().ok());
  ASSERT_TRUE(writer->Commit().ok());
}

}  // namespace
}  // namespace mvcc
