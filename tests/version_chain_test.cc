#include "storage/version_chain.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mvcc {
namespace {

Version V(VersionNumber n, const char* value, TxnId writer = 1) {
  return Version{n, value, writer};
}

TEST(VersionChainTest, EmptyChainReads) {
  VersionChain chain;
  EXPECT_TRUE(chain.Read(10).status().IsNotFound());
  EXPECT_TRUE(chain.ReadLatest().status().IsNotFound());
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_EQ(chain.LatestNumber(), kInvalidTxnNumber);
}

TEST(VersionChainTest, ReadLargestVersionAtMost) {
  VersionChain chain;
  chain.Install(V(0, "v0"));
  chain.Install(V(5, "v5"));
  chain.Install(V(9, "v9"));

  EXPECT_EQ(chain.Read(0)->value, "v0");
  EXPECT_EQ(chain.Read(4)->value, "v0");
  EXPECT_EQ(chain.Read(5)->value, "v5");
  EXPECT_EQ(chain.Read(8)->value, "v5");
  EXPECT_EQ(chain.Read(9)->value, "v9");
  EXPECT_EQ(chain.Read(100)->value, "v9");
  EXPECT_EQ(chain.Read(5)->version, 5u);
}

TEST(VersionChainTest, ReadLatest) {
  VersionChain chain;
  chain.Install(V(3, "a"));
  chain.Install(V(7, "b"));
  EXPECT_EQ(chain.ReadLatest()->value, "b");
  EXPECT_EQ(chain.ReadLatest()->version, 7u);
  EXPECT_EQ(chain.LatestNumber(), 7u);
}

TEST(VersionChainTest, OutOfOrderInstallKeepsSortedOrder) {
  // TO writers may commit out of tn order.
  VersionChain chain;
  chain.Install(V(10, "ten"));
  chain.Install(V(4, "four"));
  chain.Install(V(7, "seven"));
  EXPECT_EQ(chain.Read(5)->value, "four");
  EXPECT_EQ(chain.Read(8)->value, "seven");
  EXPECT_EQ(chain.ReadLatest()->value, "ten");
  EXPECT_EQ(chain.size(), 3u);
}

TEST(VersionChainTest, WriterAttribution) {
  VersionChain chain;
  chain.Install(Version{2, "x", /*writer=*/42});
  EXPECT_EQ(chain.Read(2)->writer, 42u);
}

TEST(VersionChainTest, PruneKeepsNewestVisible) {
  VersionChain chain;
  for (VersionNumber n : {0, 2, 4, 6, 8}) {
    chain.Install(V(n, "v"));
  }
  // Watermark 5: versions 0 and 2 are unreachable (4 is the newest <= 5).
  EXPECT_EQ(chain.Prune(5), 2u);
  EXPECT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain.Read(5)->version, 4u);   // still readable at watermark
  EXPECT_EQ(chain.Read(100)->version, 8u);
  EXPECT_TRUE(chain.Read(1).status().IsNotFound());
}

TEST(VersionChainTest, PruneBelowOldestIsNoop) {
  VersionChain chain;
  chain.Install(V(5, "v"));
  EXPECT_EQ(chain.Prune(4), 0u);
  EXPECT_EQ(chain.Prune(5), 0u);  // newest <= 5 is version 5: retained
  EXPECT_EQ(chain.size(), 1u);
}

TEST(VersionChainTest, PruneEverythingButLatest) {
  VersionChain chain;
  for (VersionNumber n = 0; n < 100; ++n) chain.Install(V(n, "v"));
  EXPECT_EQ(chain.Prune(1000), 99u);
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.ReadLatest()->version, 99u);
}

TEST(VersionChainTest, ReadIfSkipsExcludedVersions) {
  VersionChain chain;
  chain.Install(V(0, "v0"));
  chain.Install(V(5, "v5"));
  chain.Install(V(7, "v7"));
  // Reader whose CTL copy excludes version 7.
  auto in_ctl = [](VersionNumber v) { return v != 7; };
  EXPECT_EQ(chain.ReadIf(10, in_ctl)->value, "v5");
  EXPECT_EQ(chain.ReadIf(6, in_ctl)->value, "v5");
  EXPECT_EQ(chain.ReadIf(4, in_ctl)->value, "v0");
  auto nothing = [](VersionNumber) { return false; };
  EXPECT_TRUE(chain.ReadIf(10, nothing).status().IsNotFound());
}

TEST(VersionChainTest, ConcurrentInstallAndRead) {
  VersionChain chain;
  chain.Install(V(0, "init"));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto r = chain.Read(1000000);
      ASSERT_TRUE(r.ok());
    }
  });
  for (VersionNumber n = 1; n <= 5000; ++n) chain.Install(V(n, "v"));
  stop.store(true);
  reader.join();
  EXPECT_EQ(chain.size(), 5001u);
}

}  // namespace
}  // namespace mvcc
