// The lock-free completion-ring core of VersionControl, and the shared
// commit pipeline built on top of it.
//
// The concurrent tests here are the TSan targets for the ring: they
// hammer Register/Complete/Discard from many threads while a sampler
// asserts, from outside, the two properties the paper names —
//
//   vtnc monotonicity        vtnc never moves backwards;
//   Transaction Visibility   whenever vtnc = v is observed, every
//                            transaction numbered <= v has resolved
//                            (completed or discarded), and v itself is a
//                            COMPLETED number (discards never become
//                            vtnc).
//
// plus the head-drain deviation (a discarded head must not stall a
// completed suffix), ring wraparound, ring-full backpressure, and the
// gap machinery AdvanceCounterPast leaves behind. The final section
// drives the group-commit pipeline end to end and sweeps it under the
// deterministic explorer with the full oracle stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "sim/explorer.h"
#include "txn/database.h"
#include "vc/version_control.h"

namespace mvcc {
namespace {

// ---- concurrent stress: monotonicity + visibility property ----

constexpr uint8_t kUnresolved = 0;
constexpr uint8_t kCompleted = 1;
constexpr uint8_t kDiscarded = 2;

TEST(VcRing, StressVisibilityPropertyUnderConcurrentResolves) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  constexpr uint64_t kMaxTn = kThreads * kPerThread + 1;

  VersionControl vc;  // kDense -> ring core
  ASSERT_TRUE(vc.ring_core());

  // resolved[tn] is written BEFORE the Complete/Discard call for tn, so
  // any vtnc value v published by the ring (acquire-read by the sampler)
  // must find resolved[t] != kUnresolved for every t <= v.
  std::vector<std::atomic<uint8_t>> resolved(kMaxTn + 1);
  for (auto& r : resolved) r.store(kUnresolved, std::memory_order_relaxed);

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    TxnNumber last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const TxnNumber v = vc.vtnc();
      ASSERT_GE(v, last) << "vtnc moved backwards";
      if (v > last) {
        // New visibility horizon: everything at or below it resolved,
        // and the horizon itself is a completed transaction.
        ASSERT_EQ(resolved[v].load(std::memory_order_acquire), kCompleted)
            << "vtnc " << v << " is not a completed tn";
        for (TxnNumber t = last + 1; t < v; ++t) {
          ASSERT_NE(resolved[t].load(std::memory_order_acquire),
                    kUnresolved)
              << "tn " << t << " unresolved below vtnc " << v;
        }
        last = v;
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(77 + w);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const TxnNumber tn = vc.Register(TxnId(w) + 1);
        ASSERT_LE(tn, kMaxTn);
        if ((rng.Next() & 3) == 0) {
          resolved[tn].store(kDiscarded, std::memory_order_release);
          vc.Discard(tn);
        } else {
          resolved[tn].store(kCompleted, std::memory_order_release);
          vc.Complete(tn);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();

  // Quiesced: the drain consumed every assigned number; vtnc is the
  // highest completed one and the queue is empty.
  EXPECT_EQ(vc.QueueSize(), 0u);
  TxnNumber highest_completed = 0;
  for (TxnNumber t = 1; t <= kThreads * kPerThread; ++t) {
    ASSERT_NE(resolved[t].load(), kUnresolved);
    if (resolved[t].load() == kCompleted) highest_completed = t;
  }
  EXPECT_EQ(vc.vtnc(), highest_completed);
}

// Registrations outrun completions by whole ring laps: slot reuse (and
// the drain's CAS-based slot free) must never lose or double-count a
// transaction.
TEST(VcRing, WraparoundReusesSlotsAcrossManyLaps) {
  VersionControl vc;
  const uint64_t total = 3 * VersionControl::kRingSize + 17;
  for (uint64_t i = 1; i <= total; ++i) {
    const TxnNumber tn = vc.Register(1);
    EXPECT_EQ(tn, i);
    vc.Complete(tn);
    EXPECT_EQ(vc.vtnc(), i);
  }
  EXPECT_EQ(vc.QueueSize(), 0u);
}

// The deviation from Figure 1's literal VCdiscard, on the ring core: a
// completed suffix stuck behind a discarded head must drain.
TEST(VcRing, DiscardedHeadDrainsCompletedSuffix) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  const TxnNumber t3 = vc.Register(3);
  vc.Complete(t2);
  vc.Complete(t3);
  EXPECT_EQ(vc.vtnc(), 0u);  // t1 still active gates visibility
  vc.Discard(t1);
  EXPECT_EQ(vc.vtnc(), t3);  // drain passed t1 without making it vtnc
  EXPECT_EQ(vc.QueueSize(), 0u);
}

// A discarded number in the middle never becomes the visibility horizon.
TEST(VcRing, DiscardNeverBecomesVtnc) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t1);
  EXPECT_EQ(vc.vtnc(), t1);
  vc.Discard(t2);
  EXPECT_EQ(vc.vtnc(), t1);  // drained past t2, horizon unchanged
  const TxnNumber t3 = vc.Register(3);
  vc.Complete(t3);
  EXPECT_EQ(vc.vtnc(), t3);
}

// A registration more than kRingSize ahead of the drain cursor blocks
// until a slot frees, then proceeds.
TEST(VcRing, FullRingBackpressuresRegister) {
  VersionControl vc;
  std::vector<TxnNumber> tns;
  for (uint64_t i = 0; i < VersionControl::kRingSize; ++i) {
    tns.push_back(vc.Register(1));
  }

  std::atomic<bool> registered{false};
  std::thread overflow([&] {
    const TxnNumber tn = vc.Register(2);
    registered.store(true, std::memory_order_release);
    vc.Complete(tn);
  });

  // The ring is full: the overflow registration cannot have proceeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(registered.load(std::memory_order_acquire));

  // Freeing the oldest slot unblocks it.
  vc.Complete(tns.front());
  overflow.join();
  EXPECT_TRUE(registered.load());
  for (size_t i = 1; i < tns.size(); ++i) vc.Complete(tns[i]);
  EXPECT_EQ(vc.QueueSize(), 0u);
  EXPECT_EQ(vc.vtnc(), VersionControl::kRingSize + 1);
}

// AdvanceCounterPast jumps the counter; the never-assigned range must
// not stall the drain, wedge WaitNoActiveAtOrBelow, or inflate
// QueueSize.
TEST(VcRing, CounterJumpLeavesDrainableGap) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  vc.Complete(t1);
  vc.AdvanceCounterPast(100);
  EXPECT_EQ(vc.NextNumber(), 101u);
  vc.WaitNoActiveAtOrBelow(100);  // gap only: must not block
  const TxnNumber t2 = vc.Register(2);
  EXPECT_EQ(t2, 101u);
  EXPECT_EQ(vc.QueueSize(), 1u);  // the gap is not "queued" work
  vc.Complete(t2);
  EXPECT_EQ(vc.vtnc(), t2);
  EXPECT_EQ(vc.QueueSize(), 0u);
}

// Same, with the jump landing while transactions are in flight and the
// post-jump transaction completing FIRST — the drain must hop the gap
// only after the pre-jump prefix resolves.
TEST(VcRing, GapDrainsOnlyAfterPrecedingPrefixResolves) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  vc.AdvanceCounterPast(50);
  const TxnNumber t2 = vc.Register(2);
  EXPECT_EQ(t2, 51u);
  vc.Complete(t2);
  EXPECT_EQ(vc.vtnc(), 0u);  // t1 active: neither gap nor t2 visible
  vc.Complete(t1);
  EXPECT_EQ(vc.vtnc(), t2);
  EXPECT_EQ(vc.QueueSize(), 0u);
}

TEST(VcRing, StartAtLeastWakesWhenVtncReachesTarget) {
  VersionControl vc;
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);

  std::atomic<TxnNumber> got{0};
  std::thread waiter([&] {
    got.store(vc.StartAtLeast(t2), std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(std::memory_order_acquire), 0u);
  vc.Complete(t1);
  vc.Complete(t2);
  waiter.join();
  EXPECT_GE(got.load(), t2);
}

// Concurrent WaitNoActiveAtOrBelow against a churning ring: the wait
// must return only once no ASSIGNED number at or below its bound is
// still unresolved. (Numbers the scanner's own AdvanceCounterPast
// jumped over are never assigned at all and stay kUnresolved forever —
// that is not activity, and the gap machinery must let the wait pass
// them.)
constexpr uint8_t kAssigned = 3;

TEST(VcRing, WaitNoActiveAtOrBelowUnderChurn) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  VersionControl vc;
  // AdvanceCounterPast pushes assignments past kThreads * kPerThread;
  // size generously and stop workers that run off the end.
  const uint64_t kMaxTn = 4 * kThreads * kPerThread;
  std::vector<std::atomic<uint8_t>> resolved(kMaxTn + 2);
  for (auto& r : resolved) r.store(kUnresolved, std::memory_order_relaxed);

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(7 + w);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const TxnNumber tn = vc.Register(TxnId(w) + 1);
        ASSERT_LE(tn, kMaxTn);
        resolved[tn].store(kAssigned, std::memory_order_release);
        const uint8_t state = (rng.Next() & 7) == 0 ? kDiscarded : kCompleted;
        resolved[tn].store(state, std::memory_order_release);
        if (state == kDiscarded) {
          vc.Discard(tn);
        } else {
          vc.Complete(tn);
        }
      }
    });
  }
  std::thread scanner([&] {
    Random rng(99);
    for (int i = 0; i < 200; ++i) {
      const TxnNumber sn = vc.vtnc() + 1 + rng.Uniform(16);
      vc.AdvanceCounterPast(sn);
      vc.WaitNoActiveAtOrBelow(sn);
      const TxnNumber bound = std::min<TxnNumber>(sn, kMaxTn);
      for (TxnNumber t = 1; t <= bound; ++t) {
        ASSERT_NE(resolved[t].load(std::memory_order_acquire), kAssigned)
            << "tn " << t << " still active after WaitNoActiveAtOrBelow("
            << sn << ")";
      }
    }
  });
  for (auto& w : workers) w.join();
  scanner.join();
  EXPECT_EQ(vc.QueueSize(), 0u);
}

// The literal-Figure-1 knob pins the locked core (the stalled-suffix
// observable is defined on the map queue) and must be set before any
// registration.
TEST(VcRing, LiteralFigure1KnobSwitchesToLockedCore) {
  VersionControl vc;
  EXPECT_TRUE(vc.ring_core());
  vc.SetLiteralFigure1DiscardForTest(true);
  EXPECT_FALSE(vc.ring_core());
  const TxnNumber t1 = vc.Register(1);
  const TxnNumber t2 = vc.Register(2);
  vc.Complete(t2);
  vc.Discard(t1);               // literal discard: no head drain
  EXPECT_EQ(vc.vtnc(), 0u);     // the known stall the oracle catches
  EXPECT_EQ(vc.QueueSize(), 1u);
}

// ---- the shared commit pipeline ----

// Concurrent committers through one Database: every commit's batch is
// durable (in the WAL) and the group-commit accounting holds —
// batches_logged equals the number of logged commits while
// groups_flushed never exceeds it (their gap is the batching win).
TEST(VcRing, PipelineGroupCommitDurableBeforeVisible) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 64;
  opts.enable_wal = true;
  Database db(opts);

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 200;
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(1234 + w);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        bool ok = txn->Write(rng.Uniform(64), "v").ok() &&
                  txn->Write(rng.Uniform(64), "w").ok();
        if (ok && txn->Commit().ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const uint64_t committed = commits.load();
  ASSERT_GT(committed, 0u);
  EXPECT_EQ(db.commit_pipeline().batches_logged(), committed);
  EXPECT_LE(db.commit_pipeline().groups_flushed(),
            db.commit_pipeline().batches_logged());
  EXPECT_GE(db.commit_pipeline().groups_flushed(), 1u);

  // Write-ahead-of-visibility at quiesce: every committed tn at or
  // below vtnc has its batch in the log, exactly once.
  const TxnNumber vtnc = db.version_control().vtnc();
  std::vector<uint64_t> seen;
  for (const CommitBatch& b : db.wal()->Batches()) {
    EXPECT_LE(b.tn, vtnc);
    seen.push_back(b.tn);
  }
  EXPECT_EQ(seen.size(), committed);
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
      << "duplicate batch tn in the WAL";
}

// All four VC protocols route their epilogue through the pipeline; a
// sequential sanity pass over each must log through it.
TEST(VcRing, EveryVcProtocolLogsThroughThePipeline) {
  for (ProtocolKind protocol :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive}) {
    DatabaseOptions opts;
    opts.protocol = protocol;
    opts.preload_keys = 8;
    opts.enable_wal = true;
    Database db(opts);
    uint64_t committed = 0;
    for (int i = 0; i < 20; ++i) {
      auto txn = db.Begin(TxnClass::kReadWrite);
      if (txn->Write(i % 8, "x").ok() && txn->Commit().ok()) ++committed;
    }
    EXPECT_GT(committed, 0u) << ProtocolKindName(protocol);
    EXPECT_EQ(db.commit_pipeline().batches_logged(), committed)
        << ProtocolKindName(protocol);
    EXPECT_EQ(db.wal()->Batches().size(), committed)
        << ProtocolKindName(protocol);
  }
}

// ---- group commit under the deterministic explorer ----

// Schedule exploration with the WAL on (and no crash injection): the
// scheduler interleaves tasks at "pipeline.enqueue" so real multi-batch
// groups form, and every execution is checked by the full oracle stack
// (MVSG one-copy serializability, the Section 5.1 lemmas, vtnc
// invariants, read-only wait-freedom).
TEST(VcRing, ExplorerSweepOverGroupCommitPipeline) {
  for (ProtocolKind protocol :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive}) {
    uint64_t total_commits = 0;
    for (uint64_t seed = 1; seed <= 15; ++seed) {
      sim::ExploreOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.enable_wal = true;
      const sim::SimReport report = sim::ExploreOnce(opt);
      ASSERT_TRUE(report.ok())
          << ProtocolKindName(protocol) << " seed " << seed << " "
          << report.Summary();
      total_commits += report.commits;
    }
    EXPECT_GT(total_commits, 15u) << ProtocolKindName(protocol);
  }
}

}  // namespace
}  // namespace mvcc
