#include "gc/garbage_collector.h"

#include <gtest/gtest.h>

#include <chrono>

#include "gc/reader_registry.h"
#include "txn/database.h"

namespace mvcc {
namespace {

DatabaseOptions GcOpts() {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 4;
  opts.initial_value = "init";
  opts.enable_gc = true;
  return opts;
}

TEST(ReaderRegistryTest, TracksMinActive) {
  ReaderRegistry reg;
  EXPECT_FALSE(reg.MinActive().has_value());
  reg.Enter(10);
  reg.Enter(5);
  reg.Enter(10);
  EXPECT_EQ(reg.MinActive().value(), 5u);
  EXPECT_EQ(reg.ActiveCount(), 3u);
  reg.Exit(5);
  EXPECT_EQ(reg.MinActive().value(), 10u);
  reg.Exit(10);
  reg.Exit(10);
  EXPECT_FALSE(reg.MinActive().has_value());
}

TEST(ReaderRegistryTest, ExitOfUnknownIsNoop) {
  ReaderRegistry reg;
  reg.Exit(7);
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

TEST(GcTest, WatermarkIsVtncWithoutReaders) {
  Database db(GcOpts());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Put(1, "v").ok());
  EXPECT_EQ(db.gc()->Watermark(), db.version_control().vtnc());
}

TEST(GcTest, RunOncePrunesOldVersions) {
  Database db(GcOpts());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(db.Put(1, "v").ok());
  // Key 1 holds the initial version plus 10 committed versions.
  EXPECT_EQ(db.store().Find(1)->size(), 11u);
  EXPECT_GT(db.gc()->RunOnce(), 0u);
  EXPECT_EQ(db.store().Find(1)->size(), 1u);
  // The latest value is untouched.
  EXPECT_EQ(*db.Get(1), "v");
}

TEST(GcTest, ActiveReaderHoldsBackPruning) {
  Database db(GcOpts());
  ASSERT_TRUE(db.Put(1, "old").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);  // snapshot pins "old"
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Put(1, "new").ok());
  db.gc()->RunOnce();
  // The reader's version must have survived.
  EXPECT_EQ(*reader->Read(1), "old");
  EXPECT_TRUE(reader->Commit().ok());
  // With the reader gone, a second pass reclaims the rest.
  db.gc()->RunOnce();
  EXPECT_EQ(db.store().Find(1)->size(), 1u);
}

TEST(GcTest, WatermarkNeverExceedsVtnc) {
  Database db(GcOpts());
  ASSERT_TRUE(db.Put(1, "a").ok());
  EXPECT_LE(db.gc()->Watermark(), db.version_control().vtnc());
}

TEST(GcTest, BackgroundThreadReclaims) {
  Database db(GcOpts());
  db.StartGc(std::chrono::milliseconds(5));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(db.Put(1, "v").ok());
  // Give the collector a few passes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  db.StopGc();
  EXPECT_GT(db.gc()->total_reclaimed(), 0u);
  EXPECT_GT(db.gc()->passes(), 1u);
  EXPECT_EQ(*db.Get(1), "v");
}

TEST(GcTest, InlineGcPrunesAtCommit) {
  DatabaseOptions opts = GcOpts();
  opts.inline_gc = true;
  Database db(opts);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(db.Put(1, "v").ok());
  // No background thread ever ran; inline pruning alone bounds the chain
  // (the version just installed is above the watermark, so a small tail
  // remains).
  EXPECT_LE(db.store().Find(1)->size(), 3u);
  EXPECT_EQ(*db.Get(1), "v");
}

TEST(GcTest, InlineGcRespectsPinnedReader) {
  DatabaseOptions opts = GcOpts();
  opts.inline_gc = true;
  Database db(opts);
  ASSERT_TRUE(db.Put(1, "old").ok());
  auto reader = db.Begin(TxnClass::kReadOnly);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(db.Put(1, "new").ok());
  EXPECT_EQ(*reader->Read(1), "old");  // pin survived inline pruning
  EXPECT_TRUE(reader->Commit().ok());
}

TEST(GcTest, SnapshotReadsNeverFailUnderConcurrentGc) {
  // The watermark contract: a pinned reader can always reach its
  // snapshot, no matter how aggressively GC runs.
  Database db(GcOpts());
  db.StartGc(std::chrono::milliseconds(1));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::thread reader_thread([&] {
    while (!stop.load()) {
      auto reader = db.Begin(TxnClass::kReadOnly);
      for (ObjectKey k = 0; k < 4; ++k) {
        if (!reader->Read(k).ok()) failures.fetch_add(1);
      }
      reader->Commit();
    }
  });
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Put(i % 4, "v").ok());
  }
  stop.store(true);
  reader_thread.join();
  db.StopGc();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace mvcc
