#include "cc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace mvcc {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 7, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, 7, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 7, LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, 7, LockMode::kExclusive));
}

TEST(LockManagerTest, ExclusiveIsExclusive) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());
  // Txn 2 is younger (larger id): wait-die says it dies immediately.
  EXPECT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, 7, LockMode::kShared).IsAborted());
  EXPECT_EQ(counters.deadlock_aborts.load(), 2u);
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());  // upgrade
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());     // covered by X
  EXPECT_TRUE(lm.Holds(1, 7, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaderWaitDie) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 7, LockMode::kShared).ok());
  // Txn 2 upgrading dies (younger than holder 1).
  EXPECT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, OlderRequesterWaitsForRelease) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  // Younger txn 5 holds X; older txn 1 requests and must WAIT, not die.
  EXPECT_TRUE(lm.Acquire(5, 7, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  EXPECT_EQ(counters.rw_blocks.load(), 1u);
  lm.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_TRUE(lm.Holds(1, 7, LockMode::kExclusive));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ReleaseAllFreesEveryKey) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  for (ObjectKey k = 0; k < 20; ++k) {
    EXPECT_TRUE(lm.Acquire(1, k, LockMode::kExclusive).ok());
  }
  lm.ReleaseAll(1);
  for (ObjectKey k = 0; k < 20; ++k) {
    EXPECT_FALSE(lm.Holds(1, k, LockMode::kShared));
    EXPECT_TRUE(lm.Acquire(9, k, LockMode::kExclusive).ok());
  }
}

TEST(LockManagerTest, DetectPolicyFindsTwoTxnDeadlock) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kDetect, &counters);
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive).ok());

  std::atomic<int> aborted{0};
  std::thread t1([&] {
    // 1 waits for 200 (held by 2).
    Status s = lm.Acquire(1, 200, LockMode::kExclusive);
    if (s.IsAborted()) aborted.fetch_add(1);
    lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread t2([&] {
    // 2 requests 100 (held by 1): closes the cycle, someone dies.
    Status s = lm.Acquire(2, 100, LockMode::kExclusive);
    if (s.IsAborted()) aborted.fetch_add(1);
    lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_GE(counters.deadlock_aborts.load(), 1u);
}

TEST(LockManagerTest, DetectPolicyAllowsPlainWaiting) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kDetect, &counters);
  ASSERT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(2);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, ReadOnlyFlagAttributesBlockCounters) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  ASSERT_TRUE(lm.Acquire(5, 7, LockMode::kExclusive).ok());
  std::thread reader([&] {
    EXPECT_TRUE(lm.Acquire(1, 7, LockMode::kShared, /*read_only=*/true).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(counters.ro_blocks.load(), 1u);
  EXPECT_EQ(counters.rw_blocks.load(), 0u);
  lm.ReleaseAll(5);
  reader.join();
}

TEST(LockManagerTest, TimeoutPolicyAbortsPresumedDeadlock) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kTimeout, &counters, 64,
                 /*timeout_ms=*/20);
  ASSERT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());
  // Holder never releases: the waiter gives up after its budget.
  Status s = lm.Acquire(2, 7, LockMode::kExclusive);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(counters.deadlock_aborts.load(), 1u);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, TimeoutPolicyStillAcquiresWhenReleasedInTime) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kTimeout, &counters, 64,
                 /*timeout_ms=*/500);
  ASSERT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    acquired.store(lm.Acquire(2, 7, LockMode::kShared).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(counters.deadlock_aborts.load(), 0u);
}

TEST(LockManagerTest, TimeoutPolicyResolvesRealDeadlock) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kTimeout, &counters, 64,
                 /*timeout_ms=*/20);
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive).ok());
  std::atomic<int> aborted{0};
  std::thread t1([&] {
    if (lm.Acquire(1, 200, LockMode::kExclusive).IsAborted()) {
      aborted.fetch_add(1);
    }
    lm.ReleaseAll(1);
  });
  std::thread t2([&] {
    if (lm.Acquire(2, 100, LockMode::kExclusive).IsAborted()) {
      aborted.fetch_add(1);
    }
    lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1);  // at least one side timed out
}

TEST(LockManagerTest, ConcurrentStressNoLostLocks) {
  EventCounters counters;
  LockManager lm(DeadlockPolicy::kWaitDie, &counters);
  std::atomic<int64_t> shared_value{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const TxnId txn = static_cast<TxnId>(t) * 1000000 + i + 1;
        if (lm.Acquire(txn, 1, LockMode::kExclusive).ok()) {
          const int64_t v = shared_value.load(std::memory_order_relaxed);
          std::this_thread::yield();
          shared_value.store(v + 1, std::memory_order_relaxed);
          lm.ReleaseAll(txn);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every increment happened under the exclusive lock: no lost updates
  // among the acquisitions that succeeded.
  EXPECT_GT(shared_value.load(), 0);
  EXPECT_LE(shared_value.load(), kThreads * 500);
}

}  // namespace
}  // namespace mvcc
