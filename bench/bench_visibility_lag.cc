// Experiment E5: delayed visibility and the currency fix.
//
// Section 6 concedes the framework's one deficiency: read-only
// transactions see a state that lags behind commit order when older
// registered transactions are slow. We inject deliberately slow writers,
// measure the lag (VCQueue depth and snapshot staleness in transaction
// numbers), and then measure the two remedies: StartAtLeast (sn >= tn(T))
// and pseudo read-write execution.

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "txn/database.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

struct LagResult {
  Histogram queue_depth;
  Histogram staleness;        // NextNumber-1 - sn at RO begin
  Histogram fix_latency_ns;   // latency of BeginReadOnlyAtLeast
};

LagResult MeasureLag(ProtocolKind kind, int slow_writers, int slow_ms) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 256;
  Database db(opts);

  std::atomic<bool> stop{false};
  std::atomic<TxnNumber> last_committed_tn{0};
  std::vector<std::thread> writers;
  // Slow writers: hold their registered-but-incomplete window open.
  for (int w = 0; w < slow_writers; ++w) {
    writers.emplace_back([&, w] {
      while (!stop.load()) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        if (!txn->Write((w * 7) % 256, "slow").ok()) continue;
        std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
        if (txn->Commit().ok()) {
          last_committed_tn.store(txn->txn_number());
        }
      }
    });
  }
  // Fast writers keep the number counter moving.
  writers.emplace_back([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      db.Put(128 + (i++ % 64), "fast");
    }
  });

  LagResult result;
  const int64_t deadline = NowNanos() + int64_t{1200} * 1000000;
  while (NowNanos() < deadline) {
    auto reader = db.Begin(TxnClass::kReadOnly);
    const TxnNumber assigned = db.version_control().NextNumber() - 1;
    result.queue_depth.Add(static_cast<int64_t>(db.VisibilityLag()));
    result.staleness.Add(static_cast<int64_t>(assigned -
                                              reader->start_number()));
    reader->Commit();

    // Currency fix: insist on seeing the last committed writer.
    const TxnNumber want = last_committed_tn.load();
    if (want != 0) {
      const int64_t begin = NowNanos();
      auto fixed = db.BeginReadOnlyAtLeast(want);
      result.fix_latency_ns.Add(NowNanos() - begin);
      fixed->Commit();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  return result;
}

}  // namespace

int main() {
  std::cout << "E5: delayed visibility (Section 6). Slow writers hold the\n"
               "VCQueue head; readers' snapshots trail the newest assigned\n"
               "transaction number. StartAtLeast bounds the staleness at a\n"
               "latency cost.\n\n";

  Table table({"protocol", "slow_writers", "lag_p50", "lag_max",
               "staleness_p50", "staleness_max", "fix_wait_p50_us",
               "fix_wait_max_us"});
  for (ProtocolKind kind : {ProtocolKind::kVc2pl, ProtocolKind::kVcTo}) {
    for (int slow : {0, 1, 4}) {
      LagResult r = MeasureLag(kind, slow, /*slow_ms=*/20);
      table.AddRow(
          {std::string(ProtocolKindName(kind)), Table::Num(uint64_t(slow)),
           Table::Num(uint64_t(r.queue_depth.Percentile(0.5))),
           Table::Num(uint64_t(r.queue_depth.max())),
           Table::Num(uint64_t(r.staleness.Percentile(0.5))),
           Table::Num(uint64_t(r.staleness.max())),
           Table::Num(r.fix_latency_ns.Percentile(0.5) / 1000.0, 1),
           Table::Num(r.fix_latency_ns.max() / 1000.0, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: with 0 slow writers lag and staleness\n"
               "hover near 0; they grow with the number of slow writers\n"
               "(especially under vc-to, which registers at begin); the\n"
               "currency fix pays waiting time bounded by the slow\n"
               "writer's remaining commit latency.\n";
  return 0;
}
