// Experiment E6: garbage collection under the vtnc watermark.
//
// Section 6: the only restriction version control imposes on GC is that
// no version at or younger than vtnc (or needed by an active read-only
// transaction) may be discarded. We measure retained versions over time
// under an update-heavy workload, with and without a long-running
// read-only transaction pinning an old snapshot.

#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

using namespace mvcc;

struct GcRun {
  std::vector<size_t> retained_series;  // sampled every 50ms
  uint64_t reclaimed = 0;
  uint64_t passes = 0;
};

GcRun Run(bool with_long_reader, bool with_gc) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 512;
  opts.enable_gc = true;
  Database db(opts);
  if (with_gc) db.StartGc(std::chrono::milliseconds(10));

  std::unique_ptr<Transaction> long_reader;
  if (with_long_reader) {
    long_reader = db.Begin(TxnClass::kReadOnly);
    (void)long_reader->Read(0);  // pin the snapshot
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load()) {
        db.Put((t * 128 + i++) % 512, "v");
      }
    });
  }

  GcRun out;
  for (int sample = 0; sample < 20; ++sample) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    out.retained_series.push_back(db.store().TotalVersions());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  if (long_reader) long_reader->Commit();
  db.StopGc();
  if (db.gc() != nullptr) {
    out.reclaimed = db.gc()->total_reclaimed();
    out.passes = db.gc()->passes();
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "E6: version retention over a 1s update-heavy run "
               "(512 keys, 4 writers, GC every 10ms)\n\n";

  GcRun no_gc = Run(/*with_long_reader=*/false, /*with_gc=*/false);
  GcRun gc = Run(/*with_long_reader=*/false, /*with_gc=*/true);
  GcRun gc_pinned = Run(/*with_long_reader=*/true, /*with_gc=*/true);

  Table table({"t_ms", "no_gc", "gc", "gc+long_reader"});
  for (size_t i = 0; i < no_gc.retained_series.size(); ++i) {
    table.AddRow({Table::Num(uint64_t{(i + 1) * 50}),
                  Table::Num(uint64_t{no_gc.retained_series[i]}),
                  Table::Num(uint64_t{gc.retained_series[i]}),
                  Table::Num(uint64_t{gc_pinned.retained_series[i]})});
  }
  table.Print(std::cout);

  Table totals({"run", "reclaimed", "gc_passes"});
  totals.AddRow({"gc", Table::Num(gc.reclaimed), Table::Num(gc.passes)});
  totals.AddRow({"gc+long_reader", Table::Num(gc_pinned.reclaimed),
                 Table::Num(gc_pinned.passes)});
  std::cout << '\n';
  totals.Print(std::cout);

  std::cout << "\nexpected shape: no_gc grows without bound; gc stays flat\n"
               "near the key count; gc+long_reader grows while the pinned\n"
               "snapshot holds the watermark at its start number (versions\n"
               "above the pin are still uncollectable).\n";
  return 0;
}
