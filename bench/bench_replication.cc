// Experiment E12: the read-only replica tier (src/repl/).
//
// Claims measured:
//  * replica-served read-only transactions cost the primary nothing, so
//    aggregate read throughput grows with the replica count at a fixed
//    staleness budget — each replica adds serving capacity;
//  * the staleness budget is the knob trading read capacity against
//    currency: budget 0 admits only fully caught-up replicas and pushes
//    the rest of the reads back to the primary;
//  * the served lag never exceeds the budget.
//
// The harness runs every "site" on one box, where raw memory bandwidth
// would hide the offload entirely. Per-site service capacity is
// therefore modeled explicitly: each site meters transactions through a
// token bucket of kReadCapacityPerSite per second; writers are paced at
// a fixed kWriteRatePerSec load and spend primary (site 0) tokens, the
// same tokens fallback reads contend for. What the benchmark then
// measures is real: whether the router actually spreads reads across the
// fleet (replica_share), how far horizons lag under live shipping
// (max_lag vs budget), what fallback reads cost the primary's write
// throughput, and the aggregate read throughput the modeled capacity
// admits.
//
// Writes BENCH_replication.json into the working directory via the
// shared report machinery so tooling can diff runs.

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "repl/read_router.h"
#include "repl/repl_metrics.h"
#include "repl/replica.h"
#include "repl/replication_stream.h"
#include "txn/database.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

constexpr uint64_t kKeys = 256;
constexpr int kWriterThreads = 2;
constexpr int kReaderThreads = 6;
constexpr int64_t kRunNanos = 250 * 1000 * 1000;  // 250ms per config
constexpr double kReadCapacityPerSite = 30000.0;  // read txns/s per site
constexpr double kWriteRatePerSec = 20000.0;      // fixed write load

// A token bucket over wall-clock time: Acquire admits one event and
// spins (yielding) until that event's time slot arrives. Thread-safe.
class ServiceRate {
 public:
  explicit ServiceRate(double per_sec, int64_t start_ns)
      : interval_ns_(static_cast<int64_t>(1e9 / per_sec)),
        next_(start_ns) {}

  void Acquire(const std::atomic<bool>& stop) {
    const int64_t slot =
        next_.fetch_add(interval_ns_, std::memory_order_relaxed);
    while (NowNanos() < slot && !stop.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  }

 private:
  const int64_t interval_ns_;
  std::atomic<int64_t> next_;
};

struct ReplBenchResult {
  uint64_t writer_commits = 0;
  uint64_t reader_commits = 0;
  double seconds = 0;
  ReplicationStats repl;
};

ReplBenchResult RunConfig(int num_replicas, TxnNumber staleness_budget) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = kKeys;
  opts.enable_wal = true;
  Database db(opts);

  SimulatedNetwork network;
  std::vector<std::unique_ptr<repl::Replica>> owner;
  std::vector<repl::Replica*> replicas;
  for (int i = 0; i < num_replicas; ++i) {
    owner.push_back(
        std::make_unique<repl::Replica>(i, &network, db.history()));
    replicas.push_back(owner.back().get());
  }
  repl::ReplicationStream stream(&db, &network, replicas);
  repl::ReadRouter router(&db, replicas, staleness_budget);

  // Site 0 is the primary, site i+1 is replica i.
  const int64_t start = NowNanos();
  std::vector<std::unique_ptr<ServiceRate>> read_capacity;
  for (int s = 0; s < num_replicas + 1; ++s) {
    read_capacity.push_back(
        std::make_unique<ServiceRate>(kReadCapacityPerSite, start));
  }
  ServiceRate write_rate(kWriteRatePerSec, start);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_commits{0};
  std::atomic<uint64_t> reader_commits{0};
  std::vector<std::thread> threads;

  // One shipper thread tails the WAL; one applier thread per replica.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (stream.PumpOnce() == 0) std::this_thread::yield();
    }
  });
  for (repl::Replica* r : replicas) {
    threads.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (r->ApplyOnce() == 0) std::this_thread::yield();
      }
    });
  }

  for (int t = 0; t < kWriterThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        write_rate.Acquire(stop);
        // Writes spend primary (site 0) capacity — the same capacity
        // fallback reads contend for when the budget pushes them back.
        read_capacity[0]->Acquire(stop);
        if (db.Put(rng.Uniform(kKeys), "w").ok()) {
          writer_commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(200 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        repl::RoutedReadTxn txn = router.Begin();
        // Routing fixed the serving site; meter its capacity.
        const int site = txn.on_replica() ? txn.replica_id() + 1 : 0;
        read_capacity[site]->Acquire(stop);
        bool ok = true;
        for (int op = 0; op < 4 && ok; ++op) {
          ok = txn.Read(rng.Uniform(kKeys)).ok();
        }
        txn.Commit();
        if (ok && !stop.load(std::memory_order_relaxed)) {
          reader_commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  while (NowNanos() - start < kRunNanos) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();

  ReplBenchResult out;
  out.seconds = static_cast<double>(NowNanos() - start) / 1e9;
  out.writer_commits = writer_commits.load();
  out.reader_commits = reader_commits.load();
  out.repl = repl::CollectReplicationStats(stream, replicas, &router,
                                           out.seconds);
  return out;
}

void AddRow(Table& table, int replicas, TxnNumber budget,
            const ReplBenchResult& r) {
  table.AddRow({Table::Num(uint64_t(replicas)), Table::Num(budget),
                Table::Num(r.writer_commits / r.seconds, 0),
                Table::Num(r.reader_commits / r.seconds, 0),
                Table::Num(r.repl.ReplicaReadFraction(), 3),
                Table::Num(r.repl.max_served_lag),
                Table::Num(r.repl.records_shipped),
                Table::Num(r.repl.retransmits),
                Table::Num(r.repl.ApplyRate(), 0)});
}

}  // namespace

int main() {
  std::cout << "E12: read-only replica tier — WAL shipping, per-replica\n"
               "visibility horizons, staleness-budget routing. "
            << kWriterThreads << " paced writers + " << kReaderThreads
            << " routed readers, " << kKeys
            << " keys, modeled read capacity "
            << static_cast<uint64_t>(kReadCapacityPerSite)
            << " txns/s per site, 250ms per config.\n\n";

  Table table({"replicas", "budget", "wr_tput/s", "rd_tput/s",
               "replica_share", "max_lag", "shipped", "retransmits",
               "apply/s"});

  // Replica-count sweep at a fixed budget: read throughput climbs with
  // the fleet. replicas=0 is the baseline — every read falls back to the
  // primary and its capacity is the ceiling.
  constexpr TxnNumber kFixedBudget = 256;
  for (int replicas : {0, 1, 2, 4}) {
    AddRow(table, replicas, kFixedBudget, RunConfig(replicas, kFixedBudget));
  }
  // Budget sweep at a fixed fleet: tightening the budget trades replica
  // read share (and with it capacity) for currency.
  for (TxnNumber budget : {0ULL, 4ULL, 64ULL}) {
    AddRow(table, 2, budget, RunConfig(2, budget));
  }

  table.Print(std::cout);
  const std::string json = "BENCH_replication.json";
  if (table.WriteJsonFile(json)) {
    std::cout << "\nwrote " << json << "\n";
  } else {
    std::cout << "\nfailed to write " << json << "\n";
  }
  std::cout << "\nexpected shape: rd_tput/s rises with the replica count —\n"
               "each replica adds one site's worth of modeled capacity and\n"
               "replica_share goes to 1, leaving the primary its full write\n"
               "rate (wr_tput/s ~ 20000). In the budget sweep a budget of 0\n"
               "only admits fully caught-up replicas, so replica_share\n"
               "drops and the fallback reads contend with the write load\n"
               "for primary tokens — wr_tput/s dips below its pacing, the\n"
               "cost replication exists to avoid. max_lag never exceeds\n"
               "the budget.\n";
  return 0;
}
