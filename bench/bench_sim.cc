// Schedule-exploration sweep driver: runs the deterministic simulator
// over many seeds per configuration and reports coverage (distinct
// schedules, commits/aborts, faults exercised) plus any invariant
// violations — each violation line carries the seed that replays it.
//
// Usage:
//   bench_sim [--seeds=N] [--start-seed=S] [--drop=P] [--delay=K]
//             [--crash-every=M]
//             [--dist-only | --local-only | --repl-only]
//
// Exit status is non-zero if any configuration produced a violation, so
// this doubles as a CI sweep job.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "sim/explorer.h"

namespace {

using namespace mvcc;
using namespace mvcc::sim;

struct SweepStats {
  uint64_t runs = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t crashes = 0;
  uint64_t deadlocks = 0;
  std::set<uint64_t> hashes;
  std::vector<std::string> failures;

  void Absorb(const SimReport& report) {
    ++runs;
    commits += report.commits;
    aborts += report.aborts;
    crashes += report.wal_crashed ? 1 : 0;
    deadlocks += report.deadlock ? 1 : 0;
    hashes.insert(report.schedule_hash);
    if (!report.ok()) failures.push_back(report.Summary());
  }

  void Print(const std::string& label) const {
    std::cout << label << ": runs=" << runs << " distinct-schedules="
              << hashes.size() << " commits=" << commits
              << " aborts=" << aborts;
    if (crashes > 0) std::cout << " crashes=" << crashes;
    if (deadlocks > 0) std::cout << " deadlocks=" << deadlocks;
    std::cout << " failures=" << failures.size() << "\n";
    for (const std::string& f : failures) {
      std::cout << "  FAIL " << f << "\n";
    }
  }
};

uint64_t FlagU64(int argc, char** argv, const char* name,
                 uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const char* name,
                  double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seeds = FlagU64(argc, argv, "seeds", 500);
  const uint64_t start_seed = FlagU64(argc, argv, "start-seed", 1);
  const double drop = FlagDouble(argc, argv, "drop", 0.15);
  const uint64_t delay = FlagU64(argc, argv, "delay", 4);
  // Every Mth local seed also crashes the WAL at a rotating record
  // boundary (0 disables crash injection).
  const uint64_t crash_every = FlagU64(argc, argv, "crash-every", 4);
  const bool dist_only = FlagSet(argc, argv, "dist-only");
  const bool local_only = FlagSet(argc, argv, "local-only");
  const bool repl_only = FlagSet(argc, argv, "repl-only");

  bool failed = false;
  const int64_t t0 = NowNanos();

  if (!dist_only && !repl_only) {
    const ProtocolKind protocols[] = {
        ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive};
    for (ProtocolKind protocol : protocols) {
      SweepStats stats;
      for (uint64_t s = start_seed; s < start_seed + seeds; ++s) {
        ExploreOptions opt;
        opt.protocol = protocol;
        opt.seed = s;
        opt.currency_reader = s % 2 == 0;
        switch (s % 3) {
          case 0: opt.deadlock_policy = DeadlockPolicy::kWaitDie; break;
          case 1: opt.deadlock_policy = DeadlockPolicy::kDetect; break;
          default: opt.deadlock_policy = DeadlockPolicy::kTimeout; break;
        }
        if (crash_every != 0 && s % crash_every == 0) {
          opt.faults.crash_at_wal_append = static_cast<int64_t>(s % 7);
        }
        // Odd seeds keep the WAL on even without a crash, so the
        // group-commit pipeline is explored under clean schedules too.
        opt.enable_wal = s % 2 == 1;
        stats.Absorb(ExploreOnce(opt));
      }
      stats.Print(std::string(ProtocolKindName(protocol)));
      failed |= !stats.failures.empty();
    }
  }

  if (!local_only && !repl_only) {
    SweepStats clean;
    SweepStats faulty;
    for (uint64_t s = start_seed; s < start_seed + seeds; ++s) {
      DistExploreOptions opt;
      opt.seed = s;
      clean.Absorb(ExploreDistributedOnce(opt));
      opt.faults.message_drop_probability = drop;
      opt.faults.message_delay_max_steps = static_cast<uint32_t>(delay);
      faulty.Absorb(ExploreDistributedOnce(opt));
    }
    clean.Print("dist");
    faulty.Print("dist+faults");
    failed |= !clean.failures.empty() || !faulty.failures.empty();
  }

  if (!local_only && !dist_only) {
    // Replication sweep: each seed runs once clean and once under the
    // full fault mix — message drops/delays (dropped or reordered WAL
    // shipments), replica crashes with checkpoint resync, and WAL
    // truncation racing the shipping cursor. Replica count, protocol and
    // staleness budget rotate with the seed for coverage.
    SweepStats clean;
    SweepStats faulty;
    for (uint64_t s = start_seed; s < start_seed + seeds; ++s) {
      ReplExploreOptions opt;
      opt.seed = s;
      opt.replicas = 1 + static_cast<int>(s % 3);
      opt.protocol = s % 2 == 0 ? ProtocolKind::kVc2pl : ProtocolKind::kVcTo;
      opt.staleness_budget = s % 5 == 0 ? 0 : 2 + s % 6;
      clean.Absorb(ExploreReplicationOnce(opt));
      opt.faults.message_drop_probability = drop;
      opt.faults.message_delay_max_steps = static_cast<uint32_t>(delay);
      opt.replica_crashes = static_cast<int>(s % 3);
      opt.wal_truncations = static_cast<int>(s % 2);
      faulty.Absorb(ExploreReplicationOnce(opt));
    }
    clean.Print("repl");
    faulty.Print("repl+faults");
    failed |= !clean.failures.empty() || !faulty.failures.empty();
  }

  std::cout << "elapsed=" << (NowNanos() - t0) / 1e9 << "s\n";
  return failed ? 1 : 0;
}
