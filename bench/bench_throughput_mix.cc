// Experiment E3: throughput vs. read-only fraction.
//
// Section 1's motivation: multiversion schemes exist to let read-only
// transactions run unhindered, so as the read-only share of the mix
// grows, the VC protocols (contention-free readers) should widen their
// lead over SV-2PL (readers lock) and track or beat the other
// multiversion baselines (readers pay metadata/CTL costs).

#include <iostream>
#include <vector>

#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

int main() {
  using namespace mvcc;

  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kVc2pl,    ProtocolKind::kVcTo,
      ProtocolKind::kVcOcc,    ProtocolKind::kVcAdaptive,
      ProtocolKind::kMvto,     ProtocolKind::kMv2plCtl,
      ProtocolKind::kSv2pl,    ProtocolKind::kWeihlTi};
  const std::vector<double> ro_fractions = {0.0, 0.25, 0.5, 0.75, 0.9, 0.95};

  WorkloadSpec spec;
  spec.num_keys = 4096;
  spec.zipf_theta = 0.6;
  spec.ro_ops = 8;
  spec.rw_ops = 8;
  spec.write_fraction = 0.5;

  std::cout << "E3: committed txns/sec vs read-only fraction\n"
            << "keys=" << spec.num_keys << " zipf=" << spec.zipf_theta
            << " threads=8 duration=400ms per cell\n\n";

  std::vector<std::string> headers = {"ro%"};
  for (ProtocolKind kind : protocols) {
    headers.emplace_back(ProtocolKindName(kind));
  }
  Table table(headers);

  for (double frac : ro_fractions) {
    std::vector<std::string> row = {Table::Num(frac * 100, 0)};
    for (ProtocolKind kind : protocols) {
      DatabaseOptions opts;
      opts.protocol = kind;
      opts.preload_keys = spec.num_keys;
      Database db(opts);
      WorkloadSpec cell = spec;
      cell.read_only_fraction = frac;
      RunOptions run;
      run.threads = 8;
      run.duration_ms = 400;
      RunResult result = RunWorkload(&db, cell, run);
      row.push_back(Table::Num(static_cast<uint64_t>(result.Throughput())));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: every column grows with ro%; the vc-*\n"
               "columns and mv baselines separate from sv-2pl as readers\n"
               "stop competing for locks.\n";
  return 0;
}
