// Experiment E9: ablations of the design decisions DESIGN.md calls out.
//
//  (a) Remove the VCQueue's delayed visibility — let readers snapshot at
//      the newest ASSIGNED transaction number instead of vtnc — and show
//      the MVSG checker catching non-serializable (torn) reads.
//  (b) Plug-compatibility: swap the CC component under an identical
//      workload; the read-only path's metrics are bit-identical zeros
//      while the read-write profiles differ per protocol.
//  (c) Deadlock policy ablation for the 2PL plug-in: wait-die vs
//      detection-on-insertion.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "history/serializability.h"
#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

using namespace mvcc;

// --- (a) naive visibility: sn = newest assigned number, not vtnc. ---

struct NaiveResult {
  int trials = 0;
  int torn_reads = 0;       // reader observed a half-installed transaction
  int mvsg_cycles = 0;      // confirmed non-1SR by the checker
};

NaiveResult RunNaiveVisibility(bool use_vtnc) {
  NaiveResult out;
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVcTo;
  opts.preload_keys = 2;
  opts.record_history = true;
  // Fault injection: widen the window between the two installs of one
  // commit so the single-CPU scheduler reliably exposes it.
  opts.install_pause_ns = 20000;
  Database db(opts);

  std::atomic<bool> stop{false};
  // Writers update keys 0 and 1 together with the same value.
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      auto txn = db.Begin(TxnClass::kReadWrite);
      const Value v = std::to_string(++i);
      if (!txn->Write(0, v).ok()) continue;
      if (!txn->Write(1, v).ok()) continue;
      txn->Commit();
    }
  });

  History reader_history;
  TxnId reader_id = 1 << 20;
  for (int trial = 0; trial < 30000; ++trial) {
    const TxnNumber sn = use_vtnc
                             ? db.version_control().vtnc()
                             : db.version_control().NextNumber() - 1;
    // Read both keys directly at sn, as a read-only transaction would.
    auto r0 = db.store().Find(0)->Read(sn);
    auto r1 = db.store().Find(1)->Read(sn);
    if (!r0.ok() || !r1.ok()) continue;
    ++out.trials;
    if (r0->value != r1->value) ++out.torn_reads;
    TxnRecord rec;
    rec.id = reader_id++;
    rec.cls = TxnClass::kReadOnly;
    rec.number = sn;
    rec.reads.push_back(RecordedRead{0, r0->version, r0->writer});
    rec.reads.push_back(RecordedRead{1, r1->version, r1->writer});
    reader_history.Record(rec);
  }
  stop.store(true);
  writer.join();

  // Merge writer commits + reader observations; count checker verdicts on
  // sampled sub-histories (full graph once is enough here).
  reader_history.Merge(*db.history());
  auto verdict = CheckOneCopySerializable(reader_history);
  out.mvsg_cycles = verdict.one_copy_serializable ? 0 : 1;
  return out;
}

// --- (b)/(c) helpers ---

RunResult RunUnder(ProtocolKind kind, DeadlockPolicy policy) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = 512;
  opts.deadlock_policy = policy;
  Database db(opts);
  WorkloadSpec spec;
  spec.num_keys = 512;
  spec.zipf_theta = 0.9;
  spec.read_only_fraction = 0.4;
  RunOptions run;
  run.threads = 8;
  run.duration_ms = 400;
  return RunWorkload(&db, spec, run);
}

}  // namespace

int main() {
  std::cout << "E9(a): ablating delayed visibility (VCQueue). Readers\n"
               "snapshot at the newest ASSIGNED number instead of vtnc.\n\n";
  NaiveResult naive = RunNaiveVisibility(/*use_vtnc=*/false);
  NaiveResult proper = RunNaiveVisibility(/*use_vtnc=*/true);
  Table ablation_a({"visibility rule", "reads", "torn_reads",
                    "MVSG cycle found"});
  ablation_a.AddRow({"sn = tnc-1 (ablated)",
                     Table::Num(uint64_t(naive.trials)),
                     Table::Num(uint64_t(naive.torn_reads)),
                     Table::Bool(naive.mvsg_cycles > 0)});
  ablation_a.AddRow({"sn = vtnc (paper)",
                     Table::Num(uint64_t(proper.trials)),
                     Table::Num(uint64_t(proper.torn_reads)),
                     Table::Bool(proper.mvsg_cycles > 0)});
  ablation_a.Print(std::cout);
  std::cout << "\nexpected: the ablated rule produces torn reads / an MVSG\n"
               "cycle; the paper's rule produces zero torn reads and stays\n"
               "one-copy serializable.\n\n";

  std::cout << "E9(b): plug-compatibility — identical workload, swapped CC\n"
               "component. Read-only metrics are structurally zero; only\n"
               "the read-write profile changes.\n\n";
  Table ablation_b({"protocol", "commit/s", "rw_abort_rate", "rw_blocks",
                    "ro_blocks", "ro_aborts", "ro_meta_writes"});
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc,
        ProtocolKind::kVcAdaptive}) {
    RunResult r = RunUnder(kind, DeadlockPolicy::kWaitDie);
    ablation_b.AddRow({std::string(ProtocolKindName(kind)),
                       Table::Num(static_cast<uint64_t>(r.Throughput())),
                       Table::Num(r.RwAbortRate(), 4),
                       Table::Num(r.events.rw_blocks),
                       Table::Num(r.events.ro_blocks),
                       Table::Num(r.events.ro_aborts),
                       Table::Num(r.events.ro_metadata_writes)});
  }
  ablation_b.Print(std::cout);

  std::cout << "\nE9(c): deadlock policy ablation for the 2PL plug-in.\n\n";
  Table ablation_c({"policy", "commit/s", "rw_abort_rate",
                    "deadlock_aborts"});
  for (auto [name, policy] :
       {std::pair{"wait-die", DeadlockPolicy::kWaitDie},
        std::pair{"detect", DeadlockPolicy::kDetect},
        std::pair{"timeout", DeadlockPolicy::kTimeout}}) {
    RunResult r = RunUnder(ProtocolKind::kVc2pl, policy);
    ablation_c.AddRow({name,
                       Table::Num(static_cast<uint64_t>(r.Throughput())),
                       Table::Num(r.RwAbortRate(), 4),
                       Table::Num(r.events.deadlock_aborts)});
  }
  ablation_c.Print(std::cout);
  std::cout << "\nexpected: detection aborts only on real cycles — far fewer\n"
               "deadlock aborts (and a lower abort rate) than wait-die's\n"
               "age-based kills — at the cost of more blocking, so its raw\n"
               "throughput may be lower under heavy skew. The timeout\n"
               "policy barely aborts but stalls its full budget on every\n"
               "long conflict: classic low-abort, terrible-latency.\n";
  return 0;
}
