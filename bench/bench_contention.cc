// Experiment E4: contention sweep (zipfian skew).
//
// As skew rises, read-write conflicts intensify. The claims under test
// (Sections 4, 6): read-only transactions under the VC protocols remain
// untouched at every contention level (zero blocks/aborts), while MVTO
// readers start blocking on pending writes and killing writers, and
// SV-2PL readers collapse into the lock queues.

#include <iostream>
#include <vector>

#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

int main() {
  using namespace mvcc;

  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kVc2pl,    ProtocolKind::kVcTo,
      ProtocolKind::kVcOcc,    ProtocolKind::kVcAdaptive,
      ProtocolKind::kMvto,     ProtocolKind::kMv2plCtl,
      ProtocolKind::kSv2pl,    ProtocolKind::kWeihlTi};
  const std::vector<double> thetas = {0.0, 0.4, 0.8, 1.0, 1.2};

  WorkloadSpec spec;
  spec.num_keys = 1024;
  spec.read_only_fraction = 0.4;
  spec.ro_ops = 6;
  spec.rw_ops = 6;
  spec.write_fraction = 0.5;

  std::cout << "E4: contention sweep, threads=8, 400ms per cell, keys="
            << spec.num_keys << ", ro_frac=" << spec.read_only_fraction
            << "\n\n";

  Table thr({"theta", "protocol", "commit/s", "rw_abort_rate", "ro_blocks",
             "ro_aborts", "rw_aborts_by_ro"});
  for (double theta : thetas) {
    for (ProtocolKind kind : protocols) {
      DatabaseOptions opts;
      opts.protocol = kind;
      opts.preload_keys = spec.num_keys;
      Database db(opts);
      WorkloadSpec cell = spec;
      cell.zipf_theta = theta;
      RunOptions run;
      run.threads = 8;
      run.duration_ms = 400;
      RunResult result = RunWorkload(&db, cell, run);
      thr.AddRow({Table::Num(theta, 2),
                  std::string(ProtocolKindName(kind)),
                  Table::Num(static_cast<uint64_t>(result.Throughput())),
                  Table::Num(result.RwAbortRate(), 4),
                  Table::Num(result.events.ro_blocks),
                  Table::Num(result.events.ro_aborts),
                  Table::Num(result.events.rw_aborts_caused_by_ro)});
    }
  }
  thr.Print(std::cout);
  std::cout << "\nexpected shape: rw_abort_rate rises with theta for all\n"
               "protocols; ro_blocks/ro_aborts stay exactly 0 for vc-*\n"
               "at every theta, and grow with theta for mvto / sv-2pl /\n"
               "weihl-ti.\n";
  return 0;
}
