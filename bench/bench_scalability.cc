// Experiment E8: thread scalability.
//
// Section 4.4: registering at the lock point keeps version control off
// the critical path, so the modular scheme should scale with worker
// threads like its underlying CC protocol. Google-benchmark drives the
// same transaction mix at 1..16 threads for each protocol; committed
// transactions are reported as items/second.

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>

#include "txn/database.h"
#include "workload/generator.h"

namespace mvcc {
namespace {

constexpr uint64_t kKeys = 4096;

class ScalabilityFixture : public benchmark::Fixture {
 public:
  // SetUp runs in every thread with a barrier before the benchmark body;
  // guard the shared construction with a latch-protected check.
  void SetUp(const benchmark::State& state) override {
    std::lock_guard<std::mutex> guard(mu_);
    if (db_ == nullptr) {
      DatabaseOptions opts;
      opts.protocol = kind_;
      opts.preload_keys = kKeys;
      db_ = std::make_unique<Database>(opts);
    }
    (void)state;
  }

  void TearDown(const benchmark::State& state) override {
    // Destroy the shared database only when the LAST thread tears down:
    // threads leave the measurement loop at slightly different times.
    std::lock_guard<std::mutex> guard(mu_);
    if (++torn_down_ == state.threads()) {
      db_.reset();
      torn_down_ = 0;
    }
  }

 protected:
  void RunMix(benchmark::State& state) {
    WorkloadSpec spec;
    spec.num_keys = kKeys;
    spec.zipf_theta = 0.6;
    spec.read_only_fraction = ro_fraction_;
    spec.ro_ops = 6;
    spec.rw_ops = 6;
    WorkloadGenerator gen(spec, state.thread_index() + 1);

    int64_t committed = 0;
    for (auto _ : state) {
      const TxnPlan plan = gen.Next();
      auto txn = db_->Begin(plan.cls);
      bool dead = false;
      for (const PlannedOp& op : plan.ops) {
        if (op.is_write) {
          dead = !txn->Write(op.key, gen.MakeValue(op.key)).ok();
        } else {
          auto r = txn->Read(op.key);
          dead = !r.ok() && r.status().IsAborted();
        }
        if (dead) break;
      }
      if (!dead && txn->Commit().ok()) ++committed;
    }
    // Per-thread items are summed by the framework.
    state.SetItemsProcessed(committed);
  }

 protected:
  // The protocol and mix are fixed by the derived fixture before SetUp.
  ProtocolKind kind_ = ProtocolKind::kVc2pl;
  double ro_fraction_ = 0.5;

 private:
  std::mutex mu_;
  int torn_down_ = 0;
  std::unique_ptr<Database> db_;
};

#define MVCC_SCALABILITY_BENCH(name, kind)                        \
  class name##Fixture : public ScalabilityFixture {               \
   public:                                                        \
    name##Fixture() { kind_ = kind; }                             \
  };                                                              \
  BENCHMARK_DEFINE_F(name##Fixture, name)                         \
  (benchmark::State & state) { RunMix(state); }                   \
  BENCHMARK_REGISTER_F(name##Fixture, name)                       \
      ->ThreadRange(1, 16)                                        \
      ->UseRealTime()

MVCC_SCALABILITY_BENCH(Vc2pl, ProtocolKind::kVc2pl);
MVCC_SCALABILITY_BENCH(VcTo, ProtocolKind::kVcTo);
MVCC_SCALABILITY_BENCH(VcOcc, ProtocolKind::kVcOcc);
MVCC_SCALABILITY_BENCH(Mvto, ProtocolKind::kMvto);
MVCC_SCALABILITY_BENCH(Sv2pl, ProtocolKind::kSv2pl);

#undef MVCC_SCALABILITY_BENCH

// Read-heavy mix: 95% read-only transactions, the workload the
// latch-free snapshot read path targets. Version control's readers
// never touch a latch or shared cache line, so the VC line should pull
// away from single-version 2PL (whose readers still take locks) as
// threads grow.
#define MVCC_SCALABILITY_BENCH_RO(name, kind)                     \
  class name##Fixture : public ScalabilityFixture {               \
   public:                                                        \
    name##Fixture() {                                             \
      kind_ = kind;                                               \
      ro_fraction_ = 0.95;                                        \
    }                                                             \
  };                                                              \
  BENCHMARK_DEFINE_F(name##Fixture, name)                         \
  (benchmark::State & state) { RunMix(state); }                   \
  BENCHMARK_REGISTER_F(name##Fixture, name)                       \
      ->ThreadRange(1, 16)                                        \
      ->UseRealTime()

MVCC_SCALABILITY_BENCH_RO(Vc2plReadHeavy, ProtocolKind::kVc2pl);
MVCC_SCALABILITY_BENCH_RO(MvtoReadHeavy, ProtocolKind::kMvto);
MVCC_SCALABILITY_BENCH_RO(Sv2plReadHeavy, ProtocolKind::kSv2pl);

#undef MVCC_SCALABILITY_BENCH_RO

}  // namespace
}  // namespace mvcc
