// Experiment E7: the distributed extension (Section 6 / reference [3]).
//
// Claims measured:
//  * read-only transactions need one start number from their home site,
//    no a-priori site knowledge, and ZERO two-phase-commit messages —
//    unlike distributed MVTO (readers write r-ts at every site, so they
//    would need 2PC) and unlike [8] (global CTL construction up front);
//  * the merged cross-site history is globally one-copy serializable;
//  * message cost: a read-only transaction costs only its remote reads;
//    running the same reader as a pseudo read-write transaction (the
//    only alternative for currency-critical readers) pays locks + 2PC.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "dist/dist_mvto.h"
#include "dist/distributed_db.h"
#include "history/serializability.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

struct DistResult {
  uint64_t ro_commits = 0;
  uint64_t rw_commits = 0;
  uint64_t rw_aborts = 0;
  double seconds = 0;
  uint64_t msg_snapshot_read = 0;
  uint64_t msg_rw = 0;    // remote read/write
  uint64_t msg_2pc = 0;
  uint64_t msg_repl = 0;  // WAL shipping + acks (zero here: no replicas)
  bool serializable = false;
  double ro_msgs_per_txn = 0;
  double rw_msgs_per_txn = 0;
};

DistResult RunDist(int sites, bool readers_as_pseudo_rw) {
  DistributedDb::Options opts;
  opts.num_sites = sites;
  opts.preload_keys = 64ULL * sites;
  opts.record_history = true;
  DistributedDb db(opts);

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 250;
  std::vector<std::thread> workers;
  const int64_t start = NowNanos();
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(42 + t);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const int home = static_cast<int>(rng.Uniform(sites));
        const bool want_ro = rng.Bernoulli(0.5);
        if (want_ro && !readers_as_pseudo_rw) {
          auto reader = db.Begin(TxnClass::kReadOnly, home);
          for (int op = 0; op < 4; ++op) {
            (void)reader->Read(rng.Uniform(opts.preload_keys));
          }
          reader->Commit();
        } else if (want_ro) {
          // Pseudo read-write reader: same reads, full RW machinery.
          auto reader = db.Begin(TxnClass::kReadWrite, home);
          bool dead = false;
          for (int op = 0; op < 4 && !dead; ++op) {
            auto r = reader->Read(rng.Uniform(opts.preload_keys));
            dead = !r.ok() && r.status().IsAborted();
          }
          if (!dead) reader->Commit();
        } else {
          auto writer = db.Begin(TxnClass::kReadWrite, home);
          bool dead = false;
          for (int op = 0; op < 3 && !dead; ++op) {
            dead = !writer->Write(rng.Uniform(opts.preload_keys), "w").ok();
          }
          if (!dead) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  DistResult out;
  out.seconds = static_cast<double>(NowNanos() - start) / 1e9;
  out.ro_commits = db.counters().ro_commits.load();
  out.rw_commits = db.counters().rw_commits.load();
  out.rw_aborts = db.counters().rw_aborts.load();
  out.msg_snapshot_read = db.network().Count(MessageType::kSnapshotRead);
  out.msg_rw = db.network().Count(MessageType::kRemoteRead) +
               db.network().Count(MessageType::kRemoteWrite);
  out.msg_2pc = db.network().Count(MessageType::kPrepare) +
                db.network().Count(MessageType::kCommit) +
                db.network().Count(MessageType::kAbort);
  out.msg_repl = db.network().Count(MessageType::kReplBatch) +
                 db.network().Count(MessageType::kReplAck);
  out.serializable =
      CheckOneCopySerializable(*db.history()).one_copy_serializable;
  if (out.ro_commits > 0) {
    out.ro_msgs_per_txn =
        static_cast<double>(out.msg_snapshot_read) / out.ro_commits;
  }
  if (out.rw_commits > 0) {
    out.rw_msgs_per_txn =
        static_cast<double>(out.msg_rw + out.msg_2pc) / out.rw_commits;
  }
  return out;
}

// Same mix against distributed MVTO (Reed's scheme): read-only
// transactions update r-ts at each site and run 2PC at commit.
DistResult RunDistMvto(int sites) {
  DistMvtoDb::Options opts;
  opts.num_sites = sites;
  opts.preload_keys = 64ULL * sites;
  opts.record_history = true;
  DistMvtoDb db(opts);

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 250;
  std::vector<std::thread> workers;
  const int64_t start = NowNanos();
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(42 + t);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const int home = static_cast<int>(rng.Uniform(sites));
        if (rng.Bernoulli(0.5)) {
          auto reader = db.Begin(TxnClass::kReadOnly, home);
          for (int op = 0; op < 4; ++op) {
            (void)reader->Read(rng.Uniform(opts.preload_keys));
          }
          reader->Commit();
        } else {
          auto writer = db.Begin(TxnClass::kReadWrite, home);
          bool dead = false;
          for (int op = 0; op < 3 && !dead; ++op) {
            dead = !writer->Write(rng.Uniform(opts.preload_keys), "w").ok();
          }
          if (!dead) writer->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  DistResult out;
  out.seconds = static_cast<double>(NowNanos() - start) / 1e9;
  out.ro_commits = db.counters().ro_commits.load();
  out.rw_commits = db.counters().rw_commits.load();
  out.rw_aborts = db.counters().rw_aborts.load();
  out.msg_rw = db.network().Count(MessageType::kRemoteRead) +
               db.network().Count(MessageType::kRemoteWrite);
  out.msg_2pc = db.network().Count(MessageType::kPrepare) +
                db.network().Count(MessageType::kCommit) +
                db.network().Count(MessageType::kAbort);
  out.msg_repl = db.network().Count(MessageType::kReplBatch) +
                 db.network().Count(MessageType::kReplAck);
  out.serializable =
      CheckOneCopySerializable(*db.history()).one_copy_serializable;
  // For MVTO there is no snapshot-read message class: readers pay
  // ordinary remote reads PLUS their share of 2PC; report the total
  // message bill attributed per committed read-only transaction as the
  // 2PC traffic alone (the part the VC scheme does not pay).
  if (out.ro_commits > 0) {
    out.ro_msgs_per_txn = static_cast<double>(out.msg_2pc) /
                          (out.ro_commits + out.rw_commits);
  }
  if (out.rw_commits > 0) {
    out.rw_msgs_per_txn =
        static_cast<double>(out.msg_rw + out.msg_2pc) / out.rw_commits;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "E7: distributed version control — per-site counters, 2PC\n"
               "number agreement for writers, single start number for\n"
               "readers. 6 threads x 250 txns, 50% read-only.\n\n";

  Table table({"sites", "readers", "ro_commit", "rw_commit", "ro_msg/txn",
               "rw_msg/txn", "2pc_msgs", "repl_msgs", "global_1SR"});
  for (int sites : {2, 4, 8}) {
    DistResult vc = RunDist(sites, /*readers_as_pseudo_rw=*/false);
    table.AddRow({Table::Num(uint64_t(sites)), "snapshot (VC)",
                  Table::Num(vc.ro_commits), Table::Num(vc.rw_commits),
                  Table::Num(vc.ro_msgs_per_txn, 2),
                  Table::Num(vc.rw_msgs_per_txn, 2),
                  Table::Num(vc.msg_2pc), Table::Num(vc.msg_repl),
                  Table::Bool(vc.serializable)});
    DistResult pseudo = RunDist(sites, /*readers_as_pseudo_rw=*/true);
    table.AddRow({Table::Num(uint64_t(sites)), "pseudo read-write",
                  Table::Num(pseudo.ro_commits),
                  Table::Num(pseudo.rw_commits),
                  Table::Num(pseudo.ro_msgs_per_txn, 2),
                  Table::Num(pseudo.rw_msgs_per_txn, 2),
                  Table::Num(pseudo.msg_2pc), Table::Num(pseudo.msg_repl),
                  Table::Bool(pseudo.serializable)});
    DistResult mvto = RunDistMvto(sites);
    table.AddRow({Table::Num(uint64_t(sites)), "distributed MVTO",
                  Table::Num(mvto.ro_commits), Table::Num(mvto.rw_commits),
                  Table::Num(mvto.ro_msgs_per_txn, 2),
                  Table::Num(mvto.rw_msgs_per_txn, 2),
                  Table::Num(mvto.msg_2pc), Table::Num(mvto.msg_repl),
                  Table::Bool(mvto.serializable)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: snapshot readers cost only their remote\n"
               "reads and no 2PC traffic (global_1SR stays yes); the pseudo\n"
               "read-write alternative and distributed MVTO (whose r-ts\n"
               "updates force read-only 2PC, Section 2) pay roughly double\n"
               "the prepare/commit traffic for the same mix. repl_msgs stays\n"
               "0 throughout: WAL-shipping traffic (bench_replication) is a\n"
               "separate message category and E7 runs no replicas.\n";
  return 0;
}
