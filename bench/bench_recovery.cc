// Experiment E10: recovery from the write-ahead log.
//
// The paper's opening motivation: versions exist to support transaction
// and system recovery. We measure (a) crash-recovery time as a function
// of log length, (b) the effect of checkpointing on both the log replay
// cost and the recovered version count, and (c) that the recovered
// database resumes the serial order (new transactions get larger
// numbers, readers see the full committed state).

#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/clock.h"
#include "recovery/env.h"
#include "recovery/recovery.h"
#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

using namespace mvcc;

struct RecoveryCell {
  uint64_t log_batches = 0;
  double recover_ms = 0;
  size_t recovered_versions = 0;
  bool state_matches = false;
};

RecoveryCell Measure(uint64_t committed_txns, bool with_checkpoint) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 1024;
  opts.enable_wal = true;
  Database db(opts);

  WorkloadSpec spec;
  spec.num_keys = 1024;
  spec.read_only_fraction = 0.0;
  spec.rw_ops = 4;
  spec.write_fraction = 1.0;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = committed_txns / 4;
  RunWorkload(&db, spec, run);

  Checkpoint checkpoint;
  if (with_checkpoint) {
    checkpoint = TakeCheckpoint(&db);
    db.wal()->Truncate(checkpoint.vtnc);
  }

  // Expected state: one final full scan.
  auto pre = db.Begin(TxnClass::kReadOnly);
  auto expected = pre->Scan(0, 1023);
  pre->Commit();

  const std::string wal_image = db.wal()->Serialize();
  auto log = WriteAheadLog::Deserialize(wal_image);

  RecoveryCell cell;
  cell.log_batches = (*log)->size();
  const int64_t begin = NowNanos();
  auto recovered = RecoverDatabase(
      opts, with_checkpoint ? &checkpoint : nullptr, **log);
  cell.recover_ms = static_cast<double>(NowNanos() - begin) / 1e6;
  cell.recovered_versions = recovered->store().TotalVersions();

  auto post = recovered->Begin(TxnClass::kReadOnly);
  auto actual = post->Scan(0, 1023);
  post->Commit();
  cell.state_matches = expected.ok() && actual.ok() && *expected == *actual;
  return cell;
}

struct DurableCell {
  uint64_t segments = 0;
  uint64_t replayed = 0;
  double commit_ms = 0;   // workload wall time (fsynced group commits)
  double recover_ms = 0;  // scan-verified reopen
  bool state_matches = false;
};

// On-disk smoke row: real fsynced segments through the Env, CRC
// scan-verified reopen. Small txn count — every group commit pays a
// real fsync.
DurableCell MeasureDurable(uint64_t committed_txns, bool with_checkpoint) {
  const std::string dir =
      "/tmp/mvcc_bench_recovery_" +
      std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 1024;

  DurableCell cell;
  std::vector<std::pair<ObjectKey, Value>> expected;
  {
    RecoveryReport report;
    auto db = OpenDatabaseDurable(opts, GetPosixEnv(), dir,
                                  WalDurableOptions{}, &report);
    if (!db.ok()) return cell;
    WorkloadSpec spec;
    spec.num_keys = 1024;
    spec.read_only_fraction = 0.0;
    spec.rw_ops = 4;
    spec.write_fraction = 1.0;
    RunOptions run;
    run.threads = 4;
    run.txns_per_thread = committed_txns / 4;
    const int64_t begin = NowNanos();
    RunWorkload(db->get(), spec, run);
    cell.commit_ms = static_cast<double>(NowNanos() - begin) / 1e6;
    if (with_checkpoint) {
      (void)CheckpointAndTruncateDurable(db->get(), GetPosixEnv(), dir);
    }
    cell.segments = (*db)->wal()->SegmentCount();
    auto pre = (*db)->Begin(TxnClass::kReadOnly);
    expected = *pre->Scan(0, 1023);
    pre->Commit();
  }
  RecoveryReport report;
  const int64_t begin = NowNanos();
  auto recovered = OpenDatabaseDurable(opts, GetPosixEnv(), dir,
                                       WalDurableOptions{}, &report);
  cell.recover_ms = static_cast<double>(NowNanos() - begin) / 1e6;
  if (!recovered.ok()) return cell;
  cell.replayed = report.replayed_batches;
  auto post = (*recovered)->Begin(TxnClass::kReadOnly);
  auto actual = post->Scan(0, 1023);
  post->Commit();
  cell.state_matches = actual.ok() && *actual == expected;
  std::filesystem::remove_all(dir);
  return cell;
}

}  // namespace

int main() {
  std::cout << "E10: crash recovery (write-heavy 2PL workload, 1024 keys)\n\n";
  Table table({"committed_txns", "checkpoint", "log_batches", "recover_ms",
               "versions_after", "state_matches"});
  for (uint64_t txns : {1000, 10000, 50000}) {
    for (bool ck : {false, true}) {
      RecoveryCell cell = Measure(txns, ck);
      table.AddRow({Table::Num(txns), Table::Bool(ck),
                    Table::Num(cell.log_batches),
                    Table::Num(cell.recover_ms, 2),
                    Table::Num(uint64_t{cell.recovered_versions}),
                    Table::Bool(cell.state_matches)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: recovery time grows linearly with the\n"
               "replayed log; checkpointing collapses both replay time and\n"
               "the recovered version count; state always matches.\n";

  std::cout << "\nE10b: durable on-disk WAL (CRC32C segments, fsynced "
               "group commits)\n\n";
  Table durable({"committed_txns", "checkpoint", "segments", "replayed",
                 "commit_ms", "recover_ms", "state_matches"});
  for (bool ck : {false, true}) {
    DurableCell cell = MeasureDurable(2000, ck);
    durable.AddRow({Table::Num(uint64_t{2000}), Table::Bool(ck),
                    Table::Num(cell.segments), Table::Num(cell.replayed),
                    Table::Num(cell.commit_ms, 2),
                    Table::Num(cell.recover_ms, 2),
                    Table::Bool(cell.state_matches)});
  }
  durable.Print(std::cout);
  std::cout << "\nexpected shape: checkpoint truncation deletes covered\n"
               "segments and collapses replay; state always matches the\n"
               "pre-crash scan.\n";
  return 0;
}
