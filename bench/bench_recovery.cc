// Experiment E10: recovery from the write-ahead log.
//
// The paper's opening motivation: versions exist to support transaction
// and system recovery. We measure (a) crash-recovery time as a function
// of log length, (b) the effect of checkpointing on both the log replay
// cost and the recovered version count, and (c) that the recovered
// database resumes the serial order (new transactions get larger
// numbers, readers see the full committed state).

#include <iostream>
#include <memory>

#include "common/clock.h"
#include "recovery/recovery.h"
#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

using namespace mvcc;

struct RecoveryCell {
  uint64_t log_batches = 0;
  double recover_ms = 0;
  size_t recovered_versions = 0;
  bool state_matches = false;
};

RecoveryCell Measure(uint64_t committed_txns, bool with_checkpoint) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 1024;
  opts.enable_wal = true;
  Database db(opts);

  WorkloadSpec spec;
  spec.num_keys = 1024;
  spec.read_only_fraction = 0.0;
  spec.rw_ops = 4;
  spec.write_fraction = 1.0;
  RunOptions run;
  run.threads = 4;
  run.txns_per_thread = committed_txns / 4;
  RunWorkload(&db, spec, run);

  Checkpoint checkpoint;
  if (with_checkpoint) {
    checkpoint = TakeCheckpoint(&db);
    db.wal()->Truncate(checkpoint.vtnc);
  }

  // Expected state: one final full scan.
  auto pre = db.Begin(TxnClass::kReadOnly);
  auto expected = pre->Scan(0, 1023);
  pre->Commit();

  const std::string wal_image = db.wal()->Serialize();
  auto log = WriteAheadLog::Deserialize(wal_image);

  RecoveryCell cell;
  cell.log_batches = (*log)->size();
  const int64_t begin = NowNanos();
  auto recovered = RecoverDatabase(
      opts, with_checkpoint ? &checkpoint : nullptr, **log);
  cell.recover_ms = static_cast<double>(NowNanos() - begin) / 1e6;
  cell.recovered_versions = recovered->store().TotalVersions();

  auto post = recovered->Begin(TxnClass::kReadOnly);
  auto actual = post->Scan(0, 1023);
  post->Commit();
  cell.state_matches = expected.ok() && actual.ok() && *expected == *actual;
  return cell;
}

}  // namespace

int main() {
  std::cout << "E10: crash recovery (write-heavy 2PL workload, 1024 keys)\n\n";
  Table table({"committed_txns", "checkpoint", "log_batches", "recover_ms",
               "versions_after", "state_matches"});
  for (uint64_t txns : {1000, 10000, 50000}) {
    for (bool ck : {false, true}) {
      RecoveryCell cell = Measure(txns, ck);
      table.AddRow({Table::Num(txns), Table::Bool(ck),
                    Table::Num(cell.log_batches),
                    Table::Num(cell.recover_ms, 2),
                    Table::Num(uint64_t{cell.recovered_versions}),
                    Table::Bool(cell.state_matches)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: recovery time grows linearly with the\n"
               "replayed log; checkpointing collapses both replay time and\n"
               "the recovered version count; state always matches.\n";
  return 0;
}
