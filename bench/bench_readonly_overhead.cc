// Experiment E2: begin-time and per-read overhead of read-only
// transactions.
//
// The paper claims (Sections 2, 4.2) that under version control a
// read-only transaction's begin is a single counter read ("almost
// negligible overhead"), where Chan et al.'s MV2PL must copy the
// completed transaction list (O(|CTL|)) and Reed's MVTO must draw a
// ticket from a shared counter and write r-ts metadata on every read.
// Google-benchmark microbenches; the CTL length is the sweep argument.

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>

#include "baselines/mv2pl_ctl.h"
#include "baselines/mvto.h"
#include "txn/database.h"

namespace mvcc {
namespace {

// --- Version control: RO begin is a lock-free load, independent of the
// number of concurrently active read-write transactions. ---

void BM_VcReadOnlyBegin(benchmark::State& state) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 16;
  Database db(opts);
  // Register `Arg` active transactions to show begin cost is flat.
  const int active = static_cast<int>(state.range(0));
  for (int i = 0; i < active; ++i) {
    db.version_control().Register(static_cast<TxnId>(i) + 1000);
  }
  for (auto _ : state) {
    auto txn = db.Begin(TxnClass::kReadOnly);
    benchmark::DoNotOptimize(txn->start_number());
    txn->Commit();
  }
  state.SetLabel("active_rw=" + std::to_string(active));
}
BENCHMARK(BM_VcReadOnlyBegin)->Arg(0)->Arg(64)->Arg(1024)->Arg(4096);

// --- MV2PL-CTL: RO begin copies the completed transaction list. ---

struct CtlFixture {
  ObjectStore store;
  VersionControl vc;
  EventCounters counters;
  std::unique_ptr<Mv2plCtl> protocol;

  explicit CtlFixture(int ctl_len) {
    store.Preload(16, "0");
    ProtocolEnv env{&store, &vc, &counters};
    protocol = std::make_unique<Mv2plCtl>(env, DeadlockPolicy::kWaitDie,
                                          /*truncate_ctl=*/false);
    for (int i = 0; i < ctl_len; ++i) {
      TxnState txn;
      txn.id = i + 1;
      txn.cls = TxnClass::kReadWrite;
      protocol->Begin(&txn);
      protocol->Write(&txn, i % 16, "v");
      protocol->Commit(&txn);
    }
  }
};

void BM_CtlReadOnlyBegin(benchmark::State& state) {
  CtlFixture fixture(static_cast<int>(state.range(0)));
  TxnId next_id = 1 << 20;
  for (auto _ : state) {
    TxnState reader;
    reader.id = next_id++;
    reader.cls = TxnClass::kReadOnly;
    fixture.protocol->Begin(&reader);
    benchmark::DoNotOptimize(reader.sn);
  }
  state.SetLabel("ctl_len=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CtlReadOnlyBegin)->Arg(0)->Arg(64)->Arg(1024)->Arg(4096);

// --- MVTO: RO begin takes a shared-counter ticket. ---

void BM_MvtoReadOnlyBegin(benchmark::State& state) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kMvto;
  opts.preload_keys = 16;
  Database db(opts);
  for (auto _ : state) {
    auto txn = db.Begin(TxnClass::kReadOnly);
    benchmark::DoNotOptimize(txn->start_number());
    txn->Commit();
  }
}
BENCHMARK(BM_MvtoReadOnlyBegin);

// --- Per-read cost: VC snapshot read vs MVTO r-ts-updating read vs
// MV2PL-CTL membership-checking read. ---

void BM_VcReadOnlyRead(benchmark::State& state) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kVc2pl;
  opts.preload_keys = 1024;
  Database db(opts);
  auto txn = db.Begin(TxnClass::kReadOnly);
  ObjectKey key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->Read(key));
    key = (key + 1) % 1024;
  }
}
BENCHMARK(BM_VcReadOnlyRead);

void BM_MvtoReadOnlyRead(benchmark::State& state) {
  DatabaseOptions opts;
  opts.protocol = ProtocolKind::kMvto;
  opts.preload_keys = 1024;
  Database db(opts);
  auto txn = db.Begin(TxnClass::kReadOnly);
  ObjectKey key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->Read(key));
    key = (key + 1) % 1024;
  }
}
BENCHMARK(BM_MvtoReadOnlyRead);

// --- Concurrent snapshot reads against ONE shared database. The
// latch-free read path (epoch-pinned version arrays + lock-free index)
// means added reader threads share the storage read-only: per-thread
// read cost should stay flat instead of growing with thread count the
// way a per-chain latch makes it (every read then bounces the latch's
// cache line between readers). ---

class SharedDbReadFixture : public benchmark::Fixture {
 public:
  // SetUp runs in every thread with a barrier before the benchmark
  // body; guard the shared construction with a latch-protected check.
  void SetUp(const benchmark::State& state) override {
    std::lock_guard<std::mutex> guard(mu_);
    if (db_ == nullptr) {
      DatabaseOptions opts;
      opts.protocol = ProtocolKind::kVc2pl;
      opts.preload_keys = 1024;
      db_ = std::make_unique<Database>(opts);
    }
    (void)state;
  }

  void TearDown(const benchmark::State& state) override {
    std::lock_guard<std::mutex> guard(mu_);
    if (++torn_down_ == state.threads()) {
      db_.reset();
      torn_down_ = 0;
    }
  }

 protected:
  std::unique_ptr<Database> db_;

 private:
  std::mutex mu_;
  int torn_down_ = 0;
};

BENCHMARK_DEFINE_F(SharedDbReadFixture, BM_VcReadOnlySharedRead)
(benchmark::State& state) {
  auto txn = db_->Begin(TxnClass::kReadOnly);
  ObjectKey key = static_cast<ObjectKey>(state.thread_index()) * 131;
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->Read(key % 1024));
    ++key;
  }
  txn->Commit();
}
BENCHMARK_REGISTER_F(SharedDbReadFixture, BM_VcReadOnlySharedRead)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_CtlReadOnlyRead(benchmark::State& state) {
  CtlFixture fixture(static_cast<int>(state.range(0)));
  TxnState reader;
  reader.id = 1 << 20;
  reader.cls = TxnClass::kReadOnly;
  fixture.protocol->Begin(&reader);
  ObjectKey key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.protocol->Read(&reader, key));
    key = (key + 1) % 16;
  }
  state.SetLabel("ctl_len=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CtlReadOnlyRead)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace mvcc
