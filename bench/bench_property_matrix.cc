// Experiment E1: the protocol property matrix.
//
// Reproduces, as measurements, the comparative claims of Sections 1, 2
// and 6: under the paper's version control framework read-only
// transactions never block, never abort, never write synchronization
// metadata, and never cause read-write aborts — while each baseline
// exhibits at least one of those defects.

#include <iostream>
#include <vector>

#include "txn/database.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

constexpr int kThreads = 8;
constexpr int kDurationMs = 600;

}  // namespace

int main() {
  using namespace mvcc;

  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kVc2pl,    ProtocolKind::kVcTo,
      ProtocolKind::kVcOcc,    ProtocolKind::kVcAdaptive,
      ProtocolKind::kMvto,     ProtocolKind::kMv2plCtl,
      ProtocolKind::kSv2pl,    ProtocolKind::kWeihlTi};

  WorkloadSpec spec;
  spec.num_keys = 2048;
  spec.zipf_theta = 0.8;
  spec.read_only_fraction = 0.3;
  spec.ro_ops = 8;
  spec.rw_ops = 8;
  spec.write_fraction = 0.5;

  std::cout << "E1: protocol property matrix\n"
            << "workload: " << spec.Describe() << ", threads=" << kThreads
            << ", duration=" << kDurationMs << "ms\n\n";

  Table raw({"protocol", "ro_commit", "rw_commit", "ro_block", "ro_abort",
             "ro_meta_wr", "rw_abort_by_ro", "ctl_copied", "negot_rounds",
             "rw_abort"});
  Table verdicts({"protocol", "RO blocks?", "RO aborts?",
                  "RO writes metadata?", "RO kills writers?",
                  "RO begin O(CTL)?"});

  for (ProtocolKind kind : protocols) {
    DatabaseOptions opts;
    opts.protocol = kind;
    opts.preload_keys = spec.num_keys;
    Database db(opts);
    RunOptions run;
    run.threads = kThreads;
    run.duration_ms = kDurationMs;
    RunResult result = RunWorkload(&db, spec, run);
    const auto& e = result.events;

    raw.AddRow({std::string(ProtocolKindName(kind)),
                Table::Num(e.ro_commits), Table::Num(e.rw_commits),
                Table::Num(e.ro_blocks), Table::Num(e.ro_aborts),
                Table::Num(e.ro_metadata_writes),
                Table::Num(e.rw_aborts_caused_by_ro),
                Table::Num(e.ctl_entries_copied),
                Table::Num(e.negotiation_rounds),
                Table::Num(e.rw_aborts)});
    verdicts.AddRow({std::string(ProtocolKindName(kind)),
                     Table::Bool(e.ro_blocks > 0),
                     Table::Bool(e.ro_aborts > 0),
                     Table::Bool(e.ro_metadata_writes > 0),
                     Table::Bool(e.rw_aborts_caused_by_ro > 0),
                     Table::Bool(e.ctl_entries_copied > 0)});
  }

  std::cout << "raw event counters:\n";
  raw.Print(std::cout);
  std::cout << "\npaper-claim verdicts (Sections 1, 2, 6):\n";
  verdicts.Print(std::cout);
  std::cout << "\nexpected: all five columns 'no' for vc-2pl / vc-to / "
               "vc-occ;\nmvto blocks+kills writers; mv2pl-ctl copies CTLs; "
               "sv-2pl blocks+aborts readers; weihl-ti blocks+negotiates.\n";
  return 0;
}
