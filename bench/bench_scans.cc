// Experiment E11 (extension): range scans under concurrent updates.
//
// Snapshot scans by read-only transactions are phantom-free for free
// (the version rule), so their throughput should be untouched by
// concurrent writers and inserters. Read-write scans pay each
// protocol's phantom-exclusion machinery: range locks (2PL), range
// read-floors (TO), or scanned-range validation (OCC) — visible as scan
// aborts/waits under insertion pressure.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "txn/database.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

struct ScanResult {
  double scans_per_sec = 0;
  uint64_t scan_aborts = 0;
  uint64_t writer_commits = 0;
  uint64_t rows_per_scan = 0;
};

constexpr uint64_t kKeys = 8192;
constexpr uint64_t kSpan = 64;
constexpr int kDurationMs = 400;

ScanResult Run(ProtocolKind kind, bool scans_read_only,
               bool inserters_enabled) {
  DatabaseOptions opts;
  opts.protocol = kind;
  opts.preload_keys = kKeys;
  Database db(opts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_commits{0};
  std::vector<std::thread> background;
  // Updaters overwrite existing keys; inserters create brand-new ones
  // (the phantom source).
  for (int w = 0; w < 3; ++w) {
    background.emplace_back([&, w] {
      Random rng(10 + w);
      uint64_t fresh = kKeys + w;
      while (!stop.load()) {
        auto txn = db.Begin(TxnClass::kReadWrite);
        bool dead = false;
        for (int op = 0; op < 3 && !dead; ++op) {
          ObjectKey key;
          if (inserters_enabled && rng.Bernoulli(0.3)) {
            key = fresh;
            fresh += 3;
          } else {
            key = rng.Uniform(kKeys);
          }
          dead = !txn->Write(key, "w").ok();
        }
        if (!dead && txn->Commit().ok()) writer_commits.fetch_add(1);
      }
    });
  }

  uint64_t scans = 0;
  uint64_t aborts = 0;
  uint64_t rows = 0;
  Random rng(99);
  const int64_t start = NowNanos();
  const int64_t deadline =
      start + int64_t{kDurationMs} * 1000000;
  while (NowNanos() < deadline) {
    const ObjectKey lo = rng.Uniform(kKeys - kSpan);
    auto txn = db.Begin(scans_read_only ? TxnClass::kReadOnly
                                        : TxnClass::kReadWrite);
    auto result = txn->Scan(lo, lo + kSpan - 1);
    if (result.ok()) {
      rows += result->size();
      if (txn->Commit().ok()) {
        ++scans;
      } else {
        ++aborts;  // OCC validation can fail at commit
      }
    } else {
      ++aborts;
    }
  }
  const double seconds = static_cast<double>(NowNanos() - start) / 1e9;
  stop.store(true);
  for (auto& t : background) t.join();

  ScanResult out;
  out.scans_per_sec = scans / seconds;
  out.scan_aborts = aborts;
  out.writer_commits = writer_commits.load();
  out.rows_per_scan = scans == 0 ? 0 : rows / (scans + aborts);
  return out;
}

}  // namespace

int main() {
  std::cout << "E11: range scans (span " << kSpan << " over " << kKeys
            << " keys) vs 3 update/insert threads, " << kDurationMs
            << "ms per cell\n\n";
  Table table({"protocol", "scan kind", "inserters", "scans/s",
               "scan_aborts", "writer_commit/s"});
  const double secs = kDurationMs / 1000.0;
  for (ProtocolKind kind :
       {ProtocolKind::kVc2pl, ProtocolKind::kVcTo, ProtocolKind::kVcOcc}) {
    for (bool ro : {true, false}) {
      for (bool inserters : {false, true}) {
        ScanResult r = Run(kind, ro, inserters);
        table.AddRow({std::string(ProtocolKindName(kind)),
                      ro ? "snapshot (RO)" : "read-write",
                      Table::Bool(inserters),
                      Table::Num(static_cast<uint64_t>(r.scans_per_sec)),
                      Table::Num(r.scan_aborts),
                      Table::Num(static_cast<uint64_t>(
                          r.writer_commits / secs))});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: snapshot scans never abort and their\n"
               "rate is independent of inserters; read-write scans slow\n"
               "writers down (range locks / floors) or abort under\n"
               "insertion pressure (OCC validation).\n";
  return 0;
}
