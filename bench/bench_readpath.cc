// Read-path microbenchmark: the latched baseline (the pre-refactor
// storage layer — a SpinLatch around every chain read and a
// latch + unordered_map per store shard) against the latch-free
// snapshot read path (epoch-pinned immutable version arrays plus the
// lock-free open-addressing index).
//
// Claim measured: snapshot reads stop costing a latch acquisition, so
// aggregate read throughput scales with threads instead of flatlining
// on cache-line ping-pong. The latched baseline pays an exchange on
// every Find AND every Read even when uncontended; under contention the
// readers serialize against each other and against writers. The
// latch-free path's read side is wait-free — an epoch pin (two
// uncontended thread-local stores), an acquire table load, a bounded
// probe, and a binary search over an immutable array.
//
// Sweep: threads x read_pct x preloaded chain depth, both
// implementations, fixed wall-time per config. Writers install
// globally-increasing version numbers (the in-order append fast path)
// and periodically prune their chain, so memory stays bounded and the
// write side exercises the republish path concurrently with readers.
//
// Writes BENCH_readpath.json via the shared report machinery.
//
// `--smoke` runs the CI tripwire: latched vs latch-free at 8 threads on
// the read-heavy mix (95% reads, depth 64), interleaved repeats with a
// median comparison, exit nonzero if the latch-free path falls clearly
// behind the latched baseline — a regression here means a serialization
// point crept back into the read path.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/result.h"
#include "storage/object_store.h"
#include "storage/version.h"
#include "storage/version_chain.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

// ---------------------------------------------------------------------
// Latched baseline: faithful reimplementation of the pre-refactor
// storage layer. Kept here (not in src/) so the library carries exactly
// one read path.
// ---------------------------------------------------------------------

class LatchedChain {
 public:
  void Install(Version v) {
    std::lock_guard<SpinLatch> guard(latch_);
    auto it = std::upper_bound(
        versions_.begin(), versions_.end(), v.number,
        [](VersionNumber n, const Version& x) { return n < x.number; });
    versions_.insert(it, std::move(v));
  }

  Result<VersionRead> Read(TxnNumber at_most) const {
    std::lock_guard<SpinLatch> guard(latch_);
    auto it = std::upper_bound(
        versions_.begin(), versions_.end(), at_most,
        [](VersionNumber n, const Version& x) { return n < x.number; });
    if (it == versions_.begin()) {
      return Status::NotFound("no version <= snapshot");
    }
    --it;
    return VersionRead{it->number, it->writer, it->value};
  }

  size_t Prune(VersionNumber watermark) {
    std::lock_guard<SpinLatch> guard(latch_);
    auto it = std::upper_bound(
        versions_.begin(), versions_.end(), watermark,
        [](VersionNumber n, const Version& x) { return n < x.number; });
    if (it == versions_.begin()) return 0;
    --it;  // newest version <= watermark survives
    const size_t removed = static_cast<size_t>(it - versions_.begin());
    versions_.erase(versions_.begin(), it);
    return removed;
  }

 private:
  mutable SpinLatch latch_;
  std::vector<Version> versions_;
};

class LatchedStore {
 public:
  explicit LatchedStore(size_t num_shards) : shards_(num_shards) {}

  LatchedChain* Find(ObjectKey key) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<SpinLatch> guard(shard.latch);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : it->second.get();
  }

  LatchedChain* GetOrCreate(ObjectKey key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<SpinLatch> guard(shard.latch);
    std::unique_ptr<LatchedChain>& slot = shard.map[key];
    if (slot == nullptr) slot = std::make_unique<LatchedChain>();
    return slot.get();
  }

 private:
  struct Shard {
    mutable SpinLatch latch;
    std::unordered_map<ObjectKey, std::unique_ptr<LatchedChain>> map;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }

  mutable std::vector<Shard> shards_;
};

// ---------------------------------------------------------------------
// Harness, templated over the store so both implementations run the
// byte-identical workload loop.
// ---------------------------------------------------------------------

struct ReadPathResult {
  double ops_per_sec = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  // Latch-free only (zero for the latched baseline): write-side cost
  // drivers accumulated over the timed window. `republishes` counts
  // full-array copy+swap events — the slab redesign exists to make this
  // a vanishing fraction of `writes` — and `arena_allocs` counts blocks
  // carved from the store's arenas (arrays + payloads), the allocation
  // traffic that used to be one malloc per install plus one per
  // republish.
  uint64_t republishes = 0;
  uint64_t arena_allocs = 0;
  double allocs_per_write = 0;
};

// Database::DoRead pins the epoch once and amortizes it over the index
// probe plus the chain read (inner guards just bump the depth counter).
// The bench mirrors that; the latched baseline predates EBR and pins
// nothing.
template <typename Store>
struct ReadScope {};
template <>
struct ReadScope<ObjectStore> {
  EpochGuard guard;
};

constexpr uint64_t kKeys = 1024;
constexpr size_t kShards = 64;

template <typename Store>
ReadPathResult RunConfig(int threads, int read_pct, int depth,
                         int64_t run_ns) {
  Store store(kShards);
  std::atomic<uint64_t> version_counter{0};
  const Value payload = "snapshot-read-payload";
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto* chain = store.GetOrCreate(key);
    for (int d = 0; d < depth; ++d) {
      chain->Install(Version{version_counter.fetch_add(1) + 1, payload, 0});
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> total_writes{0};
  std::atomic<uint64_t> sink{0};  // defeats dead-read elimination
  std::vector<std::thread> workers;
  workers.reserve(threads);

  // Snapshot write-side counters after preload so the columns cover
  // only the timed window. ChainWriteStats is process-global; the
  // configs run one at a time, so the delta is this store's.
  uint64_t republishes_before = 0;
  uint64_t arena_allocs_before = 0;
  if constexpr (std::is_same_v<Store, ObjectStore>) {
    republishes_before = GetChainWriteStats().republishes;
    arena_allocs_before = store.ArenaStats().allocs;
  }

  const int64_t start = NowNanos();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(7777 + 131 * t);
      uint64_t reads = 0;
      uint64_t writes = 0;
      uint64_t bytes = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectKey key = rng.Uniform(kKeys);
        if (rng.Uniform(100) < static_cast<uint64_t>(read_pct)) {
          const TxnNumber sn =
              version_counter.load(std::memory_order_relaxed);
          [[maybe_unused]] ReadScope<Store> scope;
          auto* chain = store.Find(key);
          if (chain != nullptr) {
            const auto read = chain->Read(sn);
            if (read.ok()) bytes += read->value.size();
          }
          ++reads;
        } else {
          const VersionNumber n = version_counter.fetch_add(1) + 1;
          auto* chain = store.GetOrCreate(key);
          chain->Install(Version{n, payload, TxnId(t) + 1});
          // The real system prunes via GC; without it write-heavy mixes
          // would grow chains (and their republish cost) without bound.
          if (++writes % 256 == 0 && n > kKeys) chain->Prune(n - kKeys);
        }
      }
      total_reads.fetch_add(reads, std::memory_order_relaxed);
      total_writes.fetch_add(writes, std::memory_order_relaxed);
      sink.fetch_add(bytes, std::memory_order_relaxed);
    });
  }

  while (NowNanos() - start < run_ns) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double seconds = static_cast<double>(NowNanos() - start) / 1e9;

  ReadPathResult out;
  out.reads = total_reads.load();
  out.writes = total_writes.load();
  out.ops_per_sec = static_cast<double>(out.reads + out.writes) / seconds;
  if constexpr (std::is_same_v<Store, ObjectStore>) {
    out.republishes = GetChainWriteStats().republishes - republishes_before;
    out.arena_allocs = store.ArenaStats().allocs - arena_allocs_before;
    out.allocs_per_write =
        out.writes > 0
            ? static_cast<double>(out.arena_allocs) / out.writes
            : 0.0;
  }
  return out;
}

// One smoke cell: latched vs latch-free at `threads`/`read_pct`/`depth`,
// median of per-round ratios against `min_ratio`. Rounds run the two
// paths back to back (correlated noise) and the verdict is the MEDIAN
// of the per-round ratios: on shared CI runners absolute throughput
// drifts 2x across seconds, so a descheduled window skews one round's
// ratio, not the median of five.
int SmokeCell(const char* name, int threads, int read_pct, int depth,
              double min_ratio) {
  constexpr int64_t kSmokeNanos = 150 * 1000 * 1000;
  constexpr int kRounds = 5;
  std::vector<double> ratios;
  for (int round = 0; round < kRounds; ++round) {
    const ReadPathResult latched =
        RunConfig<LatchedStore>(threads, read_pct, depth, kSmokeNanos);
    const ReadPathResult latchfree =
        RunConfig<ObjectStore>(threads, read_pct, depth, kSmokeNanos);
    const double ratio =
        latched.ops_per_sec > 0 ? latchfree.ops_per_sec / latched.ops_per_sec
                                : 0.0;
    ratios.push_back(ratio);
    std::cout << name << " round " << (round + 1) << ": latched "
              << static_cast<uint64_t>(latched.ops_per_sec)
              << " ops/s, latch-free "
              << static_cast<uint64_t>(latchfree.ops_per_sec)
              << " ops/s, ratio " << ratio << "\n";
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];
  std::cout << name << " median latch-free/latched ratio: " << median_ratio
            << " (bar " << min_ratio << ")\n";
  if (median_ratio < min_ratio) {
    std::cout << "FAIL: latch-free read path below the " << name
              << " bar — a serialization point or write-side cost crept "
                 "back into the read path\n";
    return 1;
  }
  std::cout << name << " OK\n";
  return 0;
}

int RunSmoke() {
  // CI tripwire, not a measurement. Two cells:
  //  - mixed (50% writes): the cell the slab/arena redesign is gated
  //    on. The latch-free path must WIN here, not merely keep up —
  //    the bar ratchets from the post-redesign baseline (>=1.2x
  //    measured) with margin for runner noise.
  //  - read-heavy (95% reads): the original PR 5 tripwire; a latch or
  //    equivalent serialization point back on the snapshot-read path
  //    serializes 8 reader threads and lands far below 1.0.
  int rc = SmokeCell("smoke-mixed", /*threads=*/8, /*read_pct=*/50,
                     /*depth=*/64, /*min_ratio=*/1.1);
  rc |= SmokeCell("smoke-readheavy", /*threads=*/8, /*read_pct=*/95,
                  /*depth=*/64, /*min_ratio=*/0.9);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }

  constexpr int64_t kRunNanos = 120 * 1000 * 1000;  // 120ms per rep
  constexpr int kReps = 5;  // interleaved; the median rep is reported
  std::cout << "Read path: latched (SpinLatch chain + latched hash map)\n"
               "vs latch-free (epoch-pinned immutable arrays + lock-free\n"
               "index), " << kKeys << " keys, median of " << kReps
            << " interleaved 120ms reps per config.\n\n";

  // Medians of interleaved reps (latched/latch-free alternating), so a
  // load spike on the machine hits both implementations rather than
  // deciding the comparison.
  auto median = [](std::vector<ReadPathResult>& reps) {
    std::sort(reps.begin(), reps.end(),
              [](const ReadPathResult& a, const ReadPathResult& b) {
                return a.ops_per_sec < b.ops_per_sec;
              });
    return reps[reps.size() / 2];
  };

  Table table({"impl", "threads", "read_pct", "depth", "ops/s",
               "speedup_vs_latched", "reads", "writes", "republishes",
               "allocs_per_write"});
  for (int threads : {1, 2, 4, 8, 16}) {
    for (int read_pct : {50, 95, 100}) {
      for (int depth : {4, 64}) {
        std::vector<ReadPathResult> latched_reps;
        std::vector<ReadPathResult> latchfree_reps;
        for (int rep = 0; rep < kReps; ++rep) {
          latched_reps.push_back(
              RunConfig<LatchedStore>(threads, read_pct, depth, kRunNanos));
          latchfree_reps.push_back(
              RunConfig<ObjectStore>(threads, read_pct, depth, kRunNanos));
        }
        const ReadPathResult latched = median(latched_reps);
        const ReadPathResult latchfree = median(latchfree_reps);
        table.AddRow({"latched", Table::Num(uint64_t(threads)),
                      Table::Num(uint64_t(read_pct)),
                      Table::Num(uint64_t(depth)),
                      Table::Num(latched.ops_per_sec, 0), Table::Num(1.0, 2),
                      Table::Num(latched.reads),
                      Table::Num(latched.writes), Table::Num(uint64_t{0}),
                      Table::Num(0.0, 3)});
        table.AddRow({"latchfree", Table::Num(uint64_t(threads)),
                      Table::Num(uint64_t(read_pct)),
                      Table::Num(uint64_t(depth)),
                      Table::Num(latchfree.ops_per_sec, 0),
                      Table::Num(latched.ops_per_sec > 0
                                     ? latchfree.ops_per_sec /
                                           latched.ops_per_sec
                                     : 0.0,
                                 2),
                      Table::Num(latchfree.reads),
                      Table::Num(latchfree.writes),
                      Table::Num(latchfree.republishes),
                      Table::Num(latchfree.allocs_per_write, 3)});
      }
    }
  }

  table.Print(std::cout);
  const std::string json = "BENCH_readpath.json";
  if (table.WriteJsonFile(json)) {
    std::cout << "\nwrote " << json << "\n";
  } else {
    std::cout << "\nfailed to write " << json << "\n";
  }
  std::cout << "\nexpected shape: at one thread the two paths are close\n"
               "(an uncontended SpinLatch is one exchange, and an epoch\n"
               "pin two thread-local stores). As threads land on separate\n"
               "cores the latched line flattens — every read bounces the\n"
               "chain latch's cache line, and readers convoy behind\n"
               "writers holding it across vector shifts — while the\n"
               "latch-free line keeps climbing: reads share the version\n"
               "arrays read-only, so the gap is widest at 100%% reads and\n"
               "deep chains. Caveat: the comparison is only meaningful\n"
               "when thread count <= core count. On a single-core or\n"
               "oversubscribed machine the latch is never contended (the\n"
               "holder is rarely preempted inside a sub-microsecond\n"
               "critical section), so both lines just measure per-op cost\n"
               "and sit within noise of each other.\n";
  return 0;
}
