// Microbenchmarks for the ordered-index substrate: the B+ tree behind
// KeyIndex versus the standard library's red-black tree, for the two
// operations the database performs (insert-on-create, range
// enumeration for scans/checkpoints).

#include <benchmark/benchmark.h>

#include <set>

#include "common/random.h"
#include "storage/btree.h"

namespace mvcc {
namespace {

void BM_BtreeInsert(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.Uniform(1 << 20));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BtreeInsert)->Arg(1024)->Arg(16384);

void BM_StdSetInsert(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::set<ObjectKey> tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.insert(rng.Uniform(1 << 20));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSetInsert)->Arg(1024)->Arg(16384);

void BM_BtreeRange(benchmark::State& state) {
  BPlusTree tree;
  for (ObjectKey k = 0; k < 100000; ++k) tree.Insert(k);
  Random rng(9);
  const uint64_t span = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const ObjectKey lo = rng.Uniform(100000 - span);
    benchmark::DoNotOptimize(tree.Range(lo, lo + span - 1));
  }
  state.SetLabel("span=" + std::to_string(span));
}
BENCHMARK(BM_BtreeRange)->Arg(64)->Arg(1024);

void BM_StdSetRange(benchmark::State& state) {
  std::set<ObjectKey> tree;
  for (ObjectKey k = 0; k < 100000; ++k) tree.insert(k);
  Random rng(9);
  const uint64_t span = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const ObjectKey lo = rng.Uniform(100000 - span);
    std::vector<ObjectKey> out;
    for (auto it = tree.lower_bound(lo);
         it != tree.end() && *it <= lo + span - 1; ++it) {
      out.push_back(*it);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("span=" + std::to_string(span));
}
BENCHMARK(BM_StdSetRange)->Arg(64)->Arg(1024);

void BM_BtreeContains(benchmark::State& state) {
  BPlusTree tree;
  for (ObjectKey k = 0; k < 100000; k += 2) tree.Insert(k);
  Random rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Contains(rng.Uniform(100000)));
  }
}
BENCHMARK(BM_BtreeContains);

}  // namespace
}  // namespace mvcc
