// VC core microbenchmark: Register/Complete/Discard throughput against
// thread count, locked (mutex + std::map VCQueue) core vs the lock-free
// completion-ring core.
//
// Claim measured: the ring core scales with writers where the single
// mutex flatlines — Register is one fetch_add, Complete/Discard are one
// release store plus a CAS drain, and no thread ever takes mu_ on the
// hot path. The locked core serializes every call, so its aggregate
// throughput is roughly constant (or worse, cache-ping-pong declining)
// as threads are added.
//
// Each worker loops: tn = Register(id); then Complete(tn) (7/8 of the
// time) or Discard(tn) (1/8 — aborts exercise the drain's
// discarded-slot path). Throughput = resolved registrations / second,
// summed over workers.
//
// Writes BENCH_vc.json via the shared report machinery.
//
// `--smoke` runs a reduced pass (locked @ 1 thread vs ring @ 8 threads,
// 100ms each) and exits nonzero if the ring at 8 threads fails to beat
// the single-thread locked baseline — the CI regression tripwire.

#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "vc/version_control.h"
#include "workload/report.h"

namespace {

using namespace mvcc;

struct VcBenchResult {
  double ops_per_sec = 0;
  uint64_t ops = 0;
  uint64_t discards = 0;
  TxnNumber final_vtnc = 0;
};

VcBenchResult RunConfig(bool ring, int threads, int64_t run_ns) {
  VersionControl vc(NumberingMode::kDense, /*force_locked_core=*/!ring);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> total_discards{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);

  const int64_t start = NowNanos();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(1000 + t);
      uint64_t ops = 0;
      uint64_t discards = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const TxnNumber tn = vc.Register(/*txn=*/TxnId(t) + 1);
        if ((rng.Next() & 7) == 0) {
          vc.Discard(tn);
          ++discards;
        } else {
          vc.Complete(tn);
        }
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
      total_discards.fetch_add(discards, std::memory_order_relaxed);
    });
  }

  while (NowNanos() - start < run_ns) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double seconds = static_cast<double>(NowNanos() - start) / 1e9;

  VcBenchResult out;
  out.ops = total_ops.load();
  out.discards = total_discards.load();
  out.ops_per_sec = out.ops / seconds;
  out.final_vtnc = vc.vtnc();
  return out;
}

int RunSmoke() {
  // CI tripwire, not a measurement: the ring at 8 threads must at least
  // match one thread hammering the global mutex. A failure here means
  // the lock-free path has re-grown a serialization point.
  constexpr int64_t kSmokeNanos = 100 * 1000 * 1000;
  const VcBenchResult locked1 = RunConfig(/*ring=*/false, 1, kSmokeNanos);
  const VcBenchResult ring8 = RunConfig(/*ring=*/true, 8, kSmokeNanos);
  std::cout << "smoke: locked@1 " << static_cast<uint64_t>(locked1.ops_per_sec)
            << " ops/s, ring@8 " << static_cast<uint64_t>(ring8.ops_per_sec)
            << " ops/s\n";
  if (ring8.ops_per_sec < locked1.ops_per_sec) {
    std::cout << "FAIL: ring core at 8 threads is slower than the "
                 "single-thread locked baseline\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }

  constexpr int64_t kRunNanos = 200 * 1000 * 1000;  // 200ms per config
  std::cout << "VC core: Register/Complete/Discard throughput, locked\n"
               "(mutex + map) core vs lock-free completion ring, 200ms\n"
               "per config, 1/8 of registrations discarded.\n\n";

  Table table({"core", "threads", "ops/s", "speedup_vs_1T", "discards"});
  for (const bool ring : {false, true}) {
    double base = 0;
    for (int threads : {1, 2, 4, 8, 16}) {
      const VcBenchResult r = RunConfig(ring, threads, kRunNanos);
      if (threads == 1) base = r.ops_per_sec;
      table.AddRow({std::string(ring ? "ring" : "locked"),
                    Table::Num(uint64_t(threads)),
                    Table::Num(r.ops_per_sec, 0),
                    Table::Num(base > 0 ? r.ops_per_sec / base : 0.0, 2),
                    Table::Num(r.discards)});
    }
  }

  table.Print(std::cout);
  const std::string json = "BENCH_vc.json";
  if (table.WriteJsonFile(json)) {
    std::cout << "\nwrote " << json << "\n";
  } else {
    std::cout << "\nfailed to write " << json << "\n";
  }
  std::cout << "\nexpected shape: the locked core's aggregate ops/s\n"
               "collapses as threads are added — every call funnels through\n"
               "one mutex and the waiters convoy (futex round trips). The\n"
               "ring core holds its throughput under the same\n"
               "oversubscription, and on a multi-core box climbs with the\n"
               "thread count: no call takes mu_, so added threads cost\n"
               "cache traffic, not serialization.\n";
  return 0;
}
