#!/usr/bin/env bash
# Runs every experiment binary, writing aligned-text results to
# results/ (and CSV alongside when --csv is given).
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=results
mkdir -p "$OUT"
CSV=0
[[ "${1:-}" == "--csv" ]] && CSV=1

for bench in "$BUILD"/bench/bench_*; do
  [[ -x "$bench" ]] || continue
  name=$(basename "$bench")
  echo "== $name"
  "$bench" | tee "$OUT/$name.txt"
  if [[ "$CSV" == 1 ]]; then
    MVCC_BENCH_CSV=1 "$bench" > "$OUT/$name.csv" || true
  fi
done
echo "results written to $OUT/"
