#ifndef MVCC_CC_PROTOCOL_H_
#define MVCC_CC_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "common/ids.h"
#include "common/result.h"
#include "storage/object_store.h"
#include "txn/txn_context.h"
#include "vc/version_control.h"

namespace mvcc {

class CommitPipeline;

// Shared services handed to every protocol implementation. The version
// control module is present for all protocols but the baselines ignore it;
// the VC protocols never let read-only transactions touch anything else.
struct ProtocolEnv {
  ObjectStore* store = nullptr;
  VersionControl* vc = nullptr;
  EventCounters* counters = nullptr;

  // The shared commit epilogue (txn/commit_pipeline.h): install buffered
  // versions, group-commit the batch to the WAL (write-ahead of
  // visibility — the batch is durable BEFORE VCcomplete makes it
  // visible, the invariant replication tails the log under), then
  // VCcomplete. VC protocols route every Commit() through it and never
  // touch the log or call vc->Complete directly; baselines ignore it and
  // are logged by the transaction layer after their own commit point.
  CommitPipeline* pipeline = nullptr;
};

// A pluggable synchronization protocol: the paper's "concurrency control
// component" plus, for the baselines, their integrated version management.
// The transaction layer owns TxnState and calls these hooks; protocols
// keep private per-transaction scratch in TxnState::cc_data.
//
// Contract:
//  * Begin() is called exactly once per transaction, before any operation.
//  * Read()/Write() may return kAborted, after which the transaction layer
//    calls Abort() exactly once.
//  * Commit() either returns OK (effects durable and, once visible per the
//    protocol's rules, readable) or kAborted (protocol already cleaned up
//    everything except what Abort() does — the layer then calls Abort()).
//  * Read() must serve the transaction's own buffered write when one
//    exists for the key (the layer does not pre-check the write set).
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view name() const = 0;

  virtual Status Begin(TxnState* txn) = 0;
  virtual Result<VersionRead> Read(TxnState* txn, ObjectKey key) = 0;
  virtual Status Write(TxnState* txn, ObjectKey key, Value value) = 0;
  virtual Status Commit(TxnState* txn) = 0;
  virtual void Abort(TxnState* txn) = 0;

  // Range scan by a READ-WRITE transaction, for protocols that can
  // exclude phantoms (2PL via range locks, OCC via validation against
  // later writers' keys). Returns (key, version) pairs in ascending key
  // order, including the transaction's own buffered writes in range.
  // Default: unsupported.
  virtual Result<std::vector<std::pair<ObjectKey, VersionRead>>> Scan(
      TxnState* txn, ObjectKey lo, ObjectKey hi) {
    (void)txn;
    (void)lo;
    (void)hi;
    return Status::InvalidArgument(
        std::string(name()) +
        " does not support read-write range scans");
  }

  // True when read-only transactions bypass the protocol entirely and run
  // through the version control module alone (the paper's framework).
  // The transaction layer uses this to route read-only operations.
  virtual bool ReadOnlyBypass() const { return false; }
};

}  // namespace mvcc

#endif  // MVCC_CC_PROTOCOL_H_
