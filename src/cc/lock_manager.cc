#include "cc/lock_manager.h"

#include <chrono>

#include <algorithm>
#include <string>

#include "common/sim_hook.h"

namespace mvcc {

LockManager::LockManager(DeadlockPolicy policy, EventCounters* counters,
                         size_t num_shards, int64_t timeout_ms)
    : policy_(policy),
      timeout_ms_(timeout_ms < 1 ? 1 : timeout_ms),
      counters_(counters),
      shards_(num_shards == 0 ? 1 : num_shards),
      held_(16) {}

std::vector<TxnId> LockManager::Conflicts(const KeyLock& lock, TxnId txn,
                                          LockMode mode) {
  std::vector<TxnId> conflicts;
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      conflicts.push_back(holder);
    }
  }
  return conflicts;
}

Status LockManager::Acquire(TxnId txn, ObjectKey key, LockMode mode,
                            bool read_only) {
  SimSchedulePoint("lock.acquire");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);

  bool counted_block = false;
  while (true) {
    // Re-lookup each iteration: the table entry may have been erased and
    // re-created while this thread waited on the condition variable.
    KeyLock& kl = shard.table[key];
    auto self = kl.holders.find(txn);
    // Fast path: already hold a mode at least as strong.
    if (self != kl.holders.end() &&
        (self->second == LockMode::kExclusive ||
         mode == LockMode::kShared)) {
      return Status::OK();
    }
    std::vector<TxnId> conflicts = Conflicts(kl, txn, mode);
    if (conflicts.empty()) {
      kl.holders[txn] = (self != kl.holders.end() &&
                         self->second == LockMode::kExclusive)
                            ? LockMode::kExclusive
                            : mode;
      if (self == kl.holders.end()) RecordHeld(txn, key);
      if (policy_ == DeadlockPolicy::kDetect) detector_.ClearWaits(txn);
      return Status::OK();
    }

    // Conflict: decide between waiting and dying.
    if (policy_ == DeadlockPolicy::kWaitDie) {
      // Die if younger (larger id) than any conflicting holder.
      for (TxnId holder : conflicts) {
        if (txn > holder) {
          if (counters_ != nullptr) {
            counters_->deadlock_aborts.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
          return Status::Aborted("wait-die victim on key " +
                                 std::to_string(key));
        }
      }
    } else if (policy_ == DeadlockPolicy::kDetect) {
      if (!detector_.AddEdges(txn, conflicts)) {
        if (counters_ != nullptr) {
          counters_->deadlock_aborts.fetch_add(1, std::memory_order_relaxed);
        }
        return Status::Aborted("deadlock victim on key " +
                               std::to_string(key));
      }
    }

    if (!counted_block && counters_ != nullptr) {
      counted_block = true;
      auto& counter = read_only ? counters_->ro_blocks : counters_->rw_blocks;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    if (policy_ == DeadlockPolicy::kTimeout) {
      std::cv_status status;
      if (InstalledSimHook() != nullptr) {
        // Virtual time: one scheduler round-trip stands in for the whole
        // wait budget, so a still-standing conflict is presumed deadlock.
        SimAwareCvWait(shard.cv, lock, "lock.wait");
        status = std::cv_status::timeout;
      } else {
        status = shard.cv.wait_for(lock,
                                   std::chrono::milliseconds(timeout_ms_));
      }
      if (status == std::cv_status::timeout) {
        // Presumed deadlock: re-check once, then give up.
        KeyLock& kl2 = shard.table[key];
        if (!Conflicts(kl2, txn, mode).empty()) {
          if (counters_ != nullptr) {
            counters_->deadlock_aborts.fetch_add(
                1, std::memory_order_relaxed);
          }
          return Status::Aborted("lock timeout on key " +
                                 std::to_string(key));
        }
      }
    } else {
      SimAwareCvWait(shard.cv, lock, "lock.wait");
    }
    if (policy_ == DeadlockPolicy::kDetect) detector_.ClearWaits(txn);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  SimSchedulePoint("lock.release_all");
  std::vector<ObjectKey> keys;
  {
    HeldShard& hs = HeldFor(txn);
    std::lock_guard<SpinLatch> guard(hs.latch);
    auto it = hs.keys.find(txn);
    if (it != hs.keys.end()) {
      keys = std::move(it->second);
      hs.keys.erase(it);
    }
  }
  // Group keys by shard so each shard is locked once.
  std::sort(keys.begin(), keys.end(), [this](ObjectKey a, ObjectKey b) {
    return a % shards_.size() < b % shards_.size();
  });
  size_t i = 0;
  while (i < keys.size()) {
    Shard& shard = ShardFor(keys[i]);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      while (i < keys.size() && &ShardFor(keys[i]) == &shard) {
        auto it = shard.table.find(keys[i]);
        if (it != shard.table.end()) {
          it->second.holders.erase(txn);
          if (it->second.holders.empty()) shard.table.erase(it);
        }
        ++i;
      }
    }
    shard.cv.notify_all();
  }
  if (policy_ == DeadlockPolicy::kDetect) detector_.RemoveTxn(txn);
}

bool LockManager::Holds(TxnId txn, ObjectKey key, LockMode mode) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return false;
  auto holder = it->second.holders.find(txn);
  if (holder == it->second.holders.end()) return false;
  return holder->second == LockMode::kExclusive || mode == LockMode::kShared;
}

void LockManager::RecordHeld(TxnId txn, ObjectKey key) {
  HeldShard& hs = HeldFor(txn);
  std::lock_guard<SpinLatch> guard(hs.latch);
  hs.keys[txn].push_back(key);
}

}  // namespace mvcc
