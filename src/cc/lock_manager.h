#ifndef MVCC_CC_LOCK_MANAGER_H_
#define MVCC_CC_LOCK_MANAGER_H_

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/ids.h"
#include "common/latch.h"
#include "common/status.h"
#include "cc/deadlock_detector.h"

namespace mvcc {

enum class LockMode {
  kShared,
  kExclusive,
};

// How lock conflicts that could deadlock are resolved.
//  kWaitDie:  requester younger than a conflicting holder aborts
//             ("dies"); older requesters wait. Deadlock-free by
//             construction, but kills many transactions that were not
//             actually deadlocked.
//  kDetect:   requester adds waits-for edges; if that closes a cycle the
//             requester aborts, otherwise it waits. Aborts only real
//             deadlocks at the cost of graph maintenance.
//  kTimeout:  requester waits up to a fixed budget, then presumes
//             deadlock and aborts. No bookkeeping, but slow transactions
//             are indistinguishable from deadlocked ones.
enum class DeadlockPolicy {
  kWaitDie,
  kDetect,
  kTimeout,
};

// Strict two-phase lock manager with shared/exclusive modes and S->X
// upgrades. Used by the VC+2PL protocol, by the MV2PL-CTL baseline, and
// by the single-version 2PL baseline. The lock table is sharded; each
// shard has one mutex and a broadcast condition variable (releases wake
// waiters, which re-evaluate the grant predicate).
class LockManager {
 public:
  LockManager(DeadlockPolicy policy, EventCounters* counters,
              size_t num_shards = 64,
              int64_t timeout_ms = 50);  // kTimeout wait budget
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires `mode` on `key` for `txn`, blocking if necessary. Returns
  // kAborted if the transaction is chosen as a deadlock victim (wait-die
  // "die", or cycle detection). `read_only` attributes the block/abort
  // counters. Transaction ids double as age: smaller id = older.
  Status Acquire(TxnId txn, ObjectKey key, LockMode mode,
                 bool read_only = false);

  // Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  // True if `txn` holds at least `mode` on `key`.
  bool Holds(TxnId txn, ObjectKey key, LockMode mode) const;

  DeadlockPolicy policy() const { return policy_; }
  DeadlockDetector& detector() { return detector_; }

 private:
  struct KeyLock {
    // Every holder with its strongest granted mode. Invariant: either a
    // single kExclusive holder, or any number of kShared holders.
    std::unordered_map<TxnId, LockMode> holders;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectKey, KeyLock> table;
  };

  struct HeldShard {
    SpinLatch latch;
    std::unordered_map<TxnId, std::vector<ObjectKey>> keys;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }
  HeldShard& HeldFor(TxnId txn) const {
    return held_[txn % held_.size()];
  }

  // Returns the conflicting holders preventing `txn` from taking `mode`
  // on `lock` (empty = grantable). Caller holds the shard mutex.
  static std::vector<TxnId> Conflicts(const KeyLock& lock, TxnId txn,
                                      LockMode mode);

  void RecordHeld(TxnId txn, ObjectKey key);

  const DeadlockPolicy policy_;
  const int64_t timeout_ms_;
  EventCounters* const counters_;
  mutable std::vector<Shard> shards_;
  mutable std::vector<HeldShard> held_;
  DeadlockDetector detector_;
};

}  // namespace mvcc

#endif  // MVCC_CC_LOCK_MANAGER_H_
