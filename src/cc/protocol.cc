#include "cc/protocol.h"

// The commit epilogue that used to live here (MaybePauseInstall /
// LogCommitBatch, duplicated into every VC protocol's Commit body) moved
// into the shared CommitPipeline (txn/commit_pipeline.{h,cc}). This
// translation unit anchors the Protocol interface in the build.

namespace mvcc {}  // namespace mvcc
