#include "cc/protocol.h"

#include "common/clock.h"
#include "common/sim_hook.h"
#include "recovery/wal.h"

namespace mvcc {

void MaybePauseInstall(const ProtocolEnv& env) {
  // Under simulation the interleaving point IS the pause: the scheduler
  // may run other tasks inside the partially-installed commit window.
  // Call sites sit outside any protocol lock, so yielding here is safe.
  SimSchedulePoint("commit.install");
  if (env.install_pause_ns <= 0) return;
  const int64_t until = NowNanos() + env.install_pause_ns;
  while (NowNanos() < until) {
    // Busy-wait: the injected window must not depend on scheduler wakeup
    // granularity.
  }
}

void LogCommitBatch(const ProtocolEnv& env, const TxnState& txn) {
  if (env.wal == nullptr || txn.write_order.empty()) return;
  CommitBatch batch;
  batch.txn = txn.id;
  batch.tn = txn.tn;
  batch.writes.reserve(txn.write_order.size());
  for (ObjectKey key : txn.write_order) {
    batch.writes.push_back(LoggedWrite{key, txn.write_set.at(key)});
  }
  env.wal->Append(std::move(batch));
}

}  // namespace mvcc
