#include "cc/protocol.h"

#include "common/clock.h"

namespace mvcc {

void MaybePauseInstall(const ProtocolEnv& env) {
  if (env.install_pause_ns <= 0) return;
  const int64_t until = NowNanos() + env.install_pause_ns;
  while (NowNanos() < until) {
    // Busy-wait: the injected window must not depend on scheduler wakeup
    // granularity.
  }
}

}  // namespace mvcc
