#ifndef MVCC_CC_ADAPTIVE_H_
#define MVCC_CC_ADAPTIVE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string_view>

#include "cc/optimistic.h"
#include "cc/protocol.h"
#include "cc/two_phase_locking.h"

namespace mvcc {

struct AdaptiveOptions {
  // Decision window: re-evaluate the mode after this many finished
  // read-write transactions.
  int window = 256;
  // Abort-rate thresholds with hysteresis.
  double go_locking_above = 0.30;
  double go_optimistic_below = 0.10;
};

// Adaptive concurrency control — Section 1's claim made concrete: the
// decoupling of version control from concurrency control means "more
// experimentation [is] possible in areas such as ... adaptive
// concurrency control schemes without introducing major modifications to
// the entire protocol".
//
// This protocol runs read-write transactions under OCC while conflict
// rates are low and under strict 2PL when the windowed abort rate rises
// past a threshold. Mode changes apply only at quiescent points (no
// read-write transaction in flight), so transactions of different modes
// never overlap and each mode's own correctness argument applies
// verbatim within its epoch; epochs compose serially through the shared
// version control module, whose transaction numbers remain the single
// global serialization order.
//
// Read-only transactions never learn any of this is happening: they
// bypass to version control exactly as under any other plug-in.
class Adaptive : public Protocol {
 public:
  Adaptive(ProtocolEnv env, DeadlockPolicy policy,
           AdaptiveOptions options = {});

  std::string_view name() const override { return "vc-adaptive"; }
  bool ReadOnlyBypass() const override { return true; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;
  Result<std::vector<std::pair<ObjectKey, VersionRead>>> Scan(
      TxnState* txn, ObjectKey lo, ObjectKey hi) override;

  enum class Mode { kOptimistic, kLocking };
  Mode mode() const { return mode_.load(std::memory_order_acquire); }
  uint64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }

 private:
  struct AdaptiveTxnData : ProtocolTxnData {
    Protocol* engine = nullptr;
    std::unique_ptr<ProtocolTxnData> inner;
  };

  // Temporarily exposes the engine's scratch as txn->cc_data while a
  // delegated call runs.
  class ScopedInner {
   public:
    ScopedInner(TxnState* txn) : txn_(txn) {
      outer_ = std::move(txn_->cc_data);
      txn_->cc_data =
          std::move(static_cast<AdaptiveTxnData*>(outer_.get())->inner);
    }
    ~ScopedInner() {
      static_cast<AdaptiveTxnData*>(outer_.get())->inner =
          std::move(txn_->cc_data);
      txn_->cc_data = std::move(outer_);
    }
    Protocol* engine() {
      return static_cast<AdaptiveTxnData*>(outer_.get())->engine;
    }

   private:
    TxnState* txn_;
    std::unique_ptr<ProtocolTxnData> outer_;
  };

  void RecordOutcome(bool aborted);

  const AdaptiveOptions options_;
  TwoPhaseLocking locking_;
  Optimistic optimistic_;

  std::mutex mu_;              // guards the fields below
  std::condition_variable cv_; // admission gate during mode drains
  int active_ = 0;             // in-flight read-write transactions
  int window_commits_ = 0;
  int window_aborts_ = 0;
  Mode desired_ = Mode::kOptimistic;
  Mode last_window_vote_ = Mode::kOptimistic;

  std::atomic<Mode> mode_{Mode::kOptimistic};
  std::atomic<uint64_t> switches_{0};
};

}  // namespace mvcc

#endif  // MVCC_CC_ADAPTIVE_H_
