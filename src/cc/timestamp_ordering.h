#ifndef MVCC_CC_TIMESTAMP_ORDERING_H_
#define MVCC_CC_TIMESTAMP_ORDERING_H_

#include <condition_variable>
#include <map>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cc/protocol.h"
#include "txn/commit_pipeline.h"

namespace mvcc {

// Version control + timestamp ordering — Figure 3 of the paper.
//
// A read-write transaction is registered (and numbered) at begin, since
// timestamp ordering fixes the serial order a priori; sn(T) = tn(T).
//
// Reads update r-ts(x) and return the largest version <= tn(T), blocking
// while an older transaction has a pending write that would fall between
// that version and tn(T). Writes are rejected (transaction aborted) when
// r-ts(x) > tn(T) or w-ts(x) > tn(T); granted writes stay pending until
// commit. Read-only transactions never reach this class (ReadOnlyBypass).
class TimestampOrdering : public Protocol, public CommitParticipant {
 public:
  explicit TimestampOrdering(ProtocolEnv env, size_t num_shards = 64);

  std::string_view name() const override { return "vc-to"; }
  bool ReadOnlyBypass() const override { return true; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

  // Read-write range scans under timestamp ordering: the scan performs a
  // timestamped read of every existing key in range AND raises a range
  // read-floor to tn(T); a transaction creating a NEW key inside a
  // range whose floor exceeds its tn is rejected — the timestamp-order
  // analog of 2PL's range locks (phantom exclusion by r-ts, applied to
  // the gap).
  Result<std::vector<std::pair<ObjectKey, VersionRead>>> Scan(
      TxnState* txn, ObjectKey lo, ObjectKey hi) override;

  // CommitParticipant: installs carry per-key bookkeeping — clear the
  // pending write, bump the committed w-ts, wake readers blocked on the
  // pending entry.
  bool InstallOne(TxnState* txn, ObjectKey key) override;

  // Test hooks.
  TxnNumber ReadTimestamp(ObjectKey key) const;
  TxnNumber WriteTimestamp(ObjectKey key) const;
  size_t PendingCount(ObjectKey key) const;

 private:
  struct KeyState {
    TxnNumber max_rts = 0;            // r-ts(x) of the most recent version
    TxnNumber committed_wts = 0;      // largest committed w-ts(x)
    std::map<TxnNumber, Value> pending;  // granted, uncommitted writes
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectKey, KeyState> table;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }

  // w-ts(x): the largest write timestamp, pending or committed.
  static TxnNumber EffectiveWts(const KeyState& st) {
    TxnNumber wts = st.committed_wts;
    if (!st.pending.empty() && st.pending.rbegin()->first > wts) {
      wts = st.pending.rbegin()->first;
    }
    return wts;
  }

  // Largest tn that scanned a range containing `key`, or 0.
  TxnNumber RangeFloorFor(ObjectKey key) const;

  ProtocolEnv env_;
  mutable std::vector<Shard> shards_;

  struct RangeFloor {
    ObjectKey lo = 0;
    ObjectKey hi = 0;
    TxnNumber max_reader = 0;
  };
  mutable std::mutex range_mu_;
  std::vector<RangeFloor> range_floors_;
};

}  // namespace mvcc

#endif  // MVCC_CC_TIMESTAMP_ORDERING_H_
