#include "cc/optimistic.h"

#include <map>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

namespace mvcc {

Optimistic::Optimistic(ProtocolEnv env) : env_(env) {}

Status Optimistic::Begin(TxnState* txn) {
  auto data = std::make_unique<OccData>();
  {
    std::lock_guard<std::mutex> guard(mu_);
    data->start_serial = finished_watermark_;
    active_starts_.insert(data->start_serial);
    data->begun = true;
  }
  txn->sn = kInfiniteTxnNumber;  // reads see the latest committed version
  txn->cc_data = std::move(data);
  return Status::OK();
}

Result<VersionRead> Optimistic::Read(TxnState* txn, ObjectKey key) {
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{kPendingVersion, txn->id, own->second};
  }
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return chain->ReadLatest();
}

Status Optimistic::Write(TxnState* txn, ObjectKey key, Value value) {
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Result<std::vector<std::pair<ObjectKey, VersionRead>>> Optimistic::Scan(
    TxnState* txn, ObjectKey lo, ObjectKey hi) {
  auto* data = static_cast<OccData*>(txn->cc_data.get());
  std::map<ObjectKey, VersionRead> rows;
  for (ObjectKey key : env_.store->KeysInRange(lo, hi)) {
    auto own = txn->write_set.find(key);
    if (own != txn->write_set.end()) {
      rows.emplace(key,
                   VersionRead{kPendingVersion, txn->id, own->second});
      continue;
    }
    VersionChain* chain = env_.store->Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->ReadLatest();
    if (!read.ok()) continue;
    rows.emplace(key, std::move(*read));
  }
  for (ObjectKey key : txn->write_order) {
    if (key < lo || key > hi || rows.count(key) != 0) continue;
    rows.emplace(key, VersionRead{kPendingVersion, txn->id,
                                  txn->write_set[key]});
  }
  data->scans.push_back(ScannedRange{lo, hi});
  std::vector<std::pair<ObjectKey, VersionRead>> out;
  out.reserve(rows.size());
  for (auto& [key, read] : rows) out.emplace_back(key, std::move(read));
  return out;
}

Status Optimistic::Commit(TxnState* txn) {
  auto* data = static_cast<OccData*>(txn->cc_data.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backward validation: did any transaction validated after our start
    // write something we read?
    std::unordered_set<ObjectKey> read_keys;
    read_keys.reserve(txn->reads.size());
    for (const ReadEntry& r : txn->reads) read_keys.insert(r.key);
    for (const ValidatedEntry& entry : log_) {
      if (entry.serial <= data->start_serial) continue;
      for (ObjectKey w : entry.writes) {
        bool conflict = read_keys.count(w) != 0;
        // Phantom check: a later-validated writer touched (possibly
        // created) a key inside one of our scanned ranges.
        for (const ScannedRange& scan : data->scans) {
          if (conflict) break;
          conflict = w >= scan.lo && w <= scan.hi;
        }
        if (conflict) {
          active_starts_.erase(active_starts_.find(data->start_serial));
          data->begun = false;
          return Status::Aborted("OCC validation conflict on key " +
                                 std::to_string(w));
        }
      }
    }
    // Validated: serial position fixed — register with version control
    // inside the critical section so tn order equals validation order.
    const uint64_t serial = ++serial_counter_;
    txn->tn = env_.vc->Register(txn->id);
    txn->registered = true;
    ValidatedEntry entry;
    entry.serial = serial;
    entry.writes = txn->write_order;
    log_.push_back(std::move(entry));
    active_starts_.erase(active_starts_.find(data->start_serial));
    data->begun = false;
    data->start_serial = serial;  // reuse: our own serial, for finish
  }

  // The shared pipeline installs outside the critical section, makes
  // the batch durable (group commit), retires the validation-log entry
  // (BeforeComplete) and completes with version control. Delaying the
  // retirement until after durability only keeps our entry visible to
  // concurrent validators a little longer — strictly conservative.
  return env_.pipeline->Commit(txn, this);
}

void Optimistic::BeforeComplete(TxnState* txn) {
  auto* data = static_cast<OccData*>(txn->cc_data.get());
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t index = data->start_serial - log_base_ - 1;
  log_[index].finished = true;
  // Advance the finished watermark over the finished prefix.
  while (finished_watermark_ - log_base_ < log_.size() &&
         log_[finished_watermark_ - log_base_].finished) {
    ++finished_watermark_;
  }
  TrimLogLocked();
}

void Optimistic::Abort(TxnState* txn) {
  auto* data = static_cast<OccData*>(txn->cc_data.get());
  if (data != nullptr && data->begun) {
    std::lock_guard<std::mutex> guard(mu_);
    active_starts_.erase(active_starts_.find(data->start_serial));
    data->begun = false;
  }
  // A transaction that passed validation cannot abort afterwards; if it
  // was registered, Commit() already completed it. Defensive:
  if (txn->registered && !txn->finished) env_.vc->Discard(txn->tn);
}

size_t Optimistic::ValidationLogSize() const {
  std::lock_guard<std::mutex> guard(mu_);
  return log_.size();
}

void Optimistic::TrimLogLocked() {
  const uint64_t min_active =
      active_starts_.empty() ? finished_watermark_ : *active_starts_.begin();
  while (!log_.empty()) {
    const uint64_t front_serial = log_base_ + 1;
    if (front_serial > min_active || front_serial > finished_watermark_) {
      break;
    }
    log_.pop_front();
    ++log_base_;
  }
}

}  // namespace mvcc
