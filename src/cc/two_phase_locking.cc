#include "cc/two_phase_locking.h"

#include <map>

#include <string>
#include <utility>

namespace mvcc {

TwoPhaseLocking::TwoPhaseLocking(ProtocolEnv env, DeadlockPolicy policy)
    : env_(env), locks_(policy, env.counters), ranges_(env.counters) {}

Status TwoPhaseLocking::Begin(TxnState* txn) {
  // sn(T) = infinity: a read-write transaction reads the latest version.
  txn->sn = kInfiniteTxnNumber;
  return Status::OK();
}

Result<VersionRead> TwoPhaseLocking::Read(TxnState* txn, ObjectKey key) {
  // Read own buffered write (uncommitted version "phi").
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{kPendingVersion, txn->id, own->second};
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kShared);
  if (!s.ok()) return s;
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  // Holding the S lock guarantees the latest version is committed and
  // stable until this transaction passes its lock point.
  return chain->ReadLatest();
}

Status TwoPhaseLocking::Write(TxnState* txn, ObjectKey key, Value value) {
  Status s = locks_.Acquire(txn->id, key, LockMode::kExclusive);
  if (!s.ok()) return s;
  if (env_.store->Find(key) == nullptr) {
    // Creating a key: claim the insertion point so concurrent range
    // scanners never see it appear mid-transaction (phantom exclusion).
    s = ranges_.AcquireExclusivePoint(txn->id, key);
    if (!s.ok()) return s;
  }
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Result<std::vector<std::pair<ObjectKey, VersionRead>>>
TwoPhaseLocking::Scan(TxnState* txn, ObjectKey lo, ObjectKey hi) {
  Status s = ranges_.AcquireShared(txn->id, lo, hi);
  if (!s.ok()) return s;

  // Existing keys from the index, merged with the transaction's own
  // buffered writes that fall in range (including keys it is creating).
  std::map<ObjectKey, VersionRead> rows;
  for (ObjectKey key : env_.store->KeysInRange(lo, hi)) {
    auto own = txn->write_set.find(key);
    if (own != txn->write_set.end()) {
      rows.emplace(key,
                   VersionRead{kPendingVersion, txn->id, own->second});
      continue;
    }
    s = locks_.Acquire(txn->id, key, LockMode::kShared);
    if (!s.ok()) return s;
    VersionChain* chain = env_.store->Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->ReadLatest();
    if (!read.ok()) continue;  // empty chain: not yet materialized
    rows.emplace(key, std::move(*read));
  }
  for (ObjectKey key : txn->write_order) {
    if (key < lo || key > hi || rows.count(key) != 0) continue;
    rows.emplace(key, VersionRead{kPendingVersion, txn->id,
                                  txn->write_set[key]});
  }
  std::vector<std::pair<ObjectKey, VersionRead>> out;
  out.reserve(rows.size());
  for (auto& [key, read] : rows) out.emplace_back(key, std::move(read));
  return out;
}

Status TwoPhaseLocking::Commit(TxnState* txn) {
  // end(T), Figure 4. The transaction is past its lock point: its serial
  // position is now fixed, so register with version control. The shared
  // pipeline then installs the buffered versions, makes the batch
  // durable (group commit), clears the locks (BeforeComplete) and makes
  // the updates visible in serial order.
  txn->tn = env_.vc->Register(txn->id);
  txn->registered = true;
  return env_.pipeline->Commit(txn, this);
}

void TwoPhaseLocking::BeforeComplete(TxnState* txn) {
  locks_.ReleaseAll(txn->id);
  ranges_.ReleaseAll(txn->id);
}

void TwoPhaseLocking::Abort(TxnState* txn) {
  // Versions created by an aborted transaction are destroyed — they were
  // never installed, only buffered, so dropping the write set suffices.
  locks_.ReleaseAll(txn->id);
  ranges_.ReleaseAll(txn->id);
  if (txn->registered) env_.vc->Discard(txn->tn);
}

}  // namespace mvcc
