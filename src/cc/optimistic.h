#ifndef MVCC_CC_OPTIMISTIC_H_
#define MVCC_CC_OPTIMISTIC_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "cc/protocol.h"
#include "txn/commit_pipeline.h"

namespace mvcc {

// Version control + optimistic concurrency control — the authors' own
// multiversion OCC (references [1, 2]), reconstructed with backward
// validation (Kung & Robinson style):
//
//  * Reads take no locks: read the latest committed version and remember
//    the (key, version) pair. Writes are buffered.
//  * At commit, the transaction enters a short validation critical
//    section: it conflicts (and aborts) iff some transaction validated
//    after its start wrote a key it read. On success it is assigned a
//    validation serial and, in the same critical section, registered with
//    version control — so tn order equals validation order, which is the
//    serialization order.
//  * Installs happen outside the critical section; a transaction's start
//    point is the highest serial whose installs had fully finished, so
//    partially installed writes are always caught by validation.
//
// Read-only transactions never reach this class (ReadOnlyBypass): the
// very motivation of [1, 2] was eliminating their validation overhead.
class Optimistic : public Protocol, public CommitParticipant {
 public:
  explicit Optimistic(ProtocolEnv env);

  std::string_view name() const override { return "vc-occ"; }
  bool ReadOnlyBypass() const override { return true; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

  // Read-write range scans, validated at commit: the transaction aborts
  // if any transaction validated after its start wrote ANY key inside a
  // scanned range (which covers phantoms: created keys appear in the
  // writer's write set).
  Result<std::vector<std::pair<ObjectKey, VersionRead>>> Scan(
      TxnState* txn, ObjectKey lo, ObjectKey hi) override;

  // CommitParticipant: after the batch is durable and before
  // visibility, retire the validation-log entry (mark installs finished,
  // advance the finished watermark, trim the log).
  void BeforeComplete(TxnState* txn) override;

  // Number of write sets currently retained for validation (test hook).
  size_t ValidationLogSize() const;

 private:
  struct ScannedRange {
    ObjectKey lo = 0;
    ObjectKey hi = 0;
  };

  struct OccData : ProtocolTxnData {
    uint64_t start_serial = 0;
    bool begun = false;  // start_serial recorded in active_starts_
    std::vector<ScannedRange> scans;
  };

  struct ValidatedEntry {
    uint64_t serial = 0;
    std::vector<ObjectKey> writes;
    bool finished = false;  // installs complete
  };

  // Drops log entries no active transaction can ever scan. Caller holds
  // mu_.
  void TrimLogLocked();

  ProtocolEnv env_;
  mutable std::mutex mu_;
  uint64_t serial_counter_ = 0;
  uint64_t finished_watermark_ = 0;
  uint64_t log_base_ = 0;  // serial of log_.front() is log_base_ + 1
  std::deque<ValidatedEntry> log_;
  std::multiset<uint64_t> active_starts_;
};

}  // namespace mvcc

#endif  // MVCC_CC_OPTIMISTIC_H_
