#include "cc/deadlock_detector.h"

namespace mvcc {

bool DeadlockDetector::AddEdges(TxnId waiter,
                                const std::vector<TxnId>& holders) {
  std::lock_guard<std::mutex> guard(mu_);
  // A cycle through `waiter` forms iff some holder already (transitively)
  // waits for `waiter`.
  for (TxnId holder : holders) {
    if (holder == waiter) continue;
    if (Reaches(holder, waiter)) return false;
  }
  auto& out = edges_[waiter];
  for (TxnId holder : holders) {
    if (holder != waiter) out.insert(holder);
  }
  return true;
}

void DeadlockDetector::ClearWaits(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  edges_.erase(txn);
}

void DeadlockDetector::RemoveTxn(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  edges_.erase(txn);
  for (auto& [waiter, targets] : edges_) targets.erase(txn);
}

size_t DeadlockDetector::NumWaiters() const {
  std::lock_guard<std::mutex> guard(mu_);
  return edges_.size();
}

bool DeadlockDetector::Reaches(TxnId start, TxnId target) const {
  if (start == target) return true;
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack{start};
  while (!stack.empty()) {
    const TxnId node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (TxnId next : it->second) {
      if (next == target) return true;
      stack.push_back(next);
    }
  }
  return false;
}

}  // namespace mvcc
