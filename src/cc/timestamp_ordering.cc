#include "cc/timestamp_ordering.h"

#include <algorithm>

#include <string>
#include <utility>

#include "common/sim_hook.h"

namespace mvcc {

TimestampOrdering::TimestampOrdering(ProtocolEnv env, size_t num_shards)
    : env_(env), shards_(num_shards == 0 ? 1 : num_shards) {}

Status TimestampOrdering::Begin(TxnState* txn) {
  // Serial order is determined a priori: register immediately (Figure 3).
  SimSchedulePoint("to.begin");
  txn->tn = env_.vc->Register(txn->id);
  txn->registered = true;
  txn->sn = txn->tn;
  return Status::OK();
}

Result<VersionRead> TimestampOrdering::Read(TxnState* txn, ObjectKey key) {
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{txn->tn, txn->id, own->second};
  }
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr && env_.store->GetOrCreate(key) == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  chain = env_.store->GetOrCreate(key);

  SimSchedulePoint("to.read");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  KeyState& st = shard.table[key];
  // r-ts(x) <- MAX(r-ts(x), tn(T)) — set before any waiting so that older
  // writers arriving meanwhile are rejected (Lemma 3).
  if (txn->tn > st.max_rts) st.max_rts = txn->tn;

  bool counted_block = false;
  while (true) {
    Result<VersionRead> candidate = chain->Read(txn->sn);
    // Pending write by an older transaction that would supersede the
    // candidate version? Then this read must wait (Figure 3's "may be
    // delayed due to the pending writes as per TO protocol").
    const VersionNumber floor =
        candidate.ok() ? candidate->version : 0;
    auto it = st.pending.upper_bound(floor);
    const bool must_wait = it != st.pending.end() && it->first <= txn->sn &&
                           it->first != txn->tn;
    if (!must_wait) {
      if (!candidate.ok()) {
        return Status::NotFound("key " + std::to_string(key) +
                                " has no version <= " +
                                std::to_string(txn->sn));
      }
      return candidate;
    }
    if (!counted_block && env_.counters != nullptr) {
      counted_block = true;
      env_.counters->rw_blocks.fetch_add(1, std::memory_order_relaxed);
    }
    SimAwareCvWait(shard.cv, lock, "to.read_wait");
  }
}

Status TimestampOrdering::Write(TxnState* txn, ObjectKey key, Value value) {
  // Creating a key: make it enumerable (index entry) BEFORE the pending
  // write is published, so concurrent range scans either see the pending
  // (and wait) or have already raised a floor this write will observe.
  const bool creating = env_.store->Find(key) == nullptr;
  if (creating) env_.store->GetOrCreate(key);

  SimSchedulePoint("to.write");
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  KeyState& st = shard.table[key];

  bool counted_block = false;
  while (true) {
    // Reject if a younger transaction already read or wrote x.
    if (st.max_rts > txn->tn || EffectiveWts(st) > txn->tn) {
      return Status::Aborted("TO conflict on key " + std::to_string(key));
    }
    // A pending write by an older transaction blocks this write until the
    // older transaction resolves.
    auto it = st.pending.begin();
    const bool older_pending =
        it != st.pending.end() && it->first < txn->tn;
    if (!older_pending) break;
    if (!counted_block && env_.counters != nullptr) {
      counted_block = true;
      env_.counters->rw_blocks.fetch_add(1, std::memory_order_relaxed);
    }
    SimAwareCvWait(shard.cv, lock, "to.write_wait");
  }

  // Granted: the write stays pending until commit.
  st.pending[txn->tn] = value;

  if (creating) {
    // Publish-then-check: with the pending visible, a range floor above
    // tn(T) means some younger transaction already scanned this gap and
    // must not discover a phantom — reject the creation.
    const TxnNumber floor = RangeFloorFor(key);
    if (floor > txn->tn) {
      st.pending.erase(txn->tn);
      lock.unlock();
      shard.cv.notify_all();
      return Status::Aborted("TO range-floor conflict creating key " +
                             std::to_string(key));
    }
  }
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Result<std::vector<std::pair<ObjectKey, VersionRead>>>
TimestampOrdering::Scan(TxnState* txn, ObjectKey lo, ObjectKey hi) {
  {
    // Raise the range read-floor before enumerating, so creations that
    // miss our enumeration observe the floor instead.
    std::lock_guard<std::mutex> guard(range_mu_);
    const TxnNumber vtnc = env_.vc->vtnc();
    range_floors_.erase(
        std::remove_if(range_floors_.begin(), range_floors_.end(),
                       [vtnc](const RangeFloor& f) {
                         // Every current or future writer has tn > vtnc:
                         // floors at or below it are inert.
                         return f.max_reader <= vtnc;
                       }),
        range_floors_.end());
    bool merged = false;
    for (RangeFloor& floor : range_floors_) {
      if (floor.lo == lo && floor.hi == hi) {
        if (txn->tn > floor.max_reader) floor.max_reader = txn->tn;
        merged = true;
        break;
      }
    }
    if (!merged) range_floors_.push_back(RangeFloor{lo, hi, txn->tn});
  }

  std::map<ObjectKey, VersionRead> rows;
  for (ObjectKey key : env_.store->KeysInRange(lo, hi)) {
    Result<VersionRead> read = Read(txn, key);
    if (!read.ok()) {
      if (read.status().IsNotFound()) continue;  // no version <= tn
      return read.status();
    }
    rows.emplace(key, std::move(*read));
  }
  for (ObjectKey key : txn->write_order) {
    if (key < lo || key > hi || rows.count(key) != 0) continue;
    rows.emplace(key, VersionRead{kPendingVersion, txn->id,
                                  txn->write_set[key]});
  }
  std::vector<std::pair<ObjectKey, VersionRead>> out;
  out.reserve(rows.size());
  for (auto& [key, read] : rows) out.emplace_back(key, std::move(read));
  return out;
}

TxnNumber TimestampOrdering::RangeFloorFor(ObjectKey key) const {
  std::lock_guard<std::mutex> guard(range_mu_);
  TxnNumber best = 0;
  for (const RangeFloor& floor : range_floors_) {
    if (key >= floor.lo && key <= floor.hi &&
        floor.max_reader > best) {
      best = floor.max_reader;
    }
  }
  return best;
}

Status TimestampOrdering::Commit(TxnState* txn) {
  // commit(T): the shared pipeline performs the database updates (via
  // InstallOne, clearing pending and waking blocked reads per key),
  // group-commits the batch, then VCcomplete(T).
  return env_.pipeline->Commit(txn, this);
}

bool TimestampOrdering::InstallOne(TxnState* txn, ObjectKey key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> guard(shard.mu);
    KeyState& st = shard.table[key];
    st.pending.erase(txn->tn);
    if (txn->tn > st.committed_wts) st.committed_wts = txn->tn;
    env_.store->GetOrCreate(key)->Install(
        Version{txn->tn, txn->write_set[key], txn->id});
  }
  shard.cv.notify_all();
  return true;
}

void TimestampOrdering::Abort(TxnState* txn) {
  for (ObjectKey key : txn->write_order) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      auto it = shard.table.find(key);
      if (it != shard.table.end()) it->second.pending.erase(txn->tn);
    }
    shard.cv.notify_all();
  }
  if (txn->registered) env_.vc->Discard(txn->tn);
}

TxnNumber TimestampOrdering::ReadTimestamp(ObjectKey key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.table.find(key);
  return it == shard.table.end() ? 0 : it->second.max_rts;
}

TxnNumber TimestampOrdering::WriteTimestamp(ObjectKey key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.table.find(key);
  return it == shard.table.end() ? 0 : EffectiveWts(it->second);
}

size_t TimestampOrdering::PendingCount(ObjectKey key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.table.find(key);
  return it == shard.table.end() ? 0 : it->second.pending.size();
}

}  // namespace mvcc
