#include "cc/adaptive.h"

#include <utility>

#include "common/sim_hook.h"

namespace mvcc {

Adaptive::Adaptive(ProtocolEnv env, DeadlockPolicy policy,
                   AdaptiveOptions options)
    : options_(options), locking_(env, policy), optimistic_(env) {}

Status Adaptive::Begin(TxnState* txn) {
  auto data = std::make_unique<AdaptiveTxnData>();
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Apply a pending mode change at a quiescent point. Under sustained
    // load quiescence never occurs naturally, so a pending change DRAINS
    // the system: new transactions wait here until the in-flight ones
    // finish (they always do: 2PL resolves by wait-die/detection, OCC
    // never blocks), then the mode flips and admission resumes.
    SimAwareCvWait(cv_, lock, "adaptive.drain", [this] {
      return desired_ == mode_.load(std::memory_order_relaxed) ||
             active_ == 0;
    });
    const Mode current = mode_.load(std::memory_order_relaxed);
    if (active_ == 0 && desired_ != current) {
      mode_.store(desired_, std::memory_order_release);
      switches_.fetch_add(1, std::memory_order_relaxed);
    }
    ++active_;
    data->engine = mode_.load(std::memory_order_relaxed) == Mode::kLocking
                       ? static_cast<Protocol*>(&locking_)
                       : static_cast<Protocol*>(&optimistic_);
  }
  Protocol* engine = data->engine;
  txn->cc_data = std::move(data);
  ScopedInner scoped(txn);
  return engine->Begin(txn);
}

Result<VersionRead> Adaptive::Read(TxnState* txn, ObjectKey key) {
  ScopedInner scoped(txn);
  return scoped.engine()->Read(txn, key);
}

Status Adaptive::Write(TxnState* txn, ObjectKey key, Value value) {
  ScopedInner scoped(txn);
  return scoped.engine()->Write(txn, key, std::move(value));
}

Result<std::vector<std::pair<ObjectKey, VersionRead>>> Adaptive::Scan(
    TxnState* txn, ObjectKey lo, ObjectKey hi) {
  ScopedInner scoped(txn);
  return scoped.engine()->Scan(txn, lo, hi);
}

Status Adaptive::Commit(TxnState* txn) {
  Status s;
  {
    ScopedInner scoped(txn);
    s = scoped.engine()->Commit(txn);
  }
  if (s.ok()) RecordOutcome(/*aborted=*/false);
  // On failure Abort() follows (transaction layer contract) and records.
  return s;
}

void Adaptive::Abort(TxnState* txn) {
  {
    ScopedInner scoped(txn);
    scoped.engine()->Abort(txn);
  }
  RecordOutcome(/*aborted=*/true);
}

void Adaptive::RecordOutcome(bool aborted) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    --active_;
    if (aborted) {
      ++window_aborts_;
    } else {
      ++window_commits_;
    }
    const int finished = window_commits_ + window_aborts_;
    if (finished >= options_.window) {
      const double abort_rate = static_cast<double>(window_aborts_) /
                                static_cast<double>(finished);
      window_commits_ = 0;
      window_aborts_ = 0;
      Mode vote = desired_;
      if (abort_rate > options_.go_locking_above) {
        vote = Mode::kLocking;
      } else if (abort_rate < options_.go_optimistic_below) {
        vote = Mode::kOptimistic;
      }
      // Two consecutive windows must agree before a (drain-inducing)
      // switch is requested; one noisy window cannot thrash the system.
      if (vote == last_window_vote_) desired_ = vote;
      last_window_vote_ = vote;
    }
    wake = active_ == 0 ||
           desired_ == mode_.load(std::memory_order_relaxed);
  }
  if (wake) cv_.notify_all();
}

}  // namespace mvcc
