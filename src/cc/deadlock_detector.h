#ifndef MVCC_CC_DEADLOCK_DETECTOR_H_
#define MVCC_CC_DEADLOCK_DETECTOR_H_

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"

namespace mvcc {

// Waits-for graph with detection-on-insertion. A blocked lock requester
// adds edges to the current holders before sleeping; if adding the edges
// closes a cycle, the requester is chosen as the victim and the edges are
// rolled back. Remove() is called when a transaction stops waiting (lock
// granted or transaction finished).
//
// The paper's observation (Section 4.4) that transactions registered with
// the version control module can never appear in a deadlock cycle is
// asserted by tests built on this class.
class DeadlockDetector {
 public:
  DeadlockDetector() = default;
  DeadlockDetector(const DeadlockDetector&) = delete;
  DeadlockDetector& operator=(const DeadlockDetector&) = delete;

  // Adds waits-for edges waiter -> holder for every holder. Returns true
  // if the graph remains acyclic (caller may wait); returns false if a
  // cycle through `waiter` would form, in which case no edges are added
  // and the caller must abort `waiter`.
  bool AddEdges(TxnId waiter, const std::vector<TxnId>& holders);

  // Removes all outgoing edges of `txn` (it stopped waiting).
  void ClearWaits(TxnId txn);

  // Removes `txn` entirely (finished): its outgoing edges and any edges
  // pointing at it.
  void RemoveTxn(TxnId txn);

  size_t NumWaiters() const;

 private:
  // True if `target` is reachable from `start` following edges_.
  bool Reaches(TxnId start, TxnId target) const;

  mutable std::mutex mu_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> edges_;
};

}  // namespace mvcc

#endif  // MVCC_CC_DEADLOCK_DETECTOR_H_
