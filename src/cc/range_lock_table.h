#ifndef MVCC_CC_RANGE_LOCK_TABLE_H_
#define MVCC_CC_RANGE_LOCK_TABLE_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/counters.h"
#include "common/ids.h"
#include "common/status.h"
#include "cc/lock_manager.h"

namespace mvcc {

// Interval locks that make read-write range scans phantom-free under
// two-phase locking. Point locks on existing keys are handled by the
// ordinary LockManager; this table covers the gap they cannot:
//
//  * a scanner claims its whole range [lo, hi] in shared mode;
//  * a writer that CREATES a key (no chain in the store yet) claims the
//    point [k, k] in exclusive mode.
//
// Any insertion into a scanned range therefore conflicts here, before
// the phantom can materialize. Conflicts resolve by wait-die on the
// transaction id (smaller id = older), like the point lock manager.
// The table is a flat interval list under one mutex: range scans by
// read-write transactions are rare compared to point operations, and
// scanning a short vector beats maintaining an interval tree.
class RangeLockTable {
 public:
  explicit RangeLockTable(EventCounters* counters) : counters_(counters) {}
  RangeLockTable(const RangeLockTable&) = delete;
  RangeLockTable& operator=(const RangeLockTable&) = delete;

  // Claims [lo, hi] shared. Returns kAborted on a wait-die kill.
  Status AcquireShared(TxnId txn, ObjectKey lo, ObjectKey hi);

  // Claims the insertion point [key, key] exclusive.
  Status AcquireExclusivePoint(TxnId txn, ObjectKey key);

  // Releases every interval held by `txn`.
  void ReleaseAll(TxnId txn);

  size_t ActiveIntervals() const;

 private:
  struct Entry {
    TxnId txn;
    ObjectKey lo;
    ObjectKey hi;
    LockMode mode;
  };

  Status Acquire(TxnId txn, ObjectKey lo, ObjectKey hi, LockMode mode);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  EventCounters* counters_;
};

}  // namespace mvcc

#endif  // MVCC_CC_RANGE_LOCK_TABLE_H_
