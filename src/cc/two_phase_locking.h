#ifndef MVCC_CC_TWO_PHASE_LOCKING_H_
#define MVCC_CC_TWO_PHASE_LOCKING_H_

#include <string_view>

#include "cc/lock_manager.h"
#include "cc/protocol.h"
#include "cc/range_lock_table.h"
#include "txn/commit_pipeline.h"

namespace mvcc {

// Version control + strict two-phase locking — Figure 4 of the paper.
//
// Read-write transactions take shared/exclusive locks and always read the
// latest committed version (sn = infinity "for uniformity"). Writes buffer
// an uncommitted version ("phi"). At end(T):
//   VCregister(T)  -> tn(T) assigned at the lock point,
// then the shared commit pipeline runs the epilogue: install buffered
// versions numbered tn(T), group-commit the batch, clear locks
// (BeforeComplete), VCcomplete(T).
// Read-only transactions never reach this class (ReadOnlyBypass).
class TwoPhaseLocking : public Protocol, public CommitParticipant {
 public:
  TwoPhaseLocking(ProtocolEnv env, DeadlockPolicy policy);

  std::string_view name() const override { return "vc-2pl"; }
  bool ReadOnlyBypass() const override { return true; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

  // Read-write range scans: the scanner claims [lo, hi] in the range
  // lock table (shared); creators of new keys claim their insertion
  // point (exclusive); so no phantom can appear inside a scanned range
  // before the scanner commits.
  Result<std::vector<std::pair<ObjectKey, VersionRead>>> Scan(
      TxnState* txn, ObjectKey lo, ObjectKey hi) override;

  // CommitParticipant: strict 2PL must hold its locks through the
  // durability point and release them before visibility.
  void BeforeComplete(TxnState* txn) override;

  LockManager& lock_manager() { return locks_; }
  RangeLockTable& range_locks() { return ranges_; }

 private:
  ProtocolEnv env_;
  LockManager locks_;
  RangeLockTable ranges_;
};

}  // namespace mvcc

#endif  // MVCC_CC_TWO_PHASE_LOCKING_H_
