#include "cc/range_lock_table.h"

#include <algorithm>
#include <string>

#include "common/sim_hook.h"

namespace mvcc {

Status RangeLockTable::AcquireShared(TxnId txn, ObjectKey lo,
                                     ObjectKey hi) {
  return Acquire(txn, lo, hi, LockMode::kShared);
}

Status RangeLockTable::AcquireExclusivePoint(TxnId txn, ObjectKey key) {
  return Acquire(txn, key, key, LockMode::kExclusive);
}

Status RangeLockTable::Acquire(TxnId txn, ObjectKey lo, ObjectKey hi,
                               LockMode mode) {
  SimSchedulePoint("range.acquire");
  std::unique_lock<std::mutex> lock(mu_);
  bool counted_block = false;
  while (true) {
    bool conflict = false;
    for (const Entry& entry : entries_) {
      if (entry.txn == txn) continue;
      const bool overlap = entry.lo <= hi && lo <= entry.hi;
      if (!overlap) continue;
      if (mode == LockMode::kExclusive ||
          entry.mode == LockMode::kExclusive) {
        conflict = true;
        // Wait-die: younger requesters die.
        if (txn > entry.txn) {
          if (counters_ != nullptr) {
            counters_->deadlock_aborts.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
          return Status::Aborted("range wait-die victim on [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
        }
      }
    }
    if (!conflict) {
      entries_.push_back(Entry{txn, lo, hi, mode});
      return Status::OK();
    }
    if (!counted_block && counters_ != nullptr) {
      counted_block = true;
      counters_->rw_blocks.fetch_add(1, std::memory_order_relaxed);
    }
    SimAwareCvWait(cv_, lock, "range.wait");
  }
}

void RangeLockTable::ReleaseAll(TxnId txn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [txn](const Entry& e) {
                                    return e.txn == txn;
                                  }),
                   entries_.end());
  }
  cv_.notify_all();
}

size_t RangeLockTable::ActiveIntervals() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.size();
}

}  // namespace mvcc
