#include "repl/replication_stream.h"

#include <utility>

#include "common/sim_hook.h"
#include "recovery/recovery.h"
#include "recovery/wal.h"

namespace mvcc {
namespace repl {

ReplicationStream::ReplicationStream(Database* primary,
                                     SimulatedNetwork* network,
                                     std::vector<Replica*> replicas)
    : primary_(primary),
      network_(network),
      replicas_(std::move(replicas)),
      peers_(replicas_.size()) {}

bool ReplicationStream::TryResync(Replica* replica, PeerState* peer) {
  // A checkpoint is an ordinary read-only snapshot of the primary —
  // re-seeding a replica costs the primary no synchronization, exactly
  // like GC and recovery checkpoints.
  Checkpoint checkpoint = TakeCheckpoint(primary_);
  ++peer->epoch;
  if (!network_->Send(MessageType::kReplBatch, /*from_site=*/0,
                      replica->site_id())) {
    ++stats_.send_drops;
    return false;  // image lost in transit; retry next pump
  }
  replica->Resync(checkpoint, peer->epoch);
  peer->resync_pending = false;
  peer->next_seq = 1;
  peer->in_flight.clear();
  peer->shipped_tn = checkpoint.vtnc;
  peer->shipped_horizon = checkpoint.vtnc;
  ++stats_.resyncs;
  return true;
}

size_t ReplicationStream::PumpPeer(size_t i) {
  SimSchedulePoint("repl.ship");
  Replica* replica = replicas_[i];
  PeerState& peer = peers_[i];

  if (replica->NeedsResync() || peer.resync_pending) {
    peer.resync_pending = true;
    if (!TryResync(replica, &peer)) return 0;
  }

  // Drop records the replica has durably applied (cumulative ack).
  const auto [ack_epoch, ack_seq] = replica->AckedUpTo();
  if (ack_epoch == peer.epoch) {
    peer.in_flight.erase(peer.in_flight.begin(),
                         peer.in_flight.upper_bound(ack_seq));
  }

  // Horizon BEFORE tail: see the class comment. Reading vtnc first plus
  // the append-before-Complete invariant guarantees the tail below holds
  // every committed batch with tn <= horizon that is past the cursor.
  const TxnNumber horizon = primary_->version_control().vtnc();
  Result<std::vector<CommitBatch>> tail =
      primary_->wal()->BatchesSince(peer.shipped_tn);
  if (!tail.ok()) {
    // The log was truncated past our cursor under a checkpoint: batches
    // in the gap are gone, so tailing would silently skip them. Fall
    // back to a full re-seed.
    peer.resync_pending = true;
    return 0;
  }

  for (CommitBatch& batch : *tail) {
    if (batch.tn > horizon) break;  // not yet visible; ship next pump
    ReplRecord record;
    record.epoch = peer.epoch;
    record.seq = peer.next_seq++;
    record.horizon = batch.tn;
    record.has_batch = true;
    peer.shipped_tn = batch.tn;
    peer.shipped_horizon = batch.tn;
    record.batch = std::move(batch);
    peer.in_flight.emplace(record.seq, InFlight{std::move(record), 0});
    ++stats_.records_shipped;
  }
  if (horizon > peer.shipped_horizon) {
    // vtnc advanced past the last committed batch (a commit with an
    // empty write set completes its tn without a WAL append): ship the
    // horizon alone so replica reads keep up.
    ReplRecord record;
    record.epoch = peer.epoch;
    record.seq = peer.next_seq++;
    record.horizon = horizon;
    record.has_batch = false;
    peer.shipped_horizon = horizon;
    peer.in_flight.emplace(record.seq, InFlight{std::move(record), 0});
    ++stats_.records_shipped;
  }

  // At-least-once delivery, oldest first: new records go out at once,
  // already-sent ones only every kRetransmitIntervalPumps pumps — the
  // usual case for an unacked record is an ack still in flight, not a
  // loss. The replica ignores duplicates (seq below its apply cursor),
  // and a dropped record leaves a sequence gap it will not apply past.
  ++peer.pump_count;
  size_t delivered = 0;
  for (auto& [seq, entry] : peer.in_flight) {
    if (entry.attempts > 0 &&
        peer.pump_count - entry.last_sent_pump < kRetransmitIntervalPumps) {
      continue;
    }
    if (entry.attempts > 0) ++stats_.retransmits;
    ++entry.attempts;
    entry.last_sent_pump = peer.pump_count;
    if (network_->Send(MessageType::kReplBatch, /*from_site=*/0,
                       replica->site_id())) {
      replica->Deliver(entry.record);
      ++delivered;
    } else {
      ++stats_.send_drops;
    }
  }
  return delivered;
}

size_t ReplicationStream::PumpOnce() {
  size_t delivered = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) delivered += PumpPeer(i);
  return delivered;
}

bool ReplicationStream::CaughtUp() const {
  const TxnNumber vtnc = primary_->version_control().vtnc();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const PeerState& peer = peers_[i];
    if (peer.resync_pending || replicas_[i]->NeedsResync()) return false;
    if (!peer.in_flight.empty()) return false;
    if (peer.shipped_horizon != vtnc) return false;
    if (replicas_[i]->Horizon() != vtnc) return false;
  }
  return true;
}

}  // namespace repl
}  // namespace mvcc
