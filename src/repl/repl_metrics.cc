#include "repl/repl_metrics.h"

namespace mvcc {
namespace repl {

ReplicationStats CollectReplicationStats(const ReplicationStream& stream,
                                         const std::vector<Replica*>& replicas,
                                         const ReadRouter* router,
                                         double seconds) {
  ReplicationStats out;
  out.records_shipped = stream.stats().records_shipped;
  out.retransmits = stream.stats().retransmits;
  out.send_drops = stream.stats().send_drops;
  out.resyncs = stream.stats().resyncs;
  for (const Replica* replica : replicas) {
    out.records_applied += replica->records_applied();
    out.batches_applied += replica->batches_applied();
    out.replica_crashes += replica->crashes();
  }
  if (router != nullptr) {
    out.reads_to_replica = router->reads_to_replica();
    out.reads_to_primary = router->reads_to_primary();
    out.max_served_lag = router->max_served_lag();
  }
  out.seconds = seconds;
  return out;
}

}  // namespace repl
}  // namespace mvcc
