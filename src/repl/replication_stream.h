#ifndef MVCC_REPL_REPLICATION_STREAM_H_
#define MVCC_REPL_REPLICATION_STREAM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "dist/network.h"
#include "repl/replica.h"
#include "txn/database.h"

namespace mvcc {
namespace repl {

// Shipping-side counters (cumulative since construction).
struct StreamStats {
  uint64_t records_shipped = 0;  // distinct records handed to the network
  uint64_t retransmits = 0;      // re-sends of an unacked record
  uint64_t send_drops = 0;       // sends the network dropped
  uint64_t resyncs = 0;          // successful checkpoint re-seeds
};

// The primary-side half of WAL-shipping replication. Tails the primary's
// write-ahead log and streams committed batches to every replica over the
// simulated network, in tn order, tagged with dense per-epoch sequence
// numbers and a visibility horizon.
//
// Correctness rests on one ordering invariant, established in cc/protocol
// (LogCommitBatch): a committed batch is appended to the WAL BEFORE
// VCcomplete makes its tn visible through vtnc. PumpOnce therefore reads
// the horizon H = vtnc FIRST and tails the log second — every committed
// batch with tn <= H is already in the log, so a record carrying
// horizon H can never promise a snapshot that is missing a batch.
//
// Delivery is at-least-once: unacknowledged records are retransmitted
// every kRetransmitIntervalPumps pumps (first send is immediate; the
// interval keeps a fast-spinning shipper from flooding a replica whose
// ack is simply still in flight) and the replica discards duplicates by
// sequence number. Two situations force a checkpoint resync instead of
// tailing: the replica lost its state (crash), or the log was truncated
// past the shipping cursor (BatchesSince refuses to tail across the
// watermark).
//
// Driven by a single shipper thread/task; not internally synchronized.
class ReplicationStream {
 public:
  ReplicationStream(Database* primary, SimulatedNetwork* network,
                    std::vector<Replica*> replicas);

  // One shipping round over all replicas: prune acked records, tail the
  // log, ship new + unacked records, resync crashed/overrun replicas.
  // Returns the number of records delivered this round.
  size_t PumpOnce();

  // True when every replica is seeded, has acknowledged every shipped
  // record, and its horizon equals the primary's current vtnc. (A later
  // commit on the primary un-catches-up the stream until the next pump.)
  bool CaughtUp() const;

  const StreamStats& stats() const { return stats_; }

 private:
  // Pumps between re-sends of an already-sent unacked record.
  static constexpr uint64_t kRetransmitIntervalPumps = 4;

  struct InFlight {
    ReplRecord record;
    uint64_t attempts = 0;
    uint64_t last_sent_pump = 0;
  };
  struct PeerState {
    uint64_t epoch = 0;
    uint64_t next_seq = 1;
    uint64_t pump_count = 0;
    // Shipping cursor: largest batch tn handed to this peer.
    TxnNumber shipped_tn = 0;
    // Largest horizon handed to this peer (>= shipped_tn; horizon-only
    // records advance it past the last batch, e.g. over aborted txns).
    TxnNumber shipped_horizon = 0;
    std::map<uint64_t, InFlight> in_flight;  // seq -> unacked record
    // Set on crash detection or truncation overrun; cleared only once
    // the checkpoint image was actually delivered.
    bool resync_pending = true;  // bootstrap ships an initial image
  };

  size_t PumpPeer(size_t i);
  bool TryResync(Replica* replica, PeerState* peer);

  Database* const primary_;
  SimulatedNetwork* const network_;
  std::vector<Replica*> replicas_;
  std::vector<PeerState> peers_;
  StreamStats stats_;
};

}  // namespace repl
}  // namespace mvcc

#endif  // MVCC_REPL_REPLICATION_STREAM_H_
