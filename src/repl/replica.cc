#include "repl/replica.h"

#include <algorithm>

#include "common/epoch.h"
#include "common/sim_hook.h"
#include "common/status.h"
#include "storage/version.h"

namespace mvcc {
namespace repl {

Replica::Replica(int replica_id, SimulatedNetwork* network, History* history)
    : replica_id_(replica_id),
      network_(network),
      history_(history),
      store_(std::make_shared<ObjectStore>()) {}

void Replica::Deliver(const ReplRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  inbox_.push_back(record);
}

void Replica::Resync(const Checkpoint& checkpoint, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fresh = std::make_shared<ObjectStore>();
  for (const CheckpointEntry& e : checkpoint.entries) {
    fresh->GetOrCreate(e.key)->Install(Version{e.version, e.value, e.writer});
  }
  store_ = std::move(fresh);
  inbox_.clear();
  reorder_.clear();
  epoch_ = epoch;
  next_seq_ = 1;
  applied_seq_ = 0;
  // The stream invokes Resync synchronously on delivery of the checkpoint
  // image, so the (epoch, 0) acknowledgement is implicit.
  acked_epoch_ = epoch;
  acked_seq_ = 0;
  rvtnc_.store(checkpoint.vtnc, std::memory_order_release);
  needs_resync_.store(false, std::memory_order_release);
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  SimObserve(this, "repl.resync", epoch, checkpoint.vtnc);
}

std::pair<uint64_t, uint64_t> Replica::AckedUpTo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {acked_epoch_, acked_seq_};
}

size_t Replica::ApplyOnce() {
  SimSchedulePoint("repl.apply");
  size_t applied = 0;
  uint64_t ack_epoch = 0;
  uint64_t ack_seq = 0;
  bool want_ack = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (needs_resync_.load(std::memory_order_relaxed)) {
      // Crashed and not yet re-seeded: anything delivered is from a dead
      // incarnation.
      inbox_.clear();
      reorder_.clear();
      return 0;
    }
    // Stage deliveries: wrong-epoch records are leftovers from before a
    // resync; seq below next_seq_ is a retransmitted duplicate.
    while (!inbox_.empty()) {
      ReplRecord rec = std::move(inbox_.front());
      inbox_.pop_front();
      if (rec.epoch != epoch_ || rec.seq < next_seq_) continue;
      reorder_.emplace(rec.seq, std::move(rec));
    }
    // Apply the contiguous prefix, in dense seq order == tn order. A hole
    // in the sequence (dropped or delayed record) stops the loop: later
    // records wait in reorder_, so a gap can delay visibility but never
    // produce a snapshot that is missing a committed batch.
    for (auto it = reorder_.begin();
         it != reorder_.end() && it->first == next_seq_;
         it = reorder_.erase(it), ++next_seq_) {
      const ReplRecord& rec = it->second;
      if (rec.has_batch) {
        // One epoch pin per batch: the installs' index probes and any
        // chain republishes all nest under it.
        EpochGuard epoch_guard;
        for (const LoggedWrite& write : rec.batch.writes) {
          store_->GetOrCreate(write.key)->Install(
              Version{rec.batch.tn, write.value, rec.batch.txn});
        }
        batches_applied_.fetch_add(1, std::memory_order_relaxed);
      }
      // The horizon becomes visible only after the whole batch installed:
      // a reader beginning between two Installs still snapshots at the
      // previous horizon and cannot see a torn batch.
      rvtnc_.store(rec.horizon, std::memory_order_release);
      applied_seq_ = rec.seq;
      records_applied_.fetch_add(1, std::memory_order_relaxed);
      ++applied;
      SimObserve(this, "repl.applied", rec.seq, rec.horizon);
    }
    // Cumulative ack; re-sent while the stream's view lags (a dropped ack
    // must not wedge retransmission forever).
    if (applied_seq_ > acked_seq_ || acked_epoch_ != epoch_) {
      want_ack = true;
      ack_epoch = epoch_;
      ack_seq = applied_seq_;
    }
  }
  // The network send yields to the simulated scheduler; never hold mu_
  // across it (Deliver runs on the shipper task).
  if (want_ack &&
      network_->Send(MessageType::kReplAck, site_id(), /*to_site=*/0)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_ == ack_epoch) {
      acked_epoch_ = ack_epoch;
      acked_seq_ = std::max(acked_seq_, ack_seq);
    }
  }
  return applied;
}

void Replica::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::make_shared<ObjectStore>();
  inbox_.clear();
  reorder_.clear();
  next_seq_ = 1;
  applied_seq_ = 0;
  rvtnc_.store(0, std::memory_order_release);
  needs_resync_.store(true, std::memory_order_release);
  crashes_.fetch_add(1, std::memory_order_relaxed);
  SimObserve(this, "repl.crash", epoch_, 0);
}

ReplicaReadTxn Replica::BeginReadOnly() {
  std::shared_ptr<ObjectStore> store;
  TxnNumber sn = 0;
  {
    // (store, rvtnc) must be read coherently: Crash() resets both under
    // mu_, and a reader pairing the NEW empty store with the OLD horizon
    // would see objects vanish below its snapshot.
    std::lock_guard<std::mutex> lock(mu_);
    store = store_;
    sn = rvtnc_.load(std::memory_order_relaxed);
  }
  const TxnId id = (static_cast<TxnId>(replica_id_ + 1) << 48) |
                   next_reader_id_.fetch_add(1, std::memory_order_relaxed);
  return ReplicaReadTxn(std::move(store), sn, id, history_);
}

Result<VersionRead> Replica::SnapshotRead(TxnNumber sn, ObjectKey key) const {
  std::shared_ptr<ObjectStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = store_;
  }
  EpochGuard epoch_guard;
  VersionChain* chain = store->Find(key);
  if (chain == nullptr) return Status::NotFound("no such key on replica");
  return chain->Read(sn);
}

ReplicaReadTxn::~ReplicaReadTxn() = default;

Result<Value> ReplicaReadTxn::Read(ObjectKey key) {
  SimSchedulePoint("repl.read");
  // Replica reads are wait-free end to end: epoch pin, latch-free index
  // probe, latch-free chain read — same discipline as the primary.
  EpochGuard epoch_guard;
  VersionChain* chain = store_->Find(key);
  if (chain == nullptr) {
    return Status::NotFound("key not visible at replica snapshot");
  }
  Result<VersionRead> read = chain->Read(sn_);
  if (!read.ok()) return read.status();
  reads_.push_back(RecordedRead{key, read->version, read->writer});
  return std::move(read->value);
}

Result<std::vector<std::pair<ObjectKey, Value>>> ReplicaReadTxn::Scan(
    ObjectKey lo, ObjectKey hi) {
  SimSchedulePoint("repl.read");
  EpochGuard epoch_guard;
  std::vector<std::pair<ObjectKey, Value>> out;
  for (ObjectKey key : store_->KeysInRange(lo, hi)) {
    VersionChain* chain = store_->Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->Read(sn_);
    if (!read.ok()) continue;  // object born after this snapshot
    reads_.push_back(RecordedRead{key, read->version, read->writer});
    out.emplace_back(key, std::move(read->value));
  }
  return out;
}

void ReplicaReadTxn::Commit() {
  if (finished_) return;
  finished_ = true;
  if (history_ == nullptr) return;
  TxnRecord record;
  record.id = id_;
  record.cls = TxnClass::kReadOnly;
  record.number = sn_;
  record.reads = std::move(reads_);
  history_->Record(std::move(record));
}

void ReplicaReadTxn::Abort() { finished_ = true; }

}  // namespace repl
}  // namespace mvcc
