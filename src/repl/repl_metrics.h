#ifndef MVCC_REPL_REPL_METRICS_H_
#define MVCC_REPL_REPL_METRICS_H_

#include <vector>

#include "repl/read_router.h"
#include "repl/replica.h"
#include "repl/replication_stream.h"
#include "workload/metrics.h"

namespace mvcc {
namespace repl {

// Snapshots the counters of a whole replication deployment into the
// workload-layer ReplicationStats. `router` may be null (no read
// routing in the run); `seconds` scales the derived rates.
ReplicationStats CollectReplicationStats(const ReplicationStream& stream,
                                         const std::vector<Replica*>& replicas,
                                         const ReadRouter* router,
                                         double seconds = 0.0);

}  // namespace repl
}  // namespace mvcc

#endif  // MVCC_REPL_REPL_METRICS_H_
