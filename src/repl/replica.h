#ifndef MVCC_REPL_REPLICA_H_
#define MVCC_REPL_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "dist/network.h"
#include "history/history.h"
#include "recovery/checkpoint.h"
#include "recovery/log_record.h"
#include "storage/object_store.h"

namespace mvcc {
namespace repl {

// One shipped replication record. The stream assigns a dense per-epoch
// sequence number in tn order, so "apply in seq order" equals "apply in
// tn order" and a missing seq is a detected gap, never a silent skip.
struct ReplRecord {
  uint64_t epoch = 0;     // resync generation; stale epochs are ignored
  uint64_t seq = 0;       // dense per-epoch sequence (1, 2, 3, ...)
  // After applying this record and every earlier seq, the replica may
  // serve read-only snapshots at sn = horizon: the primary guarantees no
  // committed batch with tn <= horizon is missing (the WAL is appended
  // before VCcomplete, and batches ship in tn order).
  TxnNumber horizon = 0;
  bool has_batch = false;
  CommitBatch batch;
};

class ReplicaReadTxn;

// A read-only replica site: its own object store fed exclusively by
// applied CommitBatches, plus a replica visibility horizon `rvtnc` — the
// distributed analogue of VCstart. Read-only transactions take
// sn = rvtnc and read version chains directly: no locks, no registration,
// no message to the primary, and (as on the primary, Figure 2) they can
// never block, abort, or be aborted.
//
// Thread-safety: Deliver() (shipper thread) and ApplyOnce() (applier
// thread) synchronize on an internal mutex; BeginReadOnly() may be called
// from any number of reader threads concurrently. Crash()/Resync() swap
// in a fresh store — in-flight readers keep a shared_ptr to the old store
// and finish against their original snapshot.
class Replica {
 public:
  // `replica_id` is zero-based; on the SimulatedNetwork the primary is
  // site 0 and this replica is site replica_id + 1. `history` (optional)
  // receives the TxnRecords of replica-served read-only transactions so
  // the MVSG oracle can check one-copy serializability over the merged
  // primary + replica history.
  Replica(int replica_id, SimulatedNetwork* network, History* history);
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int replica_id() const { return replica_id_; }
  int site_id() const { return replica_id_ + 1; }

  // ---- transport-facing interface (called by ReplicationStream) ----

  // Enqueues one shipped record (called after a successful network Send).
  void Deliver(const ReplRecord& record);

  // Re-seeds the replica from a primary checkpoint at stream epoch
  // `epoch`: fresh store holding the checkpoint image, rvtnc =
  // checkpoint.vtnc, sequence expectations reset. Also the bootstrap path
  // for a brand-new replica.
  void Resync(const Checkpoint& checkpoint, uint64_t epoch);

  // Cumulative acknowledgement the stream last received: (epoch, seq).
  // Updated only after a kReplAck message was actually delivered.
  std::pair<uint64_t, uint64_t> AckedUpTo() const;

  // ---- apply loop ----

  // Applies every contiguously-deliverable record (gap detection: a
  // record whose seq is not the next expected one waits in a reorder
  // buffer), advances rvtnc, and sends a cumulative kReplAck to the
  // primary. Returns the number of records applied.
  size_t ApplyOnce();

  // ---- failure injection ----

  // Loses all volatile state (store, horizon, reorder buffer). The
  // replica refuses routing until the stream re-seeds it via Resync.
  void Crash();
  bool NeedsResync() const {
    return needs_resync_.load(std::memory_order_acquire);
  }
  // A replica is serviceable once seeded and not crashed.
  bool Serviceable() const { return !NeedsResync(); }

  // ---- read-only serving ----

  // Replica visibility horizon rvtnc: the largest tn such that every
  // committed batch with tn <= rvtnc has been applied here.
  TxnNumber Horizon() const { return rvtnc_.load(std::memory_order_acquire); }

  // Begins a read-only transaction at sn = rvtnc.
  ReplicaReadTxn BeginReadOnly();

  // Direct snapshot read at `sn` (convergence checks, tests).
  Result<VersionRead> SnapshotRead(TxnNumber sn, ObjectKey key) const;

  // ---- metrics ----

  uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  uint64_t resyncs() const {
    return resyncs_.load(std::memory_order_relaxed);
  }

 private:
  friend class ReplicaReadTxn;

  const int replica_id_;
  SimulatedNetwork* const network_;
  History* const history_;

  mutable std::mutex mu_;
  std::shared_ptr<ObjectStore> store_;  // swapped by Crash/Resync
  std::deque<ReplRecord> inbox_;
  std::map<uint64_t, ReplRecord> reorder_;  // seq -> record, seq > applied
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 1;       // next seq to apply
  uint64_t applied_seq_ = 0;    // highest contiguously applied seq
  uint64_t acked_epoch_ = 0;    // last ack actually delivered
  uint64_t acked_seq_ = 0;

  std::atomic<TxnNumber> rvtnc_{0};
  std::atomic<bool> needs_resync_{true};  // starts unseeded

  // Replica reader ids live far above any primary TxnId so merged
  // histories never collide.
  std::atomic<uint64_t> next_reader_id_{1};

  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> resyncs_{0};
};

// A read-only transaction served entirely by one replica. Wait-free by
// construction: every operation is a direct version-chain read at a fixed
// snapshot. Movable value type; Commit() records the transaction into the
// shared history (if any).
class ReplicaReadTxn {
 public:
  ReplicaReadTxn(ReplicaReadTxn&&) = default;
  ReplicaReadTxn& operator=(ReplicaReadTxn&&) = default;
  ~ReplicaReadTxn();

  // Largest version <= sn of `key` (the read rule of Figure 2).
  Result<Value> Read(ObjectKey key);

  // Snapshot range scan over [lo, hi]; phantom-free for free.
  Result<std::vector<std::pair<ObjectKey, Value>>> Scan(ObjectKey lo,
                                                        ObjectKey hi);

  // end(T) = phi: records the history entry, nothing else.
  void Commit();
  // Ends without recording.
  void Abort();

  TxnId id() const { return id_; }
  TxnNumber snapshot() const { return sn_; }
  bool active() const { return !finished_; }

 private:
  friend class Replica;
  ReplicaReadTxn(std::shared_ptr<ObjectStore> store, TxnNumber sn, TxnId id,
                 History* history)
      : store_(std::move(store)), sn_(sn), id_(id), history_(history) {}

  std::shared_ptr<ObjectStore> store_;  // pins the snapshot across Crash()
  TxnNumber sn_ = 0;
  TxnId id_ = 0;
  History* history_ = nullptr;
  std::vector<RecordedRead> reads_;
  bool finished_ = false;
};

}  // namespace repl
}  // namespace mvcc

#endif  // MVCC_REPL_REPLICA_H_
