#include "repl/read_router.h"

#include <limits>

#include "common/sim_hook.h"

namespace mvcc {
namespace repl {

Result<Value> RoutedReadTxn::Read(ObjectKey key) {
  if (replica_txn_) return replica_txn_->Read(key);
  return primary_txn_->Read(key);
}

Result<std::vector<std::pair<ObjectKey, Value>>> RoutedReadTxn::Scan(
    ObjectKey lo, ObjectKey hi) {
  if (replica_txn_) return replica_txn_->Scan(lo, hi);
  return primary_txn_->Scan(lo, hi);
}

void RoutedReadTxn::Commit() {
  if (replica_txn_) {
    replica_txn_->Commit();
  } else {
    primary_txn_->Commit();  // read-only: cannot fail ("end(T): phi")
  }
}

void RoutedReadTxn::Abort() {
  if (replica_txn_) {
    replica_txn_->Abort();
  } else {
    primary_txn_->Abort();
  }
}

TxnNumber RoutedReadTxn::snapshot() const {
  return replica_txn_ ? replica_txn_->snapshot()
                      : primary_txn_->start_number();
}

ReadRouter::ReadRouter(Database* primary, std::vector<Replica*> replicas,
                       TxnNumber staleness_budget)
    : primary_(primary),
      replicas_(std::move(replicas)),
      staleness_budget_(staleness_budget) {}

RoutedReadTxn ReadRouter::Route(TxnNumber floor) {
  SimSchedulePoint("repl.route");
  const TxnNumber vtnc = primary_->version_control().vtnc();
  const size_t n = replicas_.size();
  size_t best = n;
  TxnNumber best_lag = std::numeric_limits<TxnNumber>::max();
  // Scanning from a rotating offset makes the strict `<` below a
  // round-robin tie-break: equally-caught-up replicas take turns, so
  // read throughput scales with replica count instead of pinning every
  // reader to replica 0.
  const size_t offset =
      n == 0 ? 0 : rr_.fetch_add(1, std::memory_order_relaxed) % n;
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (offset + k) % n;
    Replica* replica = replicas_[i];
    if (!replica->Serviceable()) continue;  // crashed / not yet seeded
    const TxnNumber horizon = replica->Horizon();
    if (horizon < floor) continue;  // cannot satisfy the currency demand
    const TxnNumber lag = vtnc > horizon ? vtnc - horizon : 0;
    if (lag > staleness_budget_) continue;
    if (lag < best_lag) {
      best = i;
      best_lag = lag;
    }
  }
  if (best < n) {
    to_replica_.fetch_add(1, std::memory_order_relaxed);
    TxnNumber seen = max_lag_.load(std::memory_order_relaxed);
    while (best_lag > seen &&
           !max_lag_.compare_exchange_weak(seen, best_lag,
                                           std::memory_order_relaxed)) {
    }
    return RoutedReadTxn(replicas_[best]->BeginReadOnly(),
                         replicas_[best]->replica_id());
  }
  to_primary_.fetch_add(1, std::memory_order_relaxed);
  if (floor > 0) {
    return RoutedReadTxn(primary_->BeginReadOnlyAtLeast(floor));
  }
  return RoutedReadTxn(primary_->Begin(TxnClass::kReadOnly));
}

RoutedReadTxn ReadRouter::Begin() { return Route(/*floor=*/0); }

RoutedReadTxn ReadRouter::BeginAtLeast(TxnNumber at_least) {
  return Route(at_least);
}

}  // namespace repl
}  // namespace mvcc
