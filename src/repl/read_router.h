#ifndef MVCC_REPL_READ_ROUTER_H_
#define MVCC_REPL_READ_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "repl/replica.h"
#include "txn/database.h"

namespace mvcc {
namespace repl {

// A read-only transaction placed by the ReadRouter: either replica-served
// (wrapping a ReplicaReadTxn) or primary-served (wrapping an ordinary
// Transaction in read-only class). Same read rule either way — largest
// version <= snapshot — so callers never care where they landed, except
// through the metrics.
class RoutedReadTxn {
 public:
  RoutedReadTxn(RoutedReadTxn&&) = default;
  RoutedReadTxn& operator=(RoutedReadTxn&&) = default;

  Result<Value> Read(ObjectKey key);
  Result<std::vector<std::pair<ObjectKey, Value>>> Scan(ObjectKey lo,
                                                        ObjectKey hi);
  void Commit();
  void Abort();

  TxnNumber snapshot() const;
  bool on_replica() const { return replica_txn_.has_value(); }
  // Which replica served this transaction; -1 when primary-served.
  int replica_id() const { return replica_id_; }

 private:
  friend class ReadRouter;
  explicit RoutedReadTxn(ReplicaReadTxn txn, int replica_id)
      : replica_txn_(std::move(txn)), replica_id_(replica_id) {}
  explicit RoutedReadTxn(std::unique_ptr<Transaction> txn)
      : primary_txn_(std::move(txn)) {}

  std::optional<ReplicaReadTxn> replica_txn_;
  std::unique_ptr<Transaction> primary_txn_;
  int replica_id_ = -1;
};

// Routes read-only transactions to the least-lagged serviceable replica
// whose staleness (vtnc - rvtnc, in transaction numbers) fits within
// `staleness_budget`; ties broken round-robin so caught-up replicas share
// the read load. Falls back to the primary when no replica qualifies —
// the answer is then exact but spends primary capacity.
//
// Routing is wait-free: one vtnc load plus one horizon load per replica,
// no locks, no messages, and the placed transaction never blocks either
// (replica reads are pure snapshot reads; primary read-only transactions
// are wait-free by Figure 2).
class ReadRouter {
 public:
  ReadRouter(Database* primary, std::vector<Replica*> replicas,
             TxnNumber staleness_budget);

  RoutedReadTxn Begin();

  // A read-only transaction that must observe the effects of transaction
  // number `at_least` (the Section 6 currency fix). Served by a replica
  // already at or past that horizon if one qualifies; otherwise by the
  // primary, waiting there if vtnc itself lags.
  RoutedReadTxn BeginAtLeast(TxnNumber at_least);

  uint64_t reads_to_replica() const {
    return to_replica_.load(std::memory_order_relaxed);
  }
  uint64_t reads_to_primary() const {
    return to_primary_.load(std::memory_order_relaxed);
  }
  // Largest staleness (vtnc - rvtnc) observed for any replica-served
  // transaction at routing time.
  TxnNumber max_served_lag() const {
    return max_lag_.load(std::memory_order_relaxed);
  }
  TxnNumber staleness_budget() const { return staleness_budget_; }

 private:
  RoutedReadTxn Route(TxnNumber floor);

  Database* const primary_;
  std::vector<Replica*> replicas_;
  const TxnNumber staleness_budget_;
  std::atomic<uint64_t> rr_{0};  // round-robin tie-break cursor
  std::atomic<uint64_t> to_replica_{0};
  std::atomic<uint64_t> to_primary_{0};
  std::atomic<TxnNumber> max_lag_{0};
};

}  // namespace repl
}  // namespace mvcc

#endif  // MVCC_REPL_READ_ROUTER_H_
