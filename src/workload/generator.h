#ifndef MVCC_WORKLOAD_GENERATOR_H_
#define MVCC_WORKLOAD_GENERATOR_H_

#include <string>

#include "common/random.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace mvcc {

// Deterministic per-thread transaction planner. Two generators built from
// the same spec and seed produce identical plans, which keeps property
// tests and experiments reproducible.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadSpec& spec, uint64_t stream);

  // Plans the next transaction.
  TxnPlan Next();

  // A write payload of spec.value_size bytes derived from `tag`.
  Value MakeValue(uint64_t tag) const;

 private:
  WorkloadSpec spec_;
  Random rng_;
  ZipfGenerator zipf_;
};

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_GENERATOR_H_
