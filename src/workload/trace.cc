#include "workload/trace.h"

#include <cstring>
#include <thread>

#include "common/clock.h"
#include "workload/generator.h"

namespace mvcc {

namespace {

constexpr uint64_t kMagic = 0x4D56434354523031ULL;  // "MVCCTR01"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

std::string Trace::Serialize() const {
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, threads.size());
  for (const auto& plans : threads) {
    PutU64(&out, plans.size());
    for (const TxnPlan& plan : plans) {
      PutU64(&out, plan.cls == TxnClass::kReadOnly ? 1 : 0);
      PutU64(&out, plan.ops.size());
      for (const PlannedOp& op : plan.ops) {
        PutU64(&out, (op.is_write ? 1u : 0u) | (op.is_scan ? 2u : 0u));
        PutU64(&out, op.key);
        PutU64(&out, op.span);
      }
    }
  }
  return out;
}

Result<Trace> Trace::Deserialize(const std::string& image) {
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad trace image magic");
  }
  Trace trace;
  uint64_t num_threads = 0;
  if (!GetU64(image, &pos, &num_threads)) {
    return Status::InvalidArgument("truncated trace header");
  }
  trace.threads.resize(num_threads);
  for (auto& plans : trace.threads) {
    uint64_t num_plans = 0;
    if (!GetU64(image, &pos, &num_plans)) {
      return Status::InvalidArgument("truncated trace (plan count)");
    }
    plans.resize(num_plans);
    for (TxnPlan& plan : plans) {
      uint64_t ro = 0, num_ops = 0;
      if (!GetU64(image, &pos, &ro) || !GetU64(image, &pos, &num_ops)) {
        return Status::InvalidArgument("truncated trace (plan header)");
      }
      plan.cls = ro != 0 ? TxnClass::kReadOnly : TxnClass::kReadWrite;
      plan.ops.resize(num_ops);
      for (PlannedOp& op : plan.ops) {
        uint64_t flags = 0;
        if (!GetU64(image, &pos, &flags) ||
            !GetU64(image, &pos, &op.key) ||
            !GetU64(image, &pos, &op.span)) {
          return Status::InvalidArgument("truncated trace (op)");
        }
        op.is_write = (flags & 1) != 0;
        op.is_scan = (flags & 2) != 0;
      }
    }
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes in trace image");
  }
  return trace;
}

Trace Trace::Generate(const WorkloadSpec& spec, int threads,
                      uint64_t txns_per_thread) {
  Trace trace;
  trace.threads.resize(threads < 1 ? 1 : threads);
  for (size_t t = 0; t < trace.threads.size(); ++t) {
    WorkloadGenerator gen(spec, t + 1);
    trace.threads[t].reserve(txns_per_thread);
    for (uint64_t i = 0; i < txns_per_thread; ++i) {
      trace.threads[t].push_back(gen.Next());
    }
  }
  return trace;
}

RunResult ReplayTrace(Database* db, const Trace& trace) {
  struct ThreadResult {
    uint64_t committed_ro = 0, committed_rw = 0;
    uint64_t aborted_ro = 0, aborted_rw = 0;
    Histogram ro_latency, rw_latency;
  };
  std::vector<ThreadResult> results(trace.threads.size());
  const int64_t start_ns = NowNanos();
  std::vector<std::thread> workers;
  workers.reserve(trace.threads.size());
  for (size_t t = 0; t < trace.threads.size(); ++t) {
    workers.emplace_back([db, &trace, &results, t] {
      ThreadResult& local = results[t];
      for (const TxnPlan& plan : trace.threads[t]) {
        const int64_t begin = NowNanos();
        auto txn = db->Begin(plan.cls);
        bool dead = false;
        for (const PlannedOp& op : plan.ops) {
          if (op.is_scan) {
            auto rows =
                txn->Scan(op.key, op.key + (op.span ? op.span - 1 : 0));
            dead = !rows.ok() && rows.status().IsAborted();
          } else if (op.is_write) {
            dead = !txn->Write(op.key, std::to_string(op.key)).ok();
          } else {
            auto r = txn->Read(op.key);
            dead = !r.ok() && r.status().IsAborted();
          }
          if (dead) break;
        }
        const bool ok = !dead && txn->Commit().ok();
        const int64_t elapsed = NowNanos() - begin;
        const bool ro = plan.cls == TxnClass::kReadOnly;
        if (ok) {
          (ro ? local.committed_ro : local.committed_rw) += 1;
          (ro ? local.ro_latency : local.rw_latency).Add(elapsed);
        } else {
          (ro ? local.aborted_ro : local.aborted_rw) += 1;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult out;
  out.seconds = static_cast<double>(NowNanos() - start_ns) / 1e9;
  for (const ThreadResult& r : results) {
    out.committed_ro += r.committed_ro;
    out.committed_rw += r.committed_rw;
    out.aborted_ro += r.aborted_ro;
    out.aborted_rw += r.aborted_rw;
    out.ro_latency.Merge(r.ro_latency);
    out.rw_latency.Merge(r.rw_latency);
  }
  out.events = db->counters().Snap();
  return out;
}

}  // namespace mvcc
