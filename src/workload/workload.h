#ifndef MVCC_WORKLOAD_WORKLOAD_H_
#define MVCC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace mvcc {

// Parameters of a synthetic transaction mix. This is the substitute for
// the paper's (nonexistent) published workload: it exercises exactly the
// code paths the paper's claims are about — read-only snapshot reads vs.
// read-write conflicts under a skewed key distribution.
struct WorkloadSpec {
  uint64_t num_keys = 10000;

  // Zipfian skew over keys; 0 = uniform.
  double zipf_theta = 0.0;

  // Fraction of transactions declared read-only at begin.
  double read_only_fraction = 0.3;

  // Operations per read-only transaction (all reads).
  int ro_ops = 8;

  // Operations per read-write transaction.
  int rw_ops = 8;

  // Probability that a read-write transaction's operation is a write.
  double write_fraction = 0.5;

  // Probability that a transaction operation is a range scan (read-only
  // transactions always support them; read-write scans run where the
  // protocol offers phantom-safe scans and are skipped elsewhere).
  double scan_fraction = 0.0;

  // Width of generated scan ranges.
  int scan_span = 16;

  // Payload size in bytes for written values.
  int value_size = 8;

  uint64_t seed = 42;

  std::string Describe() const;
};

// One planned operation.
struct PlannedOp {
  bool is_write = false;
  bool is_scan = false;   // scan [key, key + span - 1]
  ObjectKey key = 0;
  ObjectKey span = 0;
};

// One planned transaction.
struct TxnPlan {
  TxnClass cls = TxnClass::kReadWrite;
  std::vector<PlannedOp> ops;
};

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_WORKLOAD_H_
