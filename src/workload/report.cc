#include "workload/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

namespace mvcc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {

// Quotes a CSV cell when it contains separators or quotes.
std::string CsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << CsvCell(row[i]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void Table::Print(std::ostream& os) const {
  const char* csv = std::getenv("MVCC_BENCH_CSV");
  if (csv != nullptr && csv[0] == '1') {
    PrintCsv(os);
    return;
  }
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
         << row[i] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << ' ' << std::string(w, '-') << " |";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

namespace {

// True when the whole cell is one JSON-representable number (what
// Table::Num produces); such cells are emitted unquoted.
bool IsJsonNumber(const std::string& cell) {
  if (cell.empty()) return false;
  size_t pos = 0;
  if (cell[0] == '-') pos = 1;
  bool digits = false, dot = false;
  for (; pos < cell.size(); ++pos) {
    const char c = cell[pos];
    if (c >= '0' && c <= '9') {
      digits = true;
    } else if (c == '.' && !dot && digits) {
      dot = true;
    } else {
      return false;
    }
  }
  // "1." is not valid JSON.
  return digits && cell.back() != '.';
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintJson(std::ostream& os) const {
  os << "[\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (size_t i = 0; i < headers_.size(); ++i) {
      if (i != 0) os << ", ";
      const std::string& cell = rows_[r][i];
      os << JsonString(headers_[i]) << ": "
         << (IsJsonNumber(cell) ? cell : JsonString(cell));
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  os.flush();
}

bool Table::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  PrintJson(out);
  return static_cast<bool>(out);
}

std::string Table::Num(uint64_t v) { return std::to_string(v); }

std::string Table::Num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::Bool(bool v) { return v ? "yes" : "no"; }

}  // namespace mvcc
