#include "workload/report.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <utility>

namespace mvcc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {

// Quotes a CSV cell when it contains separators or quotes.
std::string CsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << CsvCell(row[i]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void Table::Print(std::ostream& os) const {
  const char* csv = std::getenv("MVCC_BENCH_CSV");
  if (csv != nullptr && csv[0] == '1') {
    PrintCsv(os);
    return;
  }
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
         << row[i] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << ' ' << std::string(w, '-') << " |";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string Table::Num(uint64_t v) { return std::to_string(v); }

std::string Table::Num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::Bool(bool v) { return v ? "yes" : "no"; }

}  // namespace mvcc
