#ifndef MVCC_WORKLOAD_RUNNER_H_
#define MVCC_WORKLOAD_RUNNER_H_

#include <cstdint>

#include "txn/database.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mvcc {

// Execution parameters of a workload run.
struct RunOptions {
  int threads = 4;

  // Run until this many milliseconds elapse, unless txns_per_thread > 0,
  // in which case each thread runs exactly that many transactions.
  int duration_ms = 1000;
  uint64_t txns_per_thread = 0;

  // Sample the visibility lag (VCQueue length) every N committed
  // transactions on thread 0; 0 disables sampling.
  uint64_t lag_sample_every = 0;
};

// Runs `spec` against `db` with real OS threads. Aborted transactions are
// counted and the thread moves on to a fresh plan (no retry of the same
// plan, so measured throughput is committed work).
RunResult RunWorkload(Database* db, const WorkloadSpec& spec,
                      const RunOptions& options);

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_RUNNER_H_
