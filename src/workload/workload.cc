#include "workload/workload.h"

#include <sstream>

namespace mvcc {

std::string WorkloadSpec::Describe() const {
  std::ostringstream os;
  os << "keys=" << num_keys << " zipf=" << zipf_theta
     << " ro_frac=" << read_only_fraction << " ro_ops=" << ro_ops
     << " rw_ops=" << rw_ops << " write_frac=" << write_fraction
     << " scan_frac=" << scan_fraction << " seed=" << seed;
  return os.str();
}

}  // namespace mvcc
