#include "workload/runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "workload/generator.h"

namespace mvcc {

namespace {

struct ThreadResult {
  uint64_t committed_ro = 0;
  uint64_t committed_rw = 0;
  uint64_t aborted_ro = 0;
  uint64_t aborted_rw = 0;
  Histogram ro_latency;
  Histogram rw_latency;
  Histogram lag_samples;
};

// Executes one planned transaction; returns true when it committed.
bool ExecutePlan(Database* db, WorkloadGenerator* gen, const TxnPlan& plan) {
  auto txn = db->Begin(plan.cls);
  for (const PlannedOp& op : plan.ops) {
    if (op.is_scan) {
      auto rows = txn->Scan(op.key, op.key + (op.span ? op.span - 1 : 0));
      if (!rows.ok() && rows.status().IsAborted()) return false;
      // InvalidArgument (protocol without scans) and empty results are
      // tolerated: the op degrades to a no-op.
    } else if (op.is_write) {
      Status s = txn->Write(op.key, gen->MakeValue(op.key ^ txn->id()));
      if (!s.ok()) return false;
    } else {
      Result<Value> v = txn->Read(op.key);
      if (!v.ok() && v.status().IsAborted()) return false;
      // NotFound (no visible version yet) is tolerated: the transaction
      // simply observed the object's absence.
    }
  }
  return txn->Commit().ok();
}

}  // namespace

RunResult RunWorkload(Database* db, const WorkloadSpec& spec,
                      const RunOptions& options) {
  const int threads = options.threads < 1 ? 1 : options.threads;
  std::vector<ThreadResult> results(threads);
  std::atomic<bool> stop{false};

  const int64_t start_ns = NowNanos();
  const int64_t deadline_ns =
      start_ns + static_cast<int64_t>(options.duration_ms) * 1000000;

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      WorkloadGenerator gen(spec, static_cast<uint64_t>(t) + 1);
      ThreadResult& local = results[t];
      uint64_t executed = 0;
      while (true) {
        if (options.txns_per_thread > 0) {
          if (executed >= options.txns_per_thread) break;
        } else if (stop.load(std::memory_order_relaxed)) {
          break;
        }
        const TxnPlan plan = gen.Next();
        const int64_t begin = NowNanos();
        const bool ok = ExecutePlan(db, &gen, plan);
        const int64_t elapsed = NowNanos() - begin;
        ++executed;
        const bool ro = plan.cls == TxnClass::kReadOnly;
        if (ok) {
          (ro ? local.committed_ro : local.committed_rw) += 1;
          (ro ? local.ro_latency : local.rw_latency).Add(elapsed);
        } else {
          (ro ? local.aborted_ro : local.aborted_rw) += 1;
        }
        if (t == 0 && options.lag_sample_every > 0 &&
            executed % options.lag_sample_every == 0) {
          local.lag_samples.Add(
              static_cast<int64_t>(db->VisibilityLag()));
        }
        if (options.txns_per_thread == 0 && (executed & 0x3F) == 0 &&
            NowNanos() >= deadline_ns) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const int64_t end_ns = NowNanos();

  RunResult out;
  out.seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  for (const ThreadResult& r : results) {
    out.committed_ro += r.committed_ro;
    out.committed_rw += r.committed_rw;
    out.aborted_ro += r.aborted_ro;
    out.aborted_rw += r.aborted_rw;
    out.ro_latency.Merge(r.ro_latency);
    out.rw_latency.Merge(r.rw_latency);
    out.lag_samples.Merge(r.lag_samples);
  }
  out.events = db->counters().Snap();
  return out;
}

}  // namespace mvcc
