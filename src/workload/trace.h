#ifndef MVCC_WORKLOAD_TRACE_H_
#define MVCC_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "txn/database.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mvcc {

// A fully materialized multi-threaded workload: thread t executes
// threads[t] in order. Traces make protocol comparisons exactly
// apples-to-apples (every protocol sees the identical operation
// sequences) and make interesting schedules reproducible from a file.
struct Trace {
  std::vector<std::vector<TxnPlan>> threads;

  size_t TotalTxns() const {
    size_t total = 0;
    for (const auto& t : threads) total += t.size();
    return total;
  }

  // Length-prefixed binary image (same framing style as the WAL).
  std::string Serialize() const;
  static Result<Trace> Deserialize(const std::string& image);

  // Materializes `txns_per_thread` transactions per thread from the
  // deterministic generator.
  static Trace Generate(const WorkloadSpec& spec, int threads,
                        uint64_t txns_per_thread);
};

// Replays the trace against `db` with one OS thread per trace thread.
// Aborted transactions are counted and skipped (not retried), exactly
// like RunWorkload.
RunResult ReplayTrace(Database* db, const Trace& trace);

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_TRACE_H_
