#include "workload/generator.h"

#include <algorithm>

namespace mvcc {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec,
                                     uint64_t stream)
    : spec_(spec),
      rng_(spec.seed * 0x100000001B3ULL + stream),
      zipf_(spec.num_keys == 0 ? 1 : spec.num_keys, spec.zipf_theta) {}

TxnPlan WorkloadGenerator::Next() {
  TxnPlan plan;
  const bool read_only = rng_.Bernoulli(spec_.read_only_fraction);
  plan.cls = read_only ? TxnClass::kReadOnly : TxnClass::kReadWrite;
  const int ops = read_only ? spec_.ro_ops : spec_.rw_ops;
  plan.ops.reserve(ops);
  bool has_write = false;
  for (int i = 0; i < ops; ++i) {
    PlannedOp op;
    op.key = zipf_.Next(&rng_);
    if (rng_.Bernoulli(spec_.scan_fraction)) {
      op.is_scan = true;
      op.span = static_cast<ObjectKey>(
          spec_.scan_span > 0 ? spec_.scan_span : 1);
    } else {
      op.is_write = !read_only && rng_.Bernoulli(spec_.write_fraction);
    }
    has_write |= op.is_write;
    plan.ops.push_back(op);
  }
  // A read-write transaction executes at least one write action
  // (Section 4.1's classification); force the last op if none landed.
  if (!read_only && !has_write && !plan.ops.empty()) {
    PlannedOp& last = plan.ops.back();
    last.is_write = true;
    last.is_scan = false;
    last.span = 0;
  }
  return plan;
}

Value WorkloadGenerator::MakeValue(uint64_t tag) const {
  Value v(std::max(spec_.value_size, 1), 'v');
  for (size_t i = 0; i < v.size() && tag != 0; ++i, tag >>= 8) {
    v[i] = static_cast<char>('a' + (tag & 0x0F));
  }
  return v;
}

}  // namespace mvcc
