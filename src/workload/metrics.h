#ifndef MVCC_WORKLOAD_METRICS_H_
#define MVCC_WORKLOAD_METRICS_H_

#include <cstdint>
#include <string>

#include "common/counters.h"
#include "common/histogram.h"

namespace mvcc {

// Aggregated outcome of one workload run.
struct RunResult {
  uint64_t committed_ro = 0;
  uint64_t committed_rw = 0;
  uint64_t aborted_ro = 0;
  uint64_t aborted_rw = 0;
  double seconds = 0.0;

  Histogram ro_latency;  // commit-to-begin latency of read-only txns (ns)
  Histogram rw_latency;

  EventCounters::Snapshot events{};

  // Visibility lag samples (VCQueue length), if the run sampled them.
  Histogram lag_samples;

  uint64_t committed() const { return committed_ro + committed_rw; }
  uint64_t aborted() const { return aborted_ro + aborted_rw; }
  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed()) / seconds : 0.0;
  }
  double AbortRate() const {
    const uint64_t attempts = committed() + aborted();
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborted()) / attempts;
  }
  double RwAbortRate() const {
    const uint64_t attempts = committed_rw + aborted_rw;
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborted_rw) / attempts;
  }

  // One-line summary for logs.
  std::string Summary() const;
};

// Aggregated outcome of one replication run (src/repl/): shipping-side,
// apply-side and routing-side counters plus the derived lag/rate figures
// reported by bench_replication. Collected by repl::CollectReplicationStats
// so this header stays free of replication types.
struct ReplicationStats {
  // Shipping (primary side).
  uint64_t records_shipped = 0;
  uint64_t retransmits = 0;
  uint64_t send_drops = 0;
  uint64_t resyncs = 0;

  // Apply (summed over replicas).
  uint64_t records_applied = 0;
  uint64_t batches_applied = 0;
  uint64_t replica_crashes = 0;

  // Routing.
  uint64_t reads_to_replica = 0;
  uint64_t reads_to_primary = 0;
  uint64_t max_served_lag = 0;  // worst vtnc - rvtnc served, in txns

  double seconds = 0.0;

  // Committed batches applied per second across all replicas.
  double ApplyRate() const {
    return seconds > 0 ? static_cast<double>(batches_applied) / seconds : 0.0;
  }
  // Share of read-only transactions the primary never saw.
  double ReplicaReadFraction() const {
    const uint64_t total = reads_to_replica + reads_to_primary;
    return total == 0 ? 0.0
                      : static_cast<double>(reads_to_replica) / total;
  }

  // One-line summary for logs.
  std::string Summary() const;
};

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_METRICS_H_
