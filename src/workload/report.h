#ifndef MVCC_WORKLOAD_REPORT_H_
#define MVCC_WORKLOAD_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mvcc {

// Plain-text aligned table, used by the benchmark harness to print the
// rows recorded in EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Aligned ASCII by default; set MVCC_BENCH_CSV=1 in the environment
  // (or call PrintCsv directly) to emit machine-readable CSV instead.
  void Print(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

  // JSON array of row objects keyed by the header strings. Cells that
  // parse fully as numbers are emitted as JSON numbers, everything else
  // as strings — so downstream tooling reads benchmark figures without
  // re-parsing.
  void PrintJson(std::ostream& os) const;

  // PrintJson to `path`; false (with the table intact) on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  // Cell formatting helpers.
  static std::string Num(uint64_t v);
  static std::string Num(double v, int decimals = 2);
  static std::string Bool(bool v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mvcc

#endif  // MVCC_WORKLOAD_REPORT_H_
