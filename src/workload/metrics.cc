#include "workload/metrics.h"

#include <sstream>

namespace mvcc {

std::string RunResult::Summary() const {
  std::ostringstream os;
  os << "commits=" << committed() << " (ro=" << committed_ro
     << " rw=" << committed_rw << ") aborts=" << aborted()
     << " thr=" << static_cast<uint64_t>(Throughput()) << "/s"
     << " ro_p50=" << ro_latency.Percentile(0.5) << "ns"
     << " rw_p50=" << rw_latency.Percentile(0.5) << "ns";
  return os.str();
}

std::string ReplicationStats::Summary() const {
  std::ostringstream os;
  os << "shipped=" << records_shipped << " retx=" << retransmits
     << " drops=" << send_drops << " resyncs=" << resyncs
     << " applied=" << batches_applied << " crashes=" << replica_crashes
     << " reads(replica=" << reads_to_replica
     << " primary=" << reads_to_primary << ") max_lag=" << max_served_lag;
  return os.str();
}

}  // namespace mvcc
