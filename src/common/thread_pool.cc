#include "common/thread_pool.h"

#include <utility>

namespace mvcc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> guard(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace mvcc
