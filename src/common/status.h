#ifndef MVCC_COMMON_STATUS_H_
#define MVCC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mvcc {

// Outcome categories for fallible operations. Transaction aborts are normal
// control flow in a concurrency-control library, so they get a dedicated
// code rather than being funneled through a generic error.
enum class StatusCode {
  kOk = 0,
  kAborted,         // Transaction was aborted (CC conflict, deadlock victim).
  kNotFound,        // Object or version does not exist.
  kInvalidArgument, // Caller misuse (e.g. write on a read-only transaction).
  kUnavailable,     // Resource temporarily unavailable (e.g. site down).
  kInternal,        // Invariant violation; indicates a bug.
  kDataLoss,        // Durable state lost or unverifiable (failed fsync,
                    // corrupt log record). Fail-stop: never retried.
  kResourceExhausted, // Out of a recoverable resource (disk full). The
                      // database degrades to read-only until space frees.
};

// Returns a stable human-readable name for `code`.
inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

// Value-semantic status carrying a code and an optional message.
// Modeled on the Arrow/Abseil idiom: cheap to copy in the OK case,
// explicit factories for each failure category.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Aborted(std::string message) {
    return Status(StatusCode::kAborted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mvcc

#endif  // MVCC_COMMON_STATUS_H_
