#ifndef MVCC_COMMON_IDS_H_
#define MVCC_COMMON_IDS_H_

#include <cstdint>
#include <limits>
#include <string>

namespace mvcc {

// Identifier of a database object (a logical data item `x` in the paper).
using ObjectKey = uint64_t;

// Value stored in a version. Strings keep the store general; benchmarks use
// short payloads so version-chain manipulation dominates, as intended.
using Value = std::string;

// Internal identifier of a transaction instance, assigned at begin().
// Distinct from the transaction number tn(T), which reflects serial order
// and is assigned by the version control module at registration time.
using TxnId = uint64_t;

// Transaction number / start number domain. tn(T) for read-write
// transactions; sn(T) for read-only transactions. Monotone, dense for
// read-write transactions (assigned from tnc).
using TxnNumber = uint64_t;

// Version number of an object version. Equals the tn of its creator.
using VersionNumber = uint64_t;

inline constexpr TxnNumber kInvalidTxnNumber = 0;

// sn(T) = infinity for read-write transactions under two-phase locking
// ("for uniformity", Figure 4): they always read the latest version.
inline constexpr TxnNumber kInfiniteTxnNumber =
    std::numeric_limits<TxnNumber>::max();

// Version number of a pending (uncommitted) version under 2PL before the
// writer is registered — the paper's version "phi" in Figure 4.
inline constexpr VersionNumber kPendingVersion = kInfiniteTxnNumber;

// Transaction classification, Section 4.1 of the paper. A transaction whose
// class is unknown a priori must be treated as read-write.
enum class TxnClass {
  kReadOnly,
  kReadWrite,
};

inline const char* TxnClassName(TxnClass c) {
  return c == TxnClass::kReadOnly ? "read-only" : "read-write";
}

}  // namespace mvcc

#endif  // MVCC_COMMON_IDS_H_
