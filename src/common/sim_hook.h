#ifndef MVCC_COMMON_SIM_HOOK_H_
#define MVCC_COMMON_SIM_HOOK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mvcc {

// Interception interface for deterministic schedule exploration
// (src/sim/). Production runs never install a hook, so every call site
// below reduces to one relaxed atomic load and a branch.
//
// The synchronization layers (version control, lock manager, timestamp
// tables, the distributed network, the write-ahead log) call into the
// installed hook at the points where thread interleaving matters:
//
//   SchedulePoint  - a named point where the simulated scheduler may
//                    switch to another task. Called OUTSIDE critical
//                    sections only: the running task must never be
//                    suspended while holding a mutex another task locks.
//   BlockedPoint   - the calling task cannot make progress until some
//                    other task acts (a would-be condition-variable
//                    sleep). Under simulation the task yields and will
//                    re-check its predicate when scheduled again.
//   Observe        - a synchronization event worth auditing (vtnc
//                    advance, queue drain). Never yields; safe to call
//                    under a lock. `source` disambiguates instances
//                    (e.g. per-site version control modules).
//
// Fault injection queries:
//
//   ShouldDropMessage / MessageDelaySteps - consulted by the simulated
//                    network per message.
//   OnWalAppend    - consulted by the write-ahead log before appending a
//                    commit record; returning true simulates a crash at
//                    that record boundary (the record and everything
//                    after it never reach the "disk").
//   OnEnvOp        - consulted by FaultyEnv (recovery/faulty_env.h)
//                    before each mutating file-system syscall; returning
//                    true simulates a whole-process crash at that
//                    syscall (it and everything after it never reaches
//                    the disk). `op` names the syscall ("append",
//                    "sync", ...), `index` is its 0-based position in
//                    the env's mutation order. Never yields; safe to
//                    call under a lock.
class SimHook {
 public:
  virtual ~SimHook() = default;

  virtual void SchedulePoint(const char* where) = 0;
  virtual void BlockedPoint(const char* where) = 0;
  virtual void Observe(const void* source, const char* what, uint64_t a,
                       uint64_t b) {
    (void)source;
    (void)what;
    (void)a;
    (void)b;
  }
  virtual bool ShouldDropMessage(int from_site, int to_site) {
    (void)from_site;
    (void)to_site;
    return false;
  }
  virtual uint32_t MessageDelaySteps(int from_site, int to_site) {
    (void)from_site;
    (void)to_site;
    return 0;
  }
  virtual bool OnWalAppend(uint64_t tn) {
    (void)tn;
    return false;
  }
  virtual bool OnEnvOp(const char* op, uint64_t index) {
    (void)op;
    (void)index;
    return false;
  }
};

// Global hook registration. At most one simulation runs per process at a
// time (the scheduler installs itself for the duration of a run).
void InstallSimHook(SimHook* hook);
SimHook* InstalledSimHook();

// ---- call-site helpers ----

inline void SimSchedulePoint(const char* where) {
  if (SimHook* hook = InstalledSimHook()) hook->SchedulePoint(where);
}

// For task bodies that poll cross-task state: yields as "blocked" so the
// scheduler's progress accounting sees the wait.
inline void SimBlockedPoint(const char* where) {
  if (SimHook* hook = InstalledSimHook()) hook->BlockedPoint(where);
}

inline void SimObserve(const void* source, const char* what, uint64_t a,
                       uint64_t b = 0) {
  if (SimHook* hook = InstalledSimHook()) hook->Observe(source, what, a, b);
}

// Drop-in replacement for one cv.wait(lock) iteration inside a
// re-check loop. Under simulation the task leaves the critical section
// and yields to the scheduler instead of sleeping on the condition
// variable — kernel wakeup order would be nondeterministic, so all
// blocking is turned into scheduler-controlled polling. Returns with
// `lock` re-held.
inline void SimAwareCvWait(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lock,
                           const char* where) {
  if (SimHook* hook = InstalledSimHook()) {
    lock.unlock();
    hook->BlockedPoint(where);
    lock.lock();
    return;
  }
  cv.wait(lock);
}

// Predicate form of the above (replaces cv.wait(lock, pred)).
template <typename Pred>
void SimAwareCvWait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lock, const char* where,
                    Pred pred) {
  while (!pred()) SimAwareCvWait(cv, lock, where);
}

}  // namespace mvcc

#endif  // MVCC_COMMON_SIM_HOOK_H_
