#ifndef MVCC_COMMON_CLOCK_H_
#define MVCC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace mvcc {

// Monotonic nanosecond clock for latency measurement.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Scoped stopwatch: accumulates elapsed nanoseconds into *sink.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_CLOCK_H_
