#ifndef MVCC_COMMON_THREAD_POOL_H_
#define MVCC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mvcc {

// Fixed-size worker pool used by the workload runner and the distributed
// simulation's asynchronous message delivery. Tasks are plain closures;
// Wait() blocks until the queue drains and all in-flight tasks finish.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  // Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_THREAD_POOL_H_
