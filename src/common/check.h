#ifndef MVCC_COMMON_CHECK_H_
#define MVCC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Always-on invariant check (unlike assert, which NDEBUG builds compile
// out). Used for invariants whose violation means corrupted
// synchronization state — continuing would silently return wrong data,
// so the process stops instead.
#define MVCC_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "MVCC_CHECK failed: %s at %s:%d\n",            \
                   #condition, __FILE__, __LINE__);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // MVCC_COMMON_CHECK_H_
