#ifndef MVCC_COMMON_RESULT_H_
#define MVCC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mvcc {

// A Status or a value of type T. The library does not use exceptions;
// every fallible value-returning operation returns Result<T>.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work,
  // matching the arrow::Result / absl::StatusOr convention.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  // Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_RESULT_H_
