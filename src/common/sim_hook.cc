#include "common/sim_hook.h"

namespace mvcc {

namespace {
std::atomic<SimHook*> g_sim_hook{nullptr};
}  // namespace

void InstallSimHook(SimHook* hook) {
  g_sim_hook.store(hook, std::memory_order_release);
}

SimHook* InstalledSimHook() {
  return g_sim_hook.load(std::memory_order_acquire);
}

}  // namespace mvcc
