#ifndef MVCC_COMMON_ZIPF_H_
#define MVCC_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "common/random.h"

namespace mvcc {

// Zipfian distribution over [0, n) with skew theta, using the Gray et al.
// rejection-free method (as popularized by YCSB). theta = 0 degenerates to
// uniform. Construction is O(n)-free: only the harmonic constants are
// precomputed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    if (theta_ <= 0.0) {
      uniform_ = true;
      return;
    }
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = Zeta(n_, theta_);
    const double zeta2 = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(Random* rng) const {
    if (uniform_) return rng->Uniform(n_);
    const double u = rng->NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  bool uniform_ = false;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_ZIPF_H_
