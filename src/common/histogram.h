#ifndef MVCC_COMMON_HISTOGRAM_H_
#define MVCC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mvcc {

// Fixed-layout log-scale histogram for latency samples (nanoseconds).
// Not thread-safe; each worker keeps its own and merges at the end.
class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void Add(int64_t value_ns) {
    if (value_ns < 0) value_ns = 0;
    ++count_;
    sum_ += value_ns;
    max_ = std::max(max_, value_ns);
    min_ = count_ == 1 ? value_ns : std::min(min_, value_ns);
    ++buckets_[BucketFor(value_ns)];
  }

  void Merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Approximate quantile (q in [0,1]) from bucket boundaries.
  int64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    int64_t target = static_cast<int64_t>(q * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      // Bucket bounds are powers of two; never report beyond the true max.
      if (seen > target) return std::min(BucketUpperBound(i), max_);
    }
    return max_;
  }

 private:
  // Buckets: [0,1), [1,2), [2,4), [4,8)... powers of two up to ~2^62 ns.
  static constexpr int kNumBuckets = 64;

  static int BucketFor(int64_t v) {
    if (v <= 0) return 0;
    const int bits = 64 - __builtin_clzll(static_cast<uint64_t>(v));
    return bits >= kNumBuckets ? kNumBuckets - 1 : bits;
  }

  static int64_t BucketUpperBound(int bucket) {
    if (bucket >= 63) return INT64_MAX;
    return int64_t{1} << bucket;
  }

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_HISTOGRAM_H_
