#include "common/epoch.h"

#include <thread>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/sim_hook.h"

namespace mvcc {

namespace {

// membarrier(2) command values (uapi); spelled out so the build does not
// depend on <linux/membarrier.h> being present.
constexpr int kMembarrierRegisterPrivateExpedited = 1 << 4;
constexpr int kMembarrierPrivateExpedited = 1 << 3;

// Registers this process for expedited membarrier. Returns false when
// the syscall is missing, filtered, or unsupported by the kernel.
bool RegisterMembarrier() {
#if defined(__linux__) && defined(SYS_membarrier)
  return syscall(SYS_membarrier, kMembarrierRegisterPrivateExpedited, 0, 0) ==
         0;
#else
  return false;
#endif
}

}  // namespace

namespace epoch_detail {
// Constant-initialized: accesses compile to direct TLS loads (see the
// header). Zero slot pointer means "no slot claimed yet".
thread_local constinit EpochTls g_epoch_tls{nullptr, 0, 0};
}  // namespace epoch_detail

namespace {

// Hands the thread's slot back on thread exit so slots recycle across
// the process lifetime (thread_local destructors run before
// static-storage destructors, so the manager is still alive). A
// separate object — not a destructor on EpochTls itself — so the hot
// state stays trivially destructible.
struct SlotReleaser {
  ~SlotReleaser() {
    epoch_detail::EpochTls& ts = epoch_detail::g_epoch_tls;
    if (ts.slot != nullptr) {
      ts.slot->epoch.store(EpochManager::kIdle, std::memory_order_release);
      ts.slot->owned.store(false, std::memory_order_release);
      ts.slot = nullptr;
    }
  }
};

}  // namespace

EpochManager::EpochManager()
    : reader_fence_needed_(!RegisterMembarrier()) {}

void EpochManager::HeavyBarrier() {
  if (reader_fence_needed_) {
    // Fallback pairing: readers fence themselves, we fence here.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return;
  }
#if defined(__linux__) && defined(SYS_membarrier)
  // Every running thread of the process executes a full barrier before
  // this returns (and a descheduled thread's context switch is one), so
  // each slot store issued before now is visible to the scan below, and
  // each reader's subsequent loads see every unlink issued before now.
  syscall(SYS_membarrier, kMembarrierPrivateExpedited, 0, 0);
#endif
}

EpochManager::~EpochManager() {
  // No reader can be pinned here (the manager outlives every database
  // thread); whatever is still retired is safe to free.
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (const Retired& r : retired_) r.deleter(r.ptr);
  retired_.clear();
  retired_count_.store(0, std::memory_order_relaxed);
}

EpochManager::Slot* EpochManager::AcquireSlot() {
  // Construction here (once per thread, cold path) registers the
  // thread-exit hand-back for the slot we are about to claim.
  thread_local SlotReleaser releaser;
  (void)releaser;
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMaxThreads;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    Slot& slot = slots_[(start + i) % kMaxThreads];
    bool expected = false;
    if (slot.owned.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return &slot;
    }
  }
  MVCC_CHECK(false && "EpochManager: more than kMaxThreads live threads");
  return nullptr;
}

void EpochManager::Retire(void* p, void (*deleter)(void*)) {
  bool should_advance = false;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retired_.push_back(
        Retired{p, deleter, global_epoch_.load(std::memory_order_seq_cst)});
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
    should_advance = retired_.size() >= kRetireThreshold;
  }
  if (should_advance) Advance();
}

size_t EpochManager::Advance() {
  std::vector<Retired> expired;
  uint64_t e;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);  // one advancer at a time
    HeavyBarrier();
    e = global_epoch_.load(std::memory_order_seq_cst);
    bool can_advance = true;
    for (const Slot& slot : slots_) {
      if (!slot.owned.load(std::memory_order_acquire)) continue;
      const uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
      if (pinned != kIdle && pinned != e) {
        // A reader is still in the previous epoch; its grace period has
        // not elapsed. (A pinned thread calling Advance blocks itself
        // here once its own pin lags — never deadlocks, just defers.)
        can_advance = false;
        break;
      }
    }
    if (can_advance) {
      global_epoch_.store(e + 1, std::memory_order_seq_cst);
      epochs_advanced_.fetch_add(1, std::memory_order_relaxed);
      e = e + 1;
    }
    CollectExpiredLocked(e, &expired);
  }
  // Deleters run OUTSIDE retire_mu_: slab recycling re-enters arena
  // latches and a deleter is free to call Retire (which takes this
  // mutex) — and a slow destructor must not stall every concurrent
  // retirer behind the lock.
  for (const Retired& r : expired) r.deleter(r.ptr);
  total_freed_.fetch_add(expired.size(), std::memory_order_relaxed);
  // Deliberately NOT hashing the absolute epoch: the manager is
  // process-global, so the counter is monotonic ACROSS simulation runs
  // and would make same-seed replays hash differently. The event's
  // position in the schedule plus the expired count is the run-relative
  // signal.
  SimObserve(this, "ebr.advance", expired.size(), 0);
  return expired.size();
}

void EpochManager::CollectExpiredLocked(uint64_t global,
                                        std::vector<Retired>* expired) {
  size_t keep = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i].epoch + 2 <= global) {
      expired->push_back(retired_[i]);
    } else {
      retired_[keep++] = retired_[i];
    }
  }
  retired_.resize(keep);
  retired_count_.store(keep, std::memory_order_relaxed);
}

}  // namespace mvcc
