#ifndef MVCC_COMMON_LATCH_H_
#define MVCC_COMMON_LATCH_H_

#include <atomic>
#include <thread>

namespace mvcc {

// Minimal test-and-test-and-set spinlock for short critical sections
// (version-chain manipulation, counter updates). Satisfies the C++
// Lockable requirements so it composes with std::lock_guard.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    int spins = 0;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 1024;
  std::atomic<bool> flag_{false};
};

}  // namespace mvcc

#endif  // MVCC_COMMON_LATCH_H_
