#ifndef MVCC_COMMON_RANDOM_H_
#define MVCC_COMMON_RANDOM_H_

#include <cstdint>

namespace mvcc {

// Small, fast, seedable PRNG (xorshift128+). Deterministic across platforms
// so workload generation and property tests are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy seeds.
    uint64_t z = seed;
    s0_ = NextSplitMix(&z);
    s1_ = NextSplitMix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t NextSplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_RANDOM_H_
