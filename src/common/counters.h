#ifndef MVCC_COMMON_COUNTERS_H_
#define MVCC_COMMON_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mvcc {

// Relaxed striped tally for hot-path accounting (version counts in the
// object store). A single shared atomic turns every Install/Prune into
// a cache-line ping between writer threads; striping by thread spreads
// the RMWs over independent padded cells so the count-bump disappears
// from the write path's contention profile. Sum() is O(stripes) and,
// like any relaxed aggregate, only exact when the system is quiescent —
// concurrent readers see a value that was never necessarily the true
// total at any instant (each cell is read at a different time). That is
// the right contract for GC accounting and metrics; anything needing
// ground truth takes the slow scan.
class StripedCounter {
 public:
  static constexpr size_t kStripes = 32;

  void Add(int64_t delta) {
    cells_[StripeForThread()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Sum() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  static size_t StripeForThread() {
    // Registration-order stripe assignment: consecutive threads land on
    // distinct cells (a thread-id hash would collide at random).
    static std::atomic<size_t> next{0};
    thread_local size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }

  Cell cells_[kStripes];
};

// Global event counters, incremented by protocols as synchronization events
// happen. These are the measured quantities behind the paper's comparative
// claims: which protocols make read-only transactions block, abort, write
// metadata, or kill read-write transactions.
struct EventCounters {
  // Commits / aborts by class.
  std::atomic<uint64_t> ro_commits{0};
  std::atomic<uint64_t> rw_commits{0};
  std::atomic<uint64_t> ro_aborts{0};
  std::atomic<uint64_t> rw_aborts{0};

  // Blocking events (a request had to wait for another transaction).
  std::atomic<uint64_t> ro_blocks{0};
  std::atomic<uint64_t> rw_blocks{0};

  // Read-write aborts whose direct cause was a read-only transaction
  // (e.g. MVTO write rejection due to an r-ts set by a reader).
  std::atomic<uint64_t> rw_aborts_caused_by_ro{0};

  // Metadata mutations performed on behalf of read-only transactions
  // (r-ts updates in MVTO — the "concurrency control overhead" of Sec. 2).
  std::atomic<uint64_t> ro_metadata_writes{0};

  // Completed-transaction-list entries copied at read-only begin
  // (MV2PL-CTL) — the begin-time overhead the paper calls cumbersome.
  std::atomic<uint64_t> ctl_entries_copied{0};

  // Negotiation rounds executed by read-only transactions (Weihl-style
  // timestamps-and-initiation rendition).
  std::atomic<uint64_t> negotiation_rounds{0};

  // Deadlock victims (subset of rw_aborts under locking protocols).
  std::atomic<uint64_t> deadlock_aborts{0};

  // Read-write commits that failed at the durability point (WAL append
  // or fsync error): the transaction was rolled back before becoming
  // visible (subset of rw_aborts).
  std::atomic<uint64_t> durability_failures{0};

  // Plain-value snapshot for reporting.
  struct Snapshot {
    uint64_t ro_commits, rw_commits, ro_aborts, rw_aborts;
    uint64_t ro_blocks, rw_blocks;
    uint64_t rw_aborts_caused_by_ro;
    uint64_t ro_metadata_writes;
    uint64_t ctl_entries_copied;
    uint64_t negotiation_rounds;
    uint64_t deadlock_aborts;
    uint64_t durability_failures;
  };

  Snapshot Snap() const {
    return Snapshot{
        ro_commits.load(),  rw_commits.load(), ro_aborts.load(),
        rw_aborts.load(),   ro_blocks.load(),  rw_blocks.load(),
        rw_aborts_caused_by_ro.load(),         ro_metadata_writes.load(),
        ctl_entries_copied.load(),             negotiation_rounds.load(),
        deadlock_aborts.load(),                durability_failures.load()};
  }

  void Reset() {
    ro_commits = 0;
    rw_commits = 0;
    ro_aborts = 0;
    rw_aborts = 0;
    ro_blocks = 0;
    rw_blocks = 0;
    rw_aborts_caused_by_ro = 0;
    ro_metadata_writes = 0;
    ctl_entries_copied = 0;
    negotiation_rounds = 0;
    deadlock_aborts = 0;
    durability_failures = 0;
  }
};

}  // namespace mvcc

#endif  // MVCC_COMMON_COUNTERS_H_
