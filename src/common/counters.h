#ifndef MVCC_COMMON_COUNTERS_H_
#define MVCC_COMMON_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace mvcc {

// Global event counters, incremented by protocols as synchronization events
// happen. These are the measured quantities behind the paper's comparative
// claims: which protocols make read-only transactions block, abort, write
// metadata, or kill read-write transactions.
struct EventCounters {
  // Commits / aborts by class.
  std::atomic<uint64_t> ro_commits{0};
  std::atomic<uint64_t> rw_commits{0};
  std::atomic<uint64_t> ro_aborts{0};
  std::atomic<uint64_t> rw_aborts{0};

  // Blocking events (a request had to wait for another transaction).
  std::atomic<uint64_t> ro_blocks{0};
  std::atomic<uint64_t> rw_blocks{0};

  // Read-write aborts whose direct cause was a read-only transaction
  // (e.g. MVTO write rejection due to an r-ts set by a reader).
  std::atomic<uint64_t> rw_aborts_caused_by_ro{0};

  // Metadata mutations performed on behalf of read-only transactions
  // (r-ts updates in MVTO — the "concurrency control overhead" of Sec. 2).
  std::atomic<uint64_t> ro_metadata_writes{0};

  // Completed-transaction-list entries copied at read-only begin
  // (MV2PL-CTL) — the begin-time overhead the paper calls cumbersome.
  std::atomic<uint64_t> ctl_entries_copied{0};

  // Negotiation rounds executed by read-only transactions (Weihl-style
  // timestamps-and-initiation rendition).
  std::atomic<uint64_t> negotiation_rounds{0};

  // Deadlock victims (subset of rw_aborts under locking protocols).
  std::atomic<uint64_t> deadlock_aborts{0};

  // Read-write commits that failed at the durability point (WAL append
  // or fsync error): the transaction was rolled back before becoming
  // visible (subset of rw_aborts).
  std::atomic<uint64_t> durability_failures{0};

  // Plain-value snapshot for reporting.
  struct Snapshot {
    uint64_t ro_commits, rw_commits, ro_aborts, rw_aborts;
    uint64_t ro_blocks, rw_blocks;
    uint64_t rw_aborts_caused_by_ro;
    uint64_t ro_metadata_writes;
    uint64_t ctl_entries_copied;
    uint64_t negotiation_rounds;
    uint64_t deadlock_aborts;
    uint64_t durability_failures;
  };

  Snapshot Snap() const {
    return Snapshot{
        ro_commits.load(),  rw_commits.load(), ro_aborts.load(),
        rw_aborts.load(),   ro_blocks.load(),  rw_blocks.load(),
        rw_aborts_caused_by_ro.load(),         ro_metadata_writes.load(),
        ctl_entries_copied.load(),             negotiation_rounds.load(),
        deadlock_aborts.load(),                durability_failures.load()};
  }

  void Reset() {
    ro_commits = 0;
    rw_commits = 0;
    ro_aborts = 0;
    rw_aborts = 0;
    ro_blocks = 0;
    rw_blocks = 0;
    rw_aborts_caused_by_ro = 0;
    ro_metadata_writes = 0;
    ctl_entries_copied = 0;
    negotiation_rounds = 0;
    deadlock_aborts = 0;
    durability_failures = 0;
  }
};

}  // namespace mvcc

#endif  // MVCC_COMMON_COUNTERS_H_
