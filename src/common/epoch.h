#ifndef MVCC_COMMON_EPOCH_H_
#define MVCC_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mvcc {

// Epoch-based reclamation (EBR) for the latch-free snapshot read path.
//
// The storage layer publishes immutable snapshots (version arrays, index
// tables) behind atomic pointers. Writers replace a snapshot with a
// pointer swap and must eventually free the old one — but a reader that
// loaded the old pointer may still be walking it, and the paper's
// headline guarantee is that readers never block, so they cannot take a
// latch to say so. Instead readers pin the current *epoch* for the
// duration of each read (EpochGuard), writers *retire* replaced
// snapshots instead of freeing them, and retired memory is freed only
// after the global epoch has advanced twice past the retirement epoch —
// by which point every reader that could have loaded the old pointer has
// unpinned (the grace period of classic three-epoch EBR, Fraser 2004;
// the same discipline Larson et al. 2012 use for latch-free version
// access in main-memory MVCC).
//
// Invariants:
//   - A thread pins the epoch it observes in the global counter; the
//     global epoch only advances when every pinned slot equals it. With
//     expedited membarrier a published pin may lag by more than one
//     epoch (the store is not re-validated), which can only delay
//     advances — the membarrier in Advance guarantees any reader whose
//     pin the scan missed sees every unlink retired before the scan.
//     Without membarrier the pin re-validates, so pinned epochs lie in
//     {global-1, global}.
//   - An object must be unlinked (unreachable from the published
//     structure) BEFORE Retire() is called. Readers that pin after the
//     unlink cannot reach it; readers that could reach it are pinned at
//     an epoch <= the retirement tag.
//   - Retired memory with tag e is freed once global >= e + 2: advancing
//     to e+1 and then e+2 each required every pinned reader to be at the
//     then-current epoch, so no reader pinned at <= e survives.
//
// Costs: Pin is one thread-local access plus one seq_cst store and one
// seq_cst fence on a cache line private to the thread (padded slots); no
// shared-line RMW, so readers scale. Nested guards only bump a
// thread-local depth counter. Retire takes a mutex — it sits on the
// write/prune slow path, which already serializes on the chain latch.
class EpochManager {
 public:
  // One slot per live thread, cache-line padded so pins never contend.
  static constexpr size_t kMaxThreads = 512;
  static constexpr uint64_t kIdle = ~0ull;  // slot value: not pinned

  // Process-wide manager. Function-local static: destroyed after main()
  // returns (all database threads joined), freeing any still-retired
  // memory so leak checkers stay quiet. Inline so the guard check on
  // the read path is a load and a branch, not a function call.
  static EpochManager& Global() {
    static EpochManager manager;
    return manager;
  }

  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Pins the calling thread to the current epoch; returns the pinned
  // epoch. Re-entrant: nested pins are counted and only the outermost
  // publishes/clears the slot. Defined inline below — this is the one
  // fixed cost on every latch-free read, so it must compile down to
  // direct thread-local accesses plus the publish store/fence.
  uint64_t Pin();
  void Unpin();

  // True while the calling thread holds at least one pin.
  static bool CurrentThreadPinned();

  // Defers freeing `p` (via `deleter(p)`) until no reader pinned at or
  // before the current epoch can still hold a reference. `p` must
  // already be unlinked from every published structure.
  void Retire(void* p, void (*deleter)(void*));

  template <typename T>
  void Retire(T* p) {
    Retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Tries to advance the global epoch (possible only when every pinned
  // thread has observed the current one) and frees every retired object
  // whose grace period has elapsed. Returns the number of objects freed.
  // Safe to call from a pinned thread: its own pin simply blocks the
  // advance past its epoch, never deadlocks.
  size_t Advance();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Objects retired but not yet freed (tests, GC accounting).
  size_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  uint64_t total_freed() const {
    return total_freed_.load(std::memory_order_relaxed);
  }
  uint64_t epochs_advanced() const {
    return epochs_advanced_.load(std::memory_order_relaxed);
  }

  // One reader slot, cache-line padded so pins never contend. Public
  // only so the inline Pin/Unpin below can touch it through the
  // thread-local state; not part of the conceptual API.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> owned{false};
  };

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;  // global epoch at retirement
  };

  // Cold path: claims a slot for this thread and registers the
  // thread-exit hand-back. Runs once per thread.
  Slot* AcquireSlot();

  // Moves retired objects with tag <= global - 2 into `expired` for the
  // caller to free after dropping the mutex. Caller holds retire_mu_.
  void CollectExpiredLocked(uint64_t global, std::vector<Retired>* expired);

  // Auto-advance threshold: Retire kicks Advance once this many objects
  // are pending, bounding memory growth without a dedicated thread.
  static constexpr size_t kRetireThreshold = 128;

  // Issues a full memory barrier on every thread of the process —
  // membarrier(PRIVATE_EXPEDITED) where available, else a no-op (readers
  // then keep their own fence). Called by Advance before scanning slots.
  void HeavyBarrier();

  // True when Pin must fence itself (no expedited membarrier support).
  // Set once at construction, before any reader exists.
  bool reader_fence_needed_ = true;

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];

  std::mutex retire_mu_;
  std::vector<Retired> retired_;  // guarded by retire_mu_
  std::atomic<size_t> retired_count_{0};
  std::atomic<uint64_t> total_freed_{0};
  std::atomic<uint64_t> epochs_advanced_{0};
};

namespace epoch_detail {

// Hot per-thread pin state. Deliberately trivially constructible AND
// trivially destructible: that lets the compiler constant-initialize it
// and emit direct TLS loads on the read path, instead of routing every
// access through the lazy-init thread wrapper a nontrivial thread_local
// requires. The slot hand-back on thread exit — which does need a
// destructor — lives in a separate thread_local registered inside
// AcquireSlot, off the hot path.
struct EpochTls {
  EpochManager::Slot* slot;
  uint64_t depth;
  uint64_t pinned_epoch;
};
extern thread_local constinit EpochTls g_epoch_tls;

}  // namespace epoch_detail

inline uint64_t EpochManager::Pin() {
  epoch_detail::EpochTls& ts = epoch_detail::g_epoch_tls;
  if (ts.depth++ > 0) return ts.pinned_epoch;
  if (ts.slot == nullptr) ts.slot = AcquireSlot();
  // Publish the epoch we observe, then re-check: if the global advanced
  // between the load and the store we re-publish the newer value. The
  // loop settles within two rounds — once our slot shows epoch e, the
  // global cannot pass e+1 (advancing to e+2 would require our slot to
  // show e+1).
  //
  // Store-to-load ordering between the slot publish and later reads of
  // shared structures is what reclamation safety hangs on. When the
  // kernel supports expedited membarrier, Advance imposes that ordering
  // from ITS side (a process-wide barrier before scanning the slots —
  // the urcu-memb construction), and the pin is ONE load and ONE store,
  // the whole fixed cost of a latch-free read. No re-validation is
  // needed even when the published epoch is stale by the time the store
  // lands: if Advance's scan saw the store, the reader's seq_cst load of
  // the epoch it published synchronizes-with the advance that installed
  // that epoch, so the reader already sees every unlink whose tag its
  // pin protects against freeing; if the scan missed the store, the
  // membarrier orders all of the reader's subsequent loads after the
  // scan, so they see every unlink retired before it. A stale slot can
  // only delay future advances (liveness), never unprotect memory.
  //
  // Without membarrier support the reader pays a seq_cst fence pairing
  // with the fence in Advance, and re-validates the published epoch so
  // its slot never lags more than one advance.
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  ts.slot->epoch.store(e, std::memory_order_release);
  if (reader_fence_needed_) {
    while (true) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
      if (now == e) break;
      e = now;
      ts.slot->epoch.store(e, std::memory_order_release);
    }
  }
  ts.pinned_epoch = e;
  return e;
}

inline void EpochManager::Unpin() {
  epoch_detail::EpochTls& ts = epoch_detail::g_epoch_tls;
  if (--ts.depth == 0) {
    ts.slot->epoch.store(kIdle, std::memory_order_release);
  }
}

inline bool EpochManager::CurrentThreadPinned() {
  return epoch_detail::g_epoch_tls.depth > 0;
}

// RAII pin on the process-wide epoch manager. Cheap and re-entrant:
// every latch-free read helper takes one internally, and outer layers
// (a transaction's whole read, a replica scan) may hold one across many
// inner reads so the inner guards reduce to a depth-counter bump.
class EpochGuard {
 public:
  // The manager reference is resolved once in the constructor so the
  // destructor skips Global()'s static-initialization guard check — two
  // such checks per guard were visible on the depth-4 read path.
  EpochGuard() : manager_(EpochManager::Global()) { manager_.Pin(); }
  ~EpochGuard() { manager_.Unpin(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
};

}  // namespace mvcc

#endif  // MVCC_COMMON_EPOCH_H_
