#include "vc/vc_queue.h"

#include "common/check.h"
#include "common/sim_hook.h"

namespace mvcc {

void VcQueue::Insert(TxnNumber tn, TxnId txn) {
  auto [it, inserted] = entries_.emplace(tn, Entry{txn, false});
  (void)it;
  MVCC_CHECK(inserted && "duplicate transaction number in VCQueue");
}

void VcQueue::MarkComplete(TxnNumber tn) {
  auto it = entries_.find(tn);
  if (it != entries_.end()) it->second.complete = true;
}

void VcQueue::Erase(TxnNumber tn) { entries_.erase(tn); }

std::optional<TxnNumber> VcQueue::DrainCompletedHead() {
  std::optional<TxnNumber> last_popped;
  while (!entries_.empty() && entries_.begin()->second.complete) {
    last_popped = entries_.begin()->first;
    entries_.erase(entries_.begin());
    // Observation only (the caller holds the version-control mutex):
    // lets the simulator audit that visibility advances over exactly the
    // completed prefix, one entry at a time.
    SimObserve(this, "vcq.pop", *last_popped, entries_.size());
  }
  return last_popped;
}

bool VcQueue::HasActiveAtOrBelow(TxnNumber bound) const {
  for (const auto& [tn, entry] : entries_) {
    if (tn > bound) break;
    if (!entry.complete) return true;
  }
  return false;
}

std::optional<TxnNumber> VcQueue::OldestNumber() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.begin()->first;
}

}  // namespace mvcc
