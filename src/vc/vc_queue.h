#ifndef MVCC_VC_VC_QUEUE_H_
#define MVCC_VC_VC_QUEUE_H_

#include <cstddef>
#include <map>
#include <optional>

#include "common/ids.h"

namespace mvcc {

// The paper's VCQueue (Figure 1): the ordered list of read-write
// transactions that have been assigned a transaction number and are still
// active, or have completed but are waiting behind an older active
// transaction. Ordering is by transaction number, which is the serial
// order. Not internally synchronized: VersionControl owns the lock.
class VcQueue {
 public:
  VcQueue() = default;

  // Inserts an active entry for transaction `txn` with number `tn`.
  // tn must not already be present.
  void Insert(TxnNumber tn, TxnId txn);

  // Marks the entry with number `tn` complete. No-op if absent.
  void MarkComplete(TxnNumber tn);

  // Removes the entry with number `tn` (the paper's VCdiscard on abort).
  void Erase(TxnNumber tn);

  // Pops completed entries from the head while the head is complete
  // (the WHILE loop of VCcomplete). Returns the number of the last entry
  // popped — the new vtnc — or nullopt if the head was active or the
  // queue empty.
  std::optional<TxnNumber> DrainCompletedHead();

  // True if some entry with tn <= bound is still marked active.
  bool HasActiveAtOrBelow(TxnNumber bound) const;

  // Number of the oldest entry still in the queue, if any.
  std::optional<TxnNumber> OldestNumber() const;

  bool Contains(TxnNumber tn) const { return entries_.count(tn) != 0; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    TxnId txn = 0;
    bool complete = false;
  };

  std::map<TxnNumber, Entry> entries_;
};

}  // namespace mvcc

#endif  // MVCC_VC_VC_QUEUE_H_
