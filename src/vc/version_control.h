#ifndef MVCC_VC_VERSION_CONTROL_H_
#define MVCC_VC_VERSION_CONTROL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/ids.h"
#include "vc/vc_queue.h"

namespace mvcc {

// How transaction numbers are generated.
//
//  kDense:      tn = counter++ (1, 2, 3, ...). The centralized scheme of
//               Figure 1.
//  kSiteTagged: tn = (counter << 32) | tiebreak. Used by the distributed
//               extension (Section 6 / reference [3]): the low 32 bits
//               carry a globally unique per-transaction tiebreak so that
//               independently numbered sites can agree on one globally
//               unique, totally ordered tn per read-write transaction.
enum class NumberingMode {
  kDense,
  kSiteTagged,
};

// The paper's VersionControl module (Figure 1).
//
// Maintains:
//   tnc     - transaction number counter: the next number to hand out.
//             Transaction Ordering Property: every active-but-unassigned
//             or future transaction will receive tn >= tnc.
//   vtnc    - visible transaction number counter: the largest number such
//             that ALL transactions with tn <= vtnc have completed
//             (Transaction Visibility Property). Controls which versions
//             read-only transactions may see. Invariant: vtnc < tnc.
//   VCQueue - registered transactions whose completion has not yet been
//             made visible.
//
// Entry points map to the paper verbatim:
//   Start()    = VCstart()    : read-only begin; a single atomic load.
//   Register() = VCregister() : called when a read-write transaction's
//                               serial position becomes known (begin under
//                               TO, lock point under 2PL, validation under
//                               OCC). Returns tn(T).
//   Discard()  = VCdiscard()  : called on abort after registration.
//   Complete() = VCcomplete() : called after commit + database update.
//
// One deliberate deviation from the paper's pseudocode: Figure 1's
// VCdiscard only removes the queue entry. If the discarded entry was the
// head and the entries behind it had already completed, vtnc would stall
// forever. Discard() therefore runs the same head-draining loop as
// Complete(). A unit test pins this scenario.
class VersionControl {
 public:
  explicit VersionControl(NumberingMode mode = NumberingMode::kDense);
  VersionControl(const VersionControl&) = delete;
  VersionControl& operator=(const VersionControl&) = delete;

  // VCstart: the start number for a read-only transaction. Lock-free.
  TxnNumber Start() const { return vtnc_.load(std::memory_order_acquire); }

  // VCregister: assigns and returns tn(T). In kSiteTagged mode `tiebreak`
  // disambiguates equal counter values across sites; in kDense mode it is
  // ignored.
  TxnNumber Register(TxnId txn, uint32_t tiebreak = 0);

  // VCdiscard: drops T's entry (abort after registration). See class
  // comment for the head-draining deviation.
  void Discard(TxnNumber tn);

  // VCcomplete: marks T complete and advances vtnc over the completed
  // prefix of VCQueue.
  void Complete(TxnNumber tn);

  // ---- Distributed / currency extensions (Section 6) ----

  // Moves a registered-but-incomplete entry from `from` to the globally
  // agreed number `to` (to >= from) and ensures future local numbers
  // exceed `to`. Used during two-phase commit number agreement.
  void Promote(TxnNumber from, TxnNumber to);

  // Ensures every future Register() returns a number > `tn`. Used when a
  // remote read-only transaction with start number `tn` arrives at this
  // site (Lamport-style clock push). Lock-free fast path when already
  // ahead.
  void AdvanceCounterPast(TxnNumber tn);

  // Blocks until no registered-but-incomplete transaction has a number
  // <= `sn`. Afterwards, the set of versions with number <= sn at this
  // site is final (registered writers have resolved; future writers get
  // larger numbers once AdvanceCounterPast(sn) has been called).
  void WaitNoActiveAtOrBelow(TxnNumber sn);

  // Restores the counters after crash recovery: every transaction with
  // tn <= `last_committed` has been replayed from the log and is durable
  // and complete. Only legal while the queue is empty (no transactions
  // are in flight during recovery).
  void RecoverTo(TxnNumber last_committed);

  // Blocks until vtnc >= `tn`: the currency fix of Section 6, letting a
  // read-only transaction insist on observing a specific read-write
  // transaction's effects. Returns the resulting start number.
  TxnNumber StartAtLeast(TxnNumber tn);

  // ---- Introspection ----

  // Current value of the transaction number counter expressed as the next
  // tn that would be assigned (with tiebreak 0 in kSiteTagged mode).
  TxnNumber NextNumber() const;

  TxnNumber vtnc() const { return Start(); }
  size_t QueueSize() const;
  NumberingMode mode() const { return mode_; }

  // ---- Testing ----

  // Reverts Discard to Figure 1's literal pseudocode: remove the entry
  // and nothing else (no head drain, so a completed suffix behind a
  // discarded head stalls vtnc forever). Exists so the deterministic
  // simulator can demonstrate that the head-draining deviation is
  // load-bearing; never set in production.
  void SetLiteralFigure1DiscardForTest(bool literal);

 private:
  TxnNumber MakeNumber(uint64_t counter, uint32_t tiebreak) const {
    return mode_ == NumberingMode::kDense ? counter
                                          : (counter << 32) | tiebreak;
  }
  uint64_t CounterPart(TxnNumber tn) const {
    return mode_ == NumberingMode::kDense ? tn : tn >> 32;
  }

  const NumberingMode mode_;
  bool literal_figure1_discard_ = false;  // testing only, see setter
  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled on Complete/Discard and vtnc moves
  uint64_t counter_ = 1;        // tnc (counter part)
  std::atomic<TxnNumber> vtnc_{0};
  VcQueue queue_;
};

}  // namespace mvcc

#endif  // MVCC_VC_VERSION_CONTROL_H_
