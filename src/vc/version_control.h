#ifndef MVCC_VC_VERSION_CONTROL_H_
#define MVCC_VC_VERSION_CONTROL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/ids.h"
#include "vc/vc_queue.h"

namespace mvcc {

// How transaction numbers are generated.
//
//  kDense:      tn = counter++ (1, 2, 3, ...). The centralized scheme of
//               Figure 1.
//  kSiteTagged: tn = (counter << 32) | tiebreak. Used by the distributed
//               extension (Section 6 / reference [3]): the low 32 bits
//               carry a globally unique per-transaction tiebreak so that
//               independently numbered sites can agree on one globally
//               unique, totally ordered tn per read-write transaction.
enum class NumberingMode {
  kDense,
  kSiteTagged,
};

// The paper's VersionControl module (Figure 1).
//
// Maintains:
//   tnc     - transaction number counter: the next number to hand out.
//             Transaction Ordering Property: every active-but-unassigned
//             or future transaction will receive tn >= tnc.
//   vtnc    - visible transaction number counter: the largest number such
//             that ALL transactions with tn <= vtnc have completed
//             (Transaction Visibility Property). Controls which versions
//             read-only transactions may see. Invariant: vtnc < tnc.
//   VCQueue - registered transactions whose completion has not yet been
//             made visible.
//
// Entry points map to the paper verbatim:
//   Start()    = VCstart()    : read-only begin; a single atomic load.
//   Register() = VCregister() : called when a read-write transaction's
//                               serial position becomes known (begin under
//                               TO, lock point under 2PL, validation under
//                               OCC). Returns tn(T).
//   Discard()  = VCdiscard()  : called on abort after registration.
//   Complete() = VCcomplete() : called after commit + database update.
//
// Two interchangeable cores implement the contract:
//
//  * The RING core (kDense production path): tnc is an atomic fetch_add
//    and the VCQueue is a fixed-size completion ring indexed by tn.
//    Register stores an ACTIVE marker into slot tn % kRingSize;
//    Complete/Discard store a resolved marker and then CAS-advance a
//    drain cursor over the resolved prefix, raising vtnc (CAS-max) at
//    each COMPLETED slot it consumes. Discarded numbers free their slot
//    and let the drain pass, but never become vtnc themselves — exactly
//    the std::map semantics. No mutex is touched on the hot path; the
//    condition variable is reserved for the slow waiters (StartAtLeast,
//    WaitNoActiveAtOrBelow, ring-full backpressure).
//
//  * The LOCKED core (mutex + std::map VcQueue): retained for
//    kSiteTagged numbering — Promote() during distributed 2PC number
//    agreement moves queue entries to non-dense numbers the ring cannot
//    index — and for the literal-Figure-1 test knob, whose observable
//    (QueueSize of a stalled suffix) is defined on the map.
//
// One deliberate deviation from the paper's pseudocode: Figure 1's
// VCdiscard only removes the queue entry. If the discarded entry was the
// head and the entries behind it had already completed, vtnc would stall
// forever. Discard() therefore runs the same head-draining step as
// Complete(). A unit test pins this scenario.
class VersionControl {
 public:
  // Slots in the ring core; registrations more than kRingSize ahead of
  // the drain cursor wait for slots to free (backpressure on an
  // unbounded commit/abort backlog).
  static constexpr size_t kRingSize = 4096;

  // `force_locked_core` pins the legacy mutex+map core even for kDense —
  // the before/after baseline for bench_vc; never needed in production.
  explicit VersionControl(NumberingMode mode = NumberingMode::kDense,
                          bool force_locked_core = false);
  VersionControl(const VersionControl&) = delete;
  VersionControl& operator=(const VersionControl&) = delete;

  // VCstart: the start number for a read-only transaction. Lock-free.
  TxnNumber Start() const { return vtnc_.load(std::memory_order_acquire); }

  // VCregister: assigns and returns tn(T). In kSiteTagged mode `tiebreak`
  // disambiguates equal counter values across sites; in kDense mode it is
  // ignored.
  TxnNumber Register(TxnId txn, uint32_t tiebreak = 0);

  // VCdiscard: drops T's entry (abort after registration). See class
  // comment for the head-draining deviation.
  void Discard(TxnNumber tn);

  // VCcomplete: marks T complete and advances vtnc over the completed
  // prefix of VCQueue.
  void Complete(TxnNumber tn);

  // ---- Distributed / currency extensions (Section 6) ----

  // Moves a registered-but-incomplete entry from `from` to the globally
  // agreed number `to` (to >= from) and ensures future local numbers
  // exceed `to`. Used during two-phase commit number agreement.
  // Locked core only (kSiteTagged).
  void Promote(TxnNumber from, TxnNumber to);

  // Ensures every future Register() returns a number > `tn`. Used when a
  // remote read-only transaction with start number `tn` arrives at this
  // site (Lamport-style clock push). Lock-free fast path when already
  // ahead.
  void AdvanceCounterPast(TxnNumber tn);

  // Blocks until no registered-but-incomplete transaction has a number
  // <= `sn`. Afterwards, the set of versions with number <= sn at this
  // site is final (registered writers have resolved; future writers get
  // larger numbers once AdvanceCounterPast(sn) has been called).
  void WaitNoActiveAtOrBelow(TxnNumber sn);

  // Restores the counters after crash recovery: every transaction with
  // tn <= `last_committed` has been replayed from the log and is durable
  // and complete. Only legal while the queue is empty (no transactions
  // are in flight during recovery).
  void RecoverTo(TxnNumber last_committed);

  // Blocks until vtnc >= `tn`: the currency fix of Section 6, letting a
  // read-only transaction insist on observing a specific read-write
  // transaction's effects. Returns the resulting start number.
  TxnNumber StartAtLeast(TxnNumber tn);

  // ---- Introspection ----

  // Current value of the transaction number counter expressed as the next
  // tn that would be assigned (with tiebreak 0 in kSiteTagged mode).
  TxnNumber NextNumber() const;

  TxnNumber vtnc() const { return Start(); }

  // Registered-but-not-yet-visible transactions. On the ring core this
  // is (assigned - drained - skipped) and may transiently overcount by
  // in-flight registrations; exact at quiesce.
  size_t QueueSize() const;

  NumberingMode mode() const { return mode_; }
  bool ring_core() const { return !locked_core_; }

  // ---- Testing ----

  // Reverts Discard to Figure 1's literal pseudocode: remove the entry
  // and nothing else (no head drain, so a completed suffix behind a
  // discarded head stalls vtnc forever). Exists so the deterministic
  // simulator can demonstrate that the head-draining deviation is
  // load-bearing; never set in production. Must first be set before any
  // registration: it pins the instance to the locked core (sticky), since
  // the stalled-suffix observable is defined on the map queue.
  void SetLiteralFigure1DiscardForTest(bool literal);

 private:
  // Ring slot encoding: (tn << 2) | state, 0 == free. A slot's full tn
  // is kept (not just the state) so a reader can tell a resolved slot
  // for tn apart from a stale or wrapped-around occupant.
  static constexpr uint64_t kRingMask = kRingSize - 1;
  static constexpr uint64_t kSlotActive = 1;
  static constexpr uint64_t kSlotComplete = 2;
  static constexpr uint64_t kSlotDiscarded = 3;

  TxnNumber MakeNumber(uint64_t counter, uint32_t tiebreak) const {
    return mode_ == NumberingMode::kDense ? counter
                                          : (counter << 32) | tiebreak;
  }
  uint64_t CounterPart(TxnNumber tn) const {
    return mode_ == NumberingMode::kDense ? tn : tn >> 32;
  }

  // ---- locked core ----
  TxnNumber RegisterLocked(TxnId txn, uint32_t tiebreak);
  void DiscardLocked(TxnNumber tn);
  void CompleteLocked(TxnNumber tn);

  // ---- ring core ----
  void RingResolve(TxnNumber tn, uint64_t state);
  // Consumes the resolved prefix: CAS-advances drain_, frees slots, and
  // CAS-maxes vtnc_ at completed slots. Safe from any thread; must NOT
  // be called with mu_ held (TryJumpGap locks it).
  void RingDrain();
  // drain_ is parked at d and slot d+1 is free: if [d+1, ...] is a
  // recorded never-assigned range (AdvanceCounterPast), jump over it.
  // Returns true if the caller should retry the drain loop.
  bool TryJumpGap(TxnNumber d);
  void AdvanceVtncTo(TxnNumber target);
  // Any active (or in-flight-registering) number in (drain_, sn]?
  // Caller holds mu_ (consults gaps_).
  bool RingHasActiveAtOrBelowLocked(TxnNumber sn) const;
  // Complete/Discard wake StartAtLeast / WaitNoActiveAtOrBelow /
  // ring-full sleepers — only when any exist (waiters_ > 0).
  void WakeWaitersIfAny();

  const NumberingMode mode_;
  bool locked_core_;                      // fixed before any concurrency
  bool literal_figure1_discard_ = false;  // testing only, see setter

  // tnc (counter part). fetch_add is the whole Register fast path on the
  // ring core; the locked core serializes mutations under mu_ but keeps
  // the atomic so NextNumber stays lock-free.
  std::atomic<uint64_t> counter_{1};
  std::atomic<TxnNumber> vtnc_{0};

  // Ring core state. drain_ = highest tn whose slot has been consumed:
  // every number <= drain_ is complete, discarded, or never assigned.
  // vtnc_ <= drain_ always; they differ where the drained prefix ends in
  // discarded/never-assigned numbers (those do not advance visibility).
  std::unique_ptr<std::atomic<uint64_t>[]> ring_;
  std::atomic<TxnNumber> drain_{0};
  // Never-assigned ranges created by AdvanceCounterPast counter jumps:
  // first -> last, guarded by mu_. gap_count_/gap_tns_ are lock-free
  // summaries so the drain only locks when a gap actually exists.
  std::map<TxnNumber, TxnNumber> gaps_;
  std::atomic<uint64_t> gap_count_{0};
  std::atomic<uint64_t> gap_tns_{0};
  // Slow sleepers currently inside a cv wait (Dekker-style pairing with
  // the seq_cst vtnc/drain updates, so a wakeup is never missed).
  std::atomic<int> waiters_{0};

  // Locked core state + slow-waiter condvar (both cores).
  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled on Complete/Discard/vtnc moves
  VcQueue queue_;
};

}  // namespace mvcc

#endif  // MVCC_VC_VERSION_CONTROL_H_
