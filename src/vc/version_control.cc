#include "vc/version_control.h"

#include <cassert>

#include "common/check.h"
#include "common/sim_hook.h"

namespace mvcc {

VersionControl::VersionControl(NumberingMode mode) : mode_(mode) {}

void VersionControl::SetLiteralFigure1DiscardForTest(bool literal) {
  std::lock_guard<std::mutex> guard(mu_);
  literal_figure1_discard_ = literal;
}

// No schedule point here: OCC registers inside its validation critical
// section (tn order must equal validation order), and a yield under a
// plain mutex would hang the cooperative scheduler. Callers that hold no
// locks (TO begin, the 2PC prepare path) place their own points.
TxnNumber VersionControl::Register(TxnId txn, uint32_t tiebreak) {
  std::lock_guard<std::mutex> guard(mu_);
  const TxnNumber tn = MakeNumber(counter_++, tiebreak);
  queue_.Insert(tn, txn);
  SimObserve(this, "vc.register", tn, MakeNumber(counter_, 0));
  return tn;
}

void VersionControl::Discard(TxnNumber tn) {
  SimSchedulePoint("vc.discard");
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.Erase(tn);
    // Deviation from Figure 1 (see header): the erased entry may have been
    // blocking a completed suffix at the head, which must advance vtnc —
    // and signal waiters — exactly as Complete() does.
    if (!literal_figure1_discard_) {
      if (auto new_vtnc = queue_.DrainCompletedHead()) {
        MVCC_CHECK(*new_vtnc >= vtnc_.load(std::memory_order_relaxed));
        vtnc_.store(*new_vtnc, std::memory_order_release);
        SimObserve(this, "vc.vtnc", *new_vtnc, MakeNumber(counter_, 0));
      }
    }
  }
  cv_.notify_all();
}

void VersionControl::Complete(TxnNumber tn) {
  SimSchedulePoint("vc.complete");
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.MarkComplete(tn);
    if (auto new_vtnc = queue_.DrainCompletedHead()) {
      MVCC_CHECK(*new_vtnc >= vtnc_.load(std::memory_order_relaxed));
      vtnc_.store(*new_vtnc, std::memory_order_release);
      SimObserve(this, "vc.vtnc", *new_vtnc, MakeNumber(counter_, 0));
    }
  }
  cv_.notify_all();
}

void VersionControl::Promote(TxnNumber from, TxnNumber to) {
  SimSchedulePoint("vc.promote");
  if (from == to) {
    std::lock_guard<std::mutex> guard(mu_);
    if (CounterPart(to) >= counter_) counter_ = CounterPart(to) + 1;
    return;
  }
  std::lock_guard<std::mutex> guard(mu_);
  MVCC_CHECK(to > from && "promotion must move forward in serial order");
  MVCC_CHECK(queue_.Contains(from));
  queue_.Erase(from);
  queue_.Insert(to, /*txn=*/0);
  if (CounterPart(to) >= counter_) counter_ = CounterPart(to) + 1;
  SimObserve(this, "vc.promote", to, MakeNumber(counter_, 0));
}

void VersionControl::AdvanceCounterPast(TxnNumber tn) {
  SimSchedulePoint("vc.advance_counter");
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t needed = CounterPart(tn) + 1;
  if (counter_ < needed) counter_ = needed;
}

void VersionControl::RecoverTo(TxnNumber last_committed) {
  std::lock_guard<std::mutex> guard(mu_);
  MVCC_CHECK(queue_.empty() && "recovery with transactions in flight");
  vtnc_.store(last_committed, std::memory_order_release);
  const uint64_t needed = CounterPart(last_committed) + 1;
  if (counter_ < needed) counter_ = needed;
}

void VersionControl::WaitNoActiveAtOrBelow(TxnNumber sn) {
  std::unique_lock<std::mutex> lock(mu_);
  SimAwareCvWait(cv_, lock, "vc.wait_no_active",
                 [this, sn] { return !queue_.HasActiveAtOrBelow(sn); });
}

TxnNumber VersionControl::StartAtLeast(TxnNumber tn) {
  std::unique_lock<std::mutex> lock(mu_);
  SimAwareCvWait(cv_, lock, "vc.start_at_least", [this, tn] {
    return vtnc_.load(std::memory_order_acquire) >= tn;
  });
  return vtnc_.load(std::memory_order_acquire);
}

TxnNumber VersionControl::NextNumber() const {
  std::lock_guard<std::mutex> guard(mu_);
  return MakeNumber(counter_, 0);
}

size_t VersionControl::QueueSize() const {
  std::lock_guard<std::mutex> guard(mu_);
  return queue_.size();
}

}  // namespace mvcc
