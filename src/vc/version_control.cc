#include "vc/version_control.h"

#include <cassert>

#include "common/check.h"

namespace mvcc {

VersionControl::VersionControl(NumberingMode mode) : mode_(mode) {}

TxnNumber VersionControl::Register(TxnId txn, uint32_t tiebreak) {
  std::lock_guard<std::mutex> guard(mu_);
  const TxnNumber tn = MakeNumber(counter_++, tiebreak);
  queue_.Insert(tn, txn);
  return tn;
}

void VersionControl::Discard(TxnNumber tn) {
  bool advanced = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.Erase(tn);
    // Deviation from Figure 1 (see header): the erased entry may have been
    // blocking a completed suffix at the head.
    if (auto new_vtnc = queue_.DrainCompletedHead()) {
      vtnc_.store(*new_vtnc, std::memory_order_release);
      advanced = true;
    }
  }
  (void)advanced;
  cv_.notify_all();
}

void VersionControl::Complete(TxnNumber tn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.MarkComplete(tn);
    if (auto new_vtnc = queue_.DrainCompletedHead()) {
      MVCC_CHECK(*new_vtnc >= vtnc_.load(std::memory_order_relaxed));
      vtnc_.store(*new_vtnc, std::memory_order_release);
    }
  }
  cv_.notify_all();
}

void VersionControl::Promote(TxnNumber from, TxnNumber to) {
  if (from == to) {
    std::lock_guard<std::mutex> guard(mu_);
    if (CounterPart(to) >= counter_) counter_ = CounterPart(to) + 1;
    return;
  }
  std::lock_guard<std::mutex> guard(mu_);
  MVCC_CHECK(to > from && "promotion must move forward in serial order");
  MVCC_CHECK(queue_.Contains(from));
  queue_.Erase(from);
  queue_.Insert(to, /*txn=*/0);
  if (CounterPart(to) >= counter_) counter_ = CounterPart(to) + 1;
}

void VersionControl::AdvanceCounterPast(TxnNumber tn) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t needed = CounterPart(tn) + 1;
  if (counter_ < needed) counter_ = needed;
}

void VersionControl::RecoverTo(TxnNumber last_committed) {
  std::lock_guard<std::mutex> guard(mu_);
  MVCC_CHECK(queue_.empty() && "recovery with transactions in flight");
  vtnc_.store(last_committed, std::memory_order_release);
  const uint64_t needed = CounterPart(last_committed) + 1;
  if (counter_ < needed) counter_ = needed;
}

void VersionControl::WaitNoActiveAtOrBelow(TxnNumber sn) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, sn] { return !queue_.HasActiveAtOrBelow(sn); });
}

TxnNumber VersionControl::StartAtLeast(TxnNumber tn) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, tn] {
    return vtnc_.load(std::memory_order_acquire) >= tn;
  });
  return vtnc_.load(std::memory_order_acquire);
}

TxnNumber VersionControl::NextNumber() const {
  std::lock_guard<std::mutex> guard(mu_);
  return MakeNumber(counter_, 0);
}

size_t VersionControl::QueueSize() const {
  std::lock_guard<std::mutex> guard(mu_);
  return queue_.size();
}

}  // namespace mvcc
