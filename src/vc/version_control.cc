#include "vc/version_control.h"

#include <algorithm>
#include <cassert>

#include "common/check.h"
#include "common/sim_hook.h"

namespace mvcc {

VersionControl::VersionControl(NumberingMode mode, bool force_locked_core)
    : mode_(mode),
      locked_core_(mode == NumberingMode::kSiteTagged || force_locked_core) {
  if (!locked_core_) {
    ring_.reset(new std::atomic<uint64_t>[kRingSize]);
    for (size_t i = 0; i < kRingSize; ++i) {
      ring_[i].store(0, std::memory_order_relaxed);
    }
  }
}

void VersionControl::SetLiteralFigure1DiscardForTest(bool literal) {
  std::lock_guard<std::mutex> guard(mu_);
  if (literal && !locked_core_) {
    MVCC_CHECK(counter_.load(std::memory_order_relaxed) == 1 &&
               "literal Figure 1 mode must be set before any registration");
    locked_core_ = true;  // sticky: the map queue owns the semantics now
  }
  literal_figure1_discard_ = literal;
}

// No schedule point here: OCC registers inside its validation critical
// section (tn order must equal validation order), and a yield under a
// plain mutex would hang the cooperative scheduler. Callers that hold no
// locks (TO begin, the 2PC prepare path) place their own points.
TxnNumber VersionControl::Register(TxnId txn, uint32_t tiebreak) {
  if (locked_core_) return RegisterLocked(txn, tiebreak);
  // Ring fast path: one uncontended fetch_add assigns the number, one
  // release store publishes the ACTIVE entry. The slot for tn is free
  // once the occupant kRingSize numbers ago has been drained.
  const TxnNumber tn = counter_.fetch_add(1, std::memory_order_relaxed);
  if (tn > kRingSize &&
      drain_.load(std::memory_order_acquire) + kRingSize < tn) {
    // Backpressure slow path: >= kRingSize registrations are unresolved.
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    SimAwareCvWait(cv_, lock, "vc.ring_full", [this, tn] {
      return drain_.load(std::memory_order_seq_cst) + kRingSize >= tn;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  ring_[tn & kRingMask].store((tn << 2) | kSlotActive,
                              std::memory_order_release);
  SimObserve(this, "vc.register", tn,
             counter_.load(std::memory_order_relaxed));
  return tn;
}

TxnNumber VersionControl::RegisterLocked(TxnId txn, uint32_t tiebreak) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t c = counter_.fetch_add(1, std::memory_order_relaxed);
  const TxnNumber tn = MakeNumber(c, tiebreak);
  queue_.Insert(tn, txn);
  SimObserve(this, "vc.register", tn,
             MakeNumber(counter_.load(std::memory_order_relaxed), 0));
  return tn;
}

void VersionControl::Discard(TxnNumber tn) {
  SimSchedulePoint("vc.discard");
  if (locked_core_) {
    DiscardLocked(tn);
    return;
  }
  RingResolve(tn, kSlotDiscarded);
}

void VersionControl::DiscardLocked(TxnNumber tn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.Erase(tn);
    // Deviation from Figure 1 (see header): the erased entry may have been
    // blocking a completed suffix at the head, which must advance vtnc —
    // and signal waiters — exactly as Complete() does.
    if (!literal_figure1_discard_) {
      if (auto new_vtnc = queue_.DrainCompletedHead()) {
        MVCC_CHECK(*new_vtnc >= vtnc_.load(std::memory_order_relaxed));
        vtnc_.store(*new_vtnc, std::memory_order_release);
        SimObserve(this, "vc.vtnc", *new_vtnc,
                   MakeNumber(counter_.load(std::memory_order_relaxed), 0));
      }
    }
  }
  cv_.notify_all();
}

void VersionControl::Complete(TxnNumber tn) {
  SimSchedulePoint("vc.complete");
  if (locked_core_) {
    CompleteLocked(tn);
    return;
  }
  RingResolve(tn, kSlotComplete);
}

void VersionControl::CompleteLocked(TxnNumber tn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.MarkComplete(tn);
    if (auto new_vtnc = queue_.DrainCompletedHead()) {
      MVCC_CHECK(*new_vtnc >= vtnc_.load(std::memory_order_relaxed));
      vtnc_.store(*new_vtnc, std::memory_order_release);
      SimObserve(this, "vc.vtnc", *new_vtnc,
                 MakeNumber(counter_.load(std::memory_order_relaxed), 0));
    }
  }
  cv_.notify_all();
}

void VersionControl::RingResolve(TxnNumber tn, uint64_t state) {
  // Only the owning transaction resolves its slot, so a plain release
  // store suffices: it publishes every write the transaction installed
  // before resolving (the drain's acquire load pairs with it).
  ring_[tn & kRingMask].store((tn << 2) | state, std::memory_order_release);
  RingDrain();
  WakeWaitersIfAny();
}

void VersionControl::RingDrain() {
  while (true) {
    const TxnNumber d = drain_.load(std::memory_order_acquire);
    const TxnNumber next = d + 1;
    const uint64_t v =
        ring_[next & kRingMask].load(std::memory_order_acquire);
    const uint64_t complete_v = (next << 2) | kSlotComplete;
    const uint64_t discard_v = (next << 2) | kSlotDiscarded;
    if (v != complete_v && v != discard_v) {
      // Head is active, a registration in flight, or never assigned
      // (counter jump). Only the last case lets the drain proceed.
      if (v == 0 && gap_count_.load(std::memory_order_seq_cst) != 0 &&
          TryJumpGap(d)) {
        continue;
      }
      return;
    }
    TxnNumber expected = d;
    if (!drain_.compare_exchange_strong(expected, next,
                                        std::memory_order_seq_cst)) {
      continue;  // another drainer consumed it; re-read the cursor
    }
    // This thread consumed slot `next`: free it for tn next + kRingSize.
    // CAS, not a blind store — the registration of next + kRingSize may
    // already have observed the advanced cursor and claimed the slot, in
    // which case it must not be clobbered.
    uint64_t occupant = v;
    ring_[next & kRingMask].compare_exchange_strong(
        occupant, 0, std::memory_order_seq_cst);
    if (v == complete_v) AdvanceVtncTo(next);
    // Discarded numbers advance the drain but never visibility: vtnc
    // skips them without ever naming them (VcModel semantics).
  }
}

bool VersionControl::TryJumpGap(TxnNumber d) {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = gaps_.find(d + 1);
  if (it == gaps_.end()) return false;
  const TxnNumber last = it->second;
  TxnNumber expected = d;
  if (drain_.compare_exchange_strong(expected, last,
                                     std::memory_order_seq_cst)) {
    gap_tns_.fetch_sub(last - it->first + 1, std::memory_order_relaxed);
    gaps_.erase(it);
    gap_count_.fetch_sub(1, std::memory_order_seq_cst);
  }
  // Won or lost, the cursor moved: retry the drain loop.
  return true;
}

void VersionControl::AdvanceVtncTo(TxnNumber target) {
  TxnNumber cur = vtnc_.load(std::memory_order_relaxed);
  while (cur < target &&
         !vtnc_.compare_exchange_weak(cur, target,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
  }
  if (cur < target) {
    // This thread performed the advance. Under simulation tasks are
    // serialized, so the observation stream itself is monotone.
    SimObserve(this, "vc.vtnc", target,
               counter_.load(std::memory_order_relaxed));
  }
}

void VersionControl::WakeWaitersIfAny() {
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  // The empty critical section serializes with a waiter that has
  // registered in waiters_ but not yet slept: by the time we hold mu_,
  // it either re-checked its predicate (seeing our seq_cst update) or is
  // inside cv_.wait and will receive the notify.
  { std::lock_guard<std::mutex> guard(mu_); }
  cv_.notify_all();
}

void VersionControl::Promote(TxnNumber from, TxnNumber to) {
  SimSchedulePoint("vc.promote");
  MVCC_CHECK(locked_core_ && "Promote requires the locked (site) core");
  std::lock_guard<std::mutex> guard(mu_);
  if (from != to) {
    MVCC_CHECK(to > from && "promotion must move forward in serial order");
    MVCC_CHECK(queue_.Contains(from));
    queue_.Erase(from);
    queue_.Insert(to, /*txn=*/0);
  }
  const uint64_t needed = CounterPart(to) + 1;
  uint64_t c = counter_.load(std::memory_order_relaxed);
  while (c < needed &&
         !counter_.compare_exchange_weak(c, needed,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
  }
  if (from != to) {
    SimObserve(this, "vc.promote", to,
               MakeNumber(counter_.load(std::memory_order_relaxed), 0));
  }
}

void VersionControl::AdvanceCounterPast(TxnNumber tn) {
  SimSchedulePoint("vc.advance_counter");
  const uint64_t needed = CounterPart(tn) + 1;
  uint64_t c = counter_.load(std::memory_order_seq_cst);
  while (c < needed) {
    if (counter_.compare_exchange_weak(c, needed,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      if (!locked_core_) {
        // Numbers [c, needed) will never be assigned; record the range
        // so the ring drain can step over it (the map queue simply never
        // sees such numbers).
        {
          std::lock_guard<std::mutex> guard(mu_);
          gaps_[c] = needed - 1;
          gap_tns_.fetch_add(needed - c, std::memory_order_relaxed);
        }
        gap_count_.fetch_add(1, std::memory_order_seq_cst);
        // A drain may already be parked at the gap head; push it through
        // and wake anyone waiting on the resulting quiescence.
        RingDrain();
        WakeWaitersIfAny();
      }
      return;
    }
  }
}

void VersionControl::RecoverTo(TxnNumber last_committed) {
  std::lock_guard<std::mutex> guard(mu_);
  if (locked_core_) {
    MVCC_CHECK(queue_.empty() && "recovery with transactions in flight");
  } else {
    MVCC_CHECK(counter_.load(std::memory_order_relaxed) - 1 ==
                   drain_.load(std::memory_order_relaxed) +
                       gap_tns_.load(std::memory_order_relaxed) &&
               "recovery with transactions in flight");
    // Every replayed number is complete and durable: jump the drain
    // cursor directly (no slots were ever occupied), dropping any gap
    // bookkeeping the jump swallows.
    if (drain_.load(std::memory_order_relaxed) < last_committed) {
      drain_.store(last_committed, std::memory_order_seq_cst);
      for (auto it = gaps_.begin(); it != gaps_.end();) {
        if (it->second <= last_committed) {
          gap_tns_.fetch_sub(it->second - it->first + 1,
                             std::memory_order_relaxed);
          gap_count_.fetch_sub(1, std::memory_order_seq_cst);
          it = gaps_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (vtnc_.load(std::memory_order_relaxed) < last_committed) {
    vtnc_.store(last_committed, std::memory_order_release);
  }
  const uint64_t needed = CounterPart(last_committed) + 1;
  uint64_t c = counter_.load(std::memory_order_relaxed);
  while (c < needed &&
         !counter_.compare_exchange_weak(c, needed,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
  }
}

bool VersionControl::RingHasActiveAtOrBelowLocked(TxnNumber sn) const {
  const TxnNumber last = counter_.load(std::memory_order_seq_cst) - 1;
  const TxnNumber bound = std::min(sn, last);
  TxnNumber t = drain_.load(std::memory_order_seq_cst) + 1;
  while (t <= bound) {
    const uint64_t v = ring_[t & kRingMask].load(std::memory_order_seq_cst);
    if (v == ((t << 2) | kSlotComplete) ||
        v == ((t << 2) | kSlotDiscarded)) {
      ++t;  // resolved; the drain just has not consumed it yet
      continue;
    }
    if (v == 0) {
      // Free: either a registration in flight (counts as active — its
      // writes are not yet final) or a never-assigned counter jump.
      auto it = gaps_.upper_bound(t);
      if (it != gaps_.begin()) {
        --it;
        if (t >= it->first && t <= it->second) {
          t = it->second + 1;
          continue;
        }
      }
    }
    return true;
  }
  return false;
}

void VersionControl::WaitNoActiveAtOrBelow(TxnNumber sn) {
  std::unique_lock<std::mutex> lock(mu_);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  SimAwareCvWait(cv_, lock, "vc.wait_no_active", [this, sn] {
    return locked_core_ ? !queue_.HasActiveAtOrBelow(sn)
                        : !RingHasActiveAtOrBelowLocked(sn);
  });
  waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

TxnNumber VersionControl::StartAtLeast(TxnNumber tn) {
  std::unique_lock<std::mutex> lock(mu_);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  SimAwareCvWait(cv_, lock, "vc.start_at_least", [this, tn] {
    return vtnc_.load(std::memory_order_seq_cst) >= tn;
  });
  waiters_.fetch_sub(1, std::memory_order_seq_cst);
  return vtnc_.load(std::memory_order_acquire);
}

TxnNumber VersionControl::NextNumber() const {
  return MakeNumber(counter_.load(std::memory_order_seq_cst), 0);
}

size_t VersionControl::QueueSize() const {
  if (locked_core_) {
    std::lock_guard<std::mutex> guard(mu_);
    return queue_.size();
  }
  // Load drain_ BEFORE counter_: drain_ only grows and never passes
  // assigned, so this order bounds the snapshot (drained <= assigned)
  // even when completions land between the two loads. The reverse order
  // let a concurrent Complete push drain_ past the stale assigned value
  // and underflow `pending` to ~2^64.
  const uint64_t drained = drain_.load(std::memory_order_acquire);
  const uint64_t assigned = counter_.load(std::memory_order_acquire) - 1;
  const uint64_t skipped = gap_tns_.load(std::memory_order_acquire);
  const uint64_t pending = assigned - drained;
  return pending > skipped ? static_cast<size_t>(pending - skipped) : 0;
}

}  // namespace mvcc
