#include "sim/sim_scheduler.h"

#include <sstream>
#include <utility>

#include "common/check.h"

namespace mvcc {
namespace sim {

namespace {

// Thrown through a task body when the scheduler tears the run down
// (deadlock, step cap, or WAL crash). Task bodies in this codebase are
// exception-safe: Transaction destructors abort in-flight work.
struct SimKilled {};

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

}  // namespace

thread_local SimScheduler::Task* SimScheduler::tls_task_ = nullptr;

std::string SimReport::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " steps=" << steps << " hash=" << std::hex
      << schedule_hash << std::dec << " commits=" << commits
      << " aborts=" << aborts;
  if (deadlock) out << " DEADLOCK";
  if (wal_crashed) out << " wal-crash";
  if (env_crashed) out << " env-crash";
  if (!violations.empty()) {
    out << " violations=" << violations.size() << " [";
    for (size_t i = 0; i < violations.size(); ++i) {
      if (i > 0) out << "; ";
      out << violations[i];
    }
    out << "]";
  }
  return out.str();
}

SimScheduler::SimScheduler(const Options& options)
    : options_(options),
      rng_(options.seed),
      // Independent stream so adding a schedule decision does not shift
      // every later fault decision (and vice versa).
      fault_rng_(options.seed ^ 0xF4017A1EC7ED5EEDULL) {
  report_.seed = options.seed;
  report_.schedule_hash = kFnvOffset;
}

SimScheduler::~SimScheduler() {
  // Run() joins everything; guard against a scheduler that was
  // constructed but never run.
  for (auto& task : tasks_) {
    if (task->thread.joinable()) {
      {
        std::lock_guard<std::mutex> guard(lock_);
        kill_all_.store(true, std::memory_order_release);
        current_ = task->index;
      }
      cv_.notify_all();
      task->thread.join();
    }
  }
  if (InstalledSimHook() == this) InstallSimHook(nullptr);
}

void SimScheduler::Spawn(std::string name, bool expect_wait_free,
                         std::function<void()> body) {
  MVCC_CHECK(!ran_);
  auto task = std::make_unique<Task>();
  task->name = std::move(name);
  task->expect_wait_free = expect_wait_free;
  task->body = std::move(body);
  task->index = static_cast<int>(tasks_.size());
  tasks_.push_back(std::move(task));
}

void SimScheduler::AddViolation(std::string violation) {
  std::lock_guard<std::mutex> guard(lock_);
  report_.violations.push_back(std::move(violation));
}

void SimScheduler::HashMix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    report_.schedule_hash ^= (v >> (8 * i)) & 0xFF;
    report_.schedule_hash *= kFnvPrime;
  }
}

void SimScheduler::HashMixString(const char* s) {
  for (; *s != '\0'; ++s) {
    report_.schedule_hash ^= static_cast<unsigned char>(*s);
    report_.schedule_hash *= kFnvPrime;
  }
}

void SimScheduler::TaskMain(Task* task) {
  tls_task_ = task;
  {
    std::unique_lock<std::mutex> lock(lock_);
    cv_.wait(lock, [&] { return current_ == task->index; });
    if (kill_all_.load(std::memory_order_acquire)) task->killed = true;
  }
  if (!task->killed) {
    try {
      task->body();
    } catch (const SimKilled&) {
      // Teardown requested mid-body; destructors already ran.
    }
  }
  {
    std::lock_guard<std::mutex> guard(lock_);
    task->done = true;
    last_yield_blocked_ = false;  // finishing counts as progress
    current_ = kNoTask;
  }
  cv_.notify_all();
}

void SimScheduler::YieldFromTask(const char* where, bool blocked) {
  Task* task = tls_task_;
  if (task == nullptr) {
    // A non-simulated thread hit a hook point while a simulation is
    // installed (should not happen in practice; be safe, not wedged).
    std::this_thread::yield();
    return;
  }
  if (task->killed) return;  // unwinding — run destructors to completion
  std::unique_lock<std::mutex> lock(lock_);
  task->last_where = where;
  if (blocked && task->expect_wait_free && !task->wait_free_violated) {
    task->wait_free_violated = true;
    report_.violations.push_back("wait-freedom: read-only task '" +
                                 task->name + "' blocked at " + where);
  }
  HashMix(static_cast<uint64_t>(task->index));
  HashMixString(where);
  HashMix(blocked ? 1 : 2);
  last_yield_blocked_ = blocked;
  current_ = kNoTask;
  cv_.notify_all();
  cv_.wait(lock, [&] { return current_ == task->index; });
  if (kill_all_.load(std::memory_order_acquire)) {
    task->killed = true;
    throw SimKilled{};
  }
}

void SimScheduler::SchedulePoint(const char* where) {
  YieldFromTask(where, /*blocked=*/false);
}

void SimScheduler::BlockedPoint(const char* where) {
  YieldFromTask(where, /*blocked=*/true);
}

void SimScheduler::Observe(const void* source, const char* what, uint64_t a,
                           uint64_t b) {
  // Runs in the (single) currently-executing task, possibly under module
  // locks — never yields. Successive Observe calls from different task
  // threads are ordered by the lock_ handoffs between turns, so plain
  // member access is race-free. `source` is a pointer and varies across
  // runs, so it must never feed the schedule hash.
  HashMixString(what);
  HashMix(a);
  HashMix(b);
  const bool vc_event = what[0] == 'v' && what[1] == 'c' && what[2] == '.';
  if (vc_event && b != 0 && a >= b) {
    std::ostringstream out;
    out << "vtnc invariant: " << what << " reported number " << a
        << " >= counter " << b;
    report_.violations.push_back(out.str());
  }
  if (vc_event && what[3] == 'v') {  // "vc.vtnc"
    uint64_t& last = last_vtnc_[source];
    if (a < last) {
      std::ostringstream out;
      out << "vtnc monotonicity: advanced backwards from " << last << " to "
          << a;
      report_.violations.push_back(out.str());
    }
    last = a;
  }
}

bool SimScheduler::ShouldDropMessage(int from_site, int to_site) {
  (void)from_site;
  (void)to_site;
  if (options_.faults.message_drop_probability <= 0.0) return false;
  const bool drop = fault_rng_.Bernoulli(options_.faults.message_drop_probability);
  HashMix(drop ? 0xD0D0 : 0xACCE);
  return drop;
}

uint32_t SimScheduler::MessageDelaySteps(int from_site, int to_site) {
  (void)from_site;
  (void)to_site;
  if (options_.faults.message_delay_max_steps == 0) return 0;
  const uint32_t steps = static_cast<uint32_t>(
      fault_rng_.Uniform(options_.faults.message_delay_max_steps + 1));
  HashMix(0xDE1A00ULL | steps);
  return steps;
}

bool SimScheduler::OnWalAppend(uint64_t tn) {
  HashMix(0x3A1000ULL);
  HashMix(tn);
  const int64_t index =
      wal_appends_.fetch_add(1, std::memory_order_relaxed);
  if (options_.faults.crash_at_wal_append >= 0 &&
      index >= options_.faults.crash_at_wal_append) {
    wal_crash_pending_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

bool SimScheduler::OnEnvOp(const char* op, uint64_t index) {
  HashMix(0x3A2000ULL);
  HashMixString(op);
  HashMix(index);
  if (options_.faults.crash_at_env_op >= 0 &&
      (env_crashed_.load(std::memory_order_relaxed) ||
       index >= static_cast<uint64_t>(options_.faults.crash_at_env_op))) {
    env_crashed_.store(true, std::memory_order_relaxed);
    report_.env_crashed = true;
    return true;
  }
  return false;
}

void SimScheduler::RunTaskOnce(std::unique_lock<std::mutex>& lock,
                               Task* task) {
  current_ = task->index;
  cv_.notify_all();
  cv_.wait(lock, [&] { return current_ == kNoTask; });
}

void SimScheduler::KillRemaining(std::unique_lock<std::mutex>& lock) {
  kill_all_.store(true, std::memory_order_release);
  // Resume each live task until it unwinds and finishes. A task may
  // still hit hook points while unwinding; those no-op (task->killed).
  while (true) {
    Task* alive = nullptr;
    for (auto& task : tasks_) {
      if (!task->done) {
        alive = task.get();
        break;
      }
    }
    if (alive == nullptr) break;
    RunTaskOnce(lock, alive);
  }
}

void SimScheduler::Run() {
  MVCC_CHECK(!ran_);
  ran_ = true;
  MVCC_CHECK(InstalledSimHook() == nullptr);
  InstallSimHook(this);
  for (auto& task : tasks_) {
    task->thread = std::thread(&SimScheduler::TaskMain, this, task.get());
  }

  {
    std::unique_lock<std::mutex> lock(lock_);
    uint64_t blocked_streak = 0;
    std::vector<Task*> runnable;
    while (true) {
      runnable.clear();
      for (auto& task : tasks_) {
        if (!task->done) runnable.push_back(task.get());
      }
      if (runnable.empty()) break;

      if (wal_crash_pending_.load(std::memory_order_acquire)) {
        report_.wal_crashed = true;
        KillRemaining(lock);
        break;
      }
      if (report_.steps >= options_.max_steps) {
        report_.violations.push_back("step cap exceeded (livelock?)");
        KillRemaining(lock);
        break;
      }
      if (blocked_streak >= options_.blocked_streak_limit &&
          blocked_streak >= runnable.size()) {
        report_.deadlock = true;
        std::ostringstream out;
        out << "deadlock: no task progressed in " << blocked_streak
            << " yields:";
        for (Task* task : runnable) {
          out << " " << task->name << "@" << task->last_where;
        }
        report_.violations.push_back(out.str());
        KillRemaining(lock);
        break;
      }

      Task* pick = runnable[rng_.Uniform(runnable.size())];
      RunTaskOnce(lock, pick);
      ++report_.steps;
      blocked_streak = last_yield_blocked_ ? blocked_streak + 1 : 0;
    }
  }

  for (auto& task : tasks_) task->thread.join();
  InstallSimHook(nullptr);
}

}  // namespace sim
}  // namespace mvcc
