#ifndef MVCC_SIM_SIM_SCHEDULER_H_
#define MVCC_SIM_SIM_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/sim_hook.h"

namespace mvcc {
namespace sim {

// Fault-injection plan for one simulated execution. All decisions draw
// from the scheduler's seeded PRNG, so a plan plus a seed reproduces the
// exact same faults at the exact same schedule points.
struct FaultPlan {
  // Probability that a distributed message is dropped (the sender sees
  // delivery failure; decided 2PC outcomes are retransmitted).
  double message_drop_probability = 0.0;

  // A delivered message is additionally delayed by Uniform(0, max]
  // scheduler steps, letting other tasks run "during propagation".
  uint32_t message_delay_max_steps = 0;

  // Crash the write-ahead log at the Nth append (0-based): that record
  // and all later ones are lost, tasks are torn down, and the caller
  // verifies recovery from the surviving prefix. -1 = never.
  int64_t crash_at_wal_append = -1;

  // Crash the storage Env at the Nth mutating file-system syscall
  // (0-based, counted by FaultyEnv across appends/syncs/renames/...):
  // that syscall and every later one never reaches the disk. The caller
  // then recovers from the directory as written and checks the
  // durability oracle. -1 = never.
  int64_t crash_at_env_op = -1;
};

// Outcome of one simulated execution, replayable from `seed`.
struct SimReport {
  uint64_t seed = 0;
  uint64_t steps = 0;          // scheduler decisions taken
  uint64_t schedule_hash = 0;  // FNV-1a over the full interleaving
  bool deadlock = false;       // no task could make progress
  bool wal_crashed = false;    // fault plan crashed the WAL
  bool env_crashed = false;    // fault plan crashed the storage Env
  uint64_t commits = 0;        // filled by the explorer
  uint64_t aborts = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  // One-line digest, including the seed needed to replay.
  std::string Summary() const;
};

// A deterministic cooperative scheduler for concurrency testing
// (the "schedule exploration" style of Faleiro & Abadi's MVCC analyses):
// N logical tasks run over the real Database / VersionControl / CC stack,
// but only ONE task executes at any instant. Control passes between
// tasks exclusively at the SimHook points threaded through the
// synchronization layers, and the next runnable task is chosen by a
// seeded PRNG — so every interleaving, fault and failure is a pure
// function of the 64-bit seed and can be replayed exactly.
//
// Would-be condition-variable sleeps become BlockedPoint yields: the
// blocked task stays schedulable and re-checks its predicate each time
// it is picked. If every remaining task keeps yielding blocked, no task
// can make progress — a deadlock, reported with each task's last
// position. Tasks flagged `expect_wait_free` (read-only transactions
// under the VC protocols, Figure 2) must never block at all; a single
// BlockedPoint from one is reported as a wait-freedom violation.
class SimScheduler final : public SimHook {
 public:
  struct Options {
    uint64_t seed = 1;
    // Hard cap on scheduler decisions (runaway guard).
    uint64_t max_steps = 2'000'000;
    // Consecutive blocked yields (across all tasks) before the run is
    // declared deadlocked. With t tasks, the chance a runnable task is
    // never picked within this budget is (1-1/t)^limit ~ 0.
    uint64_t blocked_streak_limit = 20'000;
    FaultPlan faults;
  };

  explicit SimScheduler(const Options& options);
  ~SimScheduler() override;
  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  // Adds a task before Run(). `expect_wait_free` enforces the read-only
  // wait-freedom invariant on this task.
  void Spawn(std::string name, bool expect_wait_free,
             std::function<void()> body);

  // Installs itself as the global SimHook, runs every task to
  // completion (or until deadlock / WAL crash / step cap), uninstalls,
  // and joins. Call at most once.
  void Run();

  // True once the scheduler is tearing tasks down; long-running task
  // bodies should return promptly when they see it.
  bool Killed() const { return kill_all_.load(std::memory_order_acquire); }

  // Records an invariant violation into the report (task bodies and the
  // explorer's post-run checks both use this).
  void AddViolation(std::string violation);

  SimReport& report() { return report_; }

  // ---- SimHook ----
  void SchedulePoint(const char* where) override;
  void BlockedPoint(const char* where) override;
  void Observe(const void* source, const char* what, uint64_t a,
               uint64_t b) override;
  bool ShouldDropMessage(int from_site, int to_site) override;
  uint32_t MessageDelaySteps(int from_site, int to_site) override;
  bool OnWalAppend(uint64_t tn) override;
  bool OnEnvOp(const char* op, uint64_t index) override;

 private:
  struct Task {
    std::string name;
    bool expect_wait_free = false;
    bool wait_free_violated = false;
    std::function<void()> body;
    std::thread thread;
    int index = 0;
    bool done = false;
    bool killed = false;           // unwinding; points become no-ops
    const char* last_where = "";   // last yield position (diagnostics)
  };

  static constexpr int kNoTask = -1;
  // The task executing on this thread (null on non-simulated threads).
  static thread_local Task* tls_task_;

  void TaskMain(Task* task);
  // Yields from the running task back to the scheduler. Throws the
  // internal kill exception when teardown begins.
  void YieldFromTask(const char* where, bool blocked);
  void HashMix(uint64_t v);
  void HashMixString(const char* s);
  // Resumes `task` and sleeps until it yields back or finishes.
  // Caller holds lock_.
  void RunTaskOnce(std::unique_lock<std::mutex>& lock, Task* task);
  void KillRemaining(std::unique_lock<std::mutex>& lock);

  const Options options_;
  Random rng_;        // schedule decisions
  Random fault_rng_;  // fault-injection decisions
  SimReport report_;

  std::mutex lock_;
  std::condition_variable cv_;
  int current_ = kNoTask;  // index of the task allowed to run
  bool last_yield_blocked_ = false;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::atomic<bool> kill_all_{false};
  std::atomic<bool> wal_crash_pending_{false};
  std::atomic<int64_t> wal_appends_{0};
  std::atomic<bool> env_crashed_{false};
  bool ran_ = false;

  // Last observed vtnc per version-control instance (monotonicity).
  std::unordered_map<const void*, uint64_t> last_vtnc_;
};

}  // namespace sim
}  // namespace mvcc

#endif  // MVCC_SIM_SIM_SCHEDULER_H_
