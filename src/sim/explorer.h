#ifndef MVCC_SIM_EXPLORER_H_
#define MVCC_SIM_EXPLORER_H_

#include <cstdint>

#include "cc/lock_manager.h"
#include "sim/sim_scheduler.h"
#include "txn/database.h"

namespace mvcc {
namespace sim {

// One simulated execution over a single-node Database: N read-write
// tasks and M read-only tasks run a seeded random workload under the
// deterministic scheduler, and the resulting history is checked against
// the full oracle stack — MVSG one-copy serializability (Theorem 1),
// the Section 5.1 lemmas, the vtnc invariants (monotone, < tnc, reaches
// every committed tn at quiesce, queue drained), read-only wait-freedom
// (Figure 2), and — when the fault plan crashes the WAL — recovery-
// from-prefix consistency.
struct ExploreOptions {
  ProtocolKind protocol = ProtocolKind::kVc2pl;
  uint64_t seed = 1;

  int writer_tasks = 3;
  int reader_tasks = 2;
  int txns_per_task = 5;
  int ops_per_txn = 4;
  uint64_t keys = 8;
  double write_fraction = 0.7;
  // Chance a read-only transaction issues a snapshot scan instead of a
  // point read.
  double scan_fraction = 0.2;
  // Chance a writer voluntarily aborts after finishing its operations
  // (exercises Discard with a populated VCQueue).
  double user_abort_probability = 0.1;

  // Adds one task using BeginReadOnlyAtLeast on the first committed tn
  // (the Section 6 currency fix; blocks by design, so not wait-free).
  bool currency_reader = false;

  // Injects the Figure-1-literal VCdiscard (no head drain) — a known
  // liveness bug the oracle must catch. Used by the replay tests.
  bool literal_figure1_discard = false;

  // Runs with the write-ahead log on even without crash injection, so
  // the group-commit pipeline (leader election, follower waits, batched
  // AppendGroup) is exercised under schedule exploration. Implied by
  // faults.crash_at_wal_append >= 0.
  bool enable_wal = false;

  // Adds a task that drives GarbageCollector::RunOnce between schedule
  // points while writers run, so prune-in-place, array republish, slab
  // retirement, and epoch advance interleave with installs and
  // latch-free reads inside the explored schedule space (all of them
  // feed the schedule hash through their SimObserve points). Without
  // it reclamation only happens implicitly, at retire-threshold
  // crossings.
  bool gc_task = false;

  DeadlockPolicy deadlock_policy = DeadlockPolicy::kWaitDie;
  FaultPlan faults;
  uint64_t max_steps = 2'000'000;
};

SimReport ExploreOnce(const ExploreOptions& options);

// One simulated execution over the Section 6 distributed database:
// cross-site read-write transactions (2PC + number agreement) and
// read-only snapshot transactions, optionally under message drops and
// delays. Checks global MVSG serializability over the merged history,
// the lemmas, per-site vtnc invariants and queue drain, and 2PC
// atomicity (every committed transaction's writes visible at all its
// sites).
struct DistExploreOptions {
  uint64_t seed = 1;
  int sites = 3;

  int writer_tasks = 3;
  int reader_tasks = 2;
  int txns_per_task = 3;
  int ops_per_txn = 3;
  uint64_t keys = 9;
  double write_fraction = 0.7;
  double scan_fraction = 0.15;

  FaultPlan faults;
  uint64_t max_steps = 2'000'000;
};

SimReport ExploreDistributedOnce(const DistExploreOptions& options);

// One simulated execution over a replicated deployment (src/repl/): a
// primary Database ships committed batches to N replicas over the
// simulated network while routed read-only transactions are served from
// replica snapshots under a staleness budget. Chaos actions crash
// replicas (losing all volatile state) and truncate the primary's WAL
// under a checkpoint (forcing the tailing overrun / resync path), on top
// of the usual message drops and delays. Checks: MVSG one-copy
// serializability and the lemmas over the MERGED history (primary
// read-write + primary and replica read-only), vtnc invariants at
// quiesce, routed-reader wait-freedom, and full convergence — every
// replica serviceable, at the primary's final vtnc, with byte-identical
// per-key state.
struct ReplExploreOptions {
  ProtocolKind protocol = ProtocolKind::kVc2pl;
  uint64_t seed = 1;

  int replicas = 2;
  int writer_tasks = 2;
  int reader_tasks = 2;
  int txns_per_task = 4;
  int ops_per_txn = 3;
  uint64_t keys = 8;
  double write_fraction = 0.7;
  double scan_fraction = 0.15;
  double user_abort_probability = 0.1;

  // Largest visibility lag (vtnc - rvtnc, in transaction numbers) a
  // replica may have and still serve routed reads.
  TxnNumber staleness_budget = 4;

  // Chaos schedule: how many times a (seed-chosen) replica crashes and
  // how many times the WAL is truncated under a fresh checkpoint while
  // the stream is tailing it.
  int replica_crashes = 0;
  int wal_truncations = 0;

  // crash_at_wal_append is ignored here (forced off): the primary must
  // outlive the run for convergence to be checkable.
  FaultPlan faults;
  uint64_t max_steps = 2'000'000;
};

SimReport ExploreReplicationOnce(const ReplExploreOptions& options);

// Deterministic per-task seed derivation (SplitMix64 over seed ^ salt),
// so adding a task never perturbs the streams of existing tasks.
uint64_t DeriveTaskSeed(uint64_t seed, uint64_t salt);

}  // namespace sim
}  // namespace mvcc

#endif  // MVCC_SIM_EXPLORER_H_
