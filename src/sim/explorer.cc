#include "sim/explorer.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "dist/distributed_db.h"
#include "history/serializability.h"
#include "recovery/recovery.h"
#include "repl/read_router.h"
#include "repl/replica.h"
#include "repl/replication_stream.h"

namespace mvcc {
namespace sim {

namespace {

bool IsVcProtocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kVc2pl:
    case ProtocolKind::kVcTo:
    case ProtocolKind::kVcOcc:
    case ProtocolKind::kVcAdaptive:
      return true;
    default:
      return false;
  }
}

std::string ValueFor(int task, int txn, int op) {
  std::ostringstream out;
  out << "w" << task << ".t" << txn << ".o" << op;
  return out.str();
}

// Largest committed read-write transaction number in the history.
TxnNumber MaxCommittedTn(const std::vector<TxnRecord>& records) {
  TxnNumber max_tn = 0;
  for (const TxnRecord& r : records) {
    if (r.cls == TxnClass::kReadWrite) max_tn = std::max(max_tn, r.number);
  }
  return max_tn;
}

void CheckHistoryOracle(const History& history, SimScheduler* sched) {
  const SerializabilityVerdict verdict = CheckOneCopySerializable(history);
  if (!verdict.one_copy_serializable) {
    std::ostringstream out;
    out << "MVSG cycle among committed transactions:";
    for (TxnId id : verdict.cycle) out << " T" << id;
    sched->AddViolation(out.str());
  }
  for (const std::string& v : CheckLemmas(history.Records())) {
    sched->AddViolation("lemma: " + v);
  }
}

// After every task has quiesced (including forced teardown — aborts run
// through the normal Discard path), version control must have drained:
// no registered transaction is left and visibility has caught up with
// every committed transaction.
void CheckVcQuiesced(VersionControl& vc, TxnNumber max_committed_tn,
                     const char* label, SimScheduler* sched) {
  if (vc.QueueSize() != 0) {
    std::ostringstream out;
    out << label << ": VCQueue not drained at quiesce (size "
        << vc.QueueSize() << ", vtnc " << vc.vtnc() << ")";
    sched->AddViolation(out.str());
  }
  if (vc.vtnc() < max_committed_tn) {
    std::ostringstream out;
    out << label << ": vtnc stalled at " << vc.vtnc()
        << " below committed tn " << max_committed_tn;
    sched->AddViolation(out.str());
  }
  if (vc.vtnc() >= vc.NextNumber()) {
    std::ostringstream out;
    out << label << ": vtnc " << vc.vtnc() << " >= tnc "
        << vc.NextNumber();
    sched->AddViolation(out.str());
  }
}

// The WAL crashed mid-run: the surviving log is an exact prefix of the
// append sequence. Recovery from that prefix must reproduce exactly the
// replay of those batches — and the recovered database must be
// serviceable for new transactions.
void CheckCrashRecovery(const ExploreOptions& options,
                        const DatabaseOptions& dopt, WriteAheadLog* wal,
                        SimScheduler* sched) {
  std::unique_ptr<Database> recovered =
      RecoverDatabase(dopt, /*checkpoint=*/nullptr, *wal);

  // Expected post-recovery image: per key, the write of the largest
  // durable tn (versions install in tn order), else the preload value.
  std::map<ObjectKey, std::pair<TxnNumber, Value>> expected;
  for (const CommitBatch& batch : wal->Batches()) {
    for (const LoggedWrite& w : batch.writes) {
      auto& slot = expected[w.key];
      if (batch.tn >= slot.first) slot = {batch.tn, w.value};
    }
  }
  for (ObjectKey key = 0; key < options.keys; ++key) {
    auto it = expected.find(key);
    const Value want =
        it == expected.end() ? dopt.initial_value : it->second.second;
    Result<Value> got = recovered->Get(key);
    if (!got.ok() || *got != want) {
      std::ostringstream out;
      out << "crash recovery: key " << key << " expected '" << want
          << "' got "
          << (got.ok() ? "'" + *got + "'" : got.status().ToString());
      sched->AddViolation(out.str());
    }
  }
  const TxnNumber durable = wal->MaxTn();
  if (recovered->version_control().vtnc() < durable) {
    std::ostringstream out;
    out << "crash recovery: vtnc " << recovered->version_control().vtnc()
        << " below last durable tn " << durable;
    sched->AddViolation(out.str());
  }
  CheckVcQuiesced(recovered->version_control(), durable, "recovered",
                  sched);
  // Serviceability: the recovered database accepts new transactions.
  if (!recovered->Put(0, "post-recovery").ok()) {
    sched->AddViolation("crash recovery: post-recovery write failed");
  } else {
    Result<Value> reread = recovered->Get(0);
    if (!reread.ok() || *reread != "post-recovery") {
      sched->AddViolation("crash recovery: post-recovery write invisible");
    }
  }
}

}  // namespace

uint64_t DeriveTaskSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SimReport ExploreOnce(const ExploreOptions& options) {
  DatabaseOptions dopt;
  dopt.protocol = options.protocol;
  dopt.preload_keys = options.keys;
  dopt.record_history = true;
  dopt.deadlock_policy = options.deadlock_policy;
  dopt.enable_wal =
      options.enable_wal || options.faults.crash_at_wal_append >= 0;
  // The gc task drives GarbageCollector::RunOnce directly; the
  // collector only exists when enable_gc is on (no background thread is
  // started — the sim owns the cadence).
  dopt.enable_gc = options.gc_task;
  if (options.gc_task) {
    // Reclamation events feed the schedule hash, and the epoch manager
    // is process-global: leftovers retired by a previous run (or test)
    // would shift this run's retire-threshold advances and expired
    // counts. Start every run from a drained retire list so same-seed
    // replays see identical reclamation interleavings. (No hook is
    // installed yet, so these advances hash nothing.)
    for (int i = 0; i < 4; ++i) EpochManager::Global().Advance();
  }
  Database db(dopt);
  if (options.literal_figure1_discard) {
    db.version_control().SetLiteralFigure1DiscardForTest(true);
  }

  SimScheduler::Options sopt;
  sopt.seed = options.seed;
  sopt.max_steps = options.max_steps;
  sopt.faults = options.faults;
  SimScheduler sched(sopt);

  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<TxnNumber> first_commit_tn{0};
  std::atomic<int> writers_done{0};

  for (int w = 0; w < options.writer_tasks; ++w) {
    sched.Spawn(
        "writer" + std::to_string(w), /*expect_wait_free=*/false,
        [&, w] {
          Random rng(DeriveTaskSeed(options.seed, 0x100 + w));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            auto txn = db.Begin(TxnClass::kReadWrite);
            bool doomed = false;
            for (int op = 0; op < options.ops_per_txn; ++op) {
              SimSchedulePoint("task.op");
              const ObjectKey key = rng.Uniform(options.keys);
              if (rng.Bernoulli(options.write_fraction)) {
                if (!txn->Write(key, ValueFor(w, t, op)).ok()) {
                  doomed = true;
                  break;
                }
              } else if (!txn->Read(key).ok()) {
                doomed = true;
                break;
              }
            }
            if (doomed || !txn->active()) {
              aborts.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (rng.Bernoulli(options.user_abort_probability)) {
              txn->Abort();
              aborts.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (txn->Commit().ok()) {
              commits.fetch_add(1, std::memory_order_relaxed);
              TxnNumber expected = 0;
              first_commit_tn.compare_exchange_strong(expected,
                                                      txn->txn_number());
            } else {
              aborts.fetch_add(1, std::memory_order_relaxed);
            }
          }
          writers_done.fetch_add(1, std::memory_order_release);
        });
  }

  // Figure 2 read-only transactions: under the VC protocols these must
  // be wait-free — a single BlockedPoint is an invariant violation.
  const bool wait_free_readers = IsVcProtocol(options.protocol);
  for (int r = 0; r < options.reader_tasks; ++r) {
    sched.Spawn(
        "reader" + std::to_string(r), wait_free_readers, [&, r] {
          Random rng(DeriveTaskSeed(options.seed, 0x200 + r));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            auto txn = db.Begin(TxnClass::kReadOnly);
            for (int op = 0; op < options.ops_per_txn; ++op) {
              SimSchedulePoint("task.op");
              if (rng.Bernoulli(options.scan_fraction)) {
                const ObjectKey lo = rng.Uniform(options.keys);
                const ObjectKey hi =
                    std::min<ObjectKey>(lo + 3, options.keys - 1);
                if (!txn->Scan(lo, hi).ok()) {
                  sched.AddViolation("read-only snapshot scan failed");
                }
              } else if (!txn->Read(rng.Uniform(options.keys)).ok()) {
                sched.AddViolation("read-only snapshot read failed");
              }
            }
            txn->Commit();
          }
        });
  }

  if (options.gc_task) {
    sched.Spawn("gc", /*expect_wait_free=*/false, [&] {
      // One reclamation pass per turn until the writers quiesce, then a
      // final pass over whatever they left behind. RunOnce never yields
      // internally (its SimObserve points — chain.republish,
      // arena.retire_slab, ebr.advance — are observe-only), so each
      // pass is one atomic step in the explored interleaving.
      while (writers_done.load(std::memory_order_acquire) <
             options.writer_tasks) {
        db.gc()->RunOnce();
        SimSchedulePoint("task.gc");
      }
      db.gc()->RunOnce();
    });
  }

  if (options.currency_reader) {
    sched.Spawn("currency", /*expect_wait_free=*/false, [&] {
      // Wait (blocking is expected here) for the first commit, then
      // demand a snapshot at least that current (Section 6).
      while (first_commit_tn.load(std::memory_order_acquire) == 0 &&
             writers_done.load(std::memory_order_acquire) <
                 options.writer_tasks) {
        SimBlockedPoint("task.currency_poll");
      }
      const TxnNumber target =
          first_commit_tn.load(std::memory_order_acquire);
      if (target == 0) return;  // nothing ever committed
      auto txn = db.BeginReadOnlyAtLeast(target);
      if (txn->start_number() < target) {
        std::ostringstream out;
        out << "currency: BeginReadOnlyAtLeast(" << target
            << ") returned snapshot " << txn->start_number();
        sched.AddViolation(out.str());
      }
      txn->Read(0);
      txn->Commit();
    });
  }

  sched.Run();

  SimReport& report = sched.report();
  report.commits = commits.load();
  report.aborts = aborts.load();

  const std::vector<TxnRecord> records = db.history()->Records();
  CheckHistoryOracle(*db.history(), &sched);
  CheckVcQuiesced(db.version_control(), MaxCommittedTn(records), "vc",
                  &sched);
  if (report.wal_crashed) {
    CheckCrashRecovery(options, dopt, db.wal(), &sched);
  }
  return report;
}

SimReport ExploreDistributedOnce(const DistExploreOptions& options) {
  DistributedDb::Options dbopt;
  dbopt.num_sites = options.sites;
  dbopt.preload_keys = options.keys;
  dbopt.record_history = true;
  DistributedDb db(dbopt);

  SimScheduler::Options sopt;
  sopt.seed = options.seed;
  sopt.max_steps = options.max_steps;
  sopt.faults = options.faults;
  SimScheduler sched(sopt);

  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};

  for (int w = 0; w < options.writer_tasks; ++w) {
    sched.Spawn(
        "dwriter" + std::to_string(w), /*expect_wait_free=*/false,
        [&, w] {
          Random rng(DeriveTaskSeed(options.seed, 0x300 + w));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            const int home = static_cast<int>(rng.Uniform(options.sites));
            auto txn = db.Begin(TxnClass::kReadWrite, home);
            bool doomed = false;
            for (int op = 0; op < options.ops_per_txn; ++op) {
              SimSchedulePoint("task.op");
              const ObjectKey key = rng.Uniform(options.keys);
              if (rng.Bernoulli(options.write_fraction)) {
                if (!txn->Write(key, ValueFor(w, t, op)).ok()) {
                  doomed = true;
                  break;
                }
              } else if (!txn->Read(key).ok()) {
                doomed = true;
                break;
              }
            }
            if (doomed || !txn->active()) {
              if (txn->active()) txn->Abort();
              aborts.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (txn->Commit().ok()) {
              commits.fetch_add(1, std::memory_order_relaxed);
            } else {
              aborts.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
  }

  // Distributed read-only transactions may wait briefly at a site for
  // registered-but-committing writers (WaitNoActiveAtOrBelow), so they
  // are not flagged wait-free; they still never deadlock or abort.
  for (int r = 0; r < options.reader_tasks; ++r) {
    sched.Spawn(
        "dreader" + std::to_string(r), /*expect_wait_free=*/false,
        [&, r] {
          Random rng(DeriveTaskSeed(options.seed, 0x400 + r));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            const int home = static_cast<int>(rng.Uniform(options.sites));
            auto txn = db.Begin(TxnClass::kReadOnly, home);
            bool lost = false;
            for (int op = 0; op < options.ops_per_txn && !lost; ++op) {
              SimSchedulePoint("task.op");
              if (rng.Bernoulli(options.scan_fraction)) {
                const ObjectKey lo = rng.Uniform(options.keys);
                const ObjectKey hi =
                    std::min<ObjectKey>(lo + 3, options.keys - 1);
                lost = !txn->Scan(lo, hi).ok();
              } else {
                lost = !txn->Read(rng.Uniform(options.keys)).ok();
              }
            }
            // A lost message surfaces as Unavailable; the read-only
            // transaction simply gives up (it holds no locks anywhere).
            if (lost) {
              txn->Abort();
            } else {
              txn->Commit();
            }
          }
        });
  }

  sched.Run();

  SimReport& report = sched.report();
  report.commits = commits.load();
  report.aborts = aborts.load();

  const std::vector<TxnRecord> records = db.history()->Records();
  CheckHistoryOracle(*db.history(), &sched);

  // Per-site quiesce: queues drained, and each site that participated in
  // a committed transaction has made it visible (its promoted number
  // completed there, so the site vtnc must have reached it).
  for (int s = 0; s < db.num_sites(); ++s) {
    TxnNumber max_tn_here = 0;
    for (const TxnRecord& rec : records) {
      if (rec.cls != TxnClass::kReadWrite) continue;
      bool touches = false;
      for (const RecordedWrite& wr : rec.writes) {
        if (db.SiteOf(wr.key) == s) touches = true;
      }
      for (const RecordedRead& rd : rec.reads) {
        if (db.SiteOf(rd.key) == s) touches = true;
      }
      if (touches) max_tn_here = std::max(max_tn_here, rec.number);
    }
    const std::string label = "site" + std::to_string(s);
    CheckVcQuiesced(db.site(s).version_control(), max_tn_here,
                    label.c_str(), &sched);
  }

  // 2PC atomicity: every committed transaction's writes are visible at
  // their owning sites at snapshot tn — a site that missed phase 2 would
  // still expose the predecessor version.
  for (const TxnRecord& rec : records) {
    if (rec.cls != TxnClass::kReadWrite) continue;
    for (const RecordedWrite& wr : rec.writes) {
      Site& site = db.site(db.SiteOf(wr.key));
      Result<VersionRead> got = site.SnapshotRead(rec.number, wr.key);
      if (!got.ok() || got->version != rec.number) {
        std::ostringstream out;
        out << "2PC atomicity: T" << rec.id << " committed tn "
            << rec.number << " but key " << wr.key << " at site "
            << db.SiteOf(wr.key) << " shows "
            << (got.ok() ? std::to_string(got->version)
                         : got.status().ToString());
        sched.AddViolation(out.str());
      }
    }
  }
  return report;
}

SimReport ExploreReplicationOnce(const ReplExploreOptions& options) {
  DatabaseOptions dopt;
  dopt.protocol = options.protocol;
  dopt.preload_keys = options.keys;
  dopt.record_history = true;
  dopt.enable_wal = true;  // the stream tails the log
  Database db(dopt);

  SimulatedNetwork network;
  std::vector<std::unique_ptr<repl::Replica>> replica_owner;
  std::vector<repl::Replica*> replicas;
  for (int i = 0; i < options.replicas; ++i) {
    replica_owner.push_back(
        std::make_unique<repl::Replica>(i, &network, db.history()));
    replicas.push_back(replica_owner.back().get());
  }
  repl::ReplicationStream stream(&db, &network, replicas);
  repl::ReadRouter router(&db, replicas, options.staleness_budget);

  SimScheduler::Options sopt;
  sopt.seed = options.seed;
  sopt.max_steps = options.max_steps;
  sopt.faults = options.faults;
  // The primary must survive the run: convergence is checked against its
  // final state. Replica crashes are injected by the chaos task instead.
  sopt.faults.crash_at_wal_append = -1;
  SimScheduler sched(sopt);

  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<int> writers_done{0};
  std::atomic<bool> chaos_done{options.replica_crashes == 0 &&
                               options.wal_truncations == 0};
  std::atomic<bool> repl_done{false};

  for (int w = 0; w < options.writer_tasks; ++w) {
    sched.Spawn(
        "writer" + std::to_string(w), /*expect_wait_free=*/false,
        [&, w] {
          Random rng(DeriveTaskSeed(options.seed, 0x100 + w));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            auto txn = db.Begin(TxnClass::kReadWrite);
            bool doomed = false;
            for (int op = 0; op < options.ops_per_txn; ++op) {
              SimSchedulePoint("task.op");
              const ObjectKey key = rng.Uniform(options.keys);
              if (rng.Bernoulli(options.write_fraction)) {
                if (!txn->Write(key, ValueFor(w, t, op)).ok()) {
                  doomed = true;
                  break;
                }
              } else if (!txn->Read(key).ok()) {
                doomed = true;
                break;
              }
            }
            if (doomed || !txn->active()) {
              aborts.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (rng.Bernoulli(options.user_abort_probability)) {
              txn->Abort();
              aborts.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (txn->Commit().ok()) {
              commits.fetch_add(1, std::memory_order_relaxed);
            } else {
              aborts.fetch_add(1, std::memory_order_relaxed);
            }
          }
          writers_done.fetch_add(1, std::memory_order_release);
        });
  }

  // Routed read-only transactions must be wait-free wherever they land:
  // replica-served reads are pure snapshot reads, and primary fallback is
  // the Figure 2 path.
  const bool wait_free_readers = IsVcProtocol(options.protocol);
  for (int r = 0; r < options.reader_tasks; ++r) {
    sched.Spawn(
        "rreader" + std::to_string(r), wait_free_readers, [&, r] {
          Random rng(DeriveTaskSeed(options.seed, 0x200 + r));
          for (int t = 0; t < options.txns_per_task; ++t) {
            if (sched.Killed()) break;
            repl::RoutedReadTxn txn = router.Begin();
            for (int op = 0; op < options.ops_per_txn; ++op) {
              SimSchedulePoint("task.op");
              if (rng.Bernoulli(options.scan_fraction)) {
                const ObjectKey lo = rng.Uniform(options.keys);
                const ObjectKey hi =
                    std::min<ObjectKey>(lo + 3, options.keys - 1);
                if (!txn.Scan(lo, hi).ok()) {
                  sched.AddViolation("routed snapshot scan failed");
                }
              } else if (!txn.Read(rng.Uniform(options.keys)).ok()) {
                // Every key is preloaded, so version <= snapshot always
                // exists — on the primary AND on any seeded replica.
                sched.AddViolation("routed snapshot read failed");
              }
            }
            txn.Commit();
          }
        });
  }

  if (options.replicas > 0) {
    // Chaos: a seed-determined interleaving of replica crashes and WAL
    // truncations (each truncation under a fresh checkpoint, racing the
    // stream's tail cursor).
    if (!chaos_done.load(std::memory_order_relaxed)) {
      sched.Spawn("chaos", /*expect_wait_free=*/false, [&] {
        Random rng(DeriveTaskSeed(options.seed, 0x500));
        int crashes_left = options.replica_crashes;
        int truncations_left = options.wal_truncations;
        while ((crashes_left > 0 || truncations_left > 0) &&
               !sched.Killed()) {
          // Let the deployment make some progress between actions.
          for (uint64_t i = 0, n = 1 + rng.Uniform(4); i < n; ++i) {
            SimSchedulePoint("repl.chaos");
          }
          const bool do_crash =
              crashes_left > 0 &&
              (truncations_left == 0 || rng.Bernoulli(0.5));
          if (do_crash) {
            replicas[rng.Uniform(replicas.size())]->Crash();
            --crashes_left;
          } else {
            const Checkpoint cp = TakeCheckpoint(&db);
            db.wal()->Truncate(cp.vtnc);
            --truncations_left;
          }
        }
        chaos_done.store(true, std::memory_order_release);
      });
    }

    // Shipper: pumps until the workload and chaos are over AND every
    // replica has acknowledged everything up to the final vtnc. Each
    // pump yields non-blocked at repl.ship, which keeps the scheduler's
    // deadlock accounting live while appliers idle.
    sched.Spawn("shipper", /*expect_wait_free=*/false, [&] {
      while (!sched.Killed()) {
        stream.PumpOnce();
        if (writers_done.load(std::memory_order_acquire) ==
                options.writer_tasks &&
            chaos_done.load(std::memory_order_acquire) &&
            stream.CaughtUp()) {
          break;
        }
      }
      repl_done.store(true, std::memory_order_release);
    });

    for (int i = 0; i < options.replicas; ++i) {
      sched.Spawn("applier" + std::to_string(i),
                  /*expect_wait_free=*/false, [&, i] {
                    while (!repl_done.load(std::memory_order_acquire) &&
                           !sched.Killed()) {
                      if (replicas[i]->ApplyOnce() == 0) {
                        SimBlockedPoint("repl.apply.idle");
                      }
                    }
                  });
    }
  }

  sched.Run();

  SimReport& report = sched.report();
  report.commits = commits.load();
  report.aborts = aborts.load();

  const std::vector<TxnRecord> records = db.history()->Records();
  CheckHistoryOracle(*db.history(), &sched);
  CheckVcQuiesced(db.version_control(), MaxCommittedTn(records), "vc",
                  &sched);

  // Convergence: after quiesce every replica must have been re-seeded if
  // it crashed, reached the primary's final horizon, and hold the exact
  // primary state at that horizon — version numbers and bytes.
  if (report.violations.empty()) {
    const TxnNumber vtnc = db.version_control().vtnc();
    for (int i = 0; i < options.replicas; ++i) {
      const std::string label = "replica" + std::to_string(i);
      if (!replicas[i]->Serviceable()) {
        sched.AddViolation(label + ": not serviceable at quiesce");
        continue;
      }
      if (replicas[i]->Horizon() != vtnc) {
        sched.AddViolation(label + ": horizon " +
                           std::to_string(replicas[i]->Horizon()) +
                           " != final vtnc " + std::to_string(vtnc));
        continue;
      }
      for (ObjectKey key = 0; key < options.keys; ++key) {
        VersionChain* chain = db.store().Find(key);
        if (chain == nullptr) continue;
        const Result<VersionRead> want = chain->Read(vtnc);
        const Result<VersionRead> got = replicas[i]->SnapshotRead(vtnc, key);
        if (!want.ok() || !got.ok() || want->version != got->version ||
            want->value != got->value) {
          std::ostringstream out;
          out << label << ": key " << key << " diverged at vtnc " << vtnc
              << " (primary "
              << (want.ok() ? std::to_string(want->version)
                            : want.status().ToString())
              << ", replica "
              << (got.ok() ? std::to_string(got->version)
                           : got.status().ToString())
              << ")";
          sched.AddViolation(out.str());
        }
      }
    }
  }
  return report;
}

}  // namespace sim
}  // namespace mvcc
