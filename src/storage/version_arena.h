#ifndef MVCC_STORAGE_VERSION_ARENA_H_
#define MVCC_STORAGE_VERSION_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/latch.h"

namespace mvcc {

// Slab arena backing the latch-free read path's version storage.
//
// PR 5 made snapshot reads latch-free by publishing immutable version
// arrays behind atomic pointers — and promptly lost to the latched
// baseline on every mixed workload, because the WRITE side paid for the
// read side: every republish was a heap allocation plus a per-array
// EpochManager::Retire (a global mutex, and every 128th call a
// process-wide membarrier storm), and every version payload was an
// std::string heap round trip. This arena is the Larson-et-al.-shaped
// fix: version arrays and version payloads are carved out of large
// cache-line-aligned slabs with a bump pointer, and reclamation is
// batched at SLAB granularity — one EBR retirement per exhausted slab
// instead of one per replaced array, a ~10^3 reduction in retire/advance
// traffic under sustained write load.
//
// Lifecycle of a slab:
//   open      - the arena's current carve target. Holds a +1 "open"
//               bias on its live count so it can never be reclaimed
//               while allocations may still land in it.
//   sealed    - a fresh slab replaced it (bump pointer exhausted, or
//               the arena closed). The bias is dropped; live now counts
//               exactly the unreleased blocks carved from it.
//   dead      - live hit zero: every block was released. The slab is
//               unlinked from the allocation path and handed to the
//               epoch manager in ONE Retire call.
//   recycled  - the grace period elapsed (no reader pinned at or before
//               the retirement epoch can hold a pointer into the slab),
//               and the slab returns to the arena's free list for reuse.
//
// Why reuse is safe (the ABA case the tests pin): a reader holding a
// pointer into slab memory — a version array mid-binary-search, a
// payload mid-copy — is pinned in an epoch <= the slab's retirement
// epoch. The epoch manager frees (here: recycles) a retirement only
// after the global epoch has advanced twice past it, which requires
// every such reader to have unpinned. A slab therefore never re-enters
// the free list, and its bytes are never re-carved, while any thread
// that could dereference its old contents is still running.
//
// Blocks are released, never freed: Release() only decrements the
// owning slab's live count (lock-free; the slab is found by masking the
// block address with the slab alignment). Block destructors never run —
// everything carved from a slab must be trivially destructible, which
// is why VersionChain stores POD slots and raw payload bytes rather
// than std::string.
//
// Allocations larger than LargeThreshold() (oversized payloads, very
// deep chains) bypass the slabs: they are heap-allocated and
// individually EBR-retired on release, preserving the same reclamation
// contract at the cost of the old per-object retire — acceptable
// because they are rare by construction.
//
// Thread safety: Allocate() takes the arena's spin latch (arenas are
// per-shard, so this contends about as much as the shard's chains do);
// Release() is lock-free. The arena is destroyed via Close(), not
// delete: dead slabs may still be parked in the epoch manager, each
// holding a reference, and the arena frees itself only after the last
// one comes home. Close() requires every block to have been released
// (the object store deletes its chains first).
class VersionArena {
 public:
  static constexpr size_t kDefaultSlabBytes = 1 << 18;  // 256 KiB

  struct Stats {
    uint64_t allocs = 0;          // blocks carved (slab or heap)
    uint64_t bytes_carved = 0;    // bytes handed out (after rounding)
    uint64_t slabs_allocated = 0; // fresh slabs from the heap
    uint64_t slabs_recycled = 0;  // reuses off the free list
    uint64_t slabs_retired = 0;   // dead slabs handed to the EBR
    uint64_t slabs_freed = 0;     // retirements returned by the EBR
    uint64_t large_allocs = 0;    // heap-path allocations
  };

  // `slab_bytes` must be a power of two >= 4096 (Release relies on
  // address masking to find a block's slab header).
  static VersionArena* Create(size_t slab_bytes = kDefaultSlabBytes);

  // Process-wide arena for version chains constructed without an
  // owning store (tests, ad-hoc chains). Never closed.
  static VersionArena* Default();

  // Drops the owner reference and seals the current slab. All blocks
  // must already be released. The arena deletes itself once every slab
  // parked in the epoch manager has been returned — possibly as late as
  // the epoch manager's own destruction at process exit.
  void Close();

  // Carves `bytes` (rounded up to 16-byte granularity) out of the
  // current slab, or the heap if `bytes` exceeds LargeThreshold().
  // Never returns nullptr for bytes > 0; Allocate(0) returns nullptr.
  void* Allocate(size_t bytes);

  // Releases a block previously carved with exactly `bytes`. The memory
  // must already be unreachable from every published structure; it stays
  // readable by epoch-pinned threads until the owning slab's (or, for
  // large blocks, the block's own) grace period elapses.
  void Release(void* p, size_t bytes);

  // Allocations strictly larger than this take the heap path.
  size_t LargeThreshold() const { return slab_bytes_ / 8; }

  Stats GetStats() const;

 private:
  struct Slab;

  explicit VersionArena(size_t slab_bytes);
  ~VersionArena();

  // Installs a fresh (or recycled) open slab; caller holds latch_.
  Slab* InstallSlabLocked();
  // Drops the open bias of `slab`. Returns true if that made the slab
  // dead — the caller must then RetireDeadSlab() it AFTER dropping
  // latch_ (retirement can synchronously run deleters that re-enter
  // the latch). Caller holds latch_.
  bool SealLocked(Slab* slab);
  // Hands a dead slab to the epoch manager (exactly once per death).
  void RetireDeadSlab(Slab* slab);
  // EBR deleter: the grace period elapsed; recycle into the free list.
  static void ReturnFromEbr(void* p);

  void Ref();
  void Unref();

  const size_t slab_bytes_;

  mutable SpinLatch latch_;
  Slab* open_ = nullptr;             // carve target; latch_ held
  std::vector<Slab*> free_slabs_;    // recycled, ready for reuse
  std::vector<Slab*> all_slabs_;     // every slab ever created (owned)
  bool closed_ = false;

  // 1 for the owner (dropped by Close) + 1 per slab parked in the EBR.
  std::atomic<int64_t> refs_{1};

  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> bytes_carved_{0};
  std::atomic<uint64_t> slabs_allocated_{0};
  std::atomic<uint64_t> slabs_recycled_{0};
  std::atomic<uint64_t> slabs_retired_{0};
  std::atomic<uint64_t> slabs_freed_{0};
  std::atomic<uint64_t> large_allocs_{0};
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_VERSION_ARENA_H_
