#include "storage/version_arena.h"

#include <cstdint>
#include <new>

#include "common/check.h"
#include "common/epoch.h"
#include "common/sim_hook.h"

namespace mvcc {

namespace {

constexpr size_t kBlockAlign = 16;

size_t RoundUp(size_t bytes) {
  return (bytes + (kBlockAlign - 1)) & ~(kBlockAlign - 1);
}

void HeapBlockDeleter(void* p) { ::operator delete(p); }

}  // namespace

// Lives at the base of each slab-aligned region; blocks are carved from
// the bytes after it. The header is a full cache line so carved blocks
// never false-share with the live counter that Release() hammers.
struct alignas(64) VersionArena::Slab {
  VersionArena* owner;
  // +1 open bias while the slab is the carve target, +1 per carved
  // block. The transition to zero (possible only after sealing) makes
  // the slab dead and triggers its single EBR retirement.
  std::atomic<int64_t> live;
  size_t bump;  // next carve offset; guarded by the arena latch

  char* bytes() { return reinterpret_cast<char*>(this); }
};

VersionArena* VersionArena::Create(size_t slab_bytes) {
  MVCC_CHECK(slab_bytes >= 4096 && (slab_bytes & (slab_bytes - 1)) == 0);
  return new VersionArena(slab_bytes);
}

VersionArena* VersionArena::Default() {
  // Intentionally never closed: standalone chains release through it for
  // the life of the process, and the static pointer keeps it reachable
  // for leak checkers. The epoch manager's destructor returns any slabs
  // still parked there before static teardown completes.
  static VersionArena* arena = Create();
  return arena;
}

VersionArena::VersionArena(size_t slab_bytes) : slab_bytes_(slab_bytes) {}

VersionArena::~VersionArena() {
  for (Slab* slab : all_slabs_) {
    ::operator delete(slab, std::align_val_t(slab_bytes_));
  }
}

void VersionArena::Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }

void VersionArena::Unref() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
}

void VersionArena::Close() {
  Slab* dead = nullptr;
  {
    std::lock_guard<SpinLatch> guard(latch_);
    MVCC_CHECK(!closed_);
    closed_ = true;
    if (open_ != nullptr) {
      if (SealLocked(open_)) dead = open_;
      open_ = nullptr;
    }
  }
  // Retire outside the latch: Retire can trigger a synchronous epoch
  // advance whose deleters re-enter this arena's latch (ReturnFromEbr).
  if (dead != nullptr) RetireDeadSlab(dead);
  Unref();
}

VersionArena::Slab* VersionArena::InstallSlabLocked() {
  Slab* slab;
  if (!free_slabs_.empty()) {
    slab = free_slabs_.back();
    free_slabs_.pop_back();
    slabs_recycled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    void* mem = ::operator new(slab_bytes_, std::align_val_t(slab_bytes_));
    slab = new (mem) Slab;
    slab->owner = this;
    all_slabs_.push_back(slab);
    slabs_allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  slab->live.store(1, std::memory_order_relaxed);  // open bias
  slab->bump = sizeof(Slab);
  open_ = slab;
  return slab;
}

bool VersionArena::SealLocked(Slab* slab) {
  // Dropping the open bias; if every carved block was already released,
  // this thread observed the death and owns the retirement. The caller
  // must perform that retirement AFTER releasing the latch (the retire
  // path can synchronously run deleters that re-enter it).
  return slab->live.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

void VersionArena::RetireDeadSlab(Slab* slab) {
  // The slab is unreachable from the allocation path (sealed) and every
  // block in it is unlinked from the published structures (released) —
  // but epoch-pinned readers may still be dereferencing its contents.
  // One batched retirement covers all of them; the grace period makes
  // reuse safe (see the header comment on ABA).
  Ref();
  slabs_retired_.fetch_add(1, std::memory_order_relaxed);
  SimObserve(this, "arena.retire_slab", slabs_retired_.load(), 0);
  EpochManager::Global().Retire(slab, &ReturnFromEbr);
}

void VersionArena::ReturnFromEbr(void* p) {
  Slab* slab = static_cast<Slab*>(p);
  VersionArena* arena = slab->owner;
  {
    std::lock_guard<SpinLatch> guard(arena->latch_);
    arena->free_slabs_.push_back(slab);
  }
  arena->slabs_freed_.fetch_add(1, std::memory_order_relaxed);
  SimObserve(arena, "arena.recycle_slab", arena->slabs_freed_.load(), 0);
  arena->Unref();
}

void* VersionArena::Allocate(size_t bytes) {
  if (bytes == 0) return nullptr;
  allocs_.fetch_add(1, std::memory_order_relaxed);
  const size_t rounded = RoundUp(bytes);
  bytes_carved_.fetch_add(rounded, std::memory_order_relaxed);
  if (rounded > LargeThreshold()) {
    large_allocs_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(rounded);
  }
  Slab* dead = nullptr;
  void* p;
  {
    std::lock_guard<SpinLatch> guard(latch_);
    MVCC_CHECK(!closed_);
    Slab* slab = open_;
    if (slab == nullptr || slab->bump + rounded > slab_bytes_) {
      if (slab != nullptr && SealLocked(slab)) dead = slab;
      slab = InstallSlabLocked();
    }
    p = slab->bytes() + slab->bump;
    slab->bump += rounded;
    // The block's +1 keeps the slab alive until the block is released;
    // relaxed is enough — the latch orders this against sealing.
    slab->live.fetch_add(1, std::memory_order_relaxed);
  }
  if (dead != nullptr) RetireDeadSlab(dead);
  return p;
}

void VersionArena::Release(void* p, size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  const size_t rounded = RoundUp(bytes);
  if (rounded > LargeThreshold()) {
    // Heap path: individually retired, freed after its own grace period.
    EpochManager::Global().Retire(p, &HeapBlockDeleter);
    return;
  }
  Slab* slab =
      reinterpret_cast<Slab*>(reinterpret_cast<uintptr_t>(p) &
                              ~(static_cast<uintptr_t>(slab_bytes_) - 1));
  // Lock-free: the slab cannot be sealed-and-recycled while this block
  // holds its +1, so the counter is safe to touch. acq_rel pairs with
  // SealLocked — whoever takes live to zero sees a fully-sealed slab.
  if (slab->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    RetireDeadSlab(slab);
  }
}

VersionArena::Stats VersionArena::GetStats() const {
  Stats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.bytes_carved = bytes_carved_.load(std::memory_order_relaxed);
  s.slabs_allocated = slabs_allocated_.load(std::memory_order_relaxed);
  s.slabs_recycled = slabs_recycled_.load(std::memory_order_relaxed);
  s.slabs_retired = slabs_retired_.load(std::memory_order_relaxed);
  s.slabs_freed = slabs_freed_.load(std::memory_order_relaxed);
  s.large_allocs = large_allocs_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mvcc
