#include "storage/btree.h"

#include <algorithm>
#include <limits>

namespace mvcc {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

void BPlusTree::Insert(ObjectKey key) {
  bool inserted = false;
  std::unique_ptr<Split> split = InsertInto(root_.get(), key, &inserted);
  if (split != nullptr) {
    // Root overflow: grow a new root with two children.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
  }
  if (inserted) ++size_;
}

std::unique_ptr<BPlusTree::Split> BPlusTree::InsertInto(Node* node,
                                                        ObjectKey key,
                                                        bool* inserted) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it != node->keys.end() && *it == key) {
      *inserted = false;
      return nullptr;
    }
    node->keys.insert(it, key);
    *inserted = true;
    if (node->keys.size() <= kMaxKeys) return nullptr;

    // Leaf split: move the upper half right; the separator is the first
    // key of the right leaf (B+ tree style: separators duplicate keys).
    auto split = std::make_unique<Split>();
    split->right = std::make_unique<Node>();
    Node* right = split->right.get();
    const size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    node->keys.resize(mid);
    right->next = node->next;
    node->next = right;
    split->separator = right->keys.front();
    return split;
  }

  // Internal node: descend into the child that covers `key`.
  const size_t child_index = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  std::unique_ptr<Split> child_split =
      InsertInto(node->children[child_index].get(), key, inserted);
  if (child_split == nullptr) return nullptr;

  node->keys.insert(node->keys.begin() + child_index,
                    child_split->separator);
  node->children.insert(node->children.begin() + child_index + 1,
                        std::move(child_split->right));
  if (node->keys.size() <= kMaxKeys) return nullptr;

  // Internal split: the middle key moves UP (it does not stay in either
  // half, unlike a leaf split).
  auto split = std::make_unique<Split>();
  split->right = std::make_unique<Node>();
  Node* right = split->right.get();
  right->leaf = false;
  const size_t mid = node->keys.size() / 2;
  split->separator = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  node->keys.resize(mid);
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->children.resize(mid + 1);
  return split;
}

const BPlusTree::Node* BPlusTree::LeafFor(ObjectKey key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    const size_t child_index = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[child_index].get();
  }
  return node;
}

bool BPlusTree::Contains(ObjectKey key) const {
  const Node* leaf = LeafFor(key);
  return std::binary_search(leaf->keys.begin(), leaf->keys.end(), key);
}

std::vector<ObjectKey> BPlusTree::Range(ObjectKey lo, ObjectKey hi) const {
  std::vector<ObjectKey> out;
  if (lo > hi) return out;
  const Node* leaf = LeafFor(lo);
  while (leaf != nullptr) {
    for (ObjectKey key : leaf->keys) {
      if (key < lo) continue;
      if (key > hi) return out;
      out.push_back(key);
    }
    leaf = leaf->next;
  }
  return out;
}

int BPlusTree::Check(const Node* node, bool is_root, ObjectKey lo,
                     ObjectKey hi) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) return -1;
  if (std::adjacent_find(node->keys.begin(), node->keys.end()) !=
      node->keys.end()) {
    return -1;  // duplicates
  }
  if (!is_root && node->keys.size() < kMinKeys) return -1;
  if (node->keys.size() > kMaxKeys) return -1;
  for (ObjectKey key : node->keys) {
    if (key < lo || key > hi) return -1;
  }
  if (node->leaf) {
    if (!node->children.empty()) return -1;
    return 0;
  }
  if (node->children.size() != node->keys.size() + 1) return -1;
  if (is_root && node->keys.empty()) return -1;
  int depth = -2;
  for (size_t i = 0; i < node->children.size(); ++i) {
    // Child i's keys lie in [prev separator, next separator). Leaf keys
    // equal to the separator live in the RIGHT child (upper_bound
    // descent), so child i's upper bound is separator[i] - 1.
    const ObjectKey child_lo = i == 0 ? lo : node->keys[i - 1];
    const ObjectKey child_hi =
        i == node->keys.size() ? hi : node->keys[i] - 1;
    const int child_depth =
        Check(node->children[i].get(), false, child_lo, child_hi);
    if (child_depth < 0) return -1;
    if (depth == -2) {
      depth = child_depth;
    } else if (depth != child_depth) {
      return -1;
    }
  }
  return depth + 1;
}

bool BPlusTree::CheckInvariants() const {
  const int depth = Check(root_.get(), /*is_root=*/true, 0,
                          std::numeric_limits<ObjectKey>::max());
  if (depth < 0) return false;
  if (depth + 1 != height_) return false;
  // Leaf chain must enumerate exactly size_ keys in sorted order.
  std::vector<ObjectKey> all =
      Range(0, std::numeric_limits<ObjectKey>::max());
  if (all.size() != size_) return false;
  if (!std::is_sorted(all.begin(), all.end())) return false;
  return true;
}

}  // namespace mvcc
