#include "storage/version_chain.h"

#include <algorithm>
#include <new>
#include <utility>

namespace mvcc {

VersionChain::VersionChain(std::atomic<int64_t>* version_counter)
    : array_(VersionArray::Make(kInitialCapacity)),
      version_counter_(version_counter) {}

VersionChain::~VersionChain() {
  // Retired generations are freed by the epoch manager; only the live
  // one is ours. Callers guarantee no reader holds the chain here.
  VersionArray::Free(array_.load(std::memory_order_relaxed));
}

VersionChain::VersionArray* VersionChain::VersionArray::Make(size_t capacity) {
  static_assert(alignof(Version) <= alignof(VersionArray),
                "trailing slots would be misaligned");
  void* mem = ::operator new(sizeof(VersionArray) + capacity * sizeof(Version));
  auto* arr = new (mem) VersionArray(capacity);
  Version* s = arr->slots();
  for (size_t i = 0; i < capacity; ++i) new (&s[i]) Version();
  return arr;
}

void VersionChain::VersionArray::Free(void* p) {
  auto* arr = static_cast<VersionArray*>(p);
  Version* s = arr->slots();
  for (size_t i = arr->capacity; i > 0; --i) s[i - 1].~Version();
  arr->~VersionArray();
  ::operator delete(p);
}

void VersionChain::Install(Version v) {
  std::lock_guard<SpinLatch> guard(latch_);
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  if (version_counter_ != nullptr) {
    version_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  if ((n == 0 || arr->slots()[n - 1].number < v.number) && n < arr->capacity) {
    // Common case: commits arrive in ascending tn order and spare
    // capacity exists. Fill the writer-private slot, then publish it
    // with a release store of the count — concurrent readers loaded a
    // smaller count and never look at slot n.
    arr->slots()[n] = std::move(v);
    arr->count.store(n + 1, std::memory_order_release);
    return;
  }
  // Rare path: capacity exhausted, or a TO writer with a smaller tn
  // committed after a larger one. Copy into a fresh array and swap.
  const size_t insert_at = UpperBound(arr, n, v.number);
  Republish(arr, n, insert_at, &v, /*drop_from=*/0, /*drop_to=*/0);
}

bool VersionChain::Remove(VersionNumber number) {
  std::lock_guard<SpinLatch> guard(latch_);
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  const size_t idx = UpperBound(arr, n, number);
  if (idx == 0 || arr->slots()[idx - 1].number != number) return false;
  Republish(arr, n, /*insert_at=*/SIZE_MAX, nullptr, idx - 1, idx);
  if (version_counter_ != nullptr) {
    version_counter_->fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

size_t VersionChain::Prune(VersionNumber watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  // Index of the newest version <= watermark; everything before it is
  // unreachable by any current or future reader.
  const size_t cut = UpperBound(arr, n, watermark);
  if (cut <= 1) return 0;
  const size_t removed = cut - 1;
  Republish(arr, n, /*insert_at=*/SIZE_MAX, nullptr, /*drop_from=*/0,
            /*drop_to=*/removed);
  if (version_counter_ != nullptr) {
    version_counter_->fetch_sub(static_cast<int64_t>(removed),
                                std::memory_order_relaxed);
  }
  return removed;
}

void VersionChain::Republish(VersionArray* old, size_t old_count,
                             size_t insert_at, const Version* v,
                             size_t drop_from, size_t drop_to) {
  const size_t kept = old_count - (drop_to - drop_from);
  const size_t new_count = kept + (v != nullptr ? 1 : 0);
  // Capacity policy mirrors a vector's: grow geometrically, and shrink
  // only when the survivors occupy under an eighth of the array. Sizing
  // at new_count*2 unconditionally looks tidy but collapses capacity on
  // every Prune, after which a handful of in-order installs exhaust the
  // array and force another full republish — under install/prune churn
  // that alternation made writes allocate on almost every call.
  size_t capacity = std::max(kInitialCapacity, old->capacity);
  if (new_count * 2 > capacity) {
    capacity = std::max(capacity * 2, new_count * 2);
  } else if (capacity > kInitialCapacity && new_count * 8 <= capacity) {
    capacity /= 2;
  }
  auto* fresh = VersionArray::Make(capacity);
  size_t out = 0;
  for (size_t i = 0; i <= old_count; ++i) {
    if (v != nullptr && i == insert_at) fresh->slots()[out++] = *v;
    if (i == old_count) break;
    if (i >= drop_from && i < drop_to) continue;
    fresh->slots()[out++] = old->slots()[i];
  }
  fresh->count.store(new_count, std::memory_order_relaxed);
  // The release store publishes the fully-built array; readers that
  // acquire-load the pointer see every slot and the count. The old
  // generation may still be held by pinned readers — retire, never free.
  array_.store(fresh, std::memory_order_release);
  EpochManager::Global().Retire(old, &VersionArray::Free);
}

size_t VersionChain::size() const {
  EpochGuard guard;
  const VersionArray* arr = array_.load(std::memory_order_acquire);
  return arr->count.load(std::memory_order_acquire);
}

VersionNumber VersionChain::LatestNumber() const {
  EpochGuard guard;
  const VersionArray* arr = array_.load(std::memory_order_acquire);
  const size_t n = arr->count.load(std::memory_order_acquire);
  return n == 0 ? kInvalidTxnNumber : arr->slots()[n - 1].number;
}

}  // namespace mvcc
