#include "storage/version_chain.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/sim_hook.h"

namespace mvcc {

namespace {

// Write-side tallies, striped so the accounting itself never becomes a
// contention point on the path it is supposed to measure.
struct ChainStatsCells {
  StripedCounter installs_in_place;
  StripedCounter republishes;
  StripedCounter prunes_in_place;
};

ChainStatsCells& StatsCells() {
  static ChainStatsCells cells;
  return cells;
}

}  // namespace

ChainWriteStats GetChainWriteStats() {
  ChainStatsCells& cells = StatsCells();
  ChainWriteStats s;
  s.installs_in_place =
      static_cast<uint64_t>(cells.installs_in_place.Sum());
  s.republishes = static_cast<uint64_t>(cells.republishes.Sum());
  s.prunes_in_place = static_cast<uint64_t>(cells.prunes_in_place.Sum());
  return s;
}

VersionChain::VersionChain(VersionArena* arena, StripedCounter* version_counter)
    : arena_(arena != nullptr ? arena : VersionArena::Default()),
      version_counter_(version_counter),
      array_(nullptr) {
  array_.store(MakeArray(kInitialCapacity), std::memory_order_relaxed);
}

VersionChain::~VersionChain() {
  // Retired generations were released at republish time; only the live
  // one and its payloads are ours. Callers guarantee no reader holds
  // the chain here, so the blocks go straight back to the arena (which
  // still defers physical reuse behind the epoch grace period).
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t s = arr->start.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  for (size_t i = s; i < n; ++i) ReleasePayload(arr->slots()[i]);
  ReleaseArray(arr);
}

VersionChain::VersionArray* VersionChain::MakeArray(size_t capacity) {
  static_assert(alignof(VersionSlot) <= alignof(VersionArray),
                "trailing slots would be misaligned");
  void* mem = arena_->Allocate(VersionArray::AllocBytes(capacity));
  // Slots are left uninitialized: [start, count) starts empty and slots
  // are fully written before each count bump publishes them.
  return new (mem) VersionArray(static_cast<uint32_t>(capacity));
}

void VersionChain::ReleaseArray(VersionArray* arr) {
  arena_->Release(arr, VersionArray::AllocBytes(arr->capacity));
}

const char* VersionChain::CopyPayload(const Value& value) {
  if (value.empty()) return nullptr;
  char* p = static_cast<char*>(arena_->Allocate(value.size()));
  std::memcpy(p, value.data(), value.size());
  return p;
}

void VersionChain::ReleasePayload(const VersionSlot& slot) {
  if (slot.len != 0) {
    arena_->Release(const_cast<char*>(slot.data), slot.len);
  }
}

void VersionChain::Install(const Version& v) {
  // Observe, never schedule: Install is called from contexts that hold
  // real mutexes (replica apply, recovery), where a sim yield would
  // wedge the cooperative scheduler. The commit pipeline provides the
  // schedule point ("commit.install") from its lock-free context.
  SimObserve(this, "chain.install", v.number, 0);
  VersionSlot slot;
  slot.number = v.number;
  slot.writer = v.writer;
  slot.len = static_cast<uint32_t>(v.value.size());
  slot.reserved = 0;
  // Payload copy happens before taking the latch: the memcpy (and any
  // slab turnover it triggers) must not extend the writer critical
  // section other installers spin on.
  slot.data = CopyPayload(v.value);
  if (version_counter_ != nullptr) version_counter_->Add(1);
  std::lock_guard<SpinLatch> guard(latch_);
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t s = arr->start.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  if ((n == s || arr->slots()[n - 1].number < v.number) && n < arr->capacity) {
    // Common case: commits arrive in ascending tn order and spare
    // capacity exists. Fill the writer-private slot, then publish it
    // with a release store of the count — concurrent readers loaded a
    // smaller count and never look at slot n.
    arr->slots()[n] = slot;
    arr->count.store(n + 1, std::memory_order_release);
    StatsCells().installs_in_place.Add(1);
    return;
  }
  // Rare path: capacity exhausted, or a TO writer with a smaller tn
  // committed after a larger one. Copy into a fresh array and swap.
  const size_t insert_at = UpperBound(arr->slots(), s, n, v.number);
  Republish(arr, s, n, insert_at, &slot, /*drop=*/SIZE_MAX);
}

bool VersionChain::Remove(VersionNumber number) {
  VersionSlot removed;
  {
    std::lock_guard<SpinLatch> guard(latch_);
    VersionArray* arr = array_.load(std::memory_order_relaxed);
    const size_t s = arr->start.load(std::memory_order_relaxed);
    const size_t n = arr->count.load(std::memory_order_relaxed);
    const size_t idx = UpperBound(arr->slots(), s, n, number);
    if (idx == s || arr->slots()[idx - 1].number != number) return false;
    // Shrinking `count` in place is not an option: a pinned reader that
    // already loaded the larger count may be mid-search in the removed
    // slot, and a later in-place install would overwrite it underneath
    // them. Republishing without the victim keeps every published array
    // immutable.
    removed = arr->slots()[idx - 1];
    Republish(arr, s, n, /*insert_at=*/SIZE_MAX, nullptr, /*drop=*/idx - 1);
  }
  ReleasePayload(removed);
  if (version_counter_ != nullptr) version_counter_->Add(-1);
  return true;
}

size_t VersionChain::Prune(VersionNumber watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  VersionArray* arr = array_.load(std::memory_order_relaxed);
  const size_t s = arr->start.load(std::memory_order_relaxed);
  const size_t n = arr->count.load(std::memory_order_relaxed);
  // Index just past the newest version <= watermark; everything before
  // that version is unreachable by any current or future reader.
  const size_t cut = UpperBound(arr->slots(), s, n, watermark);
  if (cut <= s + 1) return 0;
  const size_t removed = cut - 1 - s;
  // O(1) prune: publish the narrowed window and walk away. The dropped
  // slots stay physically intact — a reader that loaded the old `start`
  // may still binary-search them, and their payload bytes stay readable
  // until the arena's grace period covers every such reader. The array
  // compacts for free at its next republish.
  arr->start.store(static_cast<uint32_t>(cut - 1), std::memory_order_release);
  for (size_t i = s; i < cut - 1; ++i) ReleasePayload(arr->slots()[i]);
  StatsCells().prunes_in_place.Add(1);
  if (version_counter_ != nullptr) {
    version_counter_->Add(-static_cast<int64_t>(removed));
  }
  return removed;
}

void VersionChain::Republish(VersionArray* old, size_t start, size_t count,
                             size_t insert_at, const VersionSlot* v,
                             size_t drop) {
  const size_t live = count - start;
  const size_t kept = live - (drop != SIZE_MAX ? 1 : 0);
  const size_t new_count = kept + (v != nullptr ? 1 : 0);
  // Capacity policy: always leave kReserveAhead appendable slots so the
  // in-order installs that follow a republish go in place, grow
  // geometrically past that, and shrink only when the survivors occupy
  // under an eighth of the array. Sizing tightly to new_count looks
  // tidy but forces the next few installs to republish again — under
  // install/prune churn that alternation made writes allocate on almost
  // every call.
  size_t capacity =
      std::max(kInitialCapacity, static_cast<size_t>(old->capacity));
  if (new_count + kReserveAhead > capacity) {
    capacity = std::max(capacity * 2, new_count + kReserveAhead);
  } else if (capacity > kInitialCapacity && new_count * 8 <= capacity) {
    capacity /= 2;
  }
  VersionArray* fresh = MakeArray(capacity);
  VersionSlot* out_slots = fresh->slots();
  const VersionSlot* in_slots = old->slots();
  size_t out = 0;
  for (size_t i = start; i <= count; ++i) {
    if (v != nullptr && i == insert_at) out_slots[out++] = *v;
    if (i == count) break;
    if (i == drop) continue;
    out_slots[out++] = in_slots[i];
  }
  fresh->count.store(new_count, std::memory_order_relaxed);
  // The release store publishes the fully-built array; readers that
  // acquire-load the pointer see every slot and the counters. The old
  // generation may still be held by pinned readers — releasing it only
  // debits its slab, whose physical reuse waits out the grace period.
  array_.store(fresh, std::memory_order_release);
  StatsCells().republishes.Add(1);
  SimObserve(this, "chain.republish", new_count, 0);
  ReleaseArray(old);
}

size_t VersionChain::size() const {
  EpochGuard guard;
  const VersionArray* arr = array_.load(std::memory_order_acquire);
  const size_t s = arr->start.load(std::memory_order_acquire);
  const size_t n = arr->count.load(std::memory_order_acquire);
  return n - s;
}

VersionNumber VersionChain::LatestNumber() const {
  EpochGuard guard;
  const VersionArray* arr = array_.load(std::memory_order_acquire);
  const size_t s = arr->start.load(std::memory_order_acquire);
  const size_t n = arr->count.load(std::memory_order_acquire);
  return n == s ? kInvalidTxnNumber : arr->slots()[n - 1].number;
}

}  // namespace mvcc
