#include "storage/version_chain.h"

#include <algorithm>
#include <string>

namespace mvcc {

namespace {

// Comparator for binary search over the ascending version vector.
bool NumberLess(const Version& v, VersionNumber n) { return v.number < n; }

}  // namespace

Result<VersionRead> VersionChain::Read(TxnNumber at_most) const {
  std::lock_guard<SpinLatch> guard(latch_);
  // upper_bound over numbers: first version with number > at_most.
  auto it = std::upper_bound(
      versions_.begin(), versions_.end(), at_most,
      [](TxnNumber n, const Version& v) { return n < v.number; });
  if (it == versions_.begin()) {
    return Status::NotFound("no version <= " + std::to_string(at_most));
  }
  --it;
  return VersionRead{it->number, it->writer, it->value};
}

Result<VersionRead> VersionChain::ReadLatest() const {
  std::lock_guard<SpinLatch> guard(latch_);
  if (versions_.empty()) return Status::NotFound("empty version chain");
  const Version& v = versions_.back();
  return VersionRead{v.number, v.writer, v.value};
}

Result<VersionRead> VersionChain::ReadIf(
    TxnNumber at_most,
    const std::function<bool(VersionNumber)>& pred) const {
  std::lock_guard<SpinLatch> guard(latch_);
  auto it = std::upper_bound(
      versions_.begin(), versions_.end(), at_most,
      [](TxnNumber n, const Version& v) { return n < v.number; });
  while (it != versions_.begin()) {
    --it;
    if (pred(it->number)) {
      return VersionRead{it->number, it->writer, it->value};
    }
  }
  return Status::NotFound("no qualifying version <= " +
                          std::to_string(at_most));
}

void VersionChain::Install(Version v) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (versions_.empty() || versions_.back().number < v.number) {
    versions_.push_back(std::move(v));
    return;
  }
  // Rare path: a TO writer with a smaller tn committed after a larger one.
  auto it = std::lower_bound(versions_.begin(), versions_.end(), v.number,
                             NumberLess);
  versions_.insert(it, std::move(v));
}

bool VersionChain::Remove(VersionNumber number) {
  std::lock_guard<SpinLatch> guard(latch_);
  auto it = std::lower_bound(versions_.begin(), versions_.end(), number,
                             NumberLess);
  if (it == versions_.end() || it->number != number) return false;
  versions_.erase(it);
  return true;
}

size_t VersionChain::Prune(VersionNumber watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  // Find newest version with number <= watermark; everything before it is
  // unreachable by any current or future reader.
  auto it = std::upper_bound(
      versions_.begin(), versions_.end(), watermark,
      [](VersionNumber n, const Version& v) { return n < v.number; });
  if (it == versions_.begin()) return 0;
  --it;  // the version that must be retained
  const size_t removed = static_cast<size_t>(it - versions_.begin());
  versions_.erase(versions_.begin(), it);
  return removed;
}

size_t VersionChain::size() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return versions_.size();
}

VersionNumber VersionChain::LatestNumber() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return versions_.empty() ? kInvalidTxnNumber : versions_.back().number;
}

}  // namespace mvcc
