#include "storage/object_store.h"

namespace mvcc {

ObjectStore::ObjectStore(size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

void ObjectStore::Preload(uint64_t num_keys, const Value& initial_value) {
  for (uint64_t key = 0; key < num_keys; ++key) {
    VersionChain* chain = GetOrCreate(key);
    chain->Install(Version{/*number=*/0, initial_value, /*writer=*/0});
  }
}

VersionChain* ObjectStore::Find(ObjectKey key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLatch> guard(shard.latch);
  auto it = shard.chains.find(key);
  return it == shard.chains.end() ? nullptr : it->second.get();
}

VersionChain* ObjectStore::GetOrCreate(ObjectKey key) {
  Shard& shard = ShardFor(key);
  bool created = false;
  VersionChain* chain = nullptr;
  {
    std::lock_guard<SpinLatch> guard(shard.latch);
    auto& slot = shard.chains[key];
    if (!slot) {
      slot = std::make_unique<VersionChain>();
      created = true;
    }
    chain = slot.get();
  }
  if (created) index_.Insert(key);
  return chain;
}

size_t ObjectStore::TotalVersions() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<SpinLatch> guard(shard.latch);
    for (const auto& [key, chain] : shard.chains) total += chain->size();
  }
  return total;
}

size_t ObjectStore::NumKeys() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<SpinLatch> guard(shard.latch);
    total += shard.chains.size();
  }
  return total;
}

size_t ObjectStore::PruneAll(VersionNumber watermark) {
  size_t removed = 0;
  for (Shard& shard : shards_) {
    std::vector<VersionChain*> chains;
    {
      std::lock_guard<SpinLatch> guard(shard.latch);
      chains.reserve(shard.chains.size());
      for (auto& [key, chain] : shard.chains) chains.push_back(chain.get());
    }
    // Prune outside the shard latch: chains are never deleted, and each
    // chain has its own latch.
    for (VersionChain* chain : chains) removed += chain->Prune(watermark);
  }
  return removed;
}

}  // namespace mvcc
