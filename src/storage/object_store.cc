#include "storage/object_store.h"

#include <new>

#include "common/check.h"

namespace mvcc {

namespace {

size_t RoundUpPow2(size_t n) {
  if (n < 2) return 1;
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ObjectStore::ObjectStore(size_t num_shards)
    : shards_(RoundUpPow2(num_shards)),
      shard_mask_(shards_.size() - 1) {
  for (Shard& shard : shards_) {
    shard.table.store(Table::Make(kInitialTableCapacity),
                      std::memory_order_relaxed);
    shard.arena = VersionArena::Create();
  }
}

ObjectStore::Table* ObjectStore::Table::Make(size_t capacity) {
  static_assert(alignof(Slot) <= alignof(Table),
                "trailing slots would be misaligned");
  void* mem = ::operator new(sizeof(Table) + capacity * sizeof(Slot));
  auto* table = new (mem) Table(capacity);
  Slot* s = table->slots();
  for (size_t i = 0; i < capacity; ++i) new (&s[i]) Slot();
  return table;
}

void ObjectStore::Table::Free(void* p) {
  auto* table = static_cast<Table*>(p);
  Slot* s = table->slots();
  for (size_t i = table->capacity; i > 0; --i) s[i - 1].~Slot();
  table->~Table();
  ::operator delete(p);
}

ObjectStore::~ObjectStore() {
  // Chains are owned by the store and reachable exactly once from the
  // live table (retired generations are non-owning and freed by the
  // epoch manager). No reader may hold the store here. Chains release
  // their arrays/payloads back to the shard arena in their destructors,
  // so the arena closes last; slabs still parked in the epoch manager
  // keep it alive until their grace periods elapse.
  for (Shard& shard : shards_) {
    Table* table = shard.table.load(std::memory_order_relaxed);
    for (size_t i = 0; i < table->capacity; ++i) {
      if (table->slots()[i].key.load(std::memory_order_relaxed) != kEmptyKey) {
        delete table->slots()[i].chain.load(std::memory_order_relaxed);
      }
    }
    Table::Free(table);
    shard.arena->Close();
  }
}

void ObjectStore::Preload(uint64_t num_keys, const Value& initial_value) {
  for (uint64_t key = 0; key < num_keys; ++key) {
    VersionChain* chain = GetOrCreate(key);
    chain->Install(Version{/*number=*/0, initial_value, /*writer=*/0});
  }
}

uint64_t ObjectStore::HashKey(ObjectKey key) {
  // splitmix64 finalizer: sequential workload keys land on unclustered
  // probe positions.
  uint64_t h = key + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

VersionChain* ObjectStore::Probe(const Table* table, ObjectKey key) {
  size_t i = HashKey(key) & table->mask;
  while (true) {
    const ObjectKey slot_key =
        table->slots()[i].key.load(std::memory_order_acquire);
    if (slot_key == key) {
      return table->slots()[i].chain.load(std::memory_order_relaxed);
    }
    if (slot_key == kEmptyKey) return nullptr;  // absence proven
    i = (i + 1) & table->mask;
  }
}

VersionChain* ObjectStore::Find(ObjectKey key) const {
  if (key == kEmptyKey) return nullptr;
  const Shard& shard = ShardFor(key);
  // Pin only the table generation: the chain itself lives as long as the
  // store, so the returned pointer stays valid after the guard drops.
  EpochGuard guard;
  const Table* table = shard.table.load(std::memory_order_acquire);
  return Probe(table, key);
}

void ObjectStore::InsertLocked(Shard& shard, ObjectKey key,
                               VersionChain* chain) {
  Table* table = shard.table.load(std::memory_order_relaxed);
  size_t i = HashKey(key) & table->mask;
  while (table->slots()[i].key.load(std::memory_order_relaxed) != kEmptyKey) {
    i = (i + 1) & table->mask;
  }
  // Wire the chain before publishing the key: a latch-free prober that
  // acquire-loads the key is guaranteed a fully-constructed chain.
  table->slots()[i].chain.store(chain, std::memory_order_relaxed);
  table->slots()[i].key.store(key, std::memory_order_release);
}

VersionChain* ObjectStore::GetOrCreate(ObjectKey key) {
  MVCC_CHECK(key != kEmptyKey);
  Shard& shard = ShardFor(key);
  {
    // Fast path: the key already exists — same latch-free probe as Find.
    EpochGuard guard;
    const Table* table = shard.table.load(std::memory_order_acquire);
    if (VersionChain* chain = Probe(table, key)) return chain;
  }
  bool created = false;
  VersionChain* chain = nullptr;
  {
    std::lock_guard<SpinLatch> guard(shard.latch);
    Table* table = shard.table.load(std::memory_order_relaxed);
    chain = Probe(table, key);
    if (chain == nullptr) {
      const size_t keys = shard.num_keys.load(std::memory_order_relaxed);
      if ((keys + 1) * 10 > table->capacity * 7) {
        // Load factor cap at 0.7 keeps every probe sequence short and
        // guarantees empty slots terminate latch-free probes. Build the
        // doubled table privately, publish with a pointer swap, retire
        // the generation concurrent probes may still hold.
        Table* grown = Table::Make(table->capacity * 2);
        for (size_t i = 0; i < table->capacity; ++i) {
          const ObjectKey k =
              table->slots()[i].key.load(std::memory_order_relaxed);
          if (k == kEmptyKey) continue;
          VersionChain* c =
              table->slots()[i].chain.load(std::memory_order_relaxed);
          size_t j = HashKey(k) & grown->mask;
          while (grown->slots()[j].key.load(std::memory_order_relaxed) !=
                 kEmptyKey) {
            j = (j + 1) & grown->mask;
          }
          grown->slots()[j].chain.store(c, std::memory_order_relaxed);
          grown->slots()[j].key.store(k, std::memory_order_relaxed);
        }
        shard.table.store(grown, std::memory_order_release);
        EpochManager::Global().Retire(table, &Table::Free);
        table = grown;
      }
      chain = new VersionChain(shard.arena, &versions_);
      InsertLocked(shard, key, chain);
      shard.num_keys.store(keys + 1, std::memory_order_relaxed);
      created = true;
    }
  }
  if (created) index_.Insert(key);
  return chain;
}

size_t ObjectStore::TotalVersions() const {
  // Clamp rather than assert: stripes are read at different instants, so
  // a Remove debiting one stripe while the racing Install's credit sits
  // unread in another can push the transient sum below zero. (The old
  // per-shard version debug-asserted agreement with TotalVersionsSlow
  // here, which fired on exactly that benign race when Remove ran
  // against a concurrent table grow; tests that want ground truth call
  // TotalVersionsSlow after quiescing.)
  const int64_t total = versions_.Sum();
  return total < 0 ? 0 : static_cast<size_t>(total);
}

size_t ObjectStore::TotalVersionsSlow() const {
  size_t total = 0;
  EpochGuard guard;
  for (const Shard& shard : shards_) {
    const Table* table = shard.table.load(std::memory_order_acquire);
    for (size_t i = 0; i < table->capacity; ++i) {
      if (table->slots()[i].key.load(std::memory_order_acquire) == kEmptyKey) {
        continue;
      }
      total += table->slots()[i].chain.load(std::memory_order_relaxed)->size();
    }
  }
  return total;
}

VersionArena::Stats ObjectStore::ArenaStats() const {
  VersionArena::Stats total;
  for (const Shard& shard : shards_) {
    const VersionArena::Stats s = shard.arena->GetStats();
    total.allocs += s.allocs;
    total.bytes_carved += s.bytes_carved;
    total.slabs_allocated += s.slabs_allocated;
    total.slabs_recycled += s.slabs_recycled;
    total.slabs_retired += s.slabs_retired;
    total.slabs_freed += s.slabs_freed;
    total.large_allocs += s.large_allocs;
  }
  return total;
}

size_t ObjectStore::NumKeys() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.num_keys.load(std::memory_order_relaxed);
  }
  return total;
}

size_t ObjectStore::PruneAll(VersionNumber watermark) {
  size_t removed = 0;
  EpochGuard guard;
  for (Shard& shard : shards_) {
    // No latch: chains are never deleted while the store lives, and each
    // chain serializes its own writers. Chains inserted after this table
    // load are younger than the watermark and have nothing to prune.
    const Table* table = shard.table.load(std::memory_order_acquire);
    for (size_t i = 0; i < table->capacity; ++i) {
      if (table->slots()[i].key.load(std::memory_order_acquire) == kEmptyKey) {
        continue;
      }
      removed +=
          table->slots()[i].chain.load(std::memory_order_relaxed)->Prune(
              watermark);
    }
  }
  return removed;
}

}  // namespace mvcc
