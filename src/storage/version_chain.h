#ifndef MVCC_STORAGE_VERSION_CHAIN_H_
#define MVCC_STORAGE_VERSION_CHAIN_H_

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/latch.h"
#include "common/result.h"
#include "storage/version.h"

namespace mvcc {

// The list of committed versions of one object, ordered by ascending
// version number. All operations are internally synchronized with a
// short spin latch; blocking-on-pending-writes semantics belong to the
// concurrency control protocols, never to the chain itself.
class VersionChain {
 public:
  VersionChain() = default;
  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  // Returns the version with the largest number <= `at_most`
  // (the read rule of Figure 2). NotFound if every version is younger,
  // which can only happen if garbage collection violated its watermark
  // contract or the object was created after the reader's snapshot.
  Result<VersionRead> Read(TxnNumber at_most) const;

  // Returns the most recent committed version (the 2PL read rule,
  // sn = infinity). NotFound on an empty chain.
  Result<VersionRead> ReadLatest() const;

  // Returns the newest version with number <= `at_most` whose number also
  // satisfies `pred`, scanning backwards. Used by the MV2PL-CTL baseline,
  // whose readers must additionally check that the version's creator
  // appears in their completed-transaction-list copy.
  Result<VersionRead> ReadIf(
      TxnNumber at_most,
      const std::function<bool(VersionNumber)>& pred) const;

  // Inserts a committed version. Version numbers are unique per object
  // (writers are serialized by the CC protocol); out-of-order installs
  // are tolerated because TO writers may commit out of tn order.
  void Install(Version v);

  // Removes the version with exactly `number`, if present. Returns true
  // if a version was removed. Used by the commit pipeline to roll back
  // installed-but-not-durable versions when the write-ahead append
  // fails: the version was never visible (vtnc cannot have covered it —
  // its transaction never completed), so removal is safe.
  bool Remove(VersionNumber number);

  // Removes all versions strictly older than the newest version whose
  // number is <= `watermark`. That newest-visible version is retained so
  // readers with sn >= watermark still find their snapshot. Returns the
  // number of versions discarded.
  size_t Prune(VersionNumber watermark);

  // Number of committed versions currently retained.
  size_t size() const;

  // Largest committed version number, or kInvalidTxnNumber if empty.
  VersionNumber LatestNumber() const;

 private:
  mutable SpinLatch latch_;
  std::vector<Version> versions_;  // ascending by number
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_VERSION_CHAIN_H_
