#ifndef MVCC_STORAGE_VERSION_CHAIN_H_
#define MVCC_STORAGE_VERSION_CHAIN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/counters.h"
#include "common/epoch.h"
#include "common/ids.h"
#include "common/latch.h"
#include "common/result.h"
#include "storage/version.h"
#include "storage/version_arena.h"

namespace mvcc {

// Aggregate write-side counters for the arena-backed chains, reported
// by bench_readpath: the whole point of the slab redesign is driving
// `republishes` (full-array copies) toward zero on in-order workloads
// and making `pruned_in_place` (O(1) prefix drops) carry GC instead.
struct ChainWriteStats {
  uint64_t installs_in_place = 0;  // append into spare capacity
  uint64_t republishes = 0;        // new array published (grow/ooo/remove)
  uint64_t prunes_in_place = 0;    // prune served by a start-offset bump
};
ChainWriteStats GetChainWriteStats();

// The list of committed versions of one object, ordered by ascending
// version number.
//
// Reads are latch-free and wait-free: the chain keeps its versions in an
// immutable array published through an atomic pointer, with the live
// window [start, count) release-published in two counters. A reader pins
// the reclamation epoch (EpochGuard), acquire-loads the array pointer
// and the window, and searches entries that can never change underneath
// it — no latch, no retry loop, no store to shared state. This is how
// the paper's "read-only transactions never block" guarantee survives
// contention: visibility is coordinated by vtnc and the published
// window, not by mutual exclusion.
//
// The write side is shaped so that it never makes readers pay (the PR 5
// version lost to a latched vector precisely because it did):
//   - Slots are POD (version number, writer, and a pointer into
//     arena-allocated payload bytes), so republishing an array is a
//     memcpy, never a string copy, and reclaimed arrays need no
//     destructor pass.
//   - Arrays and payloads are carved from a VersionArena slab;
//     reclamation is batched per slab through epoch-based reclamation
//     instead of per array (see version_arena.h).
//   - In-order installs (commits arriving in tn order — the common
//     case) append into reserve-ahead spare capacity and publish by
//     bumping `count`; arrays are sized with headroom so a republish
//     happens only on geometric growth, an out-of-order install, or a
//     Remove rollback.
//   - Prune drops a prefix by bumping `start` — O(1), no allocation, no
//     copy; the array compacts for free at its next republish.
// Blocking-on-pending-writes semantics belong to the concurrency
// control protocols, never to the chain itself.
class VersionChain {
 public:
  // `arena` supplies array/payload storage (nullptr = the process-wide
  // default arena). `version_counter`, when non-null, is credited by
  // Install and debited by Remove/Prune — the object store aggregates
  // installs across chains so GC accounting never walks them.
  explicit VersionChain(VersionArena* arena = nullptr,
                        StripedCounter* version_counter = nullptr);
  ~VersionChain();
  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  // Returns the version with the largest number <= `at_most`
  // (the read rule of Figure 2). NotFound if every version is younger,
  // which can only happen if garbage collection violated its watermark
  // contract or the object was created after the reader's snapshot.
  // Inline (like ReadLatest below): this is the hottest path in the
  // system and the call boundary alone was measurable against it.
  //
  // The newest-first fast case is profile-driven: snapshot readers run
  // at (or near) vtnc, so the newest or second-newest version satisfies
  // almost every read and the binary search is the cold tail.
  Result<VersionRead> Read(TxnNumber at_most) const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    const VersionSlot* slots = arr->slots();
    // The hit path touches only `count`: slot count-1 is never pruned
    // (Prune always retains the newest version <= its watermark, so
    // start <= count-1 whenever count > 0, and count == 0 implies
    // start == 0). The read linearizes at this load — a concurrent
    // install or prune published after it simply isn't in this reader's
    // snapshot.
    size_t n = arr->count.load(std::memory_order_acquire);
    if (__builtin_expect(n != 0, 1)) {
      const VersionSlot& newest = slots[n - 1];
      if (__builtin_expect(newest.number <= at_most, 1)) {
        return MakeRead(newest);
      }
    }
    size_t s = arr->start.load(std::memory_order_acquire);
    if (__builtin_expect(s >= n && n != 0, 0)) {
      // A prune published a newer window than the count loaded above.
      // Its release-store of `start` happened after it observed a count
      // past the cut, so one acquire reload restores s < n; the extra
      // slots it exposes are published and ascending, so the search
      // below stays correct.
      n = arr->count.load(std::memory_order_acquire);
    }
    if (n > s) {
      if (n - 1 > s) {
        const VersionSlot& prev = slots[n - 2];
        if (prev.number <= at_most) return MakeRead(prev);
      }
      const size_t idx = UpperBound(slots, s, n > s + 2 ? n - 2 : s, at_most);
      if (idx > s) return MakeRead(slots[idx - 1]);
    }
    return Status::NotFound("no version <= " + std::to_string(at_most));
  }

  // Returns the most recent committed version (the 2PL read rule,
  // sn = infinity). NotFound on an empty chain.
  Result<VersionRead> ReadLatest() const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    // count == 0 iff the chain is empty (see Read); `start` is not
    // consulted because slot count-1 is never pruned away.
    const size_t n = arr->count.load(std::memory_order_acquire);
    if (n == 0) return Status::NotFound("empty version chain");
    return MakeRead(arr->slots()[n - 1]);
  }

  // Returns the newest version with number <= `at_most` whose number also
  // satisfies `pred`, scanning backwards. Used by the MV2PL-CTL baseline,
  // whose readers must additionally check that the version's creator
  // appears in their completed-transaction-list copy. Templated so the
  // hot read path never pays a std::function type-erasure allocation.
  template <typename Pred>
  Result<VersionRead> ReadIf(TxnNumber at_most, const Pred& pred) const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    const size_t s = arr->start.load(std::memory_order_acquire);
    const size_t n = arr->count.load(std::memory_order_acquire);
    const VersionSlot* slots = arr->slots();
    size_t idx = UpperBound(slots, s, n, at_most);
    while (idx > s) {
      const VersionSlot& v = slots[--idx];
      if (pred(v.number)) return MakeRead(v);
    }
    return Status::NotFound("no qualifying version <= " +
                            std::to_string(at_most));
  }

  // Inserts a committed version. Version numbers are unique per object
  // (writers are serialized by the CC protocol); out-of-order installs
  // are tolerated because TO writers may commit out of tn order.
  void Install(const Version& v);

  // Removes the version with exactly `number`, if present. Returns true
  // if a version was removed. Used by the commit pipeline to roll back
  // installed-but-not-durable versions when the write-ahead append
  // fails: the version was never visible (vtnc cannot have covered it —
  // its transaction never completed), so removal is safe.
  bool Remove(VersionNumber number);

  // Removes all versions strictly older than the newest version whose
  // number is <= `watermark`. That newest-visible version is retained so
  // readers with sn >= watermark still find their snapshot. Returns the
  // number of versions discarded.
  size_t Prune(VersionNumber watermark);

  // Number of committed versions currently retained.
  size_t size() const;

  // Largest committed version number, or kInvalidTxnNumber if empty.
  VersionNumber LatestNumber() const;

 private:
  // One committed version as stored: trivially copyable and trivially
  // destructible, so republishes are memcpys and slab reclamation never
  // runs destructors. The payload bytes live in the arena (or, when
  // oversized, on the individually-EBR-retired heap path) and are
  // immutable for the life of the version.
  struct VersionSlot {
    VersionNumber number;
    const char* data;  // payload bytes; nullptr iff len == 0
    TxnId writer;
    uint32_t len;
    uint32_t reserved;
  };
  static_assert(std::is_trivially_copyable_v<VersionSlot>);
  static_assert(std::is_trivially_destructible_v<VersionSlot>);

  // One published generation of the chain: slots()[start..count) are
  // immutable and ascending by number; slots at index >= count are
  // writer-private spare capacity; slots below start are pruned (still
  // physically readable under the epoch grace period). Readers
  // synchronize on `count` (acquire) for in-place appends, on `start`
  // (acquire) for in-place prunes, and on the owning chain's array
  // pointer (acquire) for swaps; a swapped-out array is released to the
  // arena, whose slab-batched reclamation frees it only after every
  // reader that could hold it has unpinned.
  //
  // Header and slots live in ONE allocation (trailing array), so a read
  // is two dependent loads (chain -> array -> slot) instead of three —
  // on a cold chain that third hop is a full cache miss, and it put the
  // latch-free path behind the latched vector it replaced.
  struct VersionArray {
    const uint32_t capacity;
    std::atomic<uint32_t> start{0};
    std::atomic<uint64_t> count{0};

    VersionSlot* slots() { return reinterpret_cast<VersionSlot*>(this + 1); }
    const VersionSlot* slots() const {
      return reinterpret_cast<const VersionSlot*>(this + 1);
    }

    static size_t AllocBytes(size_t capacity) {
      return sizeof(VersionArray) + capacity * sizeof(VersionSlot);
    }

    explicit VersionArray(uint32_t cap) : capacity(cap) {}
  };
  static_assert(std::is_trivially_destructible_v<VersionArray>);

  static Result<VersionRead> MakeRead(const VersionSlot& v) {
    return VersionRead{v.number, v.writer,
                       v.len != 0 ? Value(v.data, v.len) : Value()};
  }

  // First index in slots[lo..hi) whose number exceeds `at_most`.
  static size_t UpperBound(const VersionSlot* slots, size_t lo, size_t hi,
                           TxnNumber at_most) {
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (slots[mid].number <= at_most) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  VersionArray* MakeArray(size_t capacity);
  void ReleaseArray(VersionArray* arr);
  const char* CopyPayload(const Value& value);
  void ReleasePayload(const VersionSlot& slot);

  // Builds and publishes a replacement array under latch_, releasing
  // the old one to the arena. The live window [start, count) compacts
  // to 0. `insert_at` is the absolute slot index where `v` lands
  // (SIZE_MAX = none); `drop` is an absolute index to omit (SIZE_MAX =
  // none; its payload is NOT released — the caller decides).
  void Republish(VersionArray* old, size_t start, size_t count,
                 size_t insert_at, const VersionSlot* v, size_t drop);

  static constexpr size_t kInitialCapacity = 8;
  // Republishes reserve room for this many further in-order installs on
  // top of geometric growth, so a freshly compacted or grown array
  // never republishes again for a handful of appends.
  static constexpr size_t kReserveAhead = 8;

  // arena_ precedes array_: the constructor carves the initial array
  // out of it.
  VersionArena* const arena_;
  StripedCounter* const version_counter_;
  mutable SpinLatch latch_;  // serializes writers; readers never touch it
  std::atomic<VersionArray*> array_;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_VERSION_CHAIN_H_
