#ifndef MVCC_STORAGE_VERSION_CHAIN_H_
#define MVCC_STORAGE_VERSION_CHAIN_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/ids.h"
#include "common/latch.h"
#include "common/result.h"
#include "storage/version.h"

namespace mvcc {

// The list of committed versions of one object, ordered by ascending
// version number.
//
// Reads are latch-free and wait-free: the chain keeps its versions in an
// immutable array published through an atomic pointer, with the number
// of committed entries release-published in a separate counter. A reader
// pins the reclamation epoch (EpochGuard), acquire-loads the array
// pointer and the count, and binary-searches entries that can never
// change underneath it — no latch, no retry loop, no store to shared
// state. This is how the paper's "read-only transactions never block"
// guarantee survives contention: visibility is coordinated by vtnc and
// the published count, not by mutual exclusion.
//
// Writes keep the short spin latch. The common case — a version younger
// than every existing one, i.e. commits arriving in tn order — appends
// in place into spare capacity and publishes it by bumping the count
// (release store; slots below the count are immutable). The rare cases
// (capacity exhausted, a TO writer committing out of tn order, Remove
// rollbacks, Prune) copy into a fresh array and publish it with a
// pointer swap; the old array is retired through the epoch manager and
// freed only after every reader that could hold it has unpinned.
// Blocking-on-pending-writes semantics belong to the concurrency control
// protocols, never to the chain itself.
class VersionChain {
 public:
  // `version_counter`, when non-null, is bumped by Install and debited
  // by Remove/Prune — the object store aggregates these per shard so
  // GC accounting never walks the chains (see ObjectStore::TotalVersions).
  explicit VersionChain(std::atomic<int64_t>* version_counter = nullptr);
  ~VersionChain();
  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  // Returns the version with the largest number <= `at_most`
  // (the read rule of Figure 2). NotFound if every version is younger,
  // which can only happen if garbage collection violated its watermark
  // contract or the object was created after the reader's snapshot.
  // Inline (like ReadLatest below): this is the hottest path in the
  // system and the call boundary alone was measurable against it.
  Result<VersionRead> Read(TxnNumber at_most) const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    const size_t n = arr->count.load(std::memory_order_acquire);
    const size_t idx = UpperBound(arr, n, at_most);
    if (idx == 0) {
      return Status::NotFound("no version <= " + std::to_string(at_most));
    }
    const Version& v = arr->slots()[idx - 1];
    return VersionRead{v.number, v.writer, v.value};
  }

  // Returns the most recent committed version (the 2PL read rule,
  // sn = infinity). NotFound on an empty chain.
  Result<VersionRead> ReadLatest() const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    const size_t n = arr->count.load(std::memory_order_acquire);
    if (n == 0) return Status::NotFound("empty version chain");
    const Version& v = arr->slots()[n - 1];
    return VersionRead{v.number, v.writer, v.value};
  }

  // Returns the newest version with number <= `at_most` whose number also
  // satisfies `pred`, scanning backwards. Used by the MV2PL-CTL baseline,
  // whose readers must additionally check that the version's creator
  // appears in their completed-transaction-list copy. Templated so the
  // hot read path never pays a std::function type-erasure allocation.
  template <typename Pred>
  Result<VersionRead> ReadIf(TxnNumber at_most, const Pred& pred) const {
    EpochGuard guard;
    const VersionArray* arr = array_.load(std::memory_order_acquire);
    const size_t n = arr->count.load(std::memory_order_acquire);
    size_t idx = UpperBound(arr, n, at_most);
    while (idx > 0) {
      const Version& v = arr->slots()[--idx];
      if (pred(v.number)) return VersionRead{v.number, v.writer, v.value};
    }
    return Status::NotFound("no qualifying version <= " +
                            std::to_string(at_most));
  }

  // Inserts a committed version. Version numbers are unique per object
  // (writers are serialized by the CC protocol); out-of-order installs
  // are tolerated because TO writers may commit out of tn order.
  void Install(Version v);

  // Removes the version with exactly `number`, if present. Returns true
  // if a version was removed. Used by the commit pipeline to roll back
  // installed-but-not-durable versions when the write-ahead append
  // fails: the version was never visible (vtnc cannot have covered it —
  // its transaction never completed), so removal is safe.
  bool Remove(VersionNumber number);

  // Removes all versions strictly older than the newest version whose
  // number is <= `watermark`. That newest-visible version is retained so
  // readers with sn >= watermark still find their snapshot. Returns the
  // number of versions discarded.
  size_t Prune(VersionNumber watermark);

  // Number of committed versions currently retained.
  size_t size() const;

  // Largest committed version number, or kInvalidTxnNumber if empty.
  VersionNumber LatestNumber() const;

 private:
  // One published generation of the chain: slots()[0..count) are
  // immutable and ascending by number; slots at index >= count are
  // writer-private spare capacity. Readers synchronize on `count`
  // (acquire) for in-place appends and on the owning chain's array
  // pointer (acquire) for swaps; a swapped-out array is retired through
  // EBR, never freed in place.
  //
  // Header and slots live in ONE allocation (trailing array), so a read
  // is two dependent loads (chain -> array -> slot) instead of three —
  // on a cold chain that third hop is a full cache miss, and it put the
  // latch-free path behind the latched vector it replaced.
  struct VersionArray {
    const size_t capacity;
    std::atomic<size_t> count{0};

    Version* slots() { return reinterpret_cast<Version*>(this + 1); }
    const Version* slots() const {
      return reinterpret_cast<const Version*>(this + 1);
    }

    static VersionArray* Make(size_t capacity);
    // Destroys and deallocates; shaped as an EBR deleter.
    static void Free(void* p);

   private:
    explicit VersionArray(size_t cap) : capacity(cap) {}
    ~VersionArray() = default;
  };

  // First index in slots()[0..n) whose number exceeds `at_most`.
  static size_t UpperBound(const VersionArray* arr, size_t n,
                           TxnNumber at_most) {
    const Version* slots = arr->slots();
    size_t lo = 0;
    size_t hi = n;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (slots[mid].number <= at_most) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Builds and publishes a replacement array under latch_, retiring the
  // old one. `insert_at` is the slot where `v` lands (SIZE_MAX = none),
  // `drop_from`..`drop_to` is a half-open range to omit.
  void Republish(VersionArray* old, size_t old_count, size_t insert_at,
                 const Version* v, size_t drop_from, size_t drop_to);

  static constexpr size_t kInitialCapacity = 4;

  mutable SpinLatch latch_;  // serializes writers; readers never touch it
  std::atomic<VersionArray*> array_;
  std::atomic<int64_t>* const version_counter_;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_VERSION_CHAIN_H_
