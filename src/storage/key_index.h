#ifndef MVCC_STORAGE_KEY_INDEX_H_
#define MVCC_STORAGE_KEY_INDEX_H_

#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/ids.h"
#include "storage/btree.h"

namespace mvcc {

// Ordered index over the keys that exist in an object store. Supports
// range enumeration for snapshot scans and checkpointing. Keys are only
// ever added (objects are never dropped; garbage collection removes
// versions, not objects), so the index needs no tombstones.
//
// Note the phantom story: a read-only transaction scanning a range reads
// each indexed key's chain at its start number. A key created AFTER the
// snapshot has only versions with numbers above sn, so the chain read
// reports NotFound and the scan skips it — snapshot scans are
// phantom-free with no locking at all.
class KeyIndex {
 public:
  KeyIndex() = default;
  KeyIndex(const KeyIndex&) = delete;
  KeyIndex& operator=(const KeyIndex&) = delete;

  void Insert(ObjectKey key) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    tree_.Insert(key);
  }

  // All keys in [lo, hi], ascending.
  std::vector<ObjectKey> Range(ObjectKey lo, ObjectKey hi) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tree_.Range(lo, hi);
  }

  bool Contains(ObjectKey key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tree_.Contains(key);
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tree_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  BPlusTree tree_;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_KEY_INDEX_H_
