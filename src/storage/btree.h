#ifndef MVCC_STORAGE_BTREE_H_
#define MVCC_STORAGE_BTREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/ids.h"

namespace mvcc {

// In-memory B+ tree over object keys with set semantics and linked
// leaves for range scans. This is the ordered-index substrate behind
// KeyIndex (which adds the reader/writer synchronization); keeping the
// structure itself single-threaded keeps the rebalancing code auditable.
//
// Shape invariants (verified by CheckInvariants(), exercised by the
// property tests):
//   * every leaf is at the same depth;
//   * an internal node with k separator keys has k+1 children, and every
//     key in child i is < separator[i] <= every key in child i+1;
//   * every node except the root holds at least kMinKeys keys;
//   * leaf-link order equals sorted key order.
class BPlusTree {
 public:
  static constexpr size_t kMaxKeys = 64;
  static constexpr size_t kMinKeys = kMaxKeys / 2;

  BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // Inserts `key`; duplicate inserts are ignored (set semantics).
  void Insert(ObjectKey key);

  bool Contains(ObjectKey key) const;

  // All keys in [lo, hi], ascending.
  std::vector<ObjectKey> Range(ObjectKey lo, ObjectKey hi) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  // Full structural validation; false means a bug.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<ObjectKey> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal nodes only
    Node* next = nullptr;                         // leaf chain
  };

  // Result of inserting into a subtree that had to split: the separator
  // to push up and the new right sibling.
  struct Split {
    ObjectKey separator;
    std::unique_ptr<Node> right;
  };

  // Inserts into the subtree at `node`; returns a Split if `node`
  // overflowed, nullopt otherwise. Sets *inserted false on duplicate.
  std::unique_ptr<Split> InsertInto(Node* node, ObjectKey key,
                                    bool* inserted);

  const Node* LeafFor(ObjectKey key) const;

  // Recursive invariant check; returns the subtree's leaf depth or -1 on
  // violation. Keys in the subtree must lie in [lo, hi].
  int Check(const Node* node, bool is_root, ObjectKey lo,
            ObjectKey hi) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_BTREE_H_
