#ifndef MVCC_STORAGE_OBJECT_STORE_H_
#define MVCC_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/counters.h"
#include "common/epoch.h"
#include "common/ids.h"
#include "common/latch.h"
#include "common/result.h"
#include "storage/key_index.h"
#include "storage/version_arena.h"
#include "storage/version_chain.h"

namespace mvcc {

// Sharded in-memory table mapping object keys to version chains. The store
// is deliberately protocol-agnostic: it knows nothing about locks,
// timestamps, or visibility — that is the whole point of the paper's
// modular decomposition.
//
// Point lookup (Find) is lock-free: each shard publishes an
// open-addressing table of (key, chain) slots behind an atomic pointer.
// Keys are only ever inserted, never deleted (garbage collection removes
// versions, not objects), so a probe that reaches an empty slot has
// proven absence and a slot, once published, is immutable — readers CAS
// nothing, store nothing, and take no latch. Inserts (GetOrCreate) keep
// a per-shard latch for the slow path; a table that outgrows its load
// factor is replaced by a pointer swap and the old one retired through
// epoch-based reclamation, so concurrent latch-free probes stay safe.
class ObjectStore {
 public:
  explicit ObjectStore(size_t num_shards = 64);
  ~ObjectStore();
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Creates keys [0, num_keys) each with one initial version (number 0,
  // writer T0) holding `initial_value`.
  void Preload(uint64_t num_keys, const Value& initial_value);

  // Returns the chain for `key`, or nullptr if the key does not exist.
  // Lock-free and wait-free: one published-table load plus a bounded
  // probe sequence. The returned chain lives as long as the store.
  VersionChain* Find(ObjectKey key) const;

  // Returns the chain for `key`, creating an empty chain if absent.
  VersionChain* GetOrCreate(ObjectKey key);

  // Total committed versions retained across all chains (GC accounting).
  // One relaxed striped sum: chains debit/credit the store's counter
  // inside Install/Remove/Prune, so nothing walks the chains. Under
  // concurrent mutation the sum is approximate by design — each stripe
  // is read at a different instant, so in-flight deltas (an installer
  // between its counter bump and its publish, a Remove racing a table
  // grow) make it transiently disagree with TotalVersionsSlow. Callers
  // needing exact agreement must quiesce first; this method never
  // cross-checks on its own (the old debug assert here fired on exactly
  // those benign races).
  size_t TotalVersions() const;

  // The O(keys) scan TotalVersions used to be; kept for the debug
  // cross-check and for tests that want ground truth.
  size_t TotalVersionsSlow() const;

  // Number of distinct keys.
  size_t NumKeys() const;

  // Aggregated slab-arena statistics across all shards (bench and GC
  // reporting: allocation rate, slab recycling, EBR retire batching).
  VersionArena::Stats ArenaStats() const;

  // Applies Prune(watermark) to every chain; returns versions discarded.
  size_t PruneAll(VersionNumber watermark);

  // All existing keys in [lo, hi], ascending (snapshot scans,
  // checkpoints).
  std::vector<ObjectKey> KeysInRange(ObjectKey lo, ObjectKey hi) const {
    return index_.Range(lo, hi);
  }

 private:
  // Reserved sentinel marking an empty slot. Stores reject it as a key
  // (the workload key domain never reaches 2^64 - 1).
  static constexpr ObjectKey kEmptyKey =
      std::numeric_limits<ObjectKey>::max();

  // One open-addressing slot. An insert wires the chain pointer first
  // (plain store — the slot is unreachable until the key publishes),
  // then release-stores the key; a reader that acquire-loads the key
  // therefore sees a fully-constructed chain. Slots never empty out.
  struct Slot {
    std::atomic<ObjectKey> key{kEmptyKey};
    std::atomic<VersionChain*> chain{nullptr};
  };

  // One published generation of a shard's index. Replaced wholesale on
  // growth; old generations are retired through EBR because latch-free
  // probes may still hold them. Tables hold non-owning chain pointers —
  // chain ownership stays with the shard. Header and slots share one
  // allocation (trailing array) so a probe is table -> slot, not
  // table -> slot-array -> slot: one less dependent cache miss on the
  // latch-free read path.
  struct Table {
    const size_t capacity;  // power of two
    const size_t mask;

    Slot* slots() { return reinterpret_cast<Slot*>(this + 1); }
    const Slot* slots() const {
      return reinterpret_cast<const Slot*>(this + 1);
    }

    static Table* Make(size_t capacity);
    // Destroys and deallocates; shaped as an EBR deleter.
    static void Free(void* p);

   private:
    explicit Table(size_t cap) : capacity(cap), mask(cap - 1) {}
    ~Table() = default;
  };

  struct Shard {
    mutable SpinLatch latch;             // insert slow path only
    std::atomic<Table*> table{nullptr};  // published index generation
    std::atomic<size_t> num_keys{0};
    // Slab arena feeding this shard's chains (arrays and payloads).
    // Per-shard so allocation contends no wider than the shard's own
    // writers do; closed (not deleted — EBR may still hold its slabs)
    // after the chains release their storage in ~ObjectStore.
    VersionArena* arena = nullptr;
  };

  // Shard count is rounded up to a power of two at construction so the
  // per-operation shard pick is a mask, not a 64-bit division — the
  // divide was measurable on the latch-free read path, where the fixed
  // costs are a handful of nanoseconds total.
  Shard& ShardFor(ObjectKey key) const {
    return shards_[key & shard_mask_];
  }

  static uint64_t HashKey(ObjectKey key);

  // Probes `table` for `key`; nullptr if absent.
  static VersionChain* Probe(const Table* table, ObjectKey key);

  // Inserts under the shard latch; caller verified absence.
  void InsertLocked(Shard& shard, ObjectKey key, VersionChain* chain);

  static constexpr size_t kInitialTableCapacity = 16;

  mutable std::vector<Shard> shards_;
  size_t shard_mask_;
  // Net committed versions across every chain, striped by thread (not by
  // shard: with more threads than shards the per-shard cells themselves
  // ping-ponged between writers hammering the same hot shard).
  StripedCounter versions_;
  KeyIndex index_;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_OBJECT_STORE_H_
