#ifndef MVCC_STORAGE_OBJECT_STORE_H_
#define MVCC_STORAGE_OBJECT_STORE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/latch.h"
#include "common/result.h"
#include "storage/key_index.h"
#include "storage/version_chain.h"

namespace mvcc {

// Sharded in-memory table mapping object keys to version chains. The store
// is deliberately protocol-agnostic: it knows nothing about locks,
// timestamps, or visibility — that is the whole point of the paper's
// modular decomposition.
class ObjectStore {
 public:
  explicit ObjectStore(size_t num_shards = 64);
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Creates keys [0, num_keys) each with one initial version (number 0,
  // writer T0) holding `initial_value`.
  void Preload(uint64_t num_keys, const Value& initial_value);

  // Returns the chain for `key`, or nullptr if the key does not exist.
  VersionChain* Find(ObjectKey key) const;

  // Returns the chain for `key`, creating an empty chain if absent.
  VersionChain* GetOrCreate(ObjectKey key);

  // Total committed versions retained across all chains (GC accounting).
  size_t TotalVersions() const;

  // Number of distinct keys.
  size_t NumKeys() const;

  // Applies Prune(watermark) to every chain; returns versions discarded.
  size_t PruneAll(VersionNumber watermark);

  // All existing keys in [lo, hi], ascending (snapshot scans,
  // checkpoints).
  std::vector<ObjectKey> KeysInRange(ObjectKey lo, ObjectKey hi) const {
    return index_.Range(lo, hi);
  }

 private:
  struct Shard {
    mutable SpinLatch latch;
    std::unordered_map<ObjectKey, std::unique_ptr<VersionChain>> chains;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }

  mutable std::vector<Shard> shards_;
  KeyIndex index_;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_OBJECT_STORE_H_
