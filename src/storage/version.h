#ifndef MVCC_STORAGE_VERSION_H_
#define MVCC_STORAGE_VERSION_H_

#include <utility>

#include "common/ids.h"

namespace mvcc {

// One committed version of an object. `number` is the transaction number of
// the creator, so version order coincides with the serialization order of
// writers — the version-order definition used in Theorem 1 of the paper.
struct Version {
  VersionNumber number = kInvalidTxnNumber;
  Value value;
  // Transaction id (not number) of the creator; used by the history
  // recorder to attribute reads-from edges. Zero denotes the initial
  // database-load pseudo-transaction T0.
  TxnId writer = 0;
};

// Result of a versioned read: the value plus which version supplied it.
struct VersionRead {
  VersionNumber version = kInvalidTxnNumber;
  TxnId writer = 0;
  Value value;
};

}  // namespace mvcc

#endif  // MVCC_STORAGE_VERSION_H_
