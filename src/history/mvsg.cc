#include "history/mvsg.h"

#include <algorithm>
#include <map>

namespace mvcc {

namespace {

struct WriteRef {
  VersionNumber version;
  TxnId writer;
  bool operator<(const WriteRef& other) const {
    return version < other.version;
  }
};

}  // namespace

Mvsg::Mvsg(const std::vector<TxnRecord>& records) {
  // Ensure every committed transaction (and T0) appears as a node even if
  // it ends up with no edges.
  adjacency_[0];  // T0
  for (const TxnRecord& rec : records) adjacency_[rec.id];

  // Collect the writers of each object, plus the implicit initial version
  // (number 0 by T0) for any object that was read at version 0.
  std::map<ObjectKey, std::vector<WriteRef>> writes_by_key;
  for (const TxnRecord& rec : records) {
    for (const RecordedWrite& w : rec.writes) {
      writes_by_key[w.key].push_back(WriteRef{w.version, rec.id});
    }
  }
  for (const TxnRecord& rec : records) {
    for (const RecordedRead& r : rec.reads) {
      if (r.writer == 0) {
        writes_by_key[r.key].push_back(WriteRef{r.version, 0});
      }
    }
  }

  for (auto& [key, writes] : writes_by_key) {
    std::sort(writes.begin(), writes.end());
    writes.erase(std::unique(writes.begin(), writes.end(),
                             [](const WriteRef& a, const WriteRef& b) {
                               return a.version == b.version &&
                                      a.writer == b.writer;
                             }),
                 writes.end());
    // Writer chain: the total order <<_x.
    for (size_t i = 1; i < writes.size(); ++i) {
      AddEdge(writes[i - 1].writer, writes[i].writer);
    }
  }

  for (const TxnRecord& rec : records) {
    for (const RecordedRead& r : rec.reads) {
      // Reads-from edge: creator -> reader.
      if (r.writer != rec.id) AddEdge(r.writer, rec.id);
      // Version-order edge: reader -> next writer of the same object.
      auto it = writes_by_key.find(r.key);
      if (it == writes_by_key.end()) continue;
      const std::vector<WriteRef>& writes = it->second;
      auto next = std::upper_bound(
          writes.begin(), writes.end(), r.version,
          [](VersionNumber v, const WriteRef& w) { return v < w.version; });
      if (next != writes.end() && next->writer != rec.id) {
        AddEdge(rec.id, next->writer);
      }
    }
  }
}

void Mvsg::AddEdge(TxnId from, TxnId to) {
  if (from == to) return;
  if (adjacency_[from].insert(to).second) ++num_edges_;
  adjacency_[to];  // ensure node exists
}

bool Mvsg::IsAcyclic() const { return FindCycle().empty(); }

std::vector<TxnId> Mvsg::FindCycle() const {
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<TxnId, Color> color;
  std::unordered_map<TxnId, TxnId> parent;
  color.reserve(adjacency_.size());
  for (const auto& [node, _] : adjacency_) color[node] = Color::kWhite;

  // Iterative DFS with an explicit stack of (node, iterator position).
  for (const auto& [root, _] : adjacency_) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<TxnId, std::unordered_set<TxnId>::const_iterator>>
        stack;
    color[root] = Color::kGray;
    stack.emplace_back(root, adjacency_.at(root).begin());
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      if (it == adjacency_.at(node).end()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = *it;
      ++it;
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        parent[next] = node;
        stack.emplace_back(next, adjacency_.at(next).begin());
      } else if (color[next] == Color::kGray) {
        // Found a cycle: walk parents from `node` back to `next`.
        std::vector<TxnId> cycle;
        cycle.push_back(next);
        TxnId cur = node;
        while (cur != next) {
          cycle.push_back(cur);
          cur = parent[cur];
        }
        cycle.push_back(next);
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
    }
  }
  return {};
}

}  // namespace mvcc
