#include "history/history.h"

#include <utility>

namespace mvcc {

void History::Record(TxnRecord record) {
  std::lock_guard<std::mutex> guard(mu_);
  records_.push_back(std::move(record));
}

std::vector<TxnRecord> History::Records() const {
  std::lock_guard<std::mutex> guard(mu_);
  return records_;
}

size_t History::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return records_.size();
}

void History::Merge(const History& other) {
  std::vector<TxnRecord> theirs = other.Records();
  std::lock_guard<std::mutex> guard(mu_);
  records_.insert(records_.end(), std::make_move_iterator(theirs.begin()),
                  std::make_move_iterator(theirs.end()));
}

}  // namespace mvcc
