#ifndef MVCC_HISTORY_HISTORY_H_
#define MVCC_HISTORY_HISTORY_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/ids.h"

namespace mvcc {

// One read operation r_i[x_j] as recorded in a multiversion history:
// transaction i read the version of x created by the transaction whose
// number is `version` (== tn of the writer; 0 for the initial load T0).
struct RecordedRead {
  ObjectKey key;
  VersionNumber version;
  TxnId writer;
};

// One write operation w_i[x_i]: the version installed carries the writer's
// transaction number.
struct RecordedWrite {
  ObjectKey key;
  VersionNumber version;
};

// Everything the MVSG needs to know about one committed transaction.
struct TxnRecord {
  TxnId id = 0;
  TxnClass cls = TxnClass::kReadWrite;
  // tn(T) for read-write transactions; sn(T) for read-only transactions
  // (several read-only transactions may share a number — Lemma 1 applies
  // to read-write transactions only).
  TxnNumber number = kInvalidTxnNumber;
  std::vector<RecordedRead> reads;
  std::vector<RecordedWrite> writes;
};

// Thread-safe log of committed transactions, in commit-record order.
// Aborted transactions are not recorded: by the model (Section 3) their
// versions are destroyed and they do not appear in the history.
class History {
 public:
  History() = default;
  History(const History&) = delete;
  History& operator=(const History&) = delete;

  void Record(TxnRecord record);

  // Snapshot of all records so far.
  std::vector<TxnRecord> Records() const;

  size_t size() const;

  // Merges another history's records (used by the distributed layer to
  // assemble a global history from per-site logs).
  void Merge(const History& other);

 private:
  mutable std::mutex mu_;
  std::vector<TxnRecord> records_;
};

}  // namespace mvcc

#endif  // MVCC_HISTORY_HISTORY_H_
