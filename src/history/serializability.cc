#include "history/serializability.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "history/mvsg.h"

namespace mvcc {

namespace {

std::string Describe(const char* lemma, const std::string& detail) {
  return std::string(lemma) + ": " + detail;
}

}  // namespace

SerializabilityVerdict CheckOneCopySerializable(const History& history) {
  SerializabilityVerdict verdict;
  const std::vector<TxnRecord> records = history.Records();
  Mvsg graph(records);
  verdict.cycle = graph.FindCycle();
  verdict.one_copy_serializable = verdict.cycle.empty();
  verdict.lemma_violations = CheckLemmas(records);
  return verdict;
}

std::vector<std::string> CheckLemmas(const std::vector<TxnRecord>& records) {
  std::vector<std::string> violations;

  // Lemma 1: uniqueness of tn over read-write transactions.
  std::set<TxnNumber> seen_numbers;
  for (const TxnRecord& rec : records) {
    if (rec.cls != TxnClass::kReadWrite) continue;
    if (!seen_numbers.insert(rec.number).second) {
      violations.push_back(Describe(
          "Lemma 1", "duplicate tn " + std::to_string(rec.number) +
                         " (txn " + std::to_string(rec.id) + ")"));
    }
  }

  // Lemma 2: for every r_k[x_j], tn(T_j) <= tn(T_k): the version number
  // read never exceeds the reader's own number.
  for (const TxnRecord& rec : records) {
    for (const RecordedRead& r : rec.reads) {
      if (r.version > rec.number) {
        violations.push_back(Describe(
            "Lemma 2", "txn " + std::to_string(rec.id) + " (number " +
                           std::to_string(rec.number) + ") read version " +
                           std::to_string(r.version) + " of key " +
                           std::to_string(r.key)));
      }
    }
  }

  // Lemma 3: for every r_k[x_j] there is no committed w_i[x_i] (i != k)
  // with version(x_j) < version(x_i) <= number(T_k).
  std::map<ObjectKey, std::vector<std::pair<VersionNumber, TxnId>>>
      writes_by_key;
  for (const TxnRecord& rec : records) {
    for (const RecordedWrite& w : rec.writes) {
      writes_by_key[w.key].emplace_back(w.version, rec.id);
    }
  }
  for (auto& [key, writes] : writes_by_key) {
    std::sort(writes.begin(), writes.end());
  }
  for (const TxnRecord& rec : records) {
    for (const RecordedRead& r : rec.reads) {
      auto it = writes_by_key.find(r.key);
      if (it == writes_by_key.end()) continue;
      const auto& writes = it->second;
      // First write with version > version read.
      auto lo = std::upper_bound(
          writes.begin(), writes.end(),
          std::make_pair(r.version,
                         std::numeric_limits<TxnId>::max()));
      for (auto w = lo; w != writes.end() && w->first <= rec.number; ++w) {
        if (w->second == rec.id) continue;  // i == k is permitted
        violations.push_back(Describe(
            "Lemma 3",
            "txn " + std::to_string(rec.id) + " (number " +
                std::to_string(rec.number) + ") read version " +
                std::to_string(r.version) + " of key " +
                std::to_string(r.key) + " but txn " +
                std::to_string(w->second) + " committed version " +
                std::to_string(w->first)));
      }
    }
  }

  return violations;
}

}  // namespace mvcc
