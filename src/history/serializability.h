#ifndef MVCC_HISTORY_SERIALIZABILITY_H_
#define MVCC_HISTORY_SERIALIZABILITY_H_

#include <string>
#include <vector>

#include "history/history.h"

namespace mvcc {

// Result of checking a recorded history against the paper's correctness
// obligations.
struct SerializabilityVerdict {
  bool one_copy_serializable = false;
  // Empty when serializable; otherwise one cycle through the MVSG.
  std::vector<TxnId> cycle;
  // Human-readable diagnostics for any lemma violations.
  std::vector<std::string> lemma_violations;

  bool AllLemmasHold() const { return lemma_violations.empty(); }
};

// Checks MVSG acyclicity (Theorem 1) over the committed transactions of
// `history`.
SerializabilityVerdict CheckOneCopySerializable(const History& history);

// Checks the formal-specification lemmas of Section 5.1 over a recorded
// history:
//   Lemma 1: read-write transaction numbers are unique.
//   Lemma 2: every read returns a version created by a predecessor:
//            version(x_j) <= number(T_k) for every r_k[x_j].
//   Lemma 3: no committed write lands strictly between the version a
//            transaction read and that transaction's own number.
// Returns human-readable violation strings (empty = all hold).
std::vector<std::string> CheckLemmas(const std::vector<TxnRecord>& records);

}  // namespace mvcc

#endif  // MVCC_HISTORY_SERIALIZABILITY_H_
