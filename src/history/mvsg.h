#ifndef MVCC_HISTORY_MVSG_H_
#define MVCC_HISTORY_MVSG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "history/history.h"

namespace mvcc {

// Multiversion serialization graph (Section 3.2 of the paper, after
// Bernstein & Goodman). Nodes are committed transactions (plus the initial
// pseudo-transaction T0 that wrote every preloaded version with number 0).
// The version order <<_x is the version-number order, i.e. the transaction
// numbers of the writers — the order used in the proof of Theorem 1.
//
// Edges:
//   1. The total order <<_x over the writers of each object
//      (condition 1 of the paper's MVSG definition), materialized as the
//      chain w1 -> w2 -> ... in version order.
//   2. Reads-from: Ti -> Tj whenever Tj reads x from Ti.
//   3. Version-order edges for each read r_k[x_j]: Tk -> Tm where x_m is
//      the next version after x_j. Together with the writer chain this
//      covers, transitively, every edge required by condition 2 of the
//      paper's definition.
//
// H is one-copy serializable iff this graph is acyclic.
class Mvsg {
 public:
  // Builds the graph from the committed-transaction records of a history.
  explicit Mvsg(const std::vector<TxnRecord>& records);

  // True iff the graph has no cycle.
  bool IsAcyclic() const;

  // If cyclic, returns one cycle as a sequence of transaction ids
  // (first == last); empty if acyclic.
  std::vector<TxnId> FindCycle() const;

  size_t NumNodes() const { return adjacency_.size(); }
  size_t NumEdges() const { return num_edges_; }

  // Adjacency for inspection in tests.
  const std::unordered_map<TxnId, std::unordered_set<TxnId>>& adjacency()
      const {
    return adjacency_;
  }

 private:
  void AddEdge(TxnId from, TxnId to);

  std::unordered_map<TxnId, std::unordered_set<TxnId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace mvcc

#endif  // MVCC_HISTORY_MVSG_H_
