#ifndef MVCC_TXN_RETRY_H_
#define MVCC_TXN_RETRY_H_

#include <functional>

#include "common/result.h"
#include "txn/database.h"

namespace mvcc {

struct RetryOptions {
  // Give up after this many aborted attempts (0 = unlimited).
  int max_attempts = 64;
};

// Runs `body` inside a read-write transaction, retrying from scratch on
// every abort (CC conflict, deadlock victim, validation failure) until
// it commits or the attempt budget runs out. This is how applications
// are expected to consume conflict-based protocols: an abort is not an
// error, it is a request to try again.
//
//   Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
//     auto v = txn.Read(7);
//     if (!v.ok()) return v.status();
//     return txn.Write(7, Increment(*v));
//   });
//
// The body returns OK to request commit, or any status to stop:
// kAborted statuses trigger a retry; other failures are returned as-is
// (after aborting the attempt).
Status RunReadWriteTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options = {});

// Read-only variant. Retries are never needed for the VC protocols
// (readers cannot abort); under the baselines a reader can be a
// deadlock victim, and this loop absorbs that.
Status RunReadOnlyTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options = {});

}  // namespace mvcc

#endif  // MVCC_TXN_RETRY_H_
