#ifndef MVCC_TXN_RETRY_H_
#define MVCC_TXN_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "txn/database.h"

namespace mvcc {

struct RetryOptions {
  // Give up after this many aborted attempts (0 = unlimited).
  int max_attempts = 64;

  // Exponential backoff between aborted attempts: after the n-th abort
  // the loop waits min(backoff_base_us << (n-1), backoff_max_us)
  // microseconds, scaled by a deterministic jitter factor in [0.5, 1.0)
  // drawn from `jitter_seed` — same seed, same delays, so contention
  // experiments replay exactly. 0 disables backoff (immediate retry,
  // the historical behavior). Under the deterministic simulator the
  // wait becomes a scheduler yield ("retry.backoff") instead of a real
  // sleep: wall-clock sleeping would stall the one-task-at-a-time
  // scheduler without modeling time.
  int64_t backoff_base_us = 0;
  int64_t backoff_max_us = 100'000;
  uint64_t jitter_seed = 0x5EEDBACCULL;
};

// The delay before retry attempt `next_attempt` (2 = first retry) under
// `options`, in microseconds, jitter included. Exposed for tests; used
// by RunReadWriteTransaction / RunReadOnlyTransaction internally.
int64_t RetryBackoffMicros(const RetryOptions& options, int next_attempt,
                           uint64_t jitter_draw);

// Runs `body` inside a read-write transaction, retrying from scratch on
// every abort (CC conflict, deadlock victim, validation failure) until
// it commits or the attempt budget runs out. This is how applications
// are expected to consume conflict-based protocols: an abort is not an
// error, it is a request to try again.
//
//   Status s = RunReadWriteTransaction(&db, [&](Transaction& txn) {
//     auto v = txn.Read(7);
//     if (!v.ok()) return v.status();
//     return txn.Write(7, Increment(*v));
//   });
//
// The body returns OK to request commit, or any status to stop:
// kAborted statuses trigger a retry; other failures are returned as-is
// (after aborting the attempt).
Status RunReadWriteTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options = {});

// Read-only variant. Retries are never needed for the VC protocols
// (readers cannot abort); under the baselines a reader can be a
// deadlock victim, and this loop absorbs that.
Status RunReadOnlyTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options = {});

}  // namespace mvcc

#endif  // MVCC_TXN_RETRY_H_
