#include "txn/transaction.h"

#include <utility>

#include "txn/database.h"

namespace mvcc {

Transaction::~Transaction() {
  if (!state_.finished) Abort();
}

Result<Value> Transaction::Read(ObjectKey key) {
  if (state_.finished) {
    return Status::InvalidArgument("transaction already finished");
  }
  return db_->DoRead(&state_, key);
}

Result<std::vector<std::pair<ObjectKey, Value>>> Transaction::Scan(
    ObjectKey lo, ObjectKey hi) {
  if (state_.finished) {
    return Status::InvalidArgument("transaction already finished");
  }
  return db_->DoScan(&state_, lo, hi);
}

Status Transaction::Write(ObjectKey key, Value value) {
  if (state_.finished) {
    return Status::InvalidArgument("transaction already finished");
  }
  return db_->DoWrite(&state_, key, std::move(value));
}

Status Transaction::Commit() {
  if (state_.finished) {
    return Status::InvalidArgument("transaction already finished");
  }
  return db_->DoCommit(&state_);
}

void Transaction::Abort() {
  if (state_.finished) return;
  db_->DoAbort(&state_);
}

}  // namespace mvcc
