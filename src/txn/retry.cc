#include "txn/retry.h"

namespace mvcc {

namespace {

Status RunWithRetry(Database* db, TxnClass cls,
                    const std::function<Status(Transaction&)>& body,
                    const RetryOptions& options) {
  int attempts = 0;
  while (true) {
    ++attempts;
    auto txn = db->Begin(cls);
    Status s = body(*txn);
    if (s.ok()) {
      s = txn->Commit();
      if (s.ok()) return s;
    }
    if (txn->active()) txn->Abort();
    if (!s.IsAborted()) return s;  // genuine failure: do not retry
    if (options.max_attempts > 0 && attempts >= options.max_attempts) {
      return Status::Aborted("transaction still aborting after " +
                             std::to_string(attempts) + " attempts");
    }
  }
}

}  // namespace

Status RunReadWriteTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options) {
  return RunWithRetry(db, TxnClass::kReadWrite, body, options);
}

Status RunReadOnlyTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options) {
  return RunWithRetry(db, TxnClass::kReadOnly, body, options);
}

}  // namespace mvcc
