#include "txn/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/sim_hook.h"

namespace mvcc {

int64_t RetryBackoffMicros(const RetryOptions& options, int next_attempt,
                           uint64_t jitter_draw) {
  if (options.backoff_base_us <= 0 || next_attempt < 2) return 0;
  // Exponent caps at 40 to keep the shift defined; backoff_max_us
  // bounds the result anyway.
  const int exponent = std::min(next_attempt - 2, 40);
  int64_t delay = options.backoff_base_us;
  if (exponent > 0 && delay > (options.backoff_max_us >> exponent)) {
    delay = options.backoff_max_us;
  } else {
    delay = std::min(delay << exponent, options.backoff_max_us);
  }
  // Jitter factor in [0.5, 1.0): desynchronizes retrying transactions
  // (full-delay herds re-collide) while keeping at least half the
  // intended wait.
  const double unit =
      static_cast<double>(jitter_draw >> 11) * (1.0 / 9007199254740992.0);
  const double factor = 0.5 + unit * 0.5;
  return std::max<int64_t>(1, static_cast<int64_t>(
                                  static_cast<double>(delay) * factor));
}

namespace {

Status RunWithRetry(Database* db, TxnClass cls,
                    const std::function<Status(Transaction&)>& body,
                    const RetryOptions& options) {
  Random jitter(options.jitter_seed);
  int attempts = 0;
  while (true) {
    ++attempts;
    auto txn = db->Begin(cls);
    Status s = body(*txn);
    if (s.ok()) {
      s = txn->Commit();
      if (s.ok()) return s;
    }
    if (txn->active()) txn->Abort();
    if (!s.IsAborted()) return s;  // genuine failure: do not retry
    if (options.max_attempts > 0 && attempts >= options.max_attempts) {
      return Status::Aborted("transaction still aborting after " +
                             std::to_string(attempts) + " attempts");
    }
    const int64_t delay_us =
        RetryBackoffMicros(options, attempts + 1, jitter.Next());
    if (delay_us > 0) {
      if (InstalledSimHook() != nullptr) {
        // Simulated time: yield to the scheduler instead of sleeping —
        // a real sleep would stall the single-running-task simulator.
        SimSchedulePoint("retry.backoff");
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
    }
  }
}

}  // namespace

Status RunReadWriteTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options) {
  return RunWithRetry(db, TxnClass::kReadWrite, body, options);
}

Status RunReadOnlyTransaction(
    Database* db, const std::function<Status(Transaction&)>& body,
    const RetryOptions& options) {
  return RunWithRetry(db, TxnClass::kReadOnly, body, options);
}

}  // namespace mvcc
