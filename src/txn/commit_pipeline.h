#ifndef MVCC_TXN_COMMIT_PIPELINE_H_
#define MVCC_TXN_COMMIT_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "recovery/log_record.h"
#include "storage/object_store.h"
#include "txn/txn_context.h"
#include "vc/version_control.h"

namespace mvcc {

class WriteAheadLog;

// Protocol hooks into the shared commit epilogue. A protocol that needs
// per-key bookkeeping at install time (timestamp ordering: clear the
// pending write, bump w-ts, wake blocked readers) overrides InstallOne
// and returns true; otherwise the pipeline performs the plain version
// install. BeforeComplete runs after the commit batch is durable and
// immediately before visibility (VCcomplete) — strict 2PL releases its
// locks there, OCC retires its validation-log entry.
class CommitParticipant {
 public:
  virtual ~CommitParticipant() = default;

  // Returns true if the participant installed the version for `key`
  // itself; false to get the pipeline's default install.
  virtual bool InstallOne(TxnState* txn, ObjectKey key) {
    (void)txn;
    (void)key;
    return false;
  }

  // Called once per commit, after the WAL append and before VCcomplete.
  virtual void BeforeComplete(TxnState* txn) { (void)txn; }
};

// The shared commit epilogue for every VC protocol (the paper's
// "perform database updates ... then VCcomplete(T)", Figures 3 and 4,
// factored out of the protocols). A protocol's Commit() shrinks to
// "decide + register", then hands the transaction here:
//
//   1. install the buffered versions, one per written key, interleaving
//      the fault-injection pause (the partially-installed window tests
//      rely on);
//   2. make the commit batch durable via GROUP COMMIT: committers
//      enqueue their batch, one leader drains the whole queue into a
//      single WriteAheadLog::AppendGroup call (one log lock acquisition
//      / fsync-point per group instead of per transaction) while the
//      followers wait for their batch's group to flush;
//   3. run the participant's BeforeComplete hook (lock release, ...);
//   4. VCcomplete(tn) — the transaction becomes visible.
//
// Write-ahead-of-visibility (the invariant replication depends on; see
// docs/correctness.md): a transaction's batch is appended — inside step
// 2's group flush — strictly before its own step 4, because Commit()
// only returns from LogDurable once a leader has flushed the group
// containing its batch. The group append therefore happens-before EVERY
// Complete() in that group, so at any instant each committed tn <= vtnc
// already has its batch in the log, exactly as with per-txn appends.
class CommitPipeline {
 public:
  struct Options {
    // Fault injection: busy-wait this long between the per-key version
    // installs of one commit. Widens the (real but nanosecond-scale)
    // window in which a multi-key commit is only partially installed.
    // Zero in production use.
    int64_t install_pause_ns = 0;
  };

  // `wal` may be null (logging disabled): step 2 becomes a no-op.
  CommitPipeline(ObjectStore* store, VersionControl* vc, WriteAheadLog* wal,
                 Options options);
  CommitPipeline(ObjectStore* store, VersionControl* vc, WriteAheadLog* wal)
      : CommitPipeline(store, vc, wal, Options()) {}
  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  // The epilogue. The caller has decided commit and registered the
  // transaction (txn->tn assigned). `participant` may be null for a
  // protocol with no install/pre-visibility hooks.
  //
  // Failure policy (ISSUE 4): if the durable append fails, the commit
  // MUST NOT become visible — the installed versions are removed again,
  // BeforeComplete still runs (2PL must release its locks), and the
  // transaction's number is Discarded instead of Completed, so vtnc
  // never covers an unflushed record. Returns the WAL's verdict:
  // kDataLoss (fail-stop — the leader's fsync failed and is never
  // retried) or kResourceExhausted (disk full; retryable after space
  // frees). OK means the commit is durable and visible.
  Status Commit(TxnState* txn, CommitParticipant* participant = nullptr);

  // ---- introspection (tests / bench) ----

  // Batches appended through the pipeline, and group flushes performed.
  // groups_flushed <= batches_logged; the gap is the batching win.
  uint64_t batches_logged() const {
    return batches_logged_.load(std::memory_order_relaxed);
  }
  uint64_t groups_flushed() const {
    return groups_flushed_.load(std::memory_order_relaxed);
  }

 private:
  void MaybePauseInstall();
  // Blocks until the transaction's commit batch is durable (group
  // commit) and returns the append status of the group that contained
  // it — a failed group fails every batch in it, since the WAL rolled
  // the whole group back. No-op without a log or an empty write set.
  Status LogDurable(TxnState* txn);

  ObjectStore* const store_;
  VersionControl* const vc_;
  WriteAheadLog* const wal_;
  const Options options_;

  // Group-commit state. Batches enqueue in FIFO order under mu_; a
  // single leader at a time swaps out the whole queue and appends it.
  // Each entry carries its committer's result slot: the leader writes
  // the group's append status into every slot it flushed, so a follower
  // learns its own group's fate even if later groups resolved first.
  struct PendingEntry {
    CommitBatch batch;
    std::shared_ptr<Status> result;
  };
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PendingEntry> pending_;
  uint64_t enqueued_seq_ = 0;  // total batches ever enqueued
  uint64_t durable_seq_ = 0;   // total batches flushed to the log
  bool flush_active_ = false;  // a leader is inside AppendGroup

  std::atomic<uint64_t> batches_logged_{0};
  std::atomic<uint64_t> groups_flushed_{0};
};

}  // namespace mvcc

#endif  // MVCC_TXN_COMMIT_PIPELINE_H_
