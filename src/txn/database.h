#ifndef MVCC_TXN_DATABASE_H_
#define MVCC_TXN_DATABASE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string_view>

#include "cc/lock_manager.h"
#include "cc/protocol.h"
#include "common/counters.h"
#include "common/ids.h"
#include "common/result.h"
#include "gc/garbage_collector.h"
#include "gc/reader_registry.h"
#include "history/history.h"
#include "recovery/wal.h"
#include "storage/object_store.h"
#include "txn/commit_pipeline.h"
#include "txn/transaction.h"
#include "vc/version_control.h"

namespace mvcc {

// Which synchronization protocol a Database instance runs.
enum class ProtocolKind {
  // The paper's framework: version control + pluggable CC.
  kVc2pl,      // Figure 4: VC + strict two-phase locking
  kVcTo,       // Figure 3: VC + timestamp ordering
  kVcOcc,      // references [1,2]: VC + optimistic (backward validation)
  kVcAdaptive, // Section 1's extensibility claim: OCC <-> 2PL switching
  // Baselines the paper argues against.
  kMvto,     // Reed's multiversion timestamp ordering [14]
  kMv2plCtl, // Chan et al. multiversion 2PL with completed txn lists [7]
  kSv2pl,    // single-version strict 2PL (no versions to exploit)
  kWeihlTi,  // Weihl's timestamps-and-initiation rendition [17]
};

std::string_view ProtocolKindName(ProtocolKind kind);

// True for the VC protocols, whose read-write commits run through the
// shared CommitPipeline: the WAL append (and group fsync, in durable
// mode) happens BEFORE VCcomplete makes the commit visible, so a failed
// append rolls back a commit no reader has seen. The baselines instead
// log after the commit is already visible in memory — fine for the
// in-memory simulated-durability WAL, but unsound against a real disk
// (an append failure would leave a visible-but-lost commit), so
// OpenDatabaseDurable refuses them.
bool ProtocolUsesCommitPipeline(ProtocolKind kind);

struct DatabaseOptions {
  ProtocolKind protocol = ProtocolKind::kVc2pl;

  // Preload keys [0, preload_keys) with `initial_value` as version 0.
  uint64_t preload_keys = 0;
  Value initial_value = "0";

  // Deadlock resolution for locking protocols.
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kWaitDie;

  // Record committed transactions for serializability checking.
  bool record_history = false;

  // Track active read-only snapshots and enable garbage collection
  // (VC protocols only).
  bool enable_gc = false;

  // With enable_gc: additionally prune each written key's chain inline
  // at commit (amortized collection, no reliance on the background
  // thread's cadence). This is the "experimentation with garbage
  // collection algorithms" Section 1 promises the modular split makes
  // cheap: the policy change touches no protocol code.
  bool inline_gc = false;

  // Log every committed read-write transaction to an in-memory
  // write-ahead log, enabling crash recovery via RecoverDatabase().
  bool enable_wal = false;

  // Sharding of the object store and protocol tables.
  size_t store_shards = 64;

  // Fault injection: pause between per-key installs at commit (tests and
  // ablations only). See CommitPipeline::Options::install_pause_ns.
  int64_t install_pause_ns = 0;
};

// The top-level multiversion database: object store + version control +
// one synchronization protocol. This is the primary public API.
//
//   DatabaseOptions opts;
//   opts.protocol = ProtocolKind::kVc2pl;
//   opts.preload_keys = 1000;
//   Database db(opts);
//   auto writer = db.Begin(TxnClass::kReadWrite);
//   writer->Write(7, "hello");
//   writer->Commit();
//   auto reader = db.Begin(TxnClass::kReadOnly);
//   auto value = reader->Read(7);
//
// Thread-safe: any number of threads may run transactions concurrently;
// each Transaction handle belongs to one thread.
class Database {
 public:
  explicit Database(DatabaseOptions options);

  // Adopts a pre-opened write-ahead log (typically a durable one from
  // WriteAheadLog::OpenDurable via OpenDatabaseDurable). Implies
  // enable_wal; the log's existing contents are NOT replayed here —
  // recovery does that explicitly.
  Database(DatabaseOptions options, std::unique_ptr<WriteAheadLog> wal);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Starts a transaction. Unknown workloads must use kReadWrite
  // (Section 4.1: unknown category defaults to read-write).
  std::unique_ptr<Transaction> Begin(TxnClass cls);

  // Storage-failure-aware Begin. Read-write transactions are refused
  // while the database is degraded:
  //   kResourceExhausted - the WAL hit disk-full; read-only
  //     transactions continue at the current vtnc, and the state
  //     auto-clears once checkpoint truncation frees space
  //     (CheckpointAndTruncateDurable).
  //   kDataLoss - the WAL latched fail-stop (failed fsync); permanent.
  // Read-only transactions always succeed — the committed prefix
  // remains perfectly readable.
  Result<std::unique_ptr<Transaction>> TryBegin(TxnClass cls);

  // Current storage health verdict, derived from the WAL: OK,
  // kResourceExhausted (degraded read-only), or kDataLoss (fail-stop).
  // Always OK without a WAL or with an in-memory one.
  Status Health() const;

  // Starts a read-only transaction whose snapshot is guaranteed to
  // include the effects of the read-write transaction numbered
  // `at_least` — the currency fix of Section 6. Blocks until vtnc
  // reaches that number. VC protocols only.
  std::unique_ptr<Transaction> BeginReadOnlyAtLeast(TxnNumber at_least);

  // Single-operation conveniences (each runs its own transaction).
  Result<Value> Get(ObjectKey key);
  Status Put(ObjectKey key, Value value);

  // Starts the background garbage collector (requires enable_gc).
  void StartGc(std::chrono::milliseconds interval);
  void StopGc();

  ObjectStore& store() { return store_; }
  VersionControl& version_control() { return vc_; }
  // The shared commit epilogue every VC protocol routes through.
  CommitPipeline& commit_pipeline() { return *pipeline_; }
  // Non-null when enable_wal was set.
  WriteAheadLog* wal() { return wal_.get(); }
  EventCounters& counters() { return counters_; }
  History* history() { return options_.record_history ? &history_ : nullptr; }
  GarbageCollector* gc() { return gc_.get(); }
  ReaderRegistry& reader_registry() { return readers_; }
  Protocol& protocol() { return *protocol_; }
  const DatabaseOptions& options() const { return options_; }

  // Visibility lag tnc - vtnc expressed in pending registrations
  // (VC protocols; Section 6's "delayed visibility" metric).
  uint64_t VisibilityLag() const;

 private:
  friend class Transaction;

  // Transaction-layer operations, called by Transaction.
  Result<Value> DoRead(TxnState* state, ObjectKey key);
  Result<std::vector<std::pair<ObjectKey, Value>>> DoScan(TxnState* state,
                                                          ObjectKey lo,
                                                          ObjectKey hi);
  Status DoWrite(TxnState* state, ObjectKey key, Value value);
  Status DoCommit(TxnState* state);
  void DoAbort(TxnState* state);

  void RecordHistory(const TxnState& state);
  void FinishReadOnly(TxnState* state);

  DatabaseOptions options_;
  ObjectStore store_;
  VersionControl vc_;
  EventCounters counters_;
  History history_;
  ReaderRegistry readers_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<CommitPipeline> pipeline_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<GarbageCollector> gc_;
  std::atomic<TxnId> next_txn_id_{1};
};

}  // namespace mvcc

#endif  // MVCC_TXN_DATABASE_H_
