#ifndef MVCC_TXN_TRANSACTION_H_
#define MVCC_TXN_TRANSACTION_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "txn/txn_context.h"

namespace mvcc {

class Database;

// A user-facing transaction handle. Obtained from Database::Begin();
// destroyed handles that were neither committed nor aborted are aborted
// automatically. Not thread-safe: one transaction is driven by one thread
// (the model's total order <_i over a transaction's operations).
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Reads object `key`. For read-only transactions under the VC
  // protocols: the version with the largest number <= sn(T), with no
  // concurrency control interaction whatsoever (Figure 2). Never blocks.
  // For read-write transactions: per the active protocol; may return
  // kAborted, after which the transaction is already aborted.
  Result<Value> Read(ObjectKey key);

  // Range scan over [lo, hi], ascending. For read-only transactions
  // under the VC protocols this is a snapshot scan — phantom-free with
  // no locking, because objects created after the snapshot have no
  // version <= sn(T). For read-write transactions it is delegated to
  // the protocol: 2PL excludes phantoms with range locks, OCC by
  // validating scanned ranges against later writers; TO and the
  // baselines return InvalidArgument.
  Result<std::vector<std::pair<ObjectKey, Value>>> Scan(ObjectKey lo,
                                                        ObjectKey hi);

  // Buffers a write of `value` to `key`. InvalidArgument on read-only
  // transactions; kAborted if the protocol rejects the operation (the
  // transaction is then already aborted).
  Status Write(ObjectKey key, Value value);

  // Commits. On OK the transaction's effects are installed; read-only
  // commits are a no-op by construction ("end(T): phi", Figure 2).
  // Returns kAborted if the protocol aborted at commit time (e.g. OCC
  // validation); the transaction is then already aborted.
  Status Commit();

  // Aborts explicitly. Idempotent once finished.
  void Abort();

  TxnId id() const { return state_.id; }
  TxnClass txn_class() const { return state_.cls; }
  bool active() const { return !state_.finished; }

  // sn(T). For read-only transactions: the snapshot number.
  TxnNumber start_number() const { return state_.sn; }

  // tn(T); valid for read-write transactions once registered (after a
  // successful Commit for 2PL/OCC, from begin for TO). Read-only
  // transactions report their start number (tn = sn, Figure 2).
  TxnNumber txn_number() const {
    return state_.is_read_only() ? state_.sn : state_.tn;
  }

  const TxnState& state() const { return state_; }

 private:
  friend class Database;
  explicit Transaction(Database* db) : db_(db) {}

  Database* db_;
  TxnState state_;
};

}  // namespace mvcc

#endif  // MVCC_TXN_TRANSACTION_H_
