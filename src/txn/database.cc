#include "txn/database.h"

#include <cassert>
#include <utility>

#include "common/epoch.h"

#include "baselines/mv2pl_ctl.h"
#include "baselines/mvto.h"
#include "baselines/sv2pl.h"
#include "baselines/weihl_ti.h"
#include "cc/adaptive.h"
#include "cc/optimistic.h"
#include "cc/timestamp_ordering.h"
#include "cc/two_phase_locking.h"

namespace mvcc {

std::string_view ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kVc2pl:
      return "vc-2pl";
    case ProtocolKind::kVcTo:
      return "vc-to";
    case ProtocolKind::kVcOcc:
      return "vc-occ";
    case ProtocolKind::kVcAdaptive:
      return "vc-adaptive";
    case ProtocolKind::kMvto:
      return "mvto";
    case ProtocolKind::kMv2plCtl:
      return "mv2pl-ctl";
    case ProtocolKind::kSv2pl:
      return "sv-2pl";
    case ProtocolKind::kWeihlTi:
      return "weihl-ti";
  }
  return "unknown";
}

bool ProtocolUsesCommitPipeline(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kVc2pl:
    case ProtocolKind::kVcTo:
    case ProtocolKind::kVcOcc:
    case ProtocolKind::kVcAdaptive:
      return true;
    case ProtocolKind::kMvto:
    case ProtocolKind::kMv2plCtl:
    case ProtocolKind::kSv2pl:
    case ProtocolKind::kWeihlTi:
      return false;
  }
  return false;
}

namespace {

std::unique_ptr<Protocol> MakeProtocol(const DatabaseOptions& options,
                                       ProtocolEnv env) {
  switch (options.protocol) {
    case ProtocolKind::kVc2pl:
      return std::make_unique<TwoPhaseLocking>(env, options.deadlock_policy);
    case ProtocolKind::kVcTo:
      return std::make_unique<TimestampOrdering>(env, options.store_shards);
    case ProtocolKind::kVcOcc:
      return std::make_unique<Optimistic>(env);
    case ProtocolKind::kVcAdaptive:
      return std::make_unique<Adaptive>(env, options.deadlock_policy);
    case ProtocolKind::kMvto:
      return std::make_unique<Mvto>(env, options.store_shards);
    case ProtocolKind::kMv2plCtl:
      return std::make_unique<Mv2plCtl>(env, options.deadlock_policy);
    case ProtocolKind::kSv2pl:
      return std::make_unique<Sv2pl>(env, options.deadlock_policy);
    case ProtocolKind::kWeihlTi:
      return std::make_unique<WeihlTi>(env, options.deadlock_policy,
                                       options.store_shards);
  }
  return nullptr;
}

}  // namespace

Database::Database(DatabaseOptions options)
    : Database(std::move(options), nullptr) {}

Database::Database(DatabaseOptions options,
                   std::unique_ptr<WriteAheadLog> wal)
    : options_(std::move(options)), store_(options_.store_shards) {
  if (options_.preload_keys > 0) {
    store_.Preload(options_.preload_keys, options_.initial_value);
  }
  if (wal != nullptr) {
    options_.enable_wal = true;
    wal_ = std::move(wal);
  } else if (options_.enable_wal) {
    wal_ = std::make_unique<WriteAheadLog>();
  }
  CommitPipeline::Options popt;
  popt.install_pause_ns = options_.install_pause_ns;
  pipeline_ =
      std::make_unique<CommitPipeline>(&store_, &vc_, wal_.get(), popt);
  ProtocolEnv env;
  env.store = &store_;
  env.vc = &vc_;
  env.counters = &counters_;
  env.pipeline = pipeline_.get();
  protocol_ = MakeProtocol(options_, env);
  assert(protocol_ != nullptr);
  if (options_.enable_gc) {
    gc_ = std::make_unique<GarbageCollector>(&store_, &vc_, &readers_);
  }
}

Database::~Database() {
  if (gc_ != nullptr) gc_->Stop();
}

std::unique_ptr<Transaction> Database::Begin(TxnClass cls) {
  auto txn = std::unique_ptr<Transaction>(new Transaction(this));
  TxnState* state = &txn->state_;
  state->id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  state->cls = cls;
  if (cls == TxnClass::kReadOnly && protocol_->ReadOnlyBypass()) {
    // Figure 2: sn(T) <- VCstart(). The only interaction a read-only
    // transaction ever has with any synchronization module.
    if (options_.enable_gc) {
      // Pin a snapshot no newer than the one we will take, so a GC pass
      // between the two loads can never prune our versions.
      const TxnNumber pin = vc_.Start();
      readers_.Enter(pin);
      state->tn = pin;  // remember the pinned value for Exit()
      state->sn = vc_.Start();
    } else {
      state->sn = vc_.Start();
      state->tn = state->sn;
    }
    return txn;
  }
  Status s = protocol_->Begin(state);
  assert(s.ok());
  (void)s;
  return txn;
}

Result<std::unique_ptr<Transaction>> Database::TryBegin(TxnClass cls) {
  if (cls != TxnClass::kReadOnly) {
    Status health = Health();
    if (health.IsResourceExhausted()) {
      return Status::ResourceExhausted(
          "database is degraded read-only (disk full): " + health.message());
    }
    if (!health.ok()) {
      return Status::DataLoss("database is fail-stopped: " +
                              health.message());
    }
  }
  return Begin(cls);
}

Status Database::Health() const {
  if (wal_ == nullptr) return Status::OK();
  return wal_->DurabilityHealth();
}

std::unique_ptr<Transaction> Database::BeginReadOnlyAtLeast(
    TxnNumber at_least) {
  assert(protocol_->ReadOnlyBypass() &&
         "currency fix requires a VC protocol");
  auto txn = std::unique_ptr<Transaction>(new Transaction(this));
  TxnState* state = &txn->state_;
  state->id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  state->cls = TxnClass::kReadOnly;
  if (options_.enable_gc) {
    const TxnNumber pin = vc_.Start();
    readers_.Enter(pin);
    state->tn = pin;
    state->sn = vc_.StartAtLeast(at_least);
  } else {
    state->sn = vc_.StartAtLeast(at_least);
    state->tn = state->sn;
  }
  return txn;
}

Result<Value> Database::Get(ObjectKey key) {
  auto txn = Begin(TxnClass::kReadOnly);
  Result<Value> value = txn->Read(key);
  if (!value.ok()) return value;
  Status s = txn->Commit();
  if (!s.ok()) return s;
  return value;
}

Status Database::Put(ObjectKey key, Value value) {
  auto txn = Begin(TxnClass::kReadWrite);
  Status s = txn->Write(key, std::move(value));
  if (!s.ok()) return s;
  return txn->Commit();
}

void Database::StartGc(std::chrono::milliseconds interval) {
  assert(gc_ != nullptr && "enable_gc was not set");
  gc_->Start(interval);
}

void Database::StopGc() {
  if (gc_ != nullptr) gc_->Stop();
}

uint64_t Database::VisibilityLag() const { return vc_.QueueSize(); }

Result<Value> Database::DoRead(TxnState* state, ObjectKey key) {
  if (state->is_read_only() && protocol_->ReadOnlyBypass()) {
    // Figure 2: return x_j with the largest version <= sn(T). No
    // concurrency control module is involved; the read never blocks —
    // and since PR 5, takes no latch either: one epoch pin covers the
    // index probe and the chain read (the inner guards re-enter for
    // free), and both walk immutable published snapshots.
    EpochGuard epoch_guard;
    VersionChain* chain = store_.Find(key);
    if (chain == nullptr) {
      return Status::NotFound("key " + std::to_string(key));
    }
    Result<VersionRead> read = chain->Read(state->sn);
    if (!read.ok()) return read.status();
    state->reads.push_back(ReadEntry{key, read->version, read->writer});
    return std::move(read->value);
  }

  Result<VersionRead> read = protocol_->Read(state, key);
  if (!read.ok()) {
    if (read.status().IsAborted()) DoAbort(state);
    return read.status();
  }
  // Own-write reads (pending versions) are not part of the recorded
  // multiversion history: the model admits at most one r[x] before w[x].
  if (read->version != kPendingVersion) {
    state->reads.push_back(ReadEntry{key, read->version, read->writer});
  }
  return std::move(read->value);
}

Result<std::vector<std::pair<ObjectKey, Value>>> Database::DoScan(
    TxnState* state, ObjectKey lo, ObjectKey hi) {
  if (state->is_read_only() && protocol_->ReadOnlyBypass()) {
    // Snapshot scan: the version rule excludes phantoms for free. One
    // epoch pin amortized over every per-key probe and chain read.
    EpochGuard epoch_guard;
    std::vector<std::pair<ObjectKey, Value>> out;
    for (ObjectKey key : store_.KeysInRange(lo, hi)) {
      VersionChain* chain = store_.Find(key);
      if (chain == nullptr) continue;
      Result<VersionRead> read = chain->Read(state->sn);
      if (!read.ok()) continue;  // object born after this snapshot
      state->reads.push_back(ReadEntry{key, read->version, read->writer});
      out.emplace_back(key, std::move(read->value));
    }
    return out;
  }
  if (state->is_read_only()) {
    return Status::InvalidArgument(
        "baseline protocols do not support range scans");
  }
  // Read-write scan: delegated to the protocol, which must exclude
  // phantoms its own way (2PL: range locks; OCC: validation).
  auto rows = protocol_->Scan(state, lo, hi);
  if (!rows.ok()) {
    if (rows.status().IsAborted()) DoAbort(state);
    return rows.status();
  }
  std::vector<std::pair<ObjectKey, Value>> out;
  out.reserve(rows->size());
  for (auto& [key, read] : *rows) {
    if (read.version != kPendingVersion) {
      state->reads.push_back(ReadEntry{key, read.version, read.writer});
    }
    out.emplace_back(key, std::move(read.value));
  }
  return out;
}

Status Database::DoWrite(TxnState* state, ObjectKey key, Value value) {
  if (state->is_read_only()) {
    return Status::InvalidArgument(
        "write issued by a read-only transaction");
  }
  Status s = protocol_->Write(state, key, std::move(value));
  if (s.IsAborted()) DoAbort(state);
  return s;
}

Status Database::DoCommit(TxnState* state) {
  if (state->is_read_only() && protocol_->ReadOnlyBypass()) {
    // end(T) = phi (Figure 2).
    FinishReadOnly(state);
    return Status::OK();
  }
  Status s = protocol_->Commit(state);
  if (!s.ok()) {
    if (s.IsAborted()) {
      DoAbort(state);
    } else if (s.IsDataLoss() || s.IsResourceExhausted()) {
      // Durability failure: the commit pipeline already rolled back the
      // installed versions, released protocol resources and discarded
      // tn(T) — the transaction is fully finished, just unsuccessfully.
      // Do NOT route through DoAbort/protocol Abort: the protocol's
      // commit-side cleanup has run and its abort path would double-free.
      state->finished = true;
      counters_.durability_failures.fetch_add(1, std::memory_order_relaxed);
      counters_.rw_aborts.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  state->finished = true;
  if (state->is_read_only()) {
    counters_.ro_commits.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.rw_commits.fetch_add(1, std::memory_order_relaxed);
    if (options_.inline_gc && gc_ != nullptr) {
      // Amortized collection: sweep only the chains this commit touched.
      const VersionNumber watermark = gc_->Watermark();
      for (ObjectKey key : state->write_order) {
        VersionChain* chain = store_.Find(key);
        if (chain != nullptr) chain->Prune(watermark);
      }
    }
    // VC protocols already appended their commit batch inside Commit()
    // via the shared pipeline, before VCcomplete (write-ahead of
    // visibility; see CommitPipeline). The baselines have no VC
    // completion point, so log them here.
    if (wal_ != nullptr && !protocol_->ReadOnlyBypass() &&
        !state->write_order.empty()) {
      CommitBatch batch;
      batch.txn = state->id;
      batch.tn = state->tn;
      batch.writes.reserve(state->write_order.size());
      for (ObjectKey key : state->write_order) {
        batch.writes.push_back(LoggedWrite{key, state->write_set[key]});
      }
      Status logged = wal_->Append(std::move(batch));
      if (!logged.ok()) {
        // Baselines have no pre-visibility durability point to unwind;
        // surface the failure (the in-memory commit stands, but it is
        // not durable — the caller must treat it as lost). This path is
        // only reachable with the in-memory simulated-durability WAL:
        // OpenDatabaseDurable refuses baseline protocols outright
        // (ProtocolUsesCommitPipeline), so a real disk never backs this
        // post-visibility append.
        counters_.durability_failures.fetch_add(1,
                                                std::memory_order_relaxed);
        return logged;
      }
    }
  }
  if (options_.record_history) RecordHistory(*state);
  return Status::OK();
}

void Database::DoAbort(TxnState* state) {
  if (state->finished) return;
  if (state->is_read_only() && protocol_->ReadOnlyBypass()) {
    // A read-only transaction cannot fail; an explicit abort simply ends
    // it without recording.
    state->finished = true;
    if (options_.enable_gc) readers_.Exit(state->tn);
    counters_.ro_aborts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  protocol_->Abort(state);
  state->finished = true;
  auto& counter =
      state->is_read_only() ? counters_.ro_aborts : counters_.rw_aborts;
  counter.fetch_add(1, std::memory_order_relaxed);
}

void Database::FinishReadOnly(TxnState* state) {
  state->finished = true;
  if (options_.enable_gc) readers_.Exit(state->tn);
  counters_.ro_commits.fetch_add(1, std::memory_order_relaxed);
  if (options_.record_history) RecordHistory(*state);
}

void Database::RecordHistory(const TxnState& state) {
  TxnRecord record;
  record.id = state.id;
  record.cls = state.cls;
  record.number = state.is_read_only() ? state.sn : state.tn;
  record.reads.reserve(state.reads.size());
  for (const ReadEntry& r : state.reads) {
    record.reads.push_back(RecordedRead{r.key, r.version, r.writer});
  }
  record.writes.reserve(state.write_order.size());
  for (ObjectKey key : state.write_order) {
    record.writes.push_back(RecordedWrite{key, state.tn});
  }
  history_.Record(std::move(record));
}

}  // namespace mvcc
