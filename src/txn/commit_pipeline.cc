#include "txn/commit_pipeline.h"

#include <utility>

#include "common/clock.h"
#include "common/sim_hook.h"
#include "recovery/wal.h"

namespace mvcc {

CommitPipeline::CommitPipeline(ObjectStore* store, VersionControl* vc,
                               WriteAheadLog* wal, Options options)
    : store_(store), vc_(vc), wal_(wal), options_(options) {}

void CommitPipeline::MaybePauseInstall() {
  // Under simulation the interleaving point IS the pause: the scheduler
  // may run other tasks inside the partially-installed commit window.
  // Call sites sit outside any protocol lock, so yielding here is safe.
  SimSchedulePoint("commit.install");
  if (options_.install_pause_ns <= 0) return;
  const int64_t until = NowNanos() + options_.install_pause_ns;
  while (NowNanos() < until) {
    // Busy-wait: the injected window must not depend on scheduler wakeup
    // granularity.
  }
}

Status CommitPipeline::Commit(TxnState* txn, CommitParticipant* participant) {
  // 1. Perform database updates with version number tn(T).
  for (ObjectKey key : txn->write_order) {
    MaybePauseInstall();
    if (participant == nullptr || !participant->InstallOne(txn, key)) {
      store_->GetOrCreate(key)->Install(
          Version{txn->tn, txn->write_set[key], txn->id});
    }
  }
  // 2. Durability: the write-ahead point precedes visibility.
  Status durable = LogDurable(txn);
  if (!durable.ok()) {
    // The commit never became durable; it must never become visible.
    // Remove the versions installed in step 1 — no reader can hold
    // them, since vtnc cannot advance past an incomplete transaction
    // and tn(T) will now be discarded, not completed. (TO's w-ts bump
    // from InstallOne stays behind: a conservatively large w-ts only
    // costs spurious aborts, never correctness.)
    for (ObjectKey key : txn->write_order) {
      VersionChain* chain = store_->Find(key);
      if (chain != nullptr) chain->Remove(txn->tn);
    }
    // 2PL must still release its locks, OCC retire its validation entry.
    if (participant != nullptr) participant->BeforeComplete(txn);
    vc_->Discard(txn->tn);
    return durable;
  }
  // 3. Protocol cleanup that must precede visibility (2PL lock release).
  if (participant != nullptr) participant->BeforeComplete(txn);
  // 4. Make the updates visible in serial order.
  vc_->Complete(txn->tn);
  return Status::OK();
}

Status CommitPipeline::LogDurable(TxnState* txn) {
  if (wal_ == nullptr || txn->write_order.empty()) return Status::OK();
  CommitBatch batch;
  batch.txn = txn->id;
  batch.tn = txn->tn;
  batch.writes.reserve(txn->write_order.size());
  for (ObjectKey key : txn->write_order) {
    batch.writes.push_back(LoggedWrite{key, txn->write_set[key]});
  }

  auto result = std::make_shared<Status>();
  uint64_t my_seq = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    pending_.push_back(PendingEntry{std::move(batch), result});
    my_seq = ++enqueued_seq_;
  }
  batches_logged_.fetch_add(1, std::memory_order_relaxed);
  // Group-formation point: under simulation, yield here (outside mu_) so
  // other committers can enqueue into the same group before a leader is
  // elected — real threads pile up naturally while a leader is flushing.
  SimSchedulePoint("pipeline.enqueue");

  std::unique_lock<std::mutex> lock(mu_);
  while (durable_seq_ < my_seq) {
    if (!flush_active_) {
      // Become the leader: flush everything pending as one group.
      flush_active_ = true;
      std::vector<PendingEntry> taken;
      taken.swap(pending_);
      std::vector<CommitBatch> group;
      group.reserve(taken.size());
      for (PendingEntry& entry : taken) {
        group.push_back(std::move(entry.batch));
      }
      const uint64_t count = taken.size();
      lock.unlock();
      // On failure the WAL rolled the WHOLE group back (or latched
      // fail-stop): no batch in it is durable, so the verdict fans out
      // to every committer in the group. Fail-stop statuses are sticky
      // inside the WAL itself — no retry happens here (fsyncgate).
      Status append = wal_->AppendGroup(std::move(group));
      lock.lock();
      for (PendingEntry& entry : taken) {
        *entry.result = append;
      }
      // Flushes are FIFO (one leader at a time takes the whole queue),
      // so these `count` batches are exactly the next `count` sequence
      // numbers after durable_seq_.
      durable_seq_ += count;
      flush_active_ = false;
      groups_flushed_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();
    } else {
      // A leader is flushing; it either took our batch (its return
      // advances durable_seq_ past my_seq) or we will find the queue
      // ready for a new leader on wakeup.
      SimAwareCvWait(cv_, lock, "pipeline.group_wait");
    }
  }
  return *result;
}

}  // namespace mvcc
