#ifndef MVCC_TXN_TXN_CONTEXT_H_
#define MVCC_TXN_TXN_CONTEXT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "storage/version.h"

namespace mvcc {

// Protocol-private per-transaction state. Each concurrency control
// implementation derives its own scratch type; the transaction layer only
// owns the pointer.
struct ProtocolTxnData {
  virtual ~ProtocolTxnData() = default;
};

// One logical read performed by a transaction, with the version it
// returned. Used for history recording and OCC validation.
struct ReadEntry {
  ObjectKey key;
  VersionNumber version;
  TxnId writer;  // creator of the version read (0 = initial load)
};

// Per-transaction state shared between the transaction layer and the
// concurrency control protocols.
struct TxnState {
  TxnId id = 0;
  TxnClass cls = TxnClass::kReadWrite;

  // Start number sn(T): vtnc at begin for read-only transactions,
  // kInfiniteTxnNumber for read-write transactions under 2PL, tn(T)
  // under timestamp ordering.
  TxnNumber sn = kInvalidTxnNumber;

  // Transaction number tn(T), valid once `registered` is true.
  TxnNumber tn = kInvalidTxnNumber;
  bool registered = false;

  bool finished = false;  // committed or aborted

  // Buffered (pending) writes: the uncommitted versions "phi" of Figure 4.
  // write_order preserves first-write order for deterministic installs.
  std::unordered_map<ObjectKey, Value> write_set;
  std::vector<ObjectKey> write_order;

  // Reads performed so far (committed versions only).
  std::vector<ReadEntry> reads;

  // Protocol-specific scratch (lock list, OCC start point, ...).
  std::unique_ptr<ProtocolTxnData> cc_data;

  bool is_read_only() const { return cls == TxnClass::kReadOnly; }

  // Records a buffered write, preserving first-write order.
  void BufferWrite(ObjectKey key, Value value) {
    auto [it, inserted] = write_set.try_emplace(key, std::move(value));
    if (inserted) {
      write_order.push_back(key);
    } else {
      it->second = std::move(value);
    }
  }
};

}  // namespace mvcc

#endif  // MVCC_TXN_TXN_CONTEXT_H_
