#ifndef MVCC_GC_GARBAGE_COLLECTOR_H_
#define MVCC_GC_GARBAGE_COLLECTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/ids.h"
#include "gc/reader_registry.h"
#include "storage/object_store.h"
#include "vc/version_control.h"

namespace mvcc {

// Background version pruner (Section 6). The only restriction version
// control imposes is that no version as young as or younger than vtnc may
// be discarded; additionally any version an active read-only transaction
// could still read must survive. Hence:
//
//   watermark = min(vtnc, min active read-only sn)
//
// and for each object, every version strictly older than the newest
// version <= watermark is unreachable and reclaimed. The collector never
// touches the concurrency control component — the separation the paper
// calls "quite elegant and desirable".
class GarbageCollector {
 public:
  GarbageCollector(ObjectStore* store, VersionControl* vc,
                   ReaderRegistry* readers);
  ~GarbageCollector();

  GarbageCollector(const GarbageCollector&) = delete;
  GarbageCollector& operator=(const GarbageCollector&) = delete;

  // Starts the background thread with the given pass interval.
  void Start(std::chrono::milliseconds interval);

  // Stops the background thread (idempotent).
  void Stop();

  // Runs one synchronous collection pass; returns versions reclaimed.
  size_t RunOnce();

  // Current safe pruning watermark.
  VersionNumber Watermark() const;

  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

  // Retired snapshots (version arrays, index tables) whose grace period
  // elapsed and that this collector's epoch advances actually freed.
  // Pruning unlinks versions; this is the deferred second half.
  uint64_t ebr_freed() const {
    return ebr_freed_.load(std::memory_order_relaxed);
  }

  // Arena slabs whose grace period had elapsed and that had been
  // recycled back to their shard's free list as of the latest pass —
  // the slab-batched analogue of ebr_freed (one slab covers every
  // version array and payload carved from it).
  uint64_t arena_slabs_freed() const {
    return arena_slabs_freed_.load(std::memory_order_relaxed);
  }

 private:
  void Loop(std::chrono::milliseconds interval);

  ObjectStore* const store_;
  VersionControl* const vc_;
  ReaderRegistry* const readers_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  std::atomic<uint64_t> total_reclaimed_{0};
  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> ebr_freed_{0};
  std::atomic<uint64_t> arena_slabs_freed_{0};
};

}  // namespace mvcc

#endif  // MVCC_GC_GARBAGE_COLLECTOR_H_
