#include "gc/reader_registry.h"

// Header-only; this translation unit anchors the target in the build.
