#include "gc/garbage_collector.h"

#include <algorithm>

#include "common/epoch.h"

namespace mvcc {

GarbageCollector::GarbageCollector(ObjectStore* store, VersionControl* vc,
                                   ReaderRegistry* readers)
    : store_(store), vc_(vc), readers_(readers) {}

GarbageCollector::~GarbageCollector() { Stop(); }

void GarbageCollector::Start(std::chrono::milliseconds interval) {
  Stop();
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this, interval] { Loop(interval); });
}

void GarbageCollector::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

size_t GarbageCollector::RunOnce() {
  const size_t reclaimed = store_->PruneAll(Watermark());
  // Pruning only unlinks: replaced version arrays sit on the epoch
  // manager's retire list until every reader that could hold them has
  // unpinned. Advance the epoch twice so garbage unlinked by THIS pass
  // normally clears its two-epoch grace period by the pass's end
  // (each call advances at most one epoch, and only when no reader
  // straddles the previous one).
  size_t freed = EpochManager::Global().Advance();
  freed += EpochManager::Global().Advance();
  ebr_freed_.fetch_add(freed, std::memory_order_relaxed);
  // Those advances are also what returns dead arena slabs to their
  // shards' free lists (slab recycling is just another EBR deleter);
  // snapshot the store-wide cumulative count for reporting.
  arena_slabs_freed_.store(store_->ArenaStats().slabs_freed,
                           std::memory_order_relaxed);
  total_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  passes_.fetch_add(1, std::memory_order_relaxed);
  return reclaimed;
}

VersionNumber GarbageCollector::Watermark() const {
  VersionNumber watermark = vc_->vtnc();
  if (readers_ != nullptr) {
    if (auto min_reader = readers_->MinActive()) {
      watermark = std::min(watermark, *min_reader);
    }
  }
  return watermark;
}

void GarbageCollector::Loop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    RunOnce();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

}  // namespace mvcc
