#ifndef MVCC_GC_READER_REGISTRY_H_
#define MVCC_GC_READER_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>

#include "common/ids.h"

namespace mvcc {

// Tracks the start numbers of active read-only transactions so the
// garbage collector can compute a safe pruning watermark (Section 6: "the
// garbage collection algorithm ... keeps the information about read-only
// transactions"). Read-write transactions are irrelevant: under the VC
// protocols they read only the latest version.
//
// Enter/Exit sit on the read-only Begin/Commit path, which the paper
// promises is synchronization-free — a global mutex here undermined that
// in spirit (every read-only transaction serialized on it when GC was
// on). The fast path is now lock-free: a reader claims one slot of a
// fixed array with a single CAS (Enter) and releases it with one CAS
// (Exit). Slots store sn + 1 so that 0 can mean "free" (sn 0, the empty
// snapshot, is valid). Only when all kSlots are occupied (kSlots
// concurrent read-only transactions) does an entry overflow into the
// legacy mutex-protected multiset.
//
// MinActive (GC only, off the reader path) scans the array and the
// overflow set. The same benign race as with the mutex version applies:
// a reader that enters while a GC pass is computing the watermark may be
// missed, which is safe because Database::Begin publishes the pin
// BEFORE taking the snapshot the transaction actually reads.
class ReaderRegistry {
 public:
  static constexpr size_t kSlots = 256;  // power of two

  ReaderRegistry() {
    for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
  }
  ReaderRegistry(const ReaderRegistry&) = delete;
  ReaderRegistry& operator=(const ReaderRegistry&) = delete;

  void Enter(TxnNumber sn) {
    const uint64_t enc = sn + 1;
    const size_t start = cursor_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < kSlots; ++i) {
      auto& slot = slots_[(start + i) & (kSlots - 1)];
      uint64_t expected = 0;
      if (slot.compare_exchange_strong(expected, enc,
                                       std::memory_order_seq_cst)) {
        return;
      }
    }
    // All slots busy: fall back to the locked overflow set.
    std::lock_guard<std::mutex> guard(mu_);
    overflow_.insert(sn);
    overflow_count_.fetch_add(1, std::memory_order_seq_cst);
  }

  void Exit(TxnNumber sn) {
    const uint64_t enc = sn + 1;
    for (size_t i = 0; i < kSlots; ++i) {
      auto& slot = slots_[i];
      if (slot.load(std::memory_order_relaxed) != enc) continue;
      uint64_t expected = enc;
      if (slot.compare_exchange_strong(expected, 0,
                                       std::memory_order_seq_cst)) {
        return;
      }
    }
    // Either this entry overflowed, or an equal sn in a slot was
    // released by a concurrent Exit — multiset semantics only require
    // that one matching entry go away.
    if (overflow_count_.load(std::memory_order_seq_cst) == 0) return;
    std::lock_guard<std::mutex> guard(mu_);
    auto it = overflow_.find(sn);
    if (it != overflow_.end()) {
      overflow_.erase(it);
      overflow_count_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  // Smallest start number among active read-only transactions, if any.
  std::optional<TxnNumber> MinActive() const {
    std::optional<TxnNumber> min;
    for (const auto& slot : slots_) {
      const uint64_t enc = slot.load(std::memory_order_seq_cst);
      if (enc != 0 && (!min || enc - 1 < *min)) min = enc - 1;
    }
    if (overflow_count_.load(std::memory_order_seq_cst) != 0) {
      std::lock_guard<std::mutex> guard(mu_);
      if (!overflow_.empty() &&
          (!min || *overflow_.begin() < *min)) {
        min = *overflow_.begin();
      }
    }
    return min;
  }

  size_t ActiveCount() const {
    size_t count = 0;
    for (const auto& slot : slots_) {
      if (slot.load(std::memory_order_seq_cst) != 0) ++count;
    }
    std::lock_guard<std::mutex> guard(mu_);
    return count + overflow_.size();
  }

 private:
  std::atomic<uint64_t> slots_[kSlots];
  // Rotating probe start so concurrent Enters rarely collide on a slot.
  std::atomic<size_t> cursor_{0};

  mutable std::mutex mu_;
  std::multiset<TxnNumber> overflow_;
  std::atomic<uint64_t> overflow_count_{0};
};

}  // namespace mvcc

#endif  // MVCC_GC_READER_REGISTRY_H_
