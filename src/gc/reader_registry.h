#ifndef MVCC_GC_READER_REGISTRY_H_
#define MVCC_GC_READER_REGISTRY_H_

#include <mutex>
#include <optional>
#include <set>

#include "common/ids.h"

namespace mvcc {

// Tracks the start numbers of active read-only transactions so the
// garbage collector can compute a safe pruning watermark (Section 6: "the
// garbage collection algorithm ... keeps the information about read-only
// transactions"). Read-write transactions are irrelevant: under the VC
// protocols they read only the latest version.
class ReaderRegistry {
 public:
  ReaderRegistry() = default;
  ReaderRegistry(const ReaderRegistry&) = delete;
  ReaderRegistry& operator=(const ReaderRegistry&) = delete;

  void Enter(TxnNumber sn) {
    std::lock_guard<std::mutex> guard(mu_);
    active_.insert(sn);
  }

  void Exit(TxnNumber sn) {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = active_.find(sn);
    if (it != active_.end()) active_.erase(it);
  }

  // Smallest start number among active read-only transactions, if any.
  std::optional<TxnNumber> MinActive() const {
    std::lock_guard<std::mutex> guard(mu_);
    if (active_.empty()) return std::nullopt;
    return *active_.begin();
  }

  size_t ActiveCount() const {
    std::lock_guard<std::mutex> guard(mu_);
    return active_.size();
  }

 private:
  mutable std::mutex mu_;
  std::multiset<TxnNumber> active_;
};

}  // namespace mvcc

#endif  // MVCC_GC_READER_REGISTRY_H_
