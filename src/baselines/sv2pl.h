#ifndef MVCC_BASELINES_SV2PL_H_
#define MVCC_BASELINES_SV2PL_H_

#include <atomic>
#include <string_view>

#include "cc/lock_manager.h"
#include "cc/protocol.h"

namespace mvcc {

// Single-version strict two-phase locking: the no-multiversioning
// baseline. Read-only transactions take shared locks like everyone else,
// so they block behind writers, delay writers, and can be chosen as
// deadlock victims — everything the multiversion schemes exist to avoid.
// The store is kept single-versioned by pruning on install.
class Sv2pl : public Protocol {
 public:
  Sv2pl(ProtocolEnv env, DeadlockPolicy policy);

  std::string_view name() const override { return "sv-2pl"; }
  bool ReadOnlyBypass() const override { return false; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

 private:
  ProtocolEnv env_;
  LockManager locks_;
  std::atomic<TxnNumber> commit_counter_{0};
};

}  // namespace mvcc

#endif  // MVCC_BASELINES_SV2PL_H_
