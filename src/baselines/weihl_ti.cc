#include "baselines/weihl_ti.h"

#include <algorithm>
#include <string>
#include <utility>

namespace mvcc {

WeihlTi::WeihlTi(ProtocolEnv env, DeadlockPolicy policy, size_t num_shards)
    : env_(env),
      locks_(policy, env.counters),
      shards_(num_shards == 0 ? 1 : num_shards) {}

Status WeihlTi::Begin(TxnState* txn) {
  if (txn->is_read_only()) {
    // Timestamp chosen at initiation — this is the "initiation" in the
    // protocol's name.
    std::lock_guard<std::mutex> guard(clock_mu_);
    txn->sn = clock_;
  } else {
    txn->sn = kInfiniteTxnNumber;
  }
  return Status::OK();
}

Result<VersionRead> WeihlTi::Read(TxnState* txn, ObjectKey key) {
  VersionChain* chain = env_.store->Find(key);
  if (!txn->is_read_only()) {
    auto own = txn->write_set.find(key);
    if (own != txn->write_set.end()) {
      return VersionRead{kPendingVersion, txn->id, own->second};
    }
    Status s = locks_.Acquire(txn->id, key, LockMode::kShared);
    if (!s.ok()) return s;
    if (chain == nullptr) {
      return Status::NotFound("key " + std::to_string(key));
    }
    return chain->ReadLatest();
  }

  // Read-only path: negotiate on the object's timestamps.
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  KeyState& st = shard.table[key];
  bool counted_block = false;
  while (true) {
    // Raise the read-floor so writers deciding from now on serialize
    // after this reader.
    if (st.read_floor < txn->sn) {
      st.read_floor = txn->sn;
      if (env_.counters != nullptr) {
        env_.counters->ro_metadata_writes.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    // A writer that is undecided, or decided at or below ts_R, may still
    // place a version inside our snapshot: wait it out.
    bool blocked = false;
    for (const auto& [writer, ts] : st.active_writers) {
      if (ts == 0 || ts <= txn->sn) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return chain->Read(txn->sn);
    if (env_.counters != nullptr) {
      env_.counters->negotiation_rounds.fetch_add(1,
                                                  std::memory_order_relaxed);
      if (!counted_block) {
        counted_block = true;
        env_.counters->ro_blocks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    shard.cv.wait(lock);
  }
}

Status WeihlTi::Write(TxnState* txn, ObjectKey key, Value value) {
  if (txn->is_read_only()) {
    return Status::InvalidArgument("write on read-only transaction");
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kExclusive);
  if (!s.ok()) return s;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.table[key].active_writers.emplace(txn->id, 0);
  }
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Status WeihlTi::Commit(TxnState* txn) {
  if (txn->is_read_only()) return Status::OK();
  // Decide the commit timestamp: above the global clock and above every
  // read-floor of the objects written.
  TxnNumber ts = 0;
  {
    std::lock_guard<std::mutex> guard(clock_mu_);
    ts = clock_ + 1;
    for (ObjectKey key : txn->write_order) {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> shard_guard(shard.mu);
      auto it = shard.table.find(key);
      if (it != shard.table.end() && it->second.read_floor >= ts) {
        ts = it->second.read_floor + 1;
      }
    }
    clock_ = ts;
  }
  txn->tn = ts;
  txn->registered = true;
  // Publish the decision, install, and withdraw.
  for (ObjectKey key : txn->write_order) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      shard.table[key].active_writers[txn->id] = ts;
    }
  }
  for (ObjectKey key : txn->write_order) {
    env_.store->GetOrCreate(key)->Install(
        Version{ts, txn->write_set[key], txn->id});
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      shard.table[key].active_writers.erase(txn->id);
    }
    shard.cv.notify_all();
  }
  locks_.ReleaseAll(txn->id);
  return Status::OK();
}

void WeihlTi::Abort(TxnState* txn) {
  if (!txn->is_read_only()) {
    for (ObjectKey key : txn->write_order) {
      Shard& shard = ShardFor(key);
      {
        std::lock_guard<std::mutex> guard(shard.mu);
        auto it = shard.table.find(key);
        if (it != shard.table.end()) it->second.active_writers.erase(txn->id);
      }
      shard.cv.notify_all();
    }
    locks_.ReleaseAll(txn->id);
  }
}

}  // namespace mvcc
