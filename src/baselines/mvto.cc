#include "baselines/mvto.h"

#include <string>
#include <utility>

namespace mvcc {

Mvto::Mvto(ProtocolEnv env, size_t num_shards)
    : env_(env), shards_(num_shards == 0 ? 1 : num_shards) {}

Status Mvto::Begin(TxnState* txn) {
  // Every transaction — read-only included — draws a unique timestamp.
  txn->tn = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  txn->sn = txn->tn;
  txn->registered = true;
  return Status::OK();
}

void Mvto::SeedLocked(ObjectKey key, KeyState* st) {
  if (st->seeded) return;
  st->seeded = true;
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr) return;
  Result<VersionRead> initial = chain->ReadLatest();
  if (initial.ok()) {
    VersionMeta meta;
    meta.committed = true;
    st->versions.emplace(initial->version, std::move(meta));
  }
}

Result<VersionRead> Mvto::Read(TxnState* txn, ObjectKey key) {
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{txn->tn, txn->id, own->second};
  }
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  KeyState& st = shard.table[key];
  SeedLocked(key, &st);

  bool counted_block = false;
  while (true) {
    // Version with the largest w-ts <= ts(T).
    auto it = st.versions.upper_bound(txn->tn);
    if (it == st.versions.begin()) {
      return Status::NotFound("key " + std::to_string(key) +
                              " has no version <= " +
                              std::to_string(txn->tn));
    }
    --it;
    VersionMeta& meta = it->second;
    // Record ts(T) as a reader of this version — even while waiting, so a
    // concurrent older writer cannot slip a version underneath us.
    if (txn->tn > meta.rts) {
      meta.rts = txn->tn;
      meta.rts_by_ro = txn->is_read_only();
      if (env_.counters != nullptr && txn->is_read_only()) {
        env_.counters->ro_metadata_writes.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    if (meta.committed) {
      // The committed value lives in the shared chain; Read(w-ts) returns
      // exactly this version.
      return chain->Read(it->first);
    }
    // Pending write: the read is blocked until the writer resolves.
    if (!counted_block && env_.counters != nullptr) {
      counted_block = true;
      auto& counter =
          txn->is_read_only() ? env_.counters->ro_blocks
                              : env_.counters->rw_blocks;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    shard.cv.wait(lock);
  }
}

Status Mvto::Write(TxnState* txn, ObjectKey key, Value value) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  KeyState& st = shard.table[key];
  SeedLocked(key, &st);

  // Re-write by the same transaction: update its pending version.
  auto own = st.versions.find(txn->tn);
  if (own != st.versions.end() && !own->second.committed) {
    own->second.pending_value = value;
    txn->BufferWrite(key, std::move(value));
    return Status::OK();
  }

  // The version this write would immediately follow.
  auto it = st.versions.lower_bound(txn->tn);
  if (it != st.versions.begin()) {
    auto prev = std::prev(it);
    if (prev->second.rts > txn->tn) {
      // A younger transaction already read the preceding version; this
      // write would invalidate that read.
      if (env_.counters != nullptr && prev->second.rts_by_ro) {
        env_.counters->rw_aborts_caused_by_ro.fetch_add(
            1, std::memory_order_relaxed);
      }
      return Status::Aborted("MVTO write rejected on key " +
                             std::to_string(key));
    }
  }
  if (it != st.versions.end() && it->first == txn->tn) {
    return Status::Aborted("duplicate timestamp write on key " +
                           std::to_string(key));
  }
  VersionMeta meta;
  meta.committed = false;
  meta.pending_value = value;
  st.versions.emplace(txn->tn, std::move(meta));
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Status Mvto::Commit(TxnState* txn) {
  for (ObjectKey key : txn->write_order) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      KeyState& st = shard.table[key];
      auto it = st.versions.find(txn->tn);
      if (it != st.versions.end()) {
        it->second.committed = true;
        env_.store->GetOrCreate(key)->Install(
            Version{txn->tn, std::move(it->second.pending_value), txn->id});
        it->second.pending_value.clear();
      }
    }
    shard.cv.notify_all();
  }
  return Status::OK();
}

void Mvto::Abort(TxnState* txn) {
  for (ObjectKey key : txn->write_order) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      auto st = shard.table.find(key);
      if (st != shard.table.end()) {
        auto it = st->second.versions.find(txn->tn);
        // Only erase if still pending (it is ours; committed can't abort).
        if (it != st->second.versions.end() && !it->second.committed) {
          st->second.versions.erase(it);
        }
      }
    }
    shard.cv.notify_all();
  }
}

}  // namespace mvcc
