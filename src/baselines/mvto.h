#ifndef MVCC_BASELINES_MVTO_H_
#define MVCC_BASELINES_MVTO_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cc/protocol.h"

namespace mvcc {

// Reed's multiversion timestamp ordering [14] — the baseline whose
// drawbacks motivate the paper (Section 2):
//
//  * Every transaction, including read-only ones, draws a unique
//    timestamp from a shared counter at begin.
//  * A read of x returns the version with the largest w-ts <= ts(T) and
//    RECORDS ts(T) in that version's r-ts — read-only transactions
//    update the database's synchronization metadata (counted in
//    EventCounters::ro_metadata_writes).
//  * A read must WAIT when the version it would return is a pending
//    (uncommitted) write — read-only transactions can block.
//  * A write of x is REJECTED when a younger transaction already read the
//    preceding version (r-ts > ts(T)) — so a read-only transaction can
//    cause a read-write transaction to abort (counted in
//    EventCounters::rw_aborts_caused_by_ro).
//  * Commits are visible immediately; there is no delayed visibility.
class Mvto : public Protocol {
 public:
  explicit Mvto(ProtocolEnv env, size_t num_shards = 64);

  std::string_view name() const override { return "mvto"; }
  bool ReadOnlyBypass() const override { return false; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

 private:
  struct VersionMeta {
    TxnNumber rts = 0;        // largest timestamp that read this version
    bool rts_by_ro = false;   // class of the reader that set rts
    bool committed = false;
    Value pending_value;      // value while uncommitted
  };

  struct KeyState {
    bool seeded = false;
    // All versions (pending and committed), keyed by w-ts.
    std::map<TxnNumber, VersionMeta> versions;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectKey, KeyState> table;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }

  // Seeds a key's metadata from the preloaded initial version. Caller
  // holds the shard mutex.
  void SeedLocked(ObjectKey key, KeyState* st);

  ProtocolEnv env_;
  std::atomic<TxnNumber> clock_{0};
  mutable std::vector<Shard> shards_;
};

}  // namespace mvcc

#endif  // MVCC_BASELINES_MVTO_H_
