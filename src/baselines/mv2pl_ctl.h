#ifndef MVCC_BASELINES_MV2PL_CTL_H_
#define MVCC_BASELINES_MV2PL_CTL_H_

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <string_view>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/protocol.h"

namespace mvcc {

// Chan et al.'s multiversion two-phase locking [7] — the CS-list baseline
// of Section 2:
//
//  * Read-write transactions run strict 2PL on the latest version; at
//    commit they draw a commit timestamp, install their versions, and are
//    appended to the global COMPLETED TRANSACTION LIST (CTL).
//  * A read-only transaction at begin records a start timestamp and COPIES
//    the CTL (cost proportional to |CTL|, counted in
//    EventCounters::ctl_entries_copied).
//  * Each read finds the largest version <= the start timestamp whose
//    CREATOR APPEARS IN THE CTL COPY — the per-read membership check the
//    paper calls "cumbersome and complex to deal with".
//
// The CTL is truncated behind a watermark below which every timestamp is
// known committed; `truncate_ctl=false` keeps the full list to expose the
// copy cost (experiment E2).
class Mv2plCtl : public Protocol {
 public:
  Mv2plCtl(ProtocolEnv env, DeadlockPolicy policy, bool truncate_ctl = true);

  std::string_view name() const override { return "mv2pl-ctl"; }
  bool ReadOnlyBypass() const override { return false; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

  size_t CtlSize() const;

 private:
  struct RoData : ProtocolTxnData {
    TxnNumber start_ts = 0;
    TxnNumber watermark = 0;          // every ts <= watermark is committed
    std::vector<TxnNumber> ctl_copy;  // sorted

    bool InCtl(TxnNumber ts) const {
      return ts <= watermark ||
             std::binary_search(ctl_copy.begin(), ctl_copy.end(), ts);
    }
  };

  ProtocolEnv env_;
  LockManager locks_;
  const bool truncate_ctl_;
  std::atomic<TxnNumber> commit_counter_{0};

  mutable std::mutex ctl_mu_;
  std::deque<TxnNumber> ctl_;   // sorted ascending
  TxnNumber watermark_ = 0;
};

}  // namespace mvcc

#endif  // MVCC_BASELINES_MV2PL_CTL_H_
