#ifndef MVCC_BASELINES_WEIHL_TI_H_
#define MVCC_BASELINES_WEIHL_TI_H_

#include <condition_variable>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/protocol.h"

namespace mvcc {

// A rendition of Weihl's "timestamps and initiation" protocol [17] as the
// paper characterizes it (Section 2): no completed-transaction list, but
// read-only transactions must perform synchronization actions on
// per-object timestamps against concurrent read-write transactions, which
// can degenerate into rounds of negotiation "where neither transaction
// may proceed with useful work".
//
// Concretely:
//  * Read-write transactions run strict 2PL; at commit they draw a commit
//    timestamp no smaller than any read-floor of the objects they wrote.
//  * A read-only transaction takes its timestamp ts_R at initiation. Each
//    read first RAISES the object's read-floor to ts_R (a metadata write,
//    counted in ro_metadata_writes) — forcing writers that decide later
//    to serialize after it — and then must WAIT OUT every writer of the
//    object that is undecided or decided at or below ts_R. Every
//    fruitless wake-up is one negotiation round
//    (EventCounters::negotiation_rounds).
class WeihlTi : public Protocol {
 public:
  WeihlTi(ProtocolEnv env, DeadlockPolicy policy, size_t num_shards = 64);

  std::string_view name() const override { return "weihl-ti"; }
  bool ReadOnlyBypass() const override { return false; }

  Status Begin(TxnState* txn) override;
  Result<VersionRead> Read(TxnState* txn, ObjectKey key) override;
  Status Write(TxnState* txn, ObjectKey key, Value value) override;
  Status Commit(TxnState* txn) override;
  void Abort(TxnState* txn) override;

 private:
  struct KeyState {
    TxnNumber read_floor = 0;
    // Active writers of this object: 0 = commit timestamp undecided.
    std::unordered_map<TxnId, TxnNumber> active_writers;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectKey, KeyState> table;
  };

  Shard& ShardFor(ObjectKey key) const {
    return shards_[key % shards_.size()];
  }

  ProtocolEnv env_;
  LockManager locks_;
  mutable std::vector<Shard> shards_;

  std::mutex clock_mu_;
  TxnNumber clock_ = 0;
};

}  // namespace mvcc

#endif  // MVCC_BASELINES_WEIHL_TI_H_
