#include "baselines/sv2pl.h"

#include <string>
#include <utility>

namespace mvcc {

Sv2pl::Sv2pl(ProtocolEnv env, DeadlockPolicy policy)
    : env_(env), locks_(policy, env.counters) {}

Status Sv2pl::Begin(TxnState* txn) {
  txn->sn = kInfiniteTxnNumber;
  return Status::OK();
}

Result<VersionRead> Sv2pl::Read(TxnState* txn, ObjectKey key) {
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{kPendingVersion, txn->id, own->second};
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kShared,
                            txn->is_read_only());
  if (!s.ok()) return s;
  VersionChain* chain = env_.store->Find(key);
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return chain->ReadLatest();
}

Status Sv2pl::Write(TxnState* txn, ObjectKey key, Value value) {
  if (txn->is_read_only()) {
    return Status::InvalidArgument("write on read-only transaction");
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kExclusive);
  if (!s.ok()) return s;
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Status Sv2pl::Commit(TxnState* txn) {
  if (!txn->is_read_only()) {
    const TxnNumber ts =
        commit_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    txn->tn = ts;
    txn->registered = true;
    for (ObjectKey key : txn->write_order) {
      VersionChain* chain = env_.store->GetOrCreate(key);
      chain->Install(Version{ts, txn->write_set[key], txn->id});
      // Single-version store: in-place update, old state is gone.
      chain->Prune(ts);
    }
  }
  locks_.ReleaseAll(txn->id);
  return Status::OK();
}

void Sv2pl::Abort(TxnState* txn) { locks_.ReleaseAll(txn->id); }

}  // namespace mvcc
