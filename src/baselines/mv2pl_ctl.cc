#include "baselines/mv2pl_ctl.h"

#include <memory>
#include <string>
#include <utility>

namespace mvcc {

Mv2plCtl::Mv2plCtl(ProtocolEnv env, DeadlockPolicy policy, bool truncate_ctl)
    : env_(env), locks_(policy, env.counters), truncate_ctl_(truncate_ctl) {}

Status Mv2plCtl::Begin(TxnState* txn) {
  if (txn->is_read_only()) {
    auto data = std::make_unique<RoData>();
    {
      std::lock_guard<std::mutex> guard(ctl_mu_);
      data->start_ts = commit_counter_.load(std::memory_order_relaxed);
      data->watermark = watermark_;
      data->ctl_copy.assign(ctl_.begin(), ctl_.end());
    }
    if (env_.counters != nullptr) {
      env_.counters->ctl_entries_copied.fetch_add(
          data->ctl_copy.size(), std::memory_order_relaxed);
    }
    txn->sn = data->start_ts;
    txn->cc_data = std::move(data);
  } else {
    txn->sn = kInfiniteTxnNumber;
  }
  return Status::OK();
}

Result<VersionRead> Mv2plCtl::Read(TxnState* txn, ObjectKey key) {
  VersionChain* chain = env_.store->Find(key);
  if (txn->is_read_only()) {
    if (chain == nullptr) {
      return Status::NotFound("key " + std::to_string(key));
    }
    // Largest version <= start_ts whose creator is in the CTL copy.
    const auto* data = static_cast<const RoData*>(txn->cc_data.get());
    return chain->ReadIf(data->start_ts, [data](VersionNumber v) {
      return v == 0 || data->InCtl(v);  // version 0 = initial load
    });
  }
  auto own = txn->write_set.find(key);
  if (own != txn->write_set.end()) {
    return VersionRead{kPendingVersion, txn->id, own->second};
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kShared);
  if (!s.ok()) return s;
  if (chain == nullptr) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return chain->ReadLatest();
}

Status Mv2plCtl::Write(TxnState* txn, ObjectKey key, Value value) {
  if (txn->is_read_only()) {
    return Status::InvalidArgument("write on read-only transaction");
  }
  Status s = locks_.Acquire(txn->id, key, LockMode::kExclusive);
  if (!s.ok()) return s;
  txn->BufferWrite(key, std::move(value));
  return Status::OK();
}

Status Mv2plCtl::Commit(TxnState* txn) {
  if (txn->is_read_only()) return Status::OK();
  // Commit timestamp fixes the serial position (the lock point is behind
  // us: all locks are held).
  const TxnNumber ts =
      commit_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  txn->tn = ts;
  txn->registered = true;
  for (ObjectKey key : txn->write_order) {
    env_.store->GetOrCreate(key)->Install(
        Version{ts, txn->write_set[key], txn->id});
  }
  {
    // Join the completed transaction list only after every version is
    // installed; readers treat absence from the CTL as "not yet visible".
    std::lock_guard<std::mutex> guard(ctl_mu_);
    auto pos = std::lower_bound(ctl_.begin(), ctl_.end(), ts);
    ctl_.insert(pos, ts);
    if (truncate_ctl_) {
      while (!ctl_.empty() && ctl_.front() == watermark_ + 1) {
        watermark_ = ctl_.front();
        ctl_.pop_front();
      }
    }
  }
  // Strictness: locks are released only after the commit is fully
  // effective (installed and listed).
  locks_.ReleaseAll(txn->id);
  return Status::OK();
}

void Mv2plCtl::Abort(TxnState* txn) {
  if (!txn->is_read_only()) locks_.ReleaseAll(txn->id);
}

size_t Mv2plCtl::CtlSize() const {
  std::lock_guard<std::mutex> guard(ctl_mu_);
  return ctl_.size();
}

}  // namespace mvcc
