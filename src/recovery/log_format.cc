#include "recovery/log_format.h"

#include <cstdio>
#include <cstring>

namespace mvcc {

namespace {

// CRC-32C lookup table (Castagnoli polynomial 0x1EDC6F41, reflected
// 0x82F63B78), generated once at first use.
const uint32_t* Crc32cTable() {
  static uint32_t table[256];
  static const bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)init;
  return table;
}

// Explicit little-endian packing (the documented on-disk byte order),
// independent of host endianness.
void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

uint32_t GetU32(std::string_view in, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  return v;
}

bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = GetU64(in, *pos);
  *pos += 8;
  return true;
}

// CRC over the covered header fields (length + tn, 12 bytes) chained
// with the payload. The covered bytes are packed little-endian exactly
// as they appear on disk, so the CRC is host-endianness-independent.
uint32_t RecordCrc(uint32_t length, uint64_t tn, std::string_view payload) {
  std::string covered;
  covered.reserve(12);
  PutU32(&covered, length);
  PutU64(&covered, tn);
  uint32_t crc = Crc32c(covered.data(), covered.size());
  return Crc32c(payload.data(), payload.size(), crc);
}

// True when a record with a valid CRC starts anywhere at or after `pos`
// — the probe that separates a torn tail (nothing valid after the bad
// record) from interior corruption (valid records after it). The probe
// must not trust the corrupt record's own length field to hop to the
// next boundary: the corruption may BE in that field (a flipped bit
// there fails the CRC and derails a length-based resync), so it slides
// forward one byte at a time until a CRC-valid record parses. Sliding
// is O(bytes^2) worst case but only runs once, on an already-doomed
// segment, to pick between salvage and fail-stop.
bool AnyValidRecordFrom(std::string_view image, size_t pos) {
  for (; pos + kWalRecordHeaderBytes <= image.size(); ++pos) {
    const uint32_t length = GetU32(image, pos);
    const size_t payload_at = pos + kWalRecordHeaderBytes;
    if (length > image.size() || payload_at + length > image.size()) {
      continue;  // cannot be a whole record here; keep sliding
    }
    const uint64_t tn = GetU64(image, pos + 4);
    const uint32_t stored = GetU32(image, pos + 12);
    const std::string_view payload = image.substr(payload_at, length);
    if (RecordCrc(length, tn, payload) == stored) return true;
  }
  return false;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeCommitBatchPayload(const CommitBatch& batch) {
  std::string out;
  PutU64(&out, batch.txn);
  PutU64(&out, batch.tn);
  PutU64(&out, batch.writes.size());
  for (const LoggedWrite& w : batch.writes) {
    PutU64(&out, w.key);
    PutU64(&out, w.value.size());
    out.append(w.value);
  }
  return out;
}

bool DecodeCommitBatchPayload(std::string_view payload, CommitBatch* batch) {
  size_t pos = 0;
  uint64_t writes = 0;
  if (!ReadU64(payload, &pos, &batch->txn) ||
      !ReadU64(payload, &pos, &batch->tn) ||
      !ReadU64(payload, &pos, &writes)) {
    return false;
  }
  batch->writes.clear();
  batch->writes.reserve(writes);
  for (uint64_t i = 0; i < writes; ++i) {
    LoggedWrite write;
    uint64_t len = 0;
    if (!ReadU64(payload, &pos, &write.key) ||
        !ReadU64(payload, &pos, &len) || pos + len > payload.size()) {
      return false;
    }
    write.value.assign(payload.data() + pos, len);
    pos += len;
    batch->writes.push_back(std::move(write));
  }
  return pos == payload.size();
}

std::string EncodeWalRecord(const CommitBatch& batch) {
  const std::string payload = EncodeCommitBatchPayload(batch);
  std::string out;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  PutU32(&out, length);
  PutU64(&out, batch.tn);
  PutU32(&out, RecordCrc(length, batch.tn, payload));
  out.append(payload);
  return out;
}

std::string EncodeWalSegmentHeader() {
  std::string out;
  PutU64(&out, kWalSegmentMagic);
  return out;
}

WalScanResult ScanWalSegment(std::string_view image, const std::string& name) {
  WalScanResult res;
  if (image.size() < kWalSegmentHeaderBytes) {
    // A crash between creating the segment and syncing its magic leaves
    // a short (possibly empty) file: torn, salvageable to zero records.
    res.tail = WalTailState::kTorn;
    res.detail = name + ": partial segment header";
    return res;
  }
  if (GetU64(image, 0) != kWalSegmentMagic) {
    res.tail = WalTailState::kCorrupt;
    res.detail = name + ": bad segment magic";
    return res;
  }
  size_t pos = kWalSegmentHeaderBytes;
  res.valid_bytes = pos;
  while (pos < image.size()) {
    if (pos + kWalRecordHeaderBytes > image.size()) {
      res.tail = WalTailState::kTorn;
      res.detail = name + ": partial record header at offset " +
                   std::to_string(pos);
      return res;
    }
    const uint32_t length = GetU32(image, pos);
    const uint64_t tn = GetU64(image, pos + 4);
    const uint32_t stored = GetU32(image, pos + 12);
    const size_t payload_at = pos + kWalRecordHeaderBytes;
    if (payload_at + length > image.size()) {
      // Usually a genuinely torn final append — but a bit flip in the
      // length field of an interior record also lands here (a huge
      // length "extends past the end"). Probe for valid records after
      // this position before trusting the torn-tail reading.
      if (AnyValidRecordFrom(image, pos + 1)) {
        res.tail = WalTailState::kCorrupt;
        res.detail = name + ": record at offset " + std::to_string(pos) +
                     " extends past end of segment but valid records " +
                     "follow — corrupt length field";
      } else {
        res.tail = WalTailState::kTorn;
        res.detail = name + ": record at offset " + std::to_string(pos) +
                     " extends past end of segment";
      }
      return res;
    }
    const std::string_view payload = image.substr(payload_at, length);
    if (RecordCrc(length, tn, payload) != stored) {
      // Decision rule: valid records AFTER a bad one mean the middle of
      // the log rotted — fail-stop. A bad record with nothing valid
      // after it is the torn tail of the final (crashed) append. The
      // probe starts right after the record's header position rather
      // than length-hopping: the length field is part of what just
      // failed verification and cannot be trusted for resync.
      if (AnyValidRecordFrom(image, pos + 1)) {
        res.tail = WalTailState::kCorrupt;
        res.detail = name + ": CRC mismatch at offset " +
                     std::to_string(pos) +
                     " (tn " + std::to_string(tn) +
                     ") followed by valid records — interior corruption";
      } else {
        res.tail = WalTailState::kTorn;
        res.detail = name + ": CRC mismatch in final record at offset " +
                     std::to_string(pos);
      }
      return res;
    }
    CommitBatch batch;
    if (!DecodeCommitBatchPayload(payload, &batch)) {
      res.tail = WalTailState::kCorrupt;
      res.detail = name + ": CRC-valid record at offset " +
                   std::to_string(pos) + " fails to decode";
      return res;
    }
    res.batches.push_back(std::move(batch));
    pos = payload_at + length;
    res.valid_bytes = pos;
  }
  return res;
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

uint64_t ParseWalSegmentFileName(const std::string& name) {
  if (name.size() != 18 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(14, 4, ".log") != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = 4; i < 14; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace mvcc
