#ifndef MVCC_RECOVERY_LOG_FORMAT_H_
#define MVCC_RECOVERY_LOG_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "recovery/log_record.h"

namespace mvcc {

// On-disk WAL framing (see DESIGN.md "On-disk record format").
//
// A segment file is an 8-byte magic followed by a sequence of records:
//
//   [u32 length][u64 tn][u32 crc32c]  <- 16-byte record header
//   [payload: `length` bytes]         <- serialized CommitBatch
//
// crc32c covers the header's length+tn fields plus the payload, so a
// flipped bit anywhere in the record — including its own length field's
// low bits — fails verification. All integers little-endian.
//
// The scanner classifies the first invalid record it meets:
//   - nothing but zero/partial bytes to EOF  -> torn tail (a crash mid-
//     append); the valid prefix is salvageable.
//   - parseable records after it             -> interior corruption (bit
//     rot, misdirected write); fail-stop, the log cannot be trusted.
// The "records after it" probe slides forward byte by byte looking for
// a CRC-valid record; it never resynchronizes via the invalid record's
// own length field, which is itself suspect (a flipped bit there must
// not turn interior corruption into a salvageable-looking tail).

inline constexpr uint64_t kWalSegmentMagic = 0x4D564343534731ULL;  // "MVCCSG1"
inline constexpr size_t kWalSegmentHeaderBytes = 8;
inline constexpr size_t kWalRecordHeaderBytes = 16;

// CRC-32C (Castagnoli), bitwise-reflected, software table version.
// `seed` chains partial computations: Crc32c(b, Crc32c(a)) == Crc32c(ab).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// Serialized CommitBatch payload (no framing).
std::string EncodeCommitBatchPayload(const CommitBatch& batch);
bool DecodeCommitBatchPayload(std::string_view payload, CommitBatch* batch);

// Full framed record: header + payload.
std::string EncodeWalRecord(const CommitBatch& batch);

// New segment file prefix (just the magic).
std::string EncodeWalSegmentHeader();

enum class WalTailState {
  kClean,    // every byte belongs to a valid record
  kTorn,     // invalid suffix with no valid records after it
  kCorrupt,  // invalid record followed by at least one valid record,
             // or a bad/missing segment magic
};

struct WalScanResult {
  std::vector<CommitBatch> batches;  // the valid prefix, in append order
  // Byte length of the valid prefix (segment header + whole records).
  // Truncating the file here drops exactly the invalid suffix.
  uint64_t valid_bytes = 0;
  WalTailState tail = WalTailState::kClean;
  std::string detail;  // human-readable diagnosis for non-clean tails
};

// Scans one segment image front to back, verifying every CRC.
// `name` only labels diagnostics.
WalScanResult ScanWalSegment(std::string_view image, const std::string& name);

// Segment file naming: "wal-0000000001.log".
std::string WalSegmentFileName(uint64_t seq);
// Returns the sequence number, or 0 if `name` is not a segment file
// (sequence numbers start at 1).
uint64_t ParseWalSegmentFileName(const std::string& name);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_LOG_FORMAT_H_
