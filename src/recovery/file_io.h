#ifndef MVCC_RECOVERY_FILE_IO_H_
#define MVCC_RECOVERY_FILE_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mvcc {

// Minimal durable-file helpers for the recovery images (WAL and
// checkpoint serializations). Writes go through a temp file + rename so
// a crash during save never leaves a half-written image in place.

// Writes `contents` to `path` atomically AND durably: unique per-call
// temp name -> write -> fsync(temp) -> rename -> fsync(parent dir).
// After OK, a crash at any point leaves either the complete old file or
// the complete new file — never a mix, never unflushed garbage.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

// Deletes leftover "*.tmp.*" files in `dir` (debris of WriteFileAtomic
// calls interrupted before their rename). Call once at startup before
// trusting directory listings. Returns the number removed.
uint64_t CleanupOrphanedTempFiles(const std::string& dir);

// Reads the whole file.
Result<std::string> ReadFile(const std::string& path);

// True if `path` exists and is readable.
bool FileExists(const std::string& path);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_FILE_IO_H_
