#ifndef MVCC_RECOVERY_FILE_IO_H_
#define MVCC_RECOVERY_FILE_IO_H_

#include <string>

#include "common/result.h"

namespace mvcc {

// Minimal durable-file helpers for the recovery images (WAL and
// checkpoint serializations). Writes go through a temp file + rename so
// a crash during save never leaves a half-written image in place.

// Writes `contents` to `path` atomically (temp file + rename).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

// Reads the whole file.
Result<std::string> ReadFile(const std::string& path);

// True if `path` exists and is readable.
bool FileExists(const std::string& path);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_FILE_IO_H_
