#include "recovery/wal.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/sim_hook.h"
#include "recovery/env.h"
#include "recovery/log_format.h"

namespace mvcc {

namespace {

constexpr uint64_t kMagic = 0x4D564343574C3031ULL;  // "MVCCWL01"

// Explicit little-endian packing: the simulated disk images written by
// Serialize() round-trip through real files in tests, so they follow
// the same byte-order rule as the durable formats in log_format.cc.
void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Reads a little-endian u64 at *pos, advancing it. Returns false on
// underrun.
bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<unsigned char>(in[*pos + i]))
           << (8 * i);
  }
  *v = out;
  *pos += 8;
  return true;
}

bool GetString(const std::string& in, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetU64(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (file_) file_->Close();
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenDurable(
    Env* env, const std::string& dir, const WalDurableOptions& options,
    WalOpenReport* report) {
  WalOpenReport local_report;
  if (report == nullptr) report = &local_report;
  *report = WalOpenReport{};

  Status s = env->CreateDirIfMissing(dir);
  if (!s.ok()) return s;

  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    const uint64_t seq = ParseWalSegmentFileName(name);
    if (seq != 0) segments.emplace_back(seq, name);
  }
  std::sort(segments.begin(), segments.end());

  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
  log->env_ = env;
  log->dir_ = dir;
  log->dopts_ = options;

  for (size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const std::string path = dir + "/" + segments[i].second;
    auto image = env->ReadFileToString(path);
    if (!image.ok()) return image.status();
    WalScanResult scan = ScanWalSegment(*image, segments[i].second);
    if (scan.tail == WalTailState::kCorrupt) {
      return Status::DataLoss("WAL corruption: " + scan.detail);
    }
    if (scan.tail == WalTailState::kTorn) {
      if (!last) {
        // A torn record with whole valid segments after it cannot be a
        // crashed final append — the log rotted in the middle.
        return Status::DataLoss(
            "WAL corruption: torn record in sealed segment: " + scan.detail);
      }
      if (options.policy == SalvagePolicy::kStrict) {
        return Status::DataLoss("WAL torn tail (strict policy): " +
                                scan.detail);
      }
      // Salvage: drop exactly the invalid suffix of the final segment.
      const uint64_t torn = image->size() - scan.valid_bytes;
      Status t = env->TruncateFile(path, scan.valid_bytes);
      if (!t.ok()) return t;
      report->salvaged = true;
      report->torn_tail_bytes += torn;
      report->detail = scan.detail;
    }
    TxnNumber seg_max = 0;
    for (CommitBatch& batch : scan.batches) {
      seg_max = std::max(seg_max, batch.tn);
      log->max_tn_ = std::max(log->max_tn_, batch.tn);
      log->batches_.push_back(std::move(batch));
      ++report->records;
    }
    ++report->segments;
    if (last) {
      log->file_seq_ = segments[i].first;
      log->file_path_ = path;
      log->file_max_tn_ = seg_max;
    } else {
      log->sealed_.push_back({segments[i].first, path, seg_max});
    }
  }

  if (segments.empty()) {
    log->file_seq_ = 1;
    log->file_path_ = dir + "/" + WalSegmentFileName(1);
  }
  auto file = env->NewAppendableFile(log->file_path_);
  if (!file.ok()) return file.status();
  log->file_ = std::move(file).value();
  if (log->file_->offset() < kWalSegmentHeaderBytes) {
    // Fresh segment, or a salvage that truncated away a partial magic.
    s = log->file_->Append(EncodeWalSegmentHeader());
    if (s.ok()) s = log->file_->Sync();
    if (s.ok()) s = env->SyncDir(dir);
    if (!s.ok()) return s;
  }
  return log;
}

Status WriteAheadLog::LatchFailStopLocked(const Status& cause) {
  failed_ = true;
  failed_reason_ = cause.message();
  return Status::DataLoss(failed_reason_);
}

Status WriteAheadLog::RotateLocked() {
  const uint64_t next = file_seq_ + 1;
  const std::string path = dir_ + "/" + WalSegmentFileName(next);
  auto created = env_->NewAppendableFile(path);
  if (!created.ok()) return created.status();
  std::unique_ptr<WritableFile> fresh = std::move(created).value();
  Status s = fresh->Append(EncodeWalSegmentHeader());
  if (s.ok()) s = fresh->Sync();
  if (s.ok()) s = env_->SyncDir(dir_);
  if (!s.ok()) {
    fresh->Close();
    env_->DeleteFile(path);  // best effort
    return s;
  }
  file_->Close();
  sealed_.push_back({file_seq_, file_path_, file_max_tn_});
  file_ = std::move(fresh);
  file_path_ = path;
  file_seq_ = next;
  file_max_tn_ = 0;
  return Status::OK();
}

Status WriteAheadLog::DurableAppendLocked(const std::string& encoded,
                                          TxnNumber group_max) {
  if (failed_) return Status::DataLoss(failed_reason_);
  if (space_exhausted_) return Status::ResourceExhausted(space_reason_);

  const uint64_t pre_group_offset = file_->offset();
  Status s = file_->Append(encoded);
  if (s.ok()) {
    s = file_->Sync();
    if (!s.ok()) {
      // fsyncgate: the kernel may already have dropped the dirty pages;
      // retrying could "succeed" without the data being on disk. Latch
      // fail-stop permanently.
      return LatchFailStopLocked(s);
    }
  } else {
    // The write failed partway: roll the segment back to the last
    // acknowledged record boundary so the disk stays an exact prefix of
    // the acknowledged commit order.
    file_->Close();
    file_.reset();
    Status rollback = env_->TruncateFile(file_path_, pre_group_offset);
    if (rollback.ok()) {
      auto reopened = env_->NewAppendableFile(file_path_);
      if (reopened.ok()) {
        file_ = std::move(reopened).value();
      } else {
        rollback = reopened.status();
      }
    }
    if (!rollback.ok()) {
      return LatchFailStopLocked(Status::DataLoss(
          s.message() + "; rollback also failed: " + rollback.message()));
    }
    if (s.IsResourceExhausted()) {
      // Disk full, but the log is intact: recoverable degraded state.
      space_exhausted_ = true;
      space_reason_ = s.message();
      return s;
    }
    return LatchFailStopLocked(s);
  }

  file_max_tn_ = std::max(file_max_tn_, group_max);
  if (file_->offset() >= dopts_.segment_target_bytes) {
    // The group is already durable — rotation trouble only affects
    // future appends, so flag it without failing this commit.
    Status rotate = RotateLocked();
    if (rotate.IsResourceExhausted()) {
      space_exhausted_ = true;
      space_reason_ = rotate.message();
    } else if (!rotate.ok()) {
      LatchFailStopLocked(rotate);
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Append(CommitBatch batch) {
  std::vector<CommitBatch> one;
  one.push_back(std::move(batch));
  return AppendGroup(std::move(one));
}

Status WriteAheadLog::AppendGroup(std::vector<CommitBatch> batches) {
  if (batches.empty()) return Status::OK();
  // Per-record crash injection first, outside the lock: a simulated
  // crash keeps the durable prefix of the group and drops the rest,
  // exactly as a sequence of Append calls would.
  size_t keep = batches.size();
  if (SimHook* hook = InstalledSimHook()) {
    keep = 0;
    for (const CommitBatch& batch : batches) {
      if (crashed_.load(std::memory_order_relaxed) ||
          hook->OnWalAppend(batch.tn)) {
        crashed_.store(true, std::memory_order_relaxed);
        break;
      }
      ++keep;
    }
  }
  if (keep == 0) return Status::OK();
  std::lock_guard<std::mutex> guard(mu_);
  if (env_ != nullptr) {
    std::string encoded;
    TxnNumber group_max = 0;
    for (size_t i = 0; i < keep; ++i) {
      encoded += EncodeWalRecord(batches[i]);
      group_max = std::max(group_max, batches[i].tn);
    }
    Status s = DurableAppendLocked(encoded, group_max);
    // The mirror only ever receives durably-acknowledged records, so
    // visibility (driven off the mirror by the pipeline) can never
    // advance past an unflushed record.
    if (!s.ok()) return s;
  }
  for (size_t i = 0; i < keep; ++i) {
    max_tn_ = std::max(max_tn_, batches[i].tn);
    batches_.push_back(std::move(batches[i]));
  }
  return Status::OK();
}

std::vector<CommitBatch> WriteAheadLog::Batches() const {
  std::lock_guard<std::mutex> guard(mu_);
  return batches_;
}

Result<std::vector<CommitBatch>> WriteAheadLog::BatchesSince(
    TxnNumber after) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (after < truncated_up_to_) {
    return Status::Unavailable(
        "WAL truncated past tn " + std::to_string(after) + " (watermark " +
        std::to_string(truncated_up_to_) + "); resync from checkpoint");
  }
  std::vector<CommitBatch> out;
  for (const CommitBatch& batch : batches_) {
    if (batch.tn > after) out.push_back(batch);
  }
  std::sort(out.begin(), out.end(),
            [](const CommitBatch& a, const CommitBatch& b) {
              return a.tn < b.tn;
            });
  return out;
}

void WriteAheadLog::Truncate(TxnNumber up_to) {
  std::lock_guard<std::mutex> guard(mu_);
  truncated_up_to_ = std::max(truncated_up_to_, up_to);
  batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                [up_to](const CommitBatch& b) {
                                  return b.tn <= up_to;
                                }),
                 batches_.end());
  if (env_ == nullptr) return;

  // Delete sealed segments wholly covered by the watermark — this is
  // what actually frees disk space after a checkpoint.
  bool deleted = false;
  for (auto it = sealed_.begin(); it != sealed_.end();) {
    if (it->max_tn <= truncated_up_to_) {
      env_->DeleteFile(it->path);  // best effort; re-scanned if it stays
      it = sealed_.erase(it);
      deleted = true;
    } else {
      ++it;
    }
  }
  if (deleted) env_->SyncDir(dir_);

  if (space_exhausted_ && !failed_) {
    // Reprobe writability by rotating to a fresh segment: if the magic
    // can be written and fsynced, space is back and the degraded
    // read-only mode lifts.
    if (RotateLocked().ok()) {
      space_exhausted_ = false;
      space_reason_.clear();
    }
  }
}

TxnNumber WriteAheadLog::TruncatedUpTo() const {
  std::lock_guard<std::mutex> guard(mu_);
  return truncated_up_to_;
}

size_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return batches_.size();
}

TxnNumber WriteAheadLog::MaxTn() const {
  std::lock_guard<std::mutex> guard(mu_);
  return max_tn_;
}

Status WriteAheadLog::DurabilityHealth() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (failed_) return Status::DataLoss(failed_reason_);
  if (space_exhausted_) return Status::ResourceExhausted(space_reason_);
  return Status::OK();
}

uint64_t WriteAheadLog::SegmentCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (env_ == nullptr) return 0;
  return sealed_.size() + 1;
}

std::string WriteAheadLog::Serialize() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, batches_.size());
  for (const CommitBatch& batch : batches_) {
    PutU64(&out, batch.txn);
    PutU64(&out, batch.tn);
    PutU64(&out, batch.writes.size());
    for (const LoggedWrite& w : batch.writes) {
      PutU64(&out, w.key);
      PutString(&out, w.value);
    }
  }
  return out;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Deserialize(
    const std::string& image) {
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad WAL image magic");
  }
  uint64_t count = 0;
  if (!GetU64(image, &pos, &count)) {
    return Status::InvalidArgument("truncated WAL image (batch count)");
  }
  auto log = std::make_unique<WriteAheadLog>();
  for (uint64_t i = 0; i < count; ++i) {
    CommitBatch batch;
    uint64_t writes = 0;
    if (!GetU64(image, &pos, &batch.txn) ||
        !GetU64(image, &pos, &batch.tn) ||
        !GetU64(image, &pos, &writes)) {
      return Status::InvalidArgument("truncated WAL image (batch header)");
    }
    batch.writes.reserve(writes);
    for (uint64_t w = 0; w < writes; ++w) {
      LoggedWrite write;
      if (!GetU64(image, &pos, &write.key) ||
          !GetString(image, &pos, &write.value)) {
        return Status::InvalidArgument("truncated WAL image (write)");
      }
      batch.writes.push_back(std::move(write));
    }
    log->Append(std::move(batch));
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes in WAL image");
  }
  return log;
}

}  // namespace mvcc
