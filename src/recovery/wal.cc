#include "recovery/wal.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/sim_hook.h"

namespace mvcc {

namespace {

constexpr uint64_t kMagic = 0x4D564343574C3031ULL;  // "MVCCWL01"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Reads a u64 at *pos, advancing it. Returns false on underrun.
bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetString(const std::string& in, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetU64(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

void WriteAheadLog::Append(CommitBatch batch) {
  // Simulated crash at a record boundary: once fault injection decides
  // the "disk" is gone, this and every later record is lost — the log
  // image recovery sees is an exact prefix of the append sequence.
  if (SimHook* hook = InstalledSimHook()) {
    if (crashed_.load(std::memory_order_relaxed) ||
        hook->OnWalAppend(batch.tn)) {
      crashed_.store(true, std::memory_order_relaxed);
      return;
    }
  }
  std::lock_guard<std::mutex> guard(mu_);
  max_tn_ = std::max(max_tn_, batch.tn);
  batches_.push_back(std::move(batch));
}

void WriteAheadLog::AppendGroup(std::vector<CommitBatch> batches) {
  // Per-record crash injection first, outside the lock: a crash keeps
  // the durable prefix of the group and drops the rest, exactly as a
  // sequence of Append calls would.
  size_t keep = batches.size();
  if (SimHook* hook = InstalledSimHook()) {
    keep = 0;
    for (const CommitBatch& batch : batches) {
      if (crashed_.load(std::memory_order_relaxed) ||
          hook->OnWalAppend(batch.tn)) {
        crashed_.store(true, std::memory_order_relaxed);
        break;
      }
      ++keep;
    }
  }
  if (keep == 0) return;
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < keep; ++i) {
    max_tn_ = std::max(max_tn_, batches[i].tn);
    batches_.push_back(std::move(batches[i]));
  }
}

std::vector<CommitBatch> WriteAheadLog::Batches() const {
  std::lock_guard<std::mutex> guard(mu_);
  return batches_;
}

Result<std::vector<CommitBatch>> WriteAheadLog::BatchesSince(
    TxnNumber after) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (after < truncated_up_to_) {
    return Status::Unavailable(
        "WAL truncated past tn " + std::to_string(after) + " (watermark " +
        std::to_string(truncated_up_to_) + "); resync from checkpoint");
  }
  std::vector<CommitBatch> out;
  for (const CommitBatch& batch : batches_) {
    if (batch.tn > after) out.push_back(batch);
  }
  std::sort(out.begin(), out.end(),
            [](const CommitBatch& a, const CommitBatch& b) {
              return a.tn < b.tn;
            });
  return out;
}

void WriteAheadLog::Truncate(TxnNumber up_to) {
  std::lock_guard<std::mutex> guard(mu_);
  truncated_up_to_ = std::max(truncated_up_to_, up_to);
  batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                [up_to](const CommitBatch& b) {
                                  return b.tn <= up_to;
                                }),
                 batches_.end());
}

TxnNumber WriteAheadLog::TruncatedUpTo() const {
  std::lock_guard<std::mutex> guard(mu_);
  return truncated_up_to_;
}

size_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return batches_.size();
}

TxnNumber WriteAheadLog::MaxTn() const {
  std::lock_guard<std::mutex> guard(mu_);
  return max_tn_;
}

std::string WriteAheadLog::Serialize() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, batches_.size());
  for (const CommitBatch& batch : batches_) {
    PutU64(&out, batch.txn);
    PutU64(&out, batch.tn);
    PutU64(&out, batch.writes.size());
    for (const LoggedWrite& w : batch.writes) {
      PutU64(&out, w.key);
      PutString(&out, w.value);
    }
  }
  return out;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Deserialize(
    const std::string& image) {
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad WAL image magic");
  }
  uint64_t count = 0;
  if (!GetU64(image, &pos, &count)) {
    return Status::InvalidArgument("truncated WAL image (batch count)");
  }
  auto log = std::make_unique<WriteAheadLog>();
  for (uint64_t i = 0; i < count; ++i) {
    CommitBatch batch;
    uint64_t writes = 0;
    if (!GetU64(image, &pos, &batch.txn) ||
        !GetU64(image, &pos, &batch.tn) ||
        !GetU64(image, &pos, &writes)) {
      return Status::InvalidArgument("truncated WAL image (batch header)");
    }
    batch.writes.reserve(writes);
    for (uint64_t w = 0; w < writes; ++w) {
      LoggedWrite write;
      if (!GetU64(image, &pos, &write.key) ||
          !GetString(image, &pos, &write.value)) {
        return Status::InvalidArgument("truncated WAL image (write)");
      }
      batch.writes.push_back(std::move(write));
    }
    log->Append(std::move(batch));
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes in WAL image");
  }
  return log;
}

}  // namespace mvcc
