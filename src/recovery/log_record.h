#ifndef MVCC_RECOVERY_LOG_RECORD_H_
#define MVCC_RECOVERY_LOG_RECORD_H_

#include <string>
#include <vector>

#include "common/ids.h"

namespace mvcc {

// One committed write in the log.
struct LoggedWrite {
  ObjectKey key = 0;
  Value value;
};

// The unit of logging: one committed read-write transaction, appended
// atomically at its commit point. The paper's opening observation —
// "multiple versions of data are used in database systems to support
// transaction and system recovery" — is exactly why the version number
// (tn) is the only ordering information the log needs: replaying batches
// in ANY order and installing each write with its creator's tn rebuilds
// the same multiversion state.
struct CommitBatch {
  TxnId txn = 0;
  TxnNumber tn = kInvalidTxnNumber;
  std::vector<LoggedWrite> writes;
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_LOG_RECORD_H_
