#include "recovery/recovery.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace mvcc {

namespace {

// Overlays checkpoint entries and replays WAL batches above the floor
// into a freshly constructed database, then restores the VC counters.
// Shared by the in-memory and durable recovery paths.
TxnNumber ReplayInto(Database* db, const Checkpoint* checkpoint,
                     const std::vector<CommitBatch>& batches,
                     uint64_t* replayed) {
  TxnNumber last_committed = 0;
  if (checkpoint != nullptr) {
    for (const CheckpointEntry& entry : checkpoint->entries) {
      // Version 0 rows duplicate the preload; skip them if present.
      VersionChain* chain = db->store().GetOrCreate(entry.key);
      if (entry.version == 0 && chain->LatestNumber() == 0) continue;
      chain->Install(Version{entry.version, entry.value, entry.writer});
    }
    last_committed = checkpoint->vtnc;
  }
  const TxnNumber floor = checkpoint != nullptr ? checkpoint->vtnc : 0;
  for (const CommitBatch& batch : batches) {
    // Batches at or below the checkpoint are already materialized.
    if (batch.tn <= floor) continue;
    for (const LoggedWrite& write : batch.writes) {
      db->store().GetOrCreate(write.key)->Install(
          Version{batch.tn, write.value, batch.txn});
    }
    if (replayed != nullptr) ++*replayed;
    last_committed = std::max(last_committed, batch.tn);
  }
  db->version_control().RecoverTo(last_committed);
  return last_committed;
}

// Removes leftovers of interrupted atomic writes ("*.tmp.*"). They are
// unreferenced by construction — the rename that would have published
// them never happened.
uint64_t DeleteOrphanedTempFiles(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t removed = 0;
  for (const std::string& name : *names) {
    if (name.find(".tmp.") != std::string::npos) {
      if (env->DeleteFile(dir + "/" + name).ok()) ++removed;
    }
  }
  if (removed > 0) env->SyncDir(dir);
  return removed;
}

}  // namespace

Checkpoint TakeCheckpoint(Database* db) {
  Checkpoint out;
  auto snapshot = db->Begin(TxnClass::kReadOnly);
  out.vtnc = snapshot->start_number();
  const std::vector<ObjectKey> keys = db->store().KeysInRange(
      0, std::numeric_limits<ObjectKey>::max());
  out.entries.reserve(keys.size());
  for (ObjectKey key : keys) {
    VersionChain* chain = db->store().Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->Read(out.vtnc);
    if (!read.ok()) continue;  // object born after the snapshot
    out.entries.push_back(CheckpointEntry{key, read->version, read->writer,
                                          std::move(read->value)});
  }
  snapshot->Commit();
  return out;
}

std::unique_ptr<Database> RecoverDatabase(DatabaseOptions options,
                                          const Checkpoint* checkpoint,
                                          const WriteAheadLog& log) {
  auto db = std::make_unique<Database>(std::move(options));
  ReplayInto(db.get(), checkpoint, log.Batches(), nullptr);
  return db;
}

Result<std::unique_ptr<Database>> OpenDatabaseDurable(
    DatabaseOptions options, Env* env, const std::string& dir,
    const WalDurableOptions& wal_options, RecoveryReport* report) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};

  if (!ProtocolUsesCommitPipeline(options.protocol)) {
    // Baselines append to the WAL only AFTER the commit is visible in
    // memory (Database::DoCommit); against a real disk a failed append
    // would leave concurrent readers having observed a never-durable
    // commit. Durable mode therefore requires a pipeline-integrated
    // (VC) protocol, whose append+fsync precedes VCcomplete.
    return Status::InvalidArgument(
        std::string(ProtocolKindName(options.protocol)) +
        " logs commits after they become visible; durable mode requires "
        "a VC protocol whose commits flush through the pipeline before "
        "visibility");
  }

  Status s = env->CreateDirIfMissing(dir);
  if (!s.ok()) return s;
  report->orphaned_temps_removed += DeleteOrphanedTempFiles(env, dir);
  if (env->FileExists(dir + "/ckpt")) {
    report->orphaned_temps_removed +=
        DeleteOrphanedTempFiles(env, dir + "/ckpt");
  }

  Checkpoint checkpoint;
  const Checkpoint* checkpoint_ptr = nullptr;
  Result<Checkpoint> loaded =
      LoadLatestCheckpoint(env, dir + "/ckpt", &report->checkpoint);
  if (loaded.ok()) {
    checkpoint = std::move(loaded).value();
    checkpoint_ptr = &checkpoint;
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  } else if (report->checkpoint.generations_seen > 0 &&
             report->checkpoint.generations_bad ==
                 report->checkpoint.generations_seen) {
    // Generations existed but none verified: the WAL floor they
    // promised is gone, so replaying from zero would silently lose the
    // truncated prefix. Fail-stop rather than serve a hole.
    return Status::DataLoss("all checkpoint generations corrupt: " +
                            report->checkpoint.detail);
  }

  auto log = WriteAheadLog::OpenDurable(env, dir + "/wal", wal_options,
                                        &report->wal);
  if (!log.ok()) return log.status();

  options.enable_wal = true;
  auto db = std::make_unique<Database>(std::move(options),
                                       std::move(log).value());
  report->recovered_tn = ReplayInto(db.get(), checkpoint_ptr,
                                    db->wal()->Batches(),
                                    &report->replayed_batches);
  if (checkpoint_ptr != nullptr) {
    // Re-establish the truncation watermark (it is not persisted on its
    // own — the durable generations ARE the watermark), deleting any
    // segments the pre-crash truncation didn't get to. The watermark is
    // the floor over every still-loadable generation, NOT the loaded
    // checkpoint's vtnc: a future open may fall back a generation and
    // must still find its WAL replay gap on disk.
    db->wal()->Truncate(CheckpointTruncationFloor(env, dir + "/ckpt"));
  }
  return db;
}

Result<uint64_t> CheckpointAndTruncateDurable(Database* db, Env* env,
                                              const std::string& dir) {
  Checkpoint checkpoint = TakeCheckpoint(db);
  Result<uint64_t> seq =
      SaveCheckpointDurable(env, dir + "/ckpt", checkpoint);
  if (!seq.ok()) return seq;
  // Only after the generation is durable may the WAL forget a prefix —
  // and only up to the OLDEST retained loadable generation's vtnc, not
  // the one just written: if the new generation later fails CRC,
  // recovery falls back to the previous one and replays the WAL above
  // ITS vtnc, so that gap must survive on disk. (Truncating to the new
  // vtnc would delete the covered segments and turn the fallback into a
  // silent hole.) Truncation always lags one generation; the prefix a
  // checkpoint covers is only freed by the NEXT checkpoint, which
  // prunes the older generation first. This call also reprobes and
  // lifts the ENOSPC degraded mode.
  if (db->wal() != nullptr) {
    db->wal()->Truncate(CheckpointTruncationFloor(env, dir + "/ckpt"));
  }
  return seq;
}

}  // namespace mvcc
