#include "recovery/recovery.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace mvcc {

namespace {

// Overlays checkpoint entries and replays WAL batches above the floor
// into a freshly constructed database, then restores the VC counters.
// Shared by the in-memory and durable recovery paths.
TxnNumber ReplayInto(Database* db, const Checkpoint* checkpoint,
                     const std::vector<CommitBatch>& batches,
                     uint64_t* replayed) {
  TxnNumber last_committed = 0;
  if (checkpoint != nullptr) {
    for (const CheckpointEntry& entry : checkpoint->entries) {
      // Version 0 rows duplicate the preload; skip them if present.
      VersionChain* chain = db->store().GetOrCreate(entry.key);
      if (entry.version == 0 && chain->LatestNumber() == 0) continue;
      chain->Install(Version{entry.version, entry.value, entry.writer});
    }
    last_committed = checkpoint->vtnc;
  }
  const TxnNumber floor = checkpoint != nullptr ? checkpoint->vtnc : 0;
  for (const CommitBatch& batch : batches) {
    // Batches at or below the checkpoint are already materialized.
    if (batch.tn <= floor) continue;
    for (const LoggedWrite& write : batch.writes) {
      db->store().GetOrCreate(write.key)->Install(
          Version{batch.tn, write.value, batch.txn});
    }
    if (replayed != nullptr) ++*replayed;
    last_committed = std::max(last_committed, batch.tn);
  }
  db->version_control().RecoverTo(last_committed);
  return last_committed;
}

// Removes leftovers of interrupted atomic writes ("*.tmp.*"). They are
// unreferenced by construction — the rename that would have published
// them never happened.
uint64_t DeleteOrphanedTempFiles(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t removed = 0;
  for (const std::string& name : *names) {
    if (name.find(".tmp.") != std::string::npos) {
      if (env->DeleteFile(dir + "/" + name).ok()) ++removed;
    }
  }
  if (removed > 0) env->SyncDir(dir);
  return removed;
}

}  // namespace

Checkpoint TakeCheckpoint(Database* db) {
  Checkpoint out;
  auto snapshot = db->Begin(TxnClass::kReadOnly);
  out.vtnc = snapshot->start_number();
  const std::vector<ObjectKey> keys = db->store().KeysInRange(
      0, std::numeric_limits<ObjectKey>::max());
  out.entries.reserve(keys.size());
  for (ObjectKey key : keys) {
    VersionChain* chain = db->store().Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->Read(out.vtnc);
    if (!read.ok()) continue;  // object born after the snapshot
    out.entries.push_back(CheckpointEntry{key, read->version, read->writer,
                                          std::move(read->value)});
  }
  snapshot->Commit();
  return out;
}

std::unique_ptr<Database> RecoverDatabase(DatabaseOptions options,
                                          const Checkpoint* checkpoint,
                                          const WriteAheadLog& log) {
  auto db = std::make_unique<Database>(std::move(options));
  ReplayInto(db.get(), checkpoint, log.Batches(), nullptr);
  return db;
}

Result<std::unique_ptr<Database>> OpenDatabaseDurable(
    DatabaseOptions options, Env* env, const std::string& dir,
    const WalDurableOptions& wal_options, RecoveryReport* report) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};

  Status s = env->CreateDirIfMissing(dir);
  if (!s.ok()) return s;
  report->orphaned_temps_removed += DeleteOrphanedTempFiles(env, dir);
  if (env->FileExists(dir + "/ckpt")) {
    report->orphaned_temps_removed +=
        DeleteOrphanedTempFiles(env, dir + "/ckpt");
  }

  Checkpoint checkpoint;
  const Checkpoint* checkpoint_ptr = nullptr;
  Result<Checkpoint> loaded =
      LoadLatestCheckpoint(env, dir + "/ckpt", &report->checkpoint);
  if (loaded.ok()) {
    checkpoint = std::move(loaded).value();
    checkpoint_ptr = &checkpoint;
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  } else if (report->checkpoint.generations_seen > 0 &&
             report->checkpoint.generations_bad ==
                 report->checkpoint.generations_seen) {
    // Generations existed but none verified: the WAL floor they
    // promised is gone, so replaying from zero would silently lose the
    // truncated prefix. Fail-stop rather than serve a hole.
    return Status::DataLoss("all checkpoint generations corrupt: " +
                            report->checkpoint.detail);
  }

  auto log = WriteAheadLog::OpenDurable(env, dir + "/wal", wal_options,
                                        &report->wal);
  if (!log.ok()) return log.status();

  options.enable_wal = true;
  auto db = std::make_unique<Database>(std::move(options),
                                       std::move(log).value());
  report->recovered_tn = ReplayInto(db.get(), checkpoint_ptr,
                                    db->wal()->Batches(),
                                    &report->replayed_batches);
  if (checkpoint_ptr != nullptr) {
    // Re-establish the truncation watermark (it is not persisted on its
    // own — the durably-written checkpoint IS the watermark), deleting
    // any segments the pre-crash truncation didn't get to.
    db->wal()->Truncate(checkpoint_ptr->vtnc);
  }
  return db;
}

Result<uint64_t> CheckpointAndTruncateDurable(Database* db, Env* env,
                                              const std::string& dir) {
  Checkpoint checkpoint = TakeCheckpoint(db);
  Result<uint64_t> seq =
      SaveCheckpointDurable(env, dir + "/ckpt", checkpoint);
  if (!seq.ok()) return seq;
  // Only after the generation is durable may the WAL forget the prefix
  // it covers. This also reprobes and lifts the ENOSPC degraded mode.
  if (db->wal() != nullptr) db->wal()->Truncate(checkpoint.vtnc);
  return seq;
}

}  // namespace mvcc
