#include "recovery/recovery.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace mvcc {

Checkpoint TakeCheckpoint(Database* db) {
  Checkpoint out;
  auto snapshot = db->Begin(TxnClass::kReadOnly);
  out.vtnc = snapshot->start_number();
  const std::vector<ObjectKey> keys = db->store().KeysInRange(
      0, std::numeric_limits<ObjectKey>::max());
  out.entries.reserve(keys.size());
  for (ObjectKey key : keys) {
    VersionChain* chain = db->store().Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->Read(out.vtnc);
    if (!read.ok()) continue;  // object born after the snapshot
    out.entries.push_back(CheckpointEntry{key, read->version, read->writer,
                                          std::move(read->value)});
  }
  snapshot->Commit();
  return out;
}

std::unique_ptr<Database> RecoverDatabase(DatabaseOptions options,
                                          const Checkpoint* checkpoint,
                                          const WriteAheadLog& log) {
  auto db = std::make_unique<Database>(std::move(options));
  TxnNumber last_committed = 0;

  if (checkpoint != nullptr) {
    for (const CheckpointEntry& entry : checkpoint->entries) {
      // Version 0 rows duplicate the preload; skip them if present.
      VersionChain* chain = db->store().GetOrCreate(entry.key);
      if (entry.version == 0 && chain->LatestNumber() == 0) continue;
      chain->Install(Version{entry.version, entry.value, entry.writer});
    }
    last_committed = checkpoint->vtnc;
  }

  const TxnNumber floor = checkpoint != nullptr ? checkpoint->vtnc : 0;
  for (const CommitBatch& batch : log.Batches()) {
    // Batches at or below the checkpoint are already materialized.
    if (batch.tn <= floor) continue;
    for (const LoggedWrite& write : batch.writes) {
      db->store().GetOrCreate(write.key)->Install(
          Version{batch.tn, write.value, batch.txn});
    }
    last_committed = std::max(last_committed, batch.tn);
  }

  db->version_control().RecoverTo(last_committed);
  return db;
}

}  // namespace mvcc
