#include "recovery/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "recovery/env.h"

namespace mvcc {

namespace {

// Per-process counter making concurrent WriteFileAtomic calls against
// the same target collision-free: each call gets its own temp name, so
// one writer's rename can never publish another's half-written temp.
std::atomic<uint64_t> g_tmp_nonce{0};

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::Unavailable("fsync " + what + ": " +
                               std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::string& contents) {
  const uint64_t nonce =
      g_tmp_nonce.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = path + ".tmp." + std::to_string(nonce) + "." +
                          std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open " + tmp + " for writing: " +
                               std::strerror(errno));
  }
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Unavailable("short write to " + tmp + ": " +
                                 std::strerror(err));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // The temp file must be ON DISK before the rename publishes it:
  // rename-then-crash with unflushed data yields a published file full
  // of zeros/garbage — exactly the half-written image this helper
  // exists to prevent.
  Status s = FsyncFd(fd, tmp);
  if (::close(fd) != 0 && s.ok()) {
    s = Status::Unavailable("close " + tmp + ": " + std::strerror(errno));
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Unavailable("cannot rename " + tmp + " to " + path +
                               ": " + std::strerror(err));
  }
  // And the rename itself must be durable: without a directory fsync a
  // power cut can roll the directory entry back to the old file (or to
  // nothing) even though the data blocks survived.
  const std::string dir = EnvParentDir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Unavailable("open(dir) " + dir + ": " +
                               std::strerror(errno));
  }
  s = FsyncFd(dfd, dir);
  ::close(dfd);
  return s;
}

uint64_t CleanupOrphanedTempFiles(const std::string& dir) {
  Env* env = GetPosixEnv();
  auto names = env->ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t removed = 0;
  for (const std::string& name : *names) {
    // Temps are never published (publication IS the rename away from
    // the temp name), so any survivor is debris from an interrupted
    // writer.
    if (name.find(".tmp.") != std::string::npos) {
      if (env->DeleteFile(dir + "/" + name).ok()) ++removed;
    }
  }
  if (removed > 0) env->SyncDir(dir);
  return removed;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Unavailable("error reading " + path);
  }
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

}  // namespace mvcc
