#include "recovery/file_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mvcc {

Status WriteFileAtomic(const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open " + tmp + " for writing");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      return Status::Unavailable("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Unavailable("error reading " + path);
  }
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

}  // namespace mvcc
