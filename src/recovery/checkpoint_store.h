#ifndef MVCC_RECOVERY_CHECKPOINT_STORE_H_
#define MVCC_RECOVERY_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "recovery/checkpoint.h"
#include "recovery/env.h"

namespace mvcc {

// Durable checkpoint generations in a directory:
//
//   ckpt-0000000001.mvcc, ckpt-0000000002.mvcc, ...
//
// Each file is Checkpoint::Serialize() output (CRC-trailed) written with
// the crash-safe pattern: write to a unique temp name, fsync the temp,
// rename over the final name, fsync the directory. The two newest
// generations are retained so that a generation corrupted on disk (CRC
// mismatch at load) falls back to the previous one — the WAL then
// replays the gap, since segments are only truncated up to the floor of
// the retained generations (CheckpointTruncationFloor), never up to the
// newest generation alone.

struct CheckpointLoadReport {
  uint64_t generations_seen = 0;   // candidate files found
  uint64_t generations_bad = 0;    // skipped (unreadable / CRC mismatch)
  uint64_t loaded_generation = 0;  // 0 = none loaded
  std::string detail;              // diagnosis of skipped generations
};

// "ckpt-0000000042.mvcc" for seq 42.
std::string CheckpointFileName(uint64_t seq);
// Sequence number, or 0 if `name` is not a checkpoint file.
uint64_t ParseCheckpointFileName(const std::string& name);

// Writes `checkpoint` as the next generation and prunes all but the two
// newest. Returns the new generation number.
Result<uint64_t> SaveCheckpointDurable(Env* env, const std::string& dir,
                                       const Checkpoint& checkpoint);

// Loads the newest generation that verifies, falling back across older
// ones; each rejected generation is counted and described in `report`
// (nullable). kNotFound when no generation loads.
Result<Checkpoint> LoadLatestCheckpoint(Env* env, const std::string& dir,
                                        CheckpointLoadReport* report);

// The highest tn the WAL may safely forget: the smallest vtnc among the
// retained generations that currently CRC-verify. Fallback recovery can
// load ANY of them (LoadLatestCheckpoint walks newest-first), so the
// WAL must keep everything above the smallest — truncating to the
// newest generation's vtnc alone would delete segments a later fallback
// needs, turning a recoverable bit-rotted checkpoint into a silent data
// hole. A generation that no longer verifies can never be a fallback
// target (corruption does not heal) and does not hold the floor down.
// Returns 0 — truncate nothing, always safe — when no generation
// verifies or the directory cannot be listed.
TxnNumber CheckpointTruncationFloor(Env* env, const std::string& dir);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_CHECKPOINT_STORE_H_
