#include "recovery/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mvcc {

namespace {

std::string ErrnoMessage(const char* op, const std::string& path, int err) {
  return std::string(op) + " " + path + ": " + std::strerror(err);
}

// ENOSPC (and quota exhaustion) is the one recoverable storage error:
// deleting data frees space and writes can resume. Everything else that
// reaches the durability layer means bytes we believed written may be
// gone — fail-stop.
Status ErrnoStatus(const char* op, const std::string& path, int err) {
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(ErrnoMessage(op, path, err));
  }
  return Status::DataLoss(ErrnoMessage(op, path, err));
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t offset)
      : path_(std::move(path)), fd_(fd), offset_(offset) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        // A partial group of bytes may already be on disk: the caller
        // (WAL) truncates back to the last record boundary on error.
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
      offset_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (sync_failed_) {
      // fsyncgate: the kernel cleared the dirty/error state on the
      // first failure; a later fsync returning 0 would not prove those
      // pages reached disk. Stay failed forever.
      return Status::DataLoss("fsync " + path_ +
                              ": previous fsync failed; data unverifiable");
    }
    if (::fsync(fd_) != 0) {
      sync_failed_ = true;
      return ErrnoStatus("fsync", path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

  uint64_t offset() const override { return offset_; }

 private:
  std::string path_;
  int fd_;
  uint64_t offset_;
  bool sync_failed_ = false;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat", path, err);
    }
    return std::unique_ptr<WritableFile>(std::make_unique<PosixWritableFile>(
        path, fd, static_cast<uint64_t>(st.st_size)));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("open", path, errno));
      }
      return ErrnoStatus("open", path, errno);
    }
    std::string out;
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("stat", path, errno));
      }
      return ErrnoStatus("stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("opendir", dir, errno));
      }
      return ErrnoStatus("opendir", dir, errno);
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("unlink", path, errno));
      }
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open(dir)", dir, errno);
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fsync(dir)", dir, err);
    }
    if (::close(fd) != 0) return ErrnoStatus("close(dir)", dir, errno);
    return Status::OK();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();  // never deleted
  return env;
}

std::string EnvParentDir(const std::string& path) { return ParentDir(path); }

}  // namespace mvcc
