#ifndef MVCC_RECOVERY_FAULTY_ENV_H_
#define MVCC_RECOVERY_FAULTY_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "recovery/env.h"

namespace mvcc {

// The storage faults FaultyEnv can inject at a mutating syscall.
enum class FaultKind {
  kNone,
  kEio,        // the syscall fails with an I/O error (-> kDataLoss)
  kEnospc,     // the syscall fails with disk-full (-> kResourceExhausted)
  kTornWrite,  // an append persists only a prefix, then fails
  kBitFlip,    // an append persists fully but with one bit corrupted
  kCrash,      // the process "dies" at this syscall: it and everything
               // later never reach the disk; all further ops fail
};

// Deterministic fault-injecting decorator over any Env — the storage
// analogue of the simulated network's message dropper. Every mutating
// syscall (append, sync, rename, delete, truncate, dir-sync) gets a
// global 0-based index in execution order; faults are placed either
// explicitly via FailAt(index, kind) or by the installed SimHook's
// OnEnvOp(op, index) fault query, which lets the schedule explorer
// enumerate crash placements exhaustively. Read-side calls are passed
// through unfaulted (recovery itself is exercised against the bytes the
// faults left behind, not re-faulted).
//
// The decorator also models a finite disk: with set_capacity_bytes(n),
// appends beyond n bytes of live data fail with ENOSPC, and deletes
// credit their file's size back — which is exactly the
// checkpoint-truncation path the degraded mode relies on.
//
// Thread-safe; the WAL calls it under its own mutex and the fault query
// never yields (see SimHook::OnEnvOp).
class FaultyEnv final : public Env {
 public:
  explicit FaultyEnv(Env* base);

  // Arms `kind` at the Nth mutating syscall (absolute index, 0-based).
  // Multiple placements may be armed; kCrash is sticky — every syscall
  // after it fails too.
  void FailAt(uint64_t index, FaultKind kind);

  // Arms `kind` at the Nth syscall whose op name equals `op`
  // ("append", "sync", "rename", ...), counted separately per op.
  void FailAtOp(const std::string& op, uint64_t nth, FaultKind kind);

  // Finite-disk model. 0 = unlimited (default).
  void set_capacity_bytes(uint64_t bytes);

  // Total mutating syscalls seen so far — run a workload once with no
  // faults armed to size a crash matrix.
  uint64_t op_count() const;
  // Live bytes charged against capacity.
  uint64_t used_bytes() const;
  bool crashed() const;
  // Clears crash state and armed faults (capacity and indices keep
  // counting) so a test can "restart the process" over the same dir.
  void ClearFaults();

  // ---- Env ----
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultyWritableFile;

  // Assigns the next op index and resolves the fault to inject at it
  // (explicit placements first, then the SimHook crash query).
  FaultKind NextOp(const char* op);
  void ChargeBytes(const std::string& path, uint64_t n);
  void CreditFile(const std::string& path);
  bool OverCapacity(uint64_t extra) const;  // takes mu_ itself

  Env* const base_;
  mutable std::mutex mu_;
  uint64_t next_index_ = 0;
  std::map<uint64_t, FaultKind> by_index_;
  std::map<std::string, std::map<uint64_t, FaultKind>> by_op_;
  std::map<std::string, uint64_t> op_counts_;
  bool crashed_ = false;
  uint64_t capacity_bytes_ = 0;
  uint64_t used_bytes_ = 0;
  std::map<std::string, uint64_t> file_bytes_;
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_FAULTY_ENV_H_
