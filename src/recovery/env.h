#ifndef MVCC_RECOVERY_ENV_H_
#define MVCC_RECOVERY_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mvcc {

// An append-only file handle. Append() buffers through the OS; nothing
// is durable until Sync() returns OK. Implementations report ENOSPC as
// kResourceExhausted and I/O errors as kDataLoss — the two failure
// policies the commit pipeline distinguishes (degrade vs fail-stop).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;

  // fsync. A failed Sync is NEVER retried by callers (fsyncgate
  // semantics: after a failed fsync the kernel may have dropped the
  // dirty pages, so a later "successful" fsync proves nothing about
  // this data). Implementations may fail every later call once one
  // Sync has failed.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;

  // Bytes successfully appended through this handle (not necessarily
  // durable).
  virtual uint64_t offset() const = 0;
};

// File-system abstraction under the recovery/durability layer, in the
// style of LevelDB's Env: the real PosixEnv talks to the actual disk,
// and FaultyEnv (faulty_env.h) decorates any Env with deterministic
// fault injection. Everything that must survive a crash — WAL segments,
// checkpoint generations — goes through an Env, never through direct
// stdio, so every syscall is a fault point the tests can enumerate.
class Env {
 public:
  virtual ~Env() = default;

  // Opens `path` for appending, creating it if missing. The returned
  // handle's offset() starts at the current file size.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  // Plain file names (no directories), unsorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;

  // fsync of the directory itself: makes renames/creates/unlinks in it
  // durable (a rename without a directory sync can vanish on power
  // loss).
  virtual Status SyncDir(const std::string& dir) = 0;
};

// The process-wide POSIX environment (O_APPEND files, fsync of file and
// parent directory). Never deleted.
Env* GetPosixEnv();

// Directory component of `path` ("." when there is none) — for the
// SyncDir-after-create/rename pattern.
std::string EnvParentDir(const std::string& path);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_ENV_H_
