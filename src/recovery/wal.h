#ifndef MVCC_RECOVERY_WAL_H_
#define MVCC_RECOVERY_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "recovery/env.h"
#include "recovery/log_record.h"

namespace mvcc {

// What recovery does with an invalid record at the tail of the last
// segment (a torn write from a crash mid-append).
enum class SalvagePolicy {
  kSalvageTornTail,  // truncate the torn suffix and continue (default)
  kStrict,           // fail-stop on ANY invalid record, even a torn tail
};

// Durability knobs for OpenDurable.
struct WalDurableOptions {
  SalvagePolicy policy = SalvagePolicy::kSalvageTornTail;
  // Rotate to a fresh segment once the current one passes this size;
  // Truncate() deletes whole sealed segments covered by a checkpoint.
  uint64_t segment_target_bytes = 64 * 1024;
};

// What OpenDurable found on disk (surfaced through RecoveryReport).
struct WalOpenReport {
  uint64_t segments = 0;         // segment files scanned
  uint64_t records = 0;          // valid records loaded
  uint64_t torn_tail_bytes = 0;  // bytes truncated from a torn tail
  bool salvaged = false;         // a torn tail was truncated
  std::string detail;            // diagnosis of any non-clean tail
};

// Write-ahead log of committed read-write transactions. Two modes:
//
//  - In-memory (default constructor): the append is a simulated
//    durability point; a "crash" in tests drops the Database and
//    rebuilds it from this object (see recovery.h).
//
//  - Durable (OpenDurable): every append is additionally framed with a
//    CRC32C header (log_format.h), written to an append-only segment
//    file through an Env, and fsynced before it is acknowledged. The
//    in-memory batch vector then acts as the serving mirror for
//    Batches()/BatchesSince() and only ever contains records that are
//    durable on disk — so visibility can never advance past an
//    unflushed record.
//
// Failure policy in durable mode (ISSUE 4 / fsyncgate):
//
//  - A failed fsync is NEVER retried. The log latches into a permanent
//    fail-stop state; every later append returns kDataLoss.
//  - A failed write is rolled back by truncating the segment to the
//    last acknowledged record boundary, so the on-disk log stays an
//    exact prefix of the acknowledged commit order. If the error was
//    ENOSPC the log enters a recoverable space-exhausted state
//    (kResourceExhausted) that Truncate() clears once segment deletion
//    frees space; any other error, or a failed rollback, latches
//    fail-stop.
//
// Thread-safe.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (or creates) a durable log in `dir`, scan-verifying every
  // record of every segment:
  //  - invalid record at the tail of the last segment = torn write:
  //    truncated and salvaged under kSalvageTornTail (reported), error
  //    under kStrict;
  //  - invalid record followed by valid ones (or in a sealed segment) =
  //    interior corruption: always kDataLoss with diagnostics.
  static Result<std::unique_ptr<WriteAheadLog>> OpenDurable(
      Env* env, const std::string& dir, const WalDurableOptions& options,
      WalOpenReport* report);

  // Appends one committed transaction atomically. In durable mode the
  // record is on disk (fsynced) when this returns OK; on error the
  // transaction is NOT durable and must not become visible.
  Status Append(CommitBatch batch);

  // Appends a whole commit group atomically under ONE lock acquisition
  // and (durable mode) ONE fsync — the group-commit durability point of
  // the shared commit pipeline. All-or-nothing on disk: on error the
  // segment is rolled back to the pre-group boundary and no batch in
  // the group is acknowledged. Fault injection (SimHook::OnWalAppend)
  // still fires per record in in-memory mode, so a simulated crash can
  // land inside a group and lose exactly a suffix of it.
  Status AppendGroup(std::vector<CommitBatch> batches);

  // Snapshot of all batches currently in the log (mirror).
  std::vector<CommitBatch> Batches() const;

  // Incremental tail for replication: all batches with tn > `after`,
  // sorted by ascending tn (appends may arrive out of tn order under
  // timestamp ordering). Fails with kUnavailable when `after` lies below
  // the truncation watermark — batches in (after, watermark] may have
  // existed and been dropped under a checkpoint, so the caller MUST
  // resync from that checkpoint instead of silently skipping the gap.
  Result<std::vector<CommitBatch>> BatchesSince(TxnNumber after) const;

  // Drops batches with tn <= `up_to` (they are covered by a checkpoint)
  // and raises the truncation watermark to `up_to`. Durable mode also
  // deletes sealed segments wholly covered by the watermark and — if
  // the log was space-exhausted — reprobes writability, clearing the
  // degraded state once a fresh segment can be created.
  void Truncate(TxnNumber up_to);

  // Largest `up_to` ever passed to Truncate (0 if never truncated).
  // Tailing below this point is refused by BatchesSince.
  TxnNumber TruncatedUpTo() const;

  size_t size() const;

  // Largest tn appended so far (0 if empty since truncation never drops
  // the maximum unless the checkpoint covers it).
  TxnNumber MaxTn() const;

  // Current failure state: OK, kResourceExhausted (disk full — degraded
  // read-only until space frees), or kDataLoss (fail-stop).
  Status DurabilityHealth() const;

  bool durable() const { return env_ != nullptr; }

  // Number of on-disk segment files (0 in in-memory mode).
  uint64_t SegmentCount() const;

  // ---- serialization (simulated disk image, in-memory mode) ----

  // Length-prefixed binary encoding of the whole log.
  std::string Serialize() const;

  // Reconstructs a log from Serialize() output. Fails on any framing
  // error (truncated image, bad magic).
  static Result<std::unique_ptr<WriteAheadLog>> Deserialize(
      const std::string& image);

  // True once fault injection (SimHook::OnWalAppend) crashed the log:
  // every record from the crash point on was dropped. The surviving
  // batches are the durable prefix a recovery would see.
  bool SimulatedCrashTriggered() const {
    return crashed_.load(std::memory_order_relaxed);
  }

 private:
  struct SealedSegment {
    uint64_t seq = 0;
    std::string path;
    TxnNumber max_tn = 0;  // 0 = empty segment, deletable any time
  };

  // Durable write of pre-encoded records + fsync, with the rollback /
  // latching policy above. Caller holds mu_.
  Status DurableAppendLocked(const std::string& encoded, TxnNumber group_max);
  // Seals the current segment and starts seq+1. Caller holds mu_.
  Status RotateLocked();
  // Latches the permanent fail-stop state. Caller holds mu_.
  Status LatchFailStopLocked(const Status& cause);

  mutable std::mutex mu_;
  std::vector<CommitBatch> batches_;
  TxnNumber max_tn_ = 0;
  TxnNumber truncated_up_to_ = 0;
  std::atomic<bool> crashed_{false};

  // ---- durable mode state (null/empty in in-memory mode) ----
  Env* env_ = nullptr;
  std::string dir_;
  WalDurableOptions dopts_;
  std::unique_ptr<WritableFile> file_;  // current segment, append mode
  std::string file_path_;
  uint64_t file_seq_ = 0;
  TxnNumber file_max_tn_ = 0;  // max tn in the current segment
  std::vector<SealedSegment> sealed_;
  bool failed_ = false;  // permanent fail-stop (fsyncgate)
  std::string failed_reason_;
  bool space_exhausted_ = false;  // recoverable degraded state
  std::string space_reason_;
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_WAL_H_
