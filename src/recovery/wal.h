#ifndef MVCC_RECOVERY_WAL_H_
#define MVCC_RECOVERY_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "recovery/log_record.h"

namespace mvcc {

// In-memory write-ahead log of committed read-write transactions, with a
// portable string serialization standing in for the on-disk format. The
// append of a CommitBatch is the simulated durability point: a "crash"
// in tests drops the Database object and rebuilds it from this log (see
// recovery.h). Thread-safe.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one committed transaction atomically.
  void Append(CommitBatch batch);

  // Appends a whole commit group atomically under ONE lock acquisition —
  // the group-commit durability point of the shared commit pipeline.
  // Observably equivalent to calling Append on each batch in order:
  // fault injection (SimHook::OnWalAppend) still fires per record, so a
  // simulated crash can land inside a group and lose exactly a suffix of
  // it (the surviving log remains an exact prefix of the append order).
  void AppendGroup(std::vector<CommitBatch> batches);

  // Snapshot of all batches currently in the log.
  std::vector<CommitBatch> Batches() const;

  // Incremental tail for replication: all batches with tn > `after`,
  // sorted by ascending tn (appends may arrive out of tn order under
  // timestamp ordering). Fails with kUnavailable when `after` lies below
  // the truncation watermark — batches in (after, watermark] may have
  // existed and been dropped under a checkpoint, so the caller MUST
  // resync from that checkpoint instead of silently skipping the gap.
  Result<std::vector<CommitBatch>> BatchesSince(TxnNumber after) const;

  // Drops batches with tn <= `up_to` (they are covered by a checkpoint)
  // and raises the truncation watermark to `up_to`.
  void Truncate(TxnNumber up_to);

  // Largest `up_to` ever passed to Truncate (0 if never truncated).
  // Tailing below this point is refused by BatchesSince.
  TxnNumber TruncatedUpTo() const;

  size_t size() const;

  // Largest tn appended so far (0 if empty since truncation never drops
  // the maximum unless the checkpoint covers it).
  TxnNumber MaxTn() const;

  // ---- serialization (simulated disk image) ----

  // Length-prefixed binary encoding of the whole log.
  std::string Serialize() const;

  // Reconstructs a log from Serialize() output. Fails on any framing
  // error (truncated image, bad magic).
  static Result<std::unique_ptr<WriteAheadLog>> Deserialize(
      const std::string& image);

  // True once fault injection (SimHook::OnWalAppend) crashed the log:
  // every record from the crash point on was dropped. The surviving
  // batches are the durable prefix a recovery would see.
  bool SimulatedCrashTriggered() const {
    return crashed_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<CommitBatch> batches_;
  TxnNumber max_tn_ = 0;
  TxnNumber truncated_up_to_ = 0;
  std::atomic<bool> crashed_{false};
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_WAL_H_
