#ifndef MVCC_RECOVERY_WAL_H_
#define MVCC_RECOVERY_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "recovery/log_record.h"

namespace mvcc {

// In-memory write-ahead log of committed read-write transactions, with a
// portable string serialization standing in for the on-disk format. The
// append of a CommitBatch is the simulated durability point: a "crash"
// in tests drops the Database object and rebuilds it from this log (see
// recovery.h). Thread-safe.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one committed transaction atomically.
  void Append(CommitBatch batch);

  // Snapshot of all batches currently in the log.
  std::vector<CommitBatch> Batches() const;

  // Drops batches with tn <= `up_to` (they are covered by a checkpoint).
  void Truncate(TxnNumber up_to);

  size_t size() const;

  // Largest tn appended so far (0 if empty since truncation never drops
  // the maximum unless the checkpoint covers it).
  TxnNumber MaxTn() const;

  // ---- serialization (simulated disk image) ----

  // Length-prefixed binary encoding of the whole log.
  std::string Serialize() const;

  // Reconstructs a log from Serialize() output. Fails on any framing
  // error (truncated image, bad magic).
  static Result<std::unique_ptr<WriteAheadLog>> Deserialize(
      const std::string& image);

  // True once fault injection (SimHook::OnWalAppend) crashed the log:
  // every record from the crash point on was dropped. The surviving
  // batches are the durable prefix a recovery would see.
  bool SimulatedCrashTriggered() const {
    return crashed_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<CommitBatch> batches_;
  TxnNumber max_tn_ = 0;
  std::atomic<bool> crashed_{false};
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_WAL_H_
