#ifndef MVCC_RECOVERY_CHECKPOINT_H_
#define MVCC_RECOVERY_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace mvcc {

// One object's state in a checkpoint: the newest committed version at or
// below the checkpoint's vtnc. Older versions are deliberately dropped —
// after a crash no read-only transaction survives, so no snapshot below
// the checkpoint can ever be requested again (the same argument that
// justifies the garbage collection watermark in Section 6).
struct CheckpointEntry {
  ObjectKey key = 0;
  VersionNumber version = 0;
  // Transaction id of the version's creator (0 = initial load T0). Kept
  // so that a database re-seeded from a checkpoint — recovery or replica
  // resync — preserves reads-from attribution for the MVSG oracle.
  TxnId writer = 0;
  Value value;
};

// A transactionally consistent materialization of the database at some
// vtnc. Taken with an ordinary read-only snapshot — checkpointing, like
// garbage collection, needs nothing from the concurrency control
// component.
struct Checkpoint {
  TxnNumber vtnc = 0;
  std::vector<CheckpointEntry> entries;

  std::string Serialize() const;
  static Result<Checkpoint> Deserialize(const std::string& image);
};

}  // namespace mvcc

#endif  // MVCC_RECOVERY_CHECKPOINT_H_
