#ifndef MVCC_RECOVERY_RECOVERY_H_
#define MVCC_RECOVERY_RECOVERY_H_

#include <memory>

#include "recovery/checkpoint.h"
#include "recovery/wal.h"
#include "txn/database.h"

namespace mvcc {

// Takes a transactionally consistent checkpoint of `db` at its current
// vtnc, using an ordinary read-only snapshot over the key index. Safe to
// run concurrently with any workload. Afterwards the caller may
// Truncate() the write-ahead log up to the returned vtnc.
Checkpoint TakeCheckpoint(Database* db);

// Rebuilds a database after a "crash": starts from `options` (preload is
// applied first, re-creating the initial load T0), overlays the
// checkpoint if given, replays every logged commit with tn above the
// checkpoint's vtnc (installing each write with its creator's
// transaction number, preserving the multiversion order), and restores
// the version control counters so vtnc = the last durable transaction
// and future registrations get larger numbers. The recovered database is
// immediately serviceable: read-only snapshots observe exactly the
// committed state, and new read-write transactions extend the history.
std::unique_ptr<Database> RecoverDatabase(DatabaseOptions options,
                                          const Checkpoint* checkpoint,
                                          const WriteAheadLog& log);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_RECOVERY_H_
