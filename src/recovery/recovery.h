#ifndef MVCC_RECOVERY_RECOVERY_H_
#define MVCC_RECOVERY_RECOVERY_H_

#include <memory>
#include <string>

#include "recovery/checkpoint.h"
#include "recovery/checkpoint_store.h"
#include "recovery/env.h"
#include "recovery/wal.h"
#include "txn/database.h"

namespace mvcc {

// Takes a transactionally consistent checkpoint of `db` at its current
// vtnc, using an ordinary read-only snapshot over the key index. Safe to
// run concurrently with any workload. Afterwards the caller may
// Truncate() the write-ahead log up to the returned vtnc.
Checkpoint TakeCheckpoint(Database* db);

// Rebuilds a database after a "crash": starts from `options` (preload is
// applied first, re-creating the initial load T0), overlays the
// checkpoint if given, replays every logged commit with tn above the
// checkpoint's vtnc (installing each write with its creator's
// transaction number, preserving the multiversion order), and restores
// the version control counters so vtnc = the last durable transaction
// and future registrations get larger numbers. The recovered database is
// immediately serviceable: read-only snapshots observe exactly the
// committed state, and new read-write transactions extend the history.
std::unique_ptr<Database> RecoverDatabase(DatabaseOptions options,
                                          const Checkpoint* checkpoint,
                                          const WriteAheadLog& log);

// What a durable open found and did. Every field is diagnostic only —
// a non-OK open status is the authoritative failure signal.
struct RecoveryReport {
  WalOpenReport wal;                 // scan/salvage outcome per ISSUE 4
  CheckpointLoadReport checkpoint;   // generation fallback outcome
  uint64_t replayed_batches = 0;     // WAL records applied above floor
  TxnNumber recovered_tn = 0;        // vtnc after recovery
  uint64_t orphaned_temps_removed = 0;
};

// On-disk layout under `dir`:
//   dir/wal/wal-*.log     checksummed WAL segments
//   dir/ckpt/ckpt-*.mvcc  checkpoint generations (newest two kept)
//
// Opens (or creates) a durable database: loads the newest checkpoint
// generation that CRC-verifies (falling back across generations),
// scan-verifies the WAL — salvaging a torn tail or fail-stopping on
// interior corruption per `wal_options.policy` — replays every record
// above the checkpoint floor, and restores the version-control
// counters. Handles a fresh directory and a post-crash directory
// uniformly. The returned database keeps the opened WAL as its live
// log: commits append durably, and Database::Health() reflects the
// log's failure state (kDataLoss fail-stop / kResourceExhausted
// degraded read-only).
//
// Durable mode requires a pipeline-integrated (VC) protocol — their
// commits flush to the WAL before VCcomplete makes them visible, so a
// failed append rolls back unseen. Baseline protocols log after
// visibility and are refused with kInvalidArgument (a real-disk append
// failure there would mean readers already observed a never-durable
// commit).
Result<std::unique_ptr<Database>> OpenDatabaseDurable(
    DatabaseOptions options, Env* env, const std::string& dir,
    const WalDurableOptions& wal_options, RecoveryReport* report);

// Takes a checkpoint of the running durable database, writes it as a
// new generation (crash-safe temp+rename+dir-sync), then truncates the
// WAL up to the floor of the retained loadable generations
// (CheckpointTruncationFloor) — one generation BEHIND the checkpoint
// just written, so that if it later fails CRC, fallback recovery still
// finds the WAL gap above the previous generation's vtnc on disk.
// Segment deletion under the floor is what frees space and lifts the
// ENOSPC degraded mode. Returns the new generation number.
Result<uint64_t> CheckpointAndTruncateDurable(Database* db, Env* env,
                                              const std::string& dir);

}  // namespace mvcc

#endif  // MVCC_RECOVERY_RECOVERY_H_
