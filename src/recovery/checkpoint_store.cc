#include "recovery/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace mvcc {

namespace {

// Env-based atomic file write (the stdio twin lives in file_io.cc for
// the in-memory harness): unique temp name -> append -> fsync file ->
// rename -> fsync dir. Any failure leaves the previous generation
// untouched.
Status WriteFileAtomicEnv(Env* env, const std::string& dir,
                          const std::string& final_name,
                          const std::string& contents, uint64_t nonce) {
  const std::string tmp =
      dir + "/" + final_name + ".tmp." + std::to_string(nonce);
  auto file = env->NewAppendableFile(tmp);
  if (!file.ok()) return file.status();
  Status s = (*file)->Append(contents);
  if (s.ok()) s = (*file)->Sync();
  Status close = (*file)->Close();
  if (s.ok()) s = close;
  if (s.ok()) s = env->RenameFile(tmp, dir + "/" + final_name);
  if (s.ok()) s = env->SyncDir(dir);
  if (!s.ok()) env->DeleteFile(tmp);  // best effort
  return s;
}

// All checkpoint generations in `dir`, ascending.
Result<std::vector<uint64_t>> ListGenerations(Env* env,
                                              const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    const uint64_t seq = ParseCheckpointFileName(name);
    if (seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%010llu.mvcc",
                static_cast<unsigned long long>(seq));
  return buf;
}

uint64_t ParseCheckpointFileName(const std::string& name) {
  if (name.size() != 20 || name.compare(0, 5, "ckpt-") != 0 ||
      name.compare(15, 5, ".mvcc") != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = 5; i < 15; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

Result<uint64_t> SaveCheckpointDurable(Env* env, const std::string& dir,
                                       const Checkpoint& checkpoint) {
  Status s = env->CreateDirIfMissing(dir);
  if (!s.ok()) return s;
  auto seqs = ListGenerations(env, dir);
  if (!seqs.ok()) return seqs.status();
  const uint64_t next = seqs->empty() ? 1 : seqs->back() + 1;
  s = WriteFileAtomicEnv(env, dir, CheckpointFileName(next),
                         checkpoint.Serialize(), next);
  if (!s.ok()) return s;
  // Keep the two newest generations (fallback target); prune the rest.
  // Deletion failures are harmless — stale generations are just space.
  for (uint64_t seq : *seqs) {
    if (seq + 1 < next) env->DeleteFile(dir + "/" + CheckpointFileName(seq));
  }
  return next;
}

Result<Checkpoint> LoadLatestCheckpoint(Env* env, const std::string& dir,
                                        CheckpointLoadReport* report) {
  CheckpointLoadReport local;
  if (report == nullptr) report = &local;
  *report = CheckpointLoadReport{};
  if (!env->FileExists(dir)) {
    return Status::NotFound("no checkpoint directory: " + dir);
  }
  auto seqs = ListGenerations(env, dir);
  if (!seqs.ok()) return seqs.status();
  report->generations_seen = seqs->size();
  for (auto it = seqs->rbegin(); it != seqs->rend(); ++it) {
    const std::string path = dir + "/" + CheckpointFileName(*it);
    auto image = env->ReadFileToString(path);
    if (!image.ok()) {
      ++report->generations_bad;
      report->detail += path + ": " + image.status().ToString() + "; ";
      continue;
    }
    Result<Checkpoint> checkpoint = Checkpoint::Deserialize(*image);
    if (!checkpoint.ok()) {
      // CRC mismatch or framing damage: fall back to the previous
      // generation — the WAL still holds everything past ITS vtnc,
      // because truncation only ever ran against durably-written
      // checkpoints.
      ++report->generations_bad;
      report->detail += path + ": " + checkpoint.status().ToString() + "; ";
      continue;
    }
    report->loaded_generation = *it;
    return checkpoint;
  }
  return Status::NotFound("no loadable checkpoint generation in " + dir +
                          (report->detail.empty() ? "" : " (" +
                           report->detail + ")"));
}

TxnNumber CheckpointTruncationFloor(Env* env, const std::string& dir) {
  if (!env->FileExists(dir)) return 0;
  auto seqs = ListGenerations(env, dir);
  if (!seqs.ok()) return 0;
  TxnNumber floor = 0;
  bool any = false;
  for (uint64_t seq : *seqs) {
    auto image = env->ReadFileToString(dir + "/" + CheckpointFileName(seq));
    if (!image.ok()) continue;
    Result<Checkpoint> checkpoint = Checkpoint::Deserialize(*image);
    if (!checkpoint.ok()) continue;
    floor = any ? std::min(floor, checkpoint->vtnc) : checkpoint->vtnc;
    any = true;
  }
  return floor;
}

}  // namespace mvcc
