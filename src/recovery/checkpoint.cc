#include "recovery/checkpoint.h"

#include <cstring>

#include "recovery/log_format.h"

namespace mvcc {

namespace {

// CK03: CK02 plus a trailing CRC32C over every preceding byte, so a
// checkpoint generation that rotted on disk is detected and recovery
// can fall back to the previous generation instead of silently loading
// corrupt state.
constexpr uint64_t kMagic = 0x4D564343434B3033ULL;  // "MVCCCK03"

// Explicit little-endian packing, independent of host endianness — the
// file format must read back on any machine.
void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<unsigned char>(in[*pos + i]))
           << (8 * i);
  }
  *v = out;
  *pos += 8;
  return true;
}

}  // namespace

std::string Checkpoint::Serialize() const {
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, vtnc);
  PutU64(&out, entries.size());
  for (const CheckpointEntry& e : entries) {
    PutU64(&out, e.key);
    PutU64(&out, e.version);
    PutU64(&out, e.writer);
    PutU64(&out, e.value.size());
    out.append(e.value);
  }
  const uint32_t crc = Crc32c(out.data(), out.size());
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(crc >> (8 * i));
  out.append(buf, 4);
  return out;
}

Result<Checkpoint> Checkpoint::Deserialize(const std::string& image) {
  if (image.size() < 12) {
    return Status::InvalidArgument("checkpoint image too short");
  }
  const size_t body_size = image.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(
                      static_cast<unsigned char>(image[body_size + i]))
                  << (8 * i);
  }
  if (Crc32c(image.data(), body_size) != stored_crc) {
    return Status::DataLoss("checkpoint CRC mismatch");
  }
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint image magic");
  }
  Checkpoint out;
  uint64_t count = 0;
  if (!GetU64(image, &pos, &out.vtnc) || !GetU64(image, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  out.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CheckpointEntry e;
    uint64_t len = 0;
    if (!GetU64(image, &pos, &e.key) || !GetU64(image, &pos, &e.version) ||
        !GetU64(image, &pos, &e.writer) || !GetU64(image, &pos, &len) ||
        pos + len > body_size) {
      return Status::InvalidArgument("truncated checkpoint entry");
    }
    e.value.assign(image, pos, len);
    pos += len;
    out.entries.push_back(std::move(e));
  }
  if (pos != body_size) {
    return Status::InvalidArgument("trailing bytes in checkpoint image");
  }
  return out;
}

}  // namespace mvcc
