#include "recovery/checkpoint.h"

#include <cstring>

namespace mvcc {

namespace {

constexpr uint64_t kMagic = 0x4D564343434B3032ULL;  // "MVCCCK02"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

std::string Checkpoint::Serialize() const {
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, vtnc);
  PutU64(&out, entries.size());
  for (const CheckpointEntry& e : entries) {
    PutU64(&out, e.key);
    PutU64(&out, e.version);
    PutU64(&out, e.writer);
    PutU64(&out, e.value.size());
    out.append(e.value);
  }
  return out;
}

Result<Checkpoint> Checkpoint::Deserialize(const std::string& image) {
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint image magic");
  }
  Checkpoint out;
  uint64_t count = 0;
  if (!GetU64(image, &pos, &out.vtnc) || !GetU64(image, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  out.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CheckpointEntry e;
    uint64_t len = 0;
    if (!GetU64(image, &pos, &e.key) || !GetU64(image, &pos, &e.version) ||
        !GetU64(image, &pos, &e.writer) || !GetU64(image, &pos, &len) ||
        pos + len > image.size()) {
      return Status::InvalidArgument("truncated checkpoint entry");
    }
    e.value.assign(image, pos, len);
    pos += len;
    out.entries.push_back(std::move(e));
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes in checkpoint image");
  }
  return out;
}

}  // namespace mvcc
