#include "recovery/checkpoint.h"

#include <cstring>

#include "recovery/log_format.h"

namespace mvcc {

namespace {

// CK03: CK02 plus a trailing CRC32C over every preceding byte, so a
// checkpoint generation that rotted on disk is detected and recovery
// can fall back to the previous generation instead of silently loading
// corrupt state.
constexpr uint64_t kMagic = 0x4D564343434B3033ULL;  // "MVCCCK03"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

std::string Checkpoint::Serialize() const {
  std::string out;
  PutU64(&out, kMagic);
  PutU64(&out, vtnc);
  PutU64(&out, entries.size());
  for (const CheckpointEntry& e : entries) {
    PutU64(&out, e.key);
    PutU64(&out, e.version);
    PutU64(&out, e.writer);
    PutU64(&out, e.value.size());
    out.append(e.value);
  }
  const uint32_t crc = Crc32c(out.data(), out.size());
  char buf[4];
  std::memcpy(buf, &crc, 4);
  out.append(buf, 4);
  return out;
}

Result<Checkpoint> Checkpoint::Deserialize(const std::string& image) {
  if (image.size() < 12) {
    return Status::InvalidArgument("checkpoint image too short");
  }
  const size_t body_size = image.size() - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + body_size, 4);
  if (Crc32c(image.data(), body_size) != stored_crc) {
    return Status::DataLoss("checkpoint CRC mismatch");
  }
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(image, &pos, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint image magic");
  }
  Checkpoint out;
  uint64_t count = 0;
  if (!GetU64(image, &pos, &out.vtnc) || !GetU64(image, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  out.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CheckpointEntry e;
    uint64_t len = 0;
    if (!GetU64(image, &pos, &e.key) || !GetU64(image, &pos, &e.version) ||
        !GetU64(image, &pos, &e.writer) || !GetU64(image, &pos, &len) ||
        pos + len > body_size) {
      return Status::InvalidArgument("truncated checkpoint entry");
    }
    e.value.assign(image, pos, len);
    pos += len;
    out.entries.push_back(std::move(e));
  }
  if (pos != body_size) {
    return Status::InvalidArgument("trailing bytes in checkpoint image");
  }
  return out;
}

}  // namespace mvcc
